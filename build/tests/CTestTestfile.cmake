# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_kde[1]_include.cmake")
include("/root/repo/build/tests/test_ml_scaler_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_one_class_svm[1]_include.cmake")
include("/root/repo/build/tests/test_mars[1]_include.cmake")
include("/root/repo/build/tests/test_kmm[1]_include.cmake")
include("/root/repo/build/tests/test_pca_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_circuit[1]_include.cmake")
include("/root/repo/build/tests/test_process[1]_include.cmake")
include("/root/repo/build/tests/test_rf[1]_include.cmake")
include("/root/repo/build/tests/test_trojan[1]_include.cmake")
include("/root/repo/build/tests/test_silicon[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_spice[1]_include.cmake")
include("/root/repo/build/tests/test_evt[1]_include.cmake")
include("/root/repo/build/tests/test_waveform[1]_include.cmake")
include("/root/repo/build/tests/test_roc_knn[1]_include.cmake")
include("/root/repo/build/tests/test_gpr[1]_include.cmake")
include("/root/repo/build/tests/test_json[1]_include.cmake")
