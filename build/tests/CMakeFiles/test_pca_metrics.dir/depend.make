# Empty dependencies file for test_pca_metrics.
# This may be replaced when dependencies are built.
