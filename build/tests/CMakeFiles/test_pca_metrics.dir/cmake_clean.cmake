file(REMOVE_RECURSE
  "CMakeFiles/test_pca_metrics.dir/test_pca_metrics.cpp.o"
  "CMakeFiles/test_pca_metrics.dir/test_pca_metrics.cpp.o.d"
  "test_pca_metrics"
  "test_pca_metrics.pdb"
  "test_pca_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pca_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
