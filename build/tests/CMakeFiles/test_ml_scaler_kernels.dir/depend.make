# Empty dependencies file for test_ml_scaler_kernels.
# This may be replaced when dependencies are built.
