file(REMOVE_RECURSE
  "CMakeFiles/test_ml_scaler_kernels.dir/test_ml_scaler_kernels.cpp.o"
  "CMakeFiles/test_ml_scaler_kernels.dir/test_ml_scaler_kernels.cpp.o.d"
  "test_ml_scaler_kernels"
  "test_ml_scaler_kernels.pdb"
  "test_ml_scaler_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_scaler_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
