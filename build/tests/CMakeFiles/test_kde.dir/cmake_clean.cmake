file(REMOVE_RECURSE
  "CMakeFiles/test_kde.dir/test_kde.cpp.o"
  "CMakeFiles/test_kde.dir/test_kde.cpp.o.d"
  "test_kde"
  "test_kde.pdb"
  "test_kde[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
