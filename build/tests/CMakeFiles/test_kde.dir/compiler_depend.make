# Empty compiler generated dependencies file for test_kde.
# This may be replaced when dependencies are built.
