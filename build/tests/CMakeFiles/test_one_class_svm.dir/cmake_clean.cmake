file(REMOVE_RECURSE
  "CMakeFiles/test_one_class_svm.dir/test_one_class_svm.cpp.o"
  "CMakeFiles/test_one_class_svm.dir/test_one_class_svm.cpp.o.d"
  "test_one_class_svm"
  "test_one_class_svm.pdb"
  "test_one_class_svm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_one_class_svm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
