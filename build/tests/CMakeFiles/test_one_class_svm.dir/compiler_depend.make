# Empty compiler generated dependencies file for test_one_class_svm.
# This may be replaced when dependencies are built.
