
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_waveform.cpp" "tests/CMakeFiles/test_waveform.dir/test_waveform.cpp.o" "gcc" "tests/CMakeFiles/test_waveform.dir/test_waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/htd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/htd_io.dir/DependInfo.cmake"
  "/root/repo/build/src/silicon/CMakeFiles/htd_silicon.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/htd_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/htd_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/process/CMakeFiles/htd_process.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/htd_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/htd_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/trojan/CMakeFiles/htd_trojan.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/htd_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/htd_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/htd_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
