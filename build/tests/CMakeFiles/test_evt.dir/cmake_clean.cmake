file(REMOVE_RECURSE
  "CMakeFiles/test_evt.dir/test_evt.cpp.o"
  "CMakeFiles/test_evt.dir/test_evt.cpp.o.d"
  "test_evt"
  "test_evt.pdb"
  "test_evt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_evt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
