# Empty dependencies file for test_evt.
# This may be replaced when dependencies are built.
