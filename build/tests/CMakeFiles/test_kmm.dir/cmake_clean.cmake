file(REMOVE_RECURSE
  "CMakeFiles/test_kmm.dir/test_kmm.cpp.o"
  "CMakeFiles/test_kmm.dir/test_kmm.cpp.o.d"
  "test_kmm"
  "test_kmm.pdb"
  "test_kmm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
