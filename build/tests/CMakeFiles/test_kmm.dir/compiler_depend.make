# Empty compiler generated dependencies file for test_kmm.
# This may be replaced when dependencies are built.
