file(REMOVE_RECURSE
  "CMakeFiles/test_process.dir/test_process.cpp.o"
  "CMakeFiles/test_process.dir/test_process.cpp.o.d"
  "test_process"
  "test_process.pdb"
  "test_process[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
