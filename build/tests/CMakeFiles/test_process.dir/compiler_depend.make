# Empty compiler generated dependencies file for test_process.
# This may be replaced when dependencies are built.
