file(REMOVE_RECURSE
  "CMakeFiles/test_roc_knn.dir/test_roc_knn.cpp.o"
  "CMakeFiles/test_roc_knn.dir/test_roc_knn.cpp.o.d"
  "test_roc_knn"
  "test_roc_knn.pdb"
  "test_roc_knn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_roc_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
