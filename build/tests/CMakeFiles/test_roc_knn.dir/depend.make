# Empty dependencies file for test_roc_knn.
# This may be replaced when dependencies are built.
