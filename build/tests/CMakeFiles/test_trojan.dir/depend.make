# Empty dependencies file for test_trojan.
# This may be replaced when dependencies are built.
