file(REMOVE_RECURSE
  "CMakeFiles/test_trojan.dir/test_trojan.cpp.o"
  "CMakeFiles/test_trojan.dir/test_trojan.cpp.o.d"
  "test_trojan"
  "test_trojan.pdb"
  "test_trojan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trojan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
