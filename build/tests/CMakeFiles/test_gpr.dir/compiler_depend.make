# Empty compiler generated dependencies file for test_gpr.
# This may be replaced when dependencies are built.
