file(REMOVE_RECURSE
  "CMakeFiles/test_gpr.dir/test_gpr.cpp.o"
  "CMakeFiles/test_gpr.dir/test_gpr.cpp.o.d"
  "test_gpr"
  "test_gpr.pdb"
  "test_gpr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
