# Empty compiler generated dependencies file for test_mars.
# This may be replaced when dependencies are built.
