file(REMOVE_RECURSE
  "CMakeFiles/test_mars.dir/test_mars.cpp.o"
  "CMakeFiles/test_mars.dir/test_mars.cpp.o.d"
  "test_mars"
  "test_mars.pdb"
  "test_mars[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
