file(REMOVE_RECURSE
  "CMakeFiles/htd_circuit.dir/delay.cpp.o"
  "CMakeFiles/htd_circuit.dir/delay.cpp.o.d"
  "CMakeFiles/htd_circuit.dir/monitored_paths.cpp.o"
  "CMakeFiles/htd_circuit.dir/monitored_paths.cpp.o.d"
  "CMakeFiles/htd_circuit.dir/mosfet.cpp.o"
  "CMakeFiles/htd_circuit.dir/mosfet.cpp.o.d"
  "CMakeFiles/htd_circuit.dir/netlist.cpp.o"
  "CMakeFiles/htd_circuit.dir/netlist.cpp.o.d"
  "CMakeFiles/htd_circuit.dir/spice.cpp.o"
  "CMakeFiles/htd_circuit.dir/spice.cpp.o.d"
  "libhtd_circuit.a"
  "libhtd_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htd_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
