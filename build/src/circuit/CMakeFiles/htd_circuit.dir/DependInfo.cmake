
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/delay.cpp" "src/circuit/CMakeFiles/htd_circuit.dir/delay.cpp.o" "gcc" "src/circuit/CMakeFiles/htd_circuit.dir/delay.cpp.o.d"
  "/root/repo/src/circuit/monitored_paths.cpp" "src/circuit/CMakeFiles/htd_circuit.dir/monitored_paths.cpp.o" "gcc" "src/circuit/CMakeFiles/htd_circuit.dir/monitored_paths.cpp.o.d"
  "/root/repo/src/circuit/mosfet.cpp" "src/circuit/CMakeFiles/htd_circuit.dir/mosfet.cpp.o" "gcc" "src/circuit/CMakeFiles/htd_circuit.dir/mosfet.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/circuit/CMakeFiles/htd_circuit.dir/netlist.cpp.o" "gcc" "src/circuit/CMakeFiles/htd_circuit.dir/netlist.cpp.o.d"
  "/root/repo/src/circuit/spice.cpp" "src/circuit/CMakeFiles/htd_circuit.dir/spice.cpp.o" "gcc" "src/circuit/CMakeFiles/htd_circuit.dir/spice.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/htd_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/process/CMakeFiles/htd_process.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/htd_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
