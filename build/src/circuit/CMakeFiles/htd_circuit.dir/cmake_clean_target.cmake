file(REMOVE_RECURSE
  "libhtd_circuit.a"
)
