# Empty compiler generated dependencies file for htd_circuit.
# This may be replaced when dependencies are built.
