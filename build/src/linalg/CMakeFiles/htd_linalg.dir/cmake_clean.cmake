file(REMOVE_RECURSE
  "CMakeFiles/htd_linalg.dir/decompositions.cpp.o"
  "CMakeFiles/htd_linalg.dir/decompositions.cpp.o.d"
  "CMakeFiles/htd_linalg.dir/matrix.cpp.o"
  "CMakeFiles/htd_linalg.dir/matrix.cpp.o.d"
  "libhtd_linalg.a"
  "libhtd_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htd_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
