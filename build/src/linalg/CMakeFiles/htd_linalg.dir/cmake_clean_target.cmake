file(REMOVE_RECURSE
  "libhtd_linalg.a"
)
