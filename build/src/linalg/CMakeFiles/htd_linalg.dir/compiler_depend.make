# Empty compiler generated dependencies file for htd_linalg.
# This may be replaced when dependencies are built.
