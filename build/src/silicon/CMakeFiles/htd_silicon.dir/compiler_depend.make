# Empty compiler generated dependencies file for htd_silicon.
# This may be replaced when dependencies are built.
