file(REMOVE_RECURSE
  "CMakeFiles/htd_silicon.dir/bench_measure.cpp.o"
  "CMakeFiles/htd_silicon.dir/bench_measure.cpp.o.d"
  "CMakeFiles/htd_silicon.dir/fab.cpp.o"
  "CMakeFiles/htd_silicon.dir/fab.cpp.o.d"
  "CMakeFiles/htd_silicon.dir/platform.cpp.o"
  "CMakeFiles/htd_silicon.dir/platform.cpp.o.d"
  "libhtd_silicon.a"
  "libhtd_silicon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htd_silicon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
