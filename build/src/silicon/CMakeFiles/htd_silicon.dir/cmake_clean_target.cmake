file(REMOVE_RECURSE
  "libhtd_silicon.a"
)
