file(REMOVE_RECURSE
  "CMakeFiles/htd_trojan.dir/attacker.cpp.o"
  "CMakeFiles/htd_trojan.dir/attacker.cpp.o.d"
  "CMakeFiles/htd_trojan.dir/trojan.cpp.o"
  "CMakeFiles/htd_trojan.dir/trojan.cpp.o.d"
  "libhtd_trojan.a"
  "libhtd_trojan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htd_trojan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
