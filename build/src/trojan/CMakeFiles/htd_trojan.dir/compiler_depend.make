# Empty compiler generated dependencies file for htd_trojan.
# This may be replaced when dependencies are built.
