file(REMOVE_RECURSE
  "libhtd_trojan.a"
)
