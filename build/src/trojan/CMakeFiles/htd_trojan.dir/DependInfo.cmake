
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trojan/attacker.cpp" "src/trojan/CMakeFiles/htd_trojan.dir/attacker.cpp.o" "gcc" "src/trojan/CMakeFiles/htd_trojan.dir/attacker.cpp.o.d"
  "/root/repo/src/trojan/trojan.cpp" "src/trojan/CMakeFiles/htd_trojan.dir/trojan.cpp.o" "gcc" "src/trojan/CMakeFiles/htd_trojan.dir/trojan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rng/CMakeFiles/htd_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/htd_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
