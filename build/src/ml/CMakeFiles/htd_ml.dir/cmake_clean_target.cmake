file(REMOVE_RECURSE
  "libhtd_ml.a"
)
