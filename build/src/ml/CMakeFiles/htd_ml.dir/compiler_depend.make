# Empty compiler generated dependencies file for htd_ml.
# This may be replaced when dependencies are built.
