
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/gpr.cpp" "src/ml/CMakeFiles/htd_ml.dir/gpr.cpp.o" "gcc" "src/ml/CMakeFiles/htd_ml.dir/gpr.cpp.o.d"
  "/root/repo/src/ml/kernel_functions.cpp" "src/ml/CMakeFiles/htd_ml.dir/kernel_functions.cpp.o" "gcc" "src/ml/CMakeFiles/htd_ml.dir/kernel_functions.cpp.o.d"
  "/root/repo/src/ml/kmm.cpp" "src/ml/CMakeFiles/htd_ml.dir/kmm.cpp.o" "gcc" "src/ml/CMakeFiles/htd_ml.dir/kmm.cpp.o.d"
  "/root/repo/src/ml/knn_detector.cpp" "src/ml/CMakeFiles/htd_ml.dir/knn_detector.cpp.o" "gcc" "src/ml/CMakeFiles/htd_ml.dir/knn_detector.cpp.o.d"
  "/root/repo/src/ml/mars.cpp" "src/ml/CMakeFiles/htd_ml.dir/mars.cpp.o" "gcc" "src/ml/CMakeFiles/htd_ml.dir/mars.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/htd_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/htd_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/one_class_svm.cpp" "src/ml/CMakeFiles/htd_ml.dir/one_class_svm.cpp.o" "gcc" "src/ml/CMakeFiles/htd_ml.dir/one_class_svm.cpp.o.d"
  "/root/repo/src/ml/pca.cpp" "src/ml/CMakeFiles/htd_ml.dir/pca.cpp.o" "gcc" "src/ml/CMakeFiles/htd_ml.dir/pca.cpp.o.d"
  "/root/repo/src/ml/scaler.cpp" "src/ml/CMakeFiles/htd_ml.dir/scaler.cpp.o" "gcc" "src/ml/CMakeFiles/htd_ml.dir/scaler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/htd_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/htd_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/htd_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
