file(REMOVE_RECURSE
  "CMakeFiles/htd_ml.dir/gpr.cpp.o"
  "CMakeFiles/htd_ml.dir/gpr.cpp.o.d"
  "CMakeFiles/htd_ml.dir/kernel_functions.cpp.o"
  "CMakeFiles/htd_ml.dir/kernel_functions.cpp.o.d"
  "CMakeFiles/htd_ml.dir/kmm.cpp.o"
  "CMakeFiles/htd_ml.dir/kmm.cpp.o.d"
  "CMakeFiles/htd_ml.dir/knn_detector.cpp.o"
  "CMakeFiles/htd_ml.dir/knn_detector.cpp.o.d"
  "CMakeFiles/htd_ml.dir/mars.cpp.o"
  "CMakeFiles/htd_ml.dir/mars.cpp.o.d"
  "CMakeFiles/htd_ml.dir/metrics.cpp.o"
  "CMakeFiles/htd_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/htd_ml.dir/one_class_svm.cpp.o"
  "CMakeFiles/htd_ml.dir/one_class_svm.cpp.o.d"
  "CMakeFiles/htd_ml.dir/pca.cpp.o"
  "CMakeFiles/htd_ml.dir/pca.cpp.o.d"
  "CMakeFiles/htd_ml.dir/scaler.cpp.o"
  "CMakeFiles/htd_ml.dir/scaler.cpp.o.d"
  "libhtd_ml.a"
  "libhtd_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htd_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
