file(REMOVE_RECURSE
  "CMakeFiles/htd_stats.dir/descriptive.cpp.o"
  "CMakeFiles/htd_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/htd_stats.dir/evt.cpp.o"
  "CMakeFiles/htd_stats.dir/evt.cpp.o.d"
  "CMakeFiles/htd_stats.dir/kde.cpp.o"
  "CMakeFiles/htd_stats.dir/kde.cpp.o.d"
  "CMakeFiles/htd_stats.dir/kernels.cpp.o"
  "CMakeFiles/htd_stats.dir/kernels.cpp.o.d"
  "libhtd_stats.a"
  "libhtd_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htd_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
