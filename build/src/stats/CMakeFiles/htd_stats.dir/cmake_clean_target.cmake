file(REMOVE_RECURSE
  "libhtd_stats.a"
)
