# Empty compiler generated dependencies file for htd_stats.
# This may be replaced when dependencies are built.
