
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/htd_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/htd_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/evt.cpp" "src/stats/CMakeFiles/htd_stats.dir/evt.cpp.o" "gcc" "src/stats/CMakeFiles/htd_stats.dir/evt.cpp.o.d"
  "/root/repo/src/stats/kde.cpp" "src/stats/CMakeFiles/htd_stats.dir/kde.cpp.o" "gcc" "src/stats/CMakeFiles/htd_stats.dir/kde.cpp.o.d"
  "/root/repo/src/stats/kernels.cpp" "src/stats/CMakeFiles/htd_stats.dir/kernels.cpp.o" "gcc" "src/stats/CMakeFiles/htd_stats.dir/kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/htd_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/htd_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
