file(REMOVE_RECURSE
  "CMakeFiles/htd_process.dir/process_point.cpp.o"
  "CMakeFiles/htd_process.dir/process_point.cpp.o.d"
  "CMakeFiles/htd_process.dir/variation_model.cpp.o"
  "CMakeFiles/htd_process.dir/variation_model.cpp.o.d"
  "libhtd_process.a"
  "libhtd_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htd_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
