file(REMOVE_RECURSE
  "libhtd_process.a"
)
