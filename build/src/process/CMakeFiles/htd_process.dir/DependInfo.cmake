
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/process/process_point.cpp" "src/process/CMakeFiles/htd_process.dir/process_point.cpp.o" "gcc" "src/process/CMakeFiles/htd_process.dir/process_point.cpp.o.d"
  "/root/repo/src/process/variation_model.cpp" "src/process/CMakeFiles/htd_process.dir/variation_model.cpp.o" "gcc" "src/process/CMakeFiles/htd_process.dir/variation_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/htd_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/htd_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
