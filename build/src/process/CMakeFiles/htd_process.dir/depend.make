# Empty dependencies file for htd_process.
# This may be replaced when dependencies are built.
