# Empty compiler generated dependencies file for htd_rf.
# This may be replaced when dependencies are built.
