file(REMOVE_RECURSE
  "CMakeFiles/htd_rf.dir/uwb.cpp.o"
  "CMakeFiles/htd_rf.dir/uwb.cpp.o.d"
  "CMakeFiles/htd_rf.dir/waveform.cpp.o"
  "CMakeFiles/htd_rf.dir/waveform.cpp.o.d"
  "libhtd_rf.a"
  "libhtd_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htd_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
