file(REMOVE_RECURSE
  "libhtd_rf.a"
)
