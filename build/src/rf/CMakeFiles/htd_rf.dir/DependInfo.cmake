
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rf/uwb.cpp" "src/rf/CMakeFiles/htd_rf.dir/uwb.cpp.o" "gcc" "src/rf/CMakeFiles/htd_rf.dir/uwb.cpp.o.d"
  "/root/repo/src/rf/waveform.cpp" "src/rf/CMakeFiles/htd_rf.dir/waveform.cpp.o" "gcc" "src/rf/CMakeFiles/htd_rf.dir/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/htd_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/process/CMakeFiles/htd_process.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/htd_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/trojan/CMakeFiles/htd_trojan.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/htd_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
