file(REMOVE_RECURSE
  "libhtd_crypto.a"
)
