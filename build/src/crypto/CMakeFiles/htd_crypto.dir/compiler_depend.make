# Empty compiler generated dependencies file for htd_crypto.
# This may be replaced when dependencies are built.
