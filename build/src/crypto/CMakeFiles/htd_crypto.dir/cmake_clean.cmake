file(REMOVE_RECURSE
  "CMakeFiles/htd_crypto.dir/aes.cpp.o"
  "CMakeFiles/htd_crypto.dir/aes.cpp.o.d"
  "libhtd_crypto.a"
  "libhtd_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htd_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
