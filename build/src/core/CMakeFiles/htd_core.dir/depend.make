# Empty dependencies file for htd_core.
# This may be replaced when dependencies are built.
