file(REMOVE_RECURSE
  "CMakeFiles/htd_core.dir/experiment.cpp.o"
  "CMakeFiles/htd_core.dir/experiment.cpp.o.d"
  "CMakeFiles/htd_core.dir/pipeline.cpp.o"
  "CMakeFiles/htd_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/htd_core.dir/report.cpp.o"
  "CMakeFiles/htd_core.dir/report.cpp.o.d"
  "libhtd_core.a"
  "libhtd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
