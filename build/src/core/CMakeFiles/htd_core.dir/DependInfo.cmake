
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/htd_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/htd_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/htd_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/htd_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/htd_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/htd_core.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/htd_io.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/htd_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/htd_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/process/CMakeFiles/htd_process.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/htd_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/silicon/CMakeFiles/htd_silicon.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/htd_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/htd_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/htd_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/htd_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/trojan/CMakeFiles/htd_trojan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
