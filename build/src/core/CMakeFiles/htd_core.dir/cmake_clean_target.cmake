file(REMOVE_RECURSE
  "libhtd_core.a"
)
