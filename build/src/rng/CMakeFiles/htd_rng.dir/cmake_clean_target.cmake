file(REMOVE_RECURSE
  "libhtd_rng.a"
)
