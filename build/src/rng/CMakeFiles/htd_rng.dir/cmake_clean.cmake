file(REMOVE_RECURSE
  "CMakeFiles/htd_rng.dir/rng.cpp.o"
  "CMakeFiles/htd_rng.dir/rng.cpp.o.d"
  "libhtd_rng.a"
  "libhtd_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htd_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
