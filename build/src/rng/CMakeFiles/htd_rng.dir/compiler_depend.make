# Empty compiler generated dependencies file for htd_rng.
# This may be replaced when dependencies are built.
