file(REMOVE_RECURSE
  "CMakeFiles/htd_io.dir/csv.cpp.o"
  "CMakeFiles/htd_io.dir/csv.cpp.o.d"
  "CMakeFiles/htd_io.dir/json.cpp.o"
  "CMakeFiles/htd_io.dir/json.cpp.o.d"
  "CMakeFiles/htd_io.dir/table.cpp.o"
  "CMakeFiles/htd_io.dir/table.cpp.o.d"
  "libhtd_io.a"
  "libhtd_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htd_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
