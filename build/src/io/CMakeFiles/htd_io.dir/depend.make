# Empty dependencies file for htd_io.
# This may be replaced when dependencies are built.
