file(REMOVE_RECURSE
  "libhtd_io.a"
)
