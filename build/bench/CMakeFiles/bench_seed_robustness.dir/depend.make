# Empty dependencies file for bench_seed_robustness.
# This may be replaced when dependencies are built.
