file(REMOVE_RECURSE
  "CMakeFiles/bench_seed_robustness.dir/bench_seed_robustness.cpp.o"
  "CMakeFiles/bench_seed_robustness.dir/bench_seed_robustness.cpp.o.d"
  "bench_seed_robustness"
  "bench_seed_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seed_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
