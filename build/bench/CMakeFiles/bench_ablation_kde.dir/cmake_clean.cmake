file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_kde.dir/bench_ablation_kde.cpp.o"
  "CMakeFiles/bench_ablation_kde.dir/bench_ablation_kde.cpp.o.d"
  "bench_ablation_kde"
  "bench_ablation_kde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_kde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
