# Empty compiler generated dependencies file for bench_ablation_kde.
# This may be replaced when dependencies are built.
