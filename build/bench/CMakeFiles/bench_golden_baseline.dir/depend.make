# Empty dependencies file for bench_golden_baseline.
# This may be replaced when dependencies are built.
