file(REMOVE_RECURSE
  "CMakeFiles/bench_golden_baseline.dir/bench_golden_baseline.cpp.o"
  "CMakeFiles/bench_golden_baseline.dir/bench_golden_baseline.cpp.o.d"
  "bench_golden_baseline"
  "bench_golden_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_golden_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
