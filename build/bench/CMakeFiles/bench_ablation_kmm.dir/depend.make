# Empty dependencies file for bench_ablation_kmm.
# This may be replaced when dependencies are built.
