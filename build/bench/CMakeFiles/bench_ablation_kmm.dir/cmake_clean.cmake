file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_kmm.dir/bench_ablation_kmm.cpp.o"
  "CMakeFiles/bench_ablation_kmm.dir/bench_ablation_kmm.cpp.o.d"
  "bench_ablation_kmm"
  "bench_ablation_kmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_kmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
