file(REMOVE_RECURSE
  "CMakeFiles/bench_delay_modality.dir/bench_delay_modality.cpp.o"
  "CMakeFiles/bench_delay_modality.dir/bench_delay_modality.cpp.o.d"
  "bench_delay_modality"
  "bench_delay_modality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delay_modality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
