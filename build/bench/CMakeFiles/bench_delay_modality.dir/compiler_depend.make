# Empty compiler generated dependencies file for bench_delay_modality.
# This may be replaced when dependencies are built.
