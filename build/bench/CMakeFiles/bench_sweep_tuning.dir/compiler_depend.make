# Empty compiler generated dependencies file for bench_sweep_tuning.
# This may be replaced when dependencies are built.
