file(REMOVE_RECURSE
  "CMakeFiles/bench_sweep_tuning.dir/bench_sweep_tuning.cpp.o"
  "CMakeFiles/bench_sweep_tuning.dir/bench_sweep_tuning.cpp.o.d"
  "bench_sweep_tuning"
  "bench_sweep_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
