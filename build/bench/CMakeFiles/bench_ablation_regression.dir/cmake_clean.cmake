file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_regression.dir/bench_ablation_regression.cpp.o"
  "CMakeFiles/bench_ablation_regression.dir/bench_ablation_regression.cpp.o.d"
  "bench_ablation_regression"
  "bench_ablation_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
