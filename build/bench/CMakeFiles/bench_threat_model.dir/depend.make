# Empty dependencies file for bench_threat_model.
# This may be replaced when dependencies are built.
