file(REMOVE_RECURSE
  "CMakeFiles/bench_threat_model.dir/bench_threat_model.cpp.o"
  "CMakeFiles/bench_threat_model.dir/bench_threat_model.cpp.o.d"
  "bench_threat_model"
  "bench_threat_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_threat_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
