file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_svm.dir/bench_ablation_svm.cpp.o"
  "CMakeFiles/bench_ablation_svm.dir/bench_ablation_svm.cpp.o.d"
  "bench_ablation_svm"
  "bench_ablation_svm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_svm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
