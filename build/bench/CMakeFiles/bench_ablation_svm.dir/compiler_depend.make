# Empty compiler generated dependencies file for bench_ablation_svm.
# This may be replaced when dependencies are built.
