file(REMOVE_RECURSE
  "CMakeFiles/bench_roc.dir/bench_roc.cpp.o"
  "CMakeFiles/bench_roc.dir/bench_roc.cpp.o.d"
  "bench_roc"
  "bench_roc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_roc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
