# Empty compiler generated dependencies file for bench_roc.
# This may be replaced when dependencies are built.
