file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mc.dir/bench_ablation_mc.cpp.o"
  "CMakeFiles/bench_ablation_mc.dir/bench_ablation_mc.cpp.o.d"
  "bench_ablation_mc"
  "bench_ablation_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
