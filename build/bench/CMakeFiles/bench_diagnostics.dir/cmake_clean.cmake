file(REMOVE_RECURSE
  "CMakeFiles/bench_diagnostics.dir/bench_diagnostics.cpp.o"
  "CMakeFiles/bench_diagnostics.dir/bench_diagnostics.cpp.o.d"
  "bench_diagnostics"
  "bench_diagnostics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diagnostics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
