# Empty compiler generated dependencies file for bench_diagnostics.
# This may be replaced when dependencies are built.
