file(REMOVE_RECURSE
  "CMakeFiles/custom_pcm_study.dir/custom_pcm_study.cpp.o"
  "CMakeFiles/custom_pcm_study.dir/custom_pcm_study.cpp.o.d"
  "custom_pcm_study"
  "custom_pcm_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_pcm_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
