# Empty compiler generated dependencies file for custom_pcm_study.
# This may be replaced when dependencies are built.
