# Empty dependencies file for spice_pcm_demo.
# This may be replaced when dependencies are built.
