file(REMOVE_RECURSE
  "CMakeFiles/spice_pcm_demo.dir/spice_pcm_demo.cpp.o"
  "CMakeFiles/spice_pcm_demo.dir/spice_pcm_demo.cpp.o.d"
  "spice_pcm_demo"
  "spice_pcm_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_pcm_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
