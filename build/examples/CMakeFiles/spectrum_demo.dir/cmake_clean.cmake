file(REMOVE_RECURSE
  "CMakeFiles/spectrum_demo.dir/spectrum_demo.cpp.o"
  "CMakeFiles/spectrum_demo.dir/spectrum_demo.cpp.o.d"
  "spectrum_demo"
  "spectrum_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectrum_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
