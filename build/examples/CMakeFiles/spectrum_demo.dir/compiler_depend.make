# Empty compiler generated dependencies file for spectrum_demo.
# This may be replaced when dependencies are built.
