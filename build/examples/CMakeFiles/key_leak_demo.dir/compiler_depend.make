# Empty compiler generated dependencies file for key_leak_demo.
# This may be replaced when dependencies are built.
