file(REMOVE_RECURSE
  "CMakeFiles/key_leak_demo.dir/key_leak_demo.cpp.o"
  "CMakeFiles/key_leak_demo.dir/key_leak_demo.cpp.o.d"
  "key_leak_demo"
  "key_leak_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_leak_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
