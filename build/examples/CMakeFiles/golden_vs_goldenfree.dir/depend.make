# Empty dependencies file for golden_vs_goldenfree.
# This may be replaced when dependencies are built.
