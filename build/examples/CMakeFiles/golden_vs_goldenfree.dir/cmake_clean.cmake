file(REMOVE_RECURSE
  "CMakeFiles/golden_vs_goldenfree.dir/golden_vs_goldenfree.cpp.o"
  "CMakeFiles/golden_vs_goldenfree.dir/golden_vs_goldenfree.cpp.o.d"
  "golden_vs_goldenfree"
  "golden_vs_goldenfree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golden_vs_goldenfree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
