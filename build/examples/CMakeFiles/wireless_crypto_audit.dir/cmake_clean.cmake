file(REMOVE_RECURSE
  "CMakeFiles/wireless_crypto_audit.dir/wireless_crypto_audit.cpp.o"
  "CMakeFiles/wireless_crypto_audit.dir/wireless_crypto_audit.cpp.o.d"
  "wireless_crypto_audit"
  "wireless_crypto_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wireless_crypto_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
