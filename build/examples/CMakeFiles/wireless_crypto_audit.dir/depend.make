# Empty dependencies file for wireless_crypto_audit.
# This may be replaced when dependencies are built.
