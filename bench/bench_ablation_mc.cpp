/// \file bench_ablation_mc.cpp
/// Ablation E6: data budget. Sweeps the Monte Carlo golden-device count n
/// (the paper uses 100) and the synthetic population size M' (the paper
/// uses 1e5), reporting the full Table-1 row set.

#include <cstdio>

#include "pipeline/experiment.hpp"
#include "io/table.hpp"

namespace {

void add_rows(htd::io::Table& table, const std::string& label,
              const htd::core::ExperimentResult& r) {
    std::string row = label;
    std::vector<std::string> cells{label};
    for (const auto& m : r.table1) {
        cells.push_back(htd::io::fmt_ratio(m.false_positives, 80) + " " +
                        htd::io::fmt_ratio(m.false_negatives, 40));
    }
    table.add_row(cells);
}

}  // namespace

int main() {
    using namespace htd;

    std::printf("Ablation: Monte Carlo sample count n and synthetic volume M'\n");
    std::printf("(cells are 'FP/80 FN/40')\n\n");

    io::Table table({"config", "S1", "S2", "S3", "S4", "S5"});
    for (const std::size_t n : {25u, 50u, 100u, 200u, 400u}) {
        core::ExperimentConfig cfg;
        cfg.pipeline.monte_carlo_samples = n;
        cfg.pipeline.synthetic_samples = 20000;
        add_rows(table, "n=" + std::to_string(n), core::run_experiment(cfg));
    }
    for (const std::size_t mprime : {1000u, 10000u, 100000u}) {
        core::ExperimentConfig cfg;
        cfg.pipeline.synthetic_samples = mprime;
        add_rows(table, "M'=" + std::to_string(mprime), core::run_experiment(cfg));
    }
    std::printf("%s", table.str().c_str());
    return 0;
}
