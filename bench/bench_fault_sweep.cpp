/// \file bench_fault_sweep.cpp
/// E14: detection under injected measurement faults. Sweeps the fault rate
/// of a FaultyBench-decorated tester (NaN/Inf dropouts plus proportional
/// spike and stuck-channel rates), pushes every lot through the hardened
/// ingestion layer and a fresh pipeline, and reports the per-boundary
/// detection metrics next to the quarantine bookkeeping — i.e. how much
/// Table 1 degrades as the tester gets worse. A final entry forces a KMM
/// collapse (effective-sample-size floor far above any real value) at the
/// 5% fault rate to demonstrate the recorded B4->B3 fallback. Writes
/// BENCH_fault_sweep.json.

#include <cstdio>

#include "pipeline/experiment.hpp"
#include "pipeline/ingest.hpp"
#include "io/table.hpp"
#include "obs/run_report.hpp"
#include "silicon/fault_injector.hpp"

namespace {

struct SweepPoint {
    double rate = 0.0;
    bool force_kmm_collapse = false;
};

}  // namespace

int main() {
    using namespace htd;

    core::ExperimentConfig config;
    // Reduced budget: five full pipeline runs in one binary.
    config.pipeline.monte_carlo_samples = 80;
    config.pipeline.synthetic_samples = 20000;

    const SweepPoint points[] = {
        {0.0, false}, {0.01, false}, {0.05, false}, {0.10, false}, {0.05, true},
    };

    std::printf("Fault-injection sweep: %zu chips, dropout/spike/stuck faults\n\n",
                config.n_chips);
    io::Table table({"dropout", "kept", "retries", "faults", "B3 FP", "B3 FN",
                     "B4 FP", "B4 FN", "B4 health", "B5 FP", "B5 FN"});
    io::Json sweep = io::Json::array();

    for (const SweepPoint& point : points) {
        // Identical streams per point: the sweep perturbs the same lot and
        // the same pipeline randomness, only the fault model changes.
        rng::Rng master(config.seed);
        rng::Rng fab_rng = master.split();
        rng::Rng sim_rng = master.split();
        rng::Rng pipe_rng = master.split();
        rng::Rng measure_rng = master.split();

        const core::ProcessPair processes =
            core::make_process_pair(config.process_shift_sigma);
        silicon::Fab::Options fab_opts = config.fab;
        fab_opts.within_die_fraction = config.platform.within_die_fraction;
        const silicon::Fab fab(processes.silicon, fab_opts);
        const silicon::FabricatedLot lot = fab.fabricate_lot(fab_rng, config.n_chips);

        const silicon::MeasurementBench bench(config.platform);
        silicon::FaultModel faults;
        faults.nan_dropout_rate = point.rate;
        faults.spike_rate = point.rate * 0.5;
        faults.stuck_rate = point.rate * 0.25;
        const silicon::FaultyBench faulty(bench, faults);

        const core::MeasurementValidator validator;
        const core::IngestResult ingested =
            validator.ingest(lot, faulty, measure_rng);
        const silicon::DuttDataset& measured = ingested.dataset;

        core::PipelineConfig pipe_config = config.pipeline;
        if (point.force_kmm_collapse) {
            pipe_config.kmm_min_effective_sample_size = 1e9;
        }
        core::GoldenFreePipeline pipeline(
            pipe_config, silicon::SpiceSimulator(config.platform, processes.spice));
        pipeline.run_premanufacturing(sim_rng);
        pipeline.run_silicon_stage(measured.pcms, pipe_rng);

        io::Json entry = io::Json::object();
        entry.set("nan_dropout_rate", point.rate);
        entry.set("spike_rate", faults.spike_rate);
        entry.set("stuck_rate", faults.stuck_rate);
        entry.set("forced_kmm_collapse", point.force_kmm_collapse);
        entry.set("kmm_fallback_applied", pipeline.kmm_fallback_applied());
        entry.set("kmm_effective_sample_size", pipeline.kmm_effective_sample_size());
        entry.set("quarantine", ingested.summary.to_json());
        io::Json fault_stats = io::Json::object();
        fault_stats.set("nan_injected", faulty.stats().nan_injected);
        fault_stats.set("inf_injected", faulty.stats().inf_injected);
        fault_stats.set("spikes_injected", faulty.stats().spikes_injected);
        fault_stats.set("stuck_injected", faulty.stats().stuck_injected);
        fault_stats.set("remeasures", faulty.stats().remeasures);
        entry.set("fault_stats", std::move(fault_stats));
        entry.set("degradation", pipeline.degradation_report());

        io::Json boundaries = io::Json::object();
        std::vector<std::string> row{
            io::fmt(point.rate, 2) + (point.force_kmm_collapse ? "*" : ""),
            io::fmt_ratio(ingested.summary.devices_kept,
                          ingested.summary.devices_total),
            std::to_string(ingested.summary.retries_used),
            std::to_string(faulty.stats().total_faults())};
        for (const core::Boundary b :
             {core::Boundary::kB3, core::Boundary::kB4, core::Boundary::kB5}) {
            io::Json bj = io::Json::object();
            bj.set("health", core::boundary_health_name(
                                 pipeline.boundary_status(b).health));
            if (pipeline.boundary_ready(b)) {
                const ml::DetectionMetrics m = pipeline.evaluate(b, measured);
                bj.set("fp_rate", m.false_positive_rate());
                bj.set("fn_rate", m.false_negative_rate());
                bj.set("accuracy", m.accuracy());
                row.push_back(io::fmt(m.false_positive_rate(), 2));
                row.push_back(io::fmt(m.false_negative_rate(), 2));
            } else {
                row.push_back("-");
                row.push_back("-");
            }
            if (b == core::Boundary::kB4) {
                row.push_back(core::boundary_health_name(
                    pipeline.boundary_status(b).health));
            }
            boundaries.set(core::boundary_name(b), std::move(bj));
        }
        entry.set("boundaries", std::move(boundaries));
        sweep.push_back(std::move(entry));
        table.add_row(std::move(row));
    }

    std::printf("%s\n", table.str().c_str());
    std::printf("(* = KMM collapse forced; B4/B5 train on S3 and report degraded)\n");

    io::Json payload = io::Json::object();
    payload.set("n_chips", config.n_chips);
    payload.set("monte_carlo_samples", config.pipeline.monte_carlo_samples);
    payload.set("sweep", std::move(sweep));
    const std::string path = obs::write_bench_report("fault_sweep", std::move(payload));
    std::printf("wrote %s\n", path.c_str());
    return 0;
}
