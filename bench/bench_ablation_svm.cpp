/// \file bench_ablation_svm.cpp
/// Ablation E7: sensitivity of the trusted-region learner. Sweeps the
/// 1-class SVM's nu (allowed outlier fraction) and gamma scale (boundary
/// tightness), reporting the Table-1 row set for each setting.

#include <cstdio>

#include "pipeline/experiment.hpp"
#include "io/table.hpp"

int main() {
    using namespace htd;

    std::printf("Ablation: 1-class SVM hyperparameters (cells are 'FP/80 FN/40')\n\n");

    io::Table table({"nu", "gamma scale", "S1", "S2", "S3", "S4", "S5"});
    for (const double nu : {0.02, 0.05, 0.08, 0.15, 0.30}) {
        for (const double gs : {0.5, 1.0, 2.0}) {
            core::ExperimentConfig cfg;
            cfg.pipeline.synthetic_samples = 20000;
            cfg.pipeline.svm.nu = nu;
            cfg.pipeline.svm.gamma_scale = gs;
            const core::ExperimentResult r = core::run_experiment(cfg);
            std::vector<std::string> cells{io::fmt(nu, 2), io::fmt(gs, 1)};
            for (const auto& m : r.table1) {
                cells.push_back(io::fmt_ratio(m.false_positives, 80) + " " +
                                io::fmt_ratio(m.false_negatives, 40));
            }
            table.add_row(cells);
        }
    }
    std::printf("%s", table.str().c_str());
    return 0;
}
