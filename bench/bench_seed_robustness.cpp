/// \file bench_seed_robustness.cpp
/// Reruns the Table-1 experiment over several fabrication/measurement seeds
/// to expose the run-to-run variability of the reproduction (the paper
/// reports a single fabricated lot; our virtual fab can report the spread).

#include <cstdio>

#include "pipeline/experiment.hpp"
#include "io/table.hpp"

int main() {
    using namespace htd;

    std::printf("Table-1 metrics across fabrication seeds (cells are 'FP/80 FN/40')\n\n");
    io::Table table({"seed", "S1", "S2", "S3", "S4", "S5", "golden baseline"});

    const std::uint64_t seeds[] = {0xda145eedULL, 1, 2, 42, 99, 1234};
    std::array<std::size_t, 5> fn_sum{};
    std::array<std::size_t, 5> fp_sum{};
    for (const std::uint64_t seed : seeds) {
        core::ExperimentConfig cfg;
        cfg.seed = seed;
        cfg.pipeline.synthetic_samples = 20000;
        const core::ExperimentResult r = core::run_experiment(cfg);
        std::vector<std::string> cells{std::to_string(seed)};
        for (std::size_t i = 0; i < 5; ++i) {
            const auto& m = r.table1[i];
            fp_sum[i] += m.false_positives;
            fn_sum[i] += m.false_negatives;
            cells.push_back(io::fmt_ratio(m.false_positives, 80) + " " +
                            io::fmt_ratio(m.false_negatives, 40));
        }
        cells.push_back(r.golden_baseline.str());
        table.add_row(cells);
    }
    const double n = static_cast<double>(std::size(seeds));
    std::vector<std::string> avg{"mean"};
    for (std::size_t i = 0; i < 5; ++i) {
        avg.push_back(io::fmt(static_cast<double>(fp_sum[i]) / n, 1) + " " +
                      io::fmt(static_cast<double>(fn_sum[i]) / n, 1));
    }
    avg.push_back("-");
    table.add_row(avg);
    std::printf("%s\n", table.str().c_str());
    std::printf("paper reference: S1 0/80 40/40, S2 0/80 40/40, S3 0/80 24/40,\n");
    std::printf("                 S4 0/80 18/40, S5 0/80 3/40\n");
    return 0;
}
