/// \file bench_sweep_tuning.cpp
/// Hyperparameter sweep used to place the pipeline at the paper's operating
/// point: varies SVM (nu, gamma_scale), KDE bandwidth and the amplitude-
/// Trojan strength, and prints the Table-1 row set for each combination.
/// Kept in the harness as a reproducibility aid for the calibration choice
/// documented in EXPERIMENTS.md.

#include <cstdio>

#include "pipeline/experiment.hpp"

int main() {
    using namespace htd;

    const double nus[] = {0.08};
    const double gscales[] = {1.0};
    const std::size_t terms[] = {7};
    const double kde_h[] = {0.15, 0.2, 0.3};
    const double lambdas[] = {1.2, 1.5, 2.0};
    const double shifts[] = {4.5};

    std::printf(
        "nu    gsc  terms  kde_h  shift  | S1 FP/FN  S2 FP/FN  S3 FP/FN  S4 FP/FN  S5 FP/FN\n");
    for (const double nu : nus) {
        for (const double gs : gscales) {
            for (const double h : kde_h) {
                for (const double e : shifts) {
                  for (const std::size_t mt : terms) {
                   for (const double lam : lambdas) {
                    core::ExperimentConfig cfg;
                    cfg.pipeline.kde_max_lambda = lam;
                    cfg.pipeline.svm.nu = nu;
                    cfg.pipeline.svm.gamma_scale = gs;
                    cfg.pipeline.kde_bandwidth = h;
                    cfg.pipeline.mars.max_terms = mt;
                    cfg.process_shift_sigma = e;
                    const core::ExperimentResult r = core::run_experiment(cfg);
                    std::printf("%.2f  %.1f  %2zu  %.1f  %.1f  %.2f   |", nu, gs, mt, lam, h, e);
                    for (const auto& m : r.table1) {
                        std::printf("  %2zu/%-2zu   ", m.false_positives,
                                    m.false_negatives);
                    }
                    std::printf("\n");
                    std::fflush(stdout);
                   }
                  }
                }
            }
        }
    }
    return 0;
}
