/// \file bench_score_throughput.cpp
/// E16: artifact-based batch scoring throughput. Calibrates a reduced-budget
/// pipeline once, persists it as an htd.boundary.v1 artifact (timing the
/// atomic save and the validating load), then drives a tiled fingerprint
/// batch through `BoundaryScorer::classify` per usable boundary and reports
/// chips/sec — the "train once, score millions" number the calibrate/score
/// split exists for (DESIGN.md §14). Writes BENCH_score.json.

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "io/table.hpp"
#include "obs/run_report.hpp"
#include "pipeline/artifact.hpp"
#include "pipeline/experiment.hpp"
#include "pipeline/scorer.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

}  // namespace

int main() {
    using namespace htd;

    core::ExperimentConfig config;
    // Reduced calibration budget: the subject under test is the scorer, not
    // the trainer, so the pipeline only has to produce five healthy models.
    config.n_chips = 16;
    config.pipeline.monte_carlo_samples = 60;
    config.pipeline.synthetic_samples = 4000;

    // Same stream discipline as examples/quickstart.cpp and htd_score
    // calibrate: one master seed, one split per stochastic stage.
    rng::Rng rng(config.seed);
    rng::Rng fab_rng = rng.split();
    const silicon::DuttDataset devices =
        core::fabricate_and_measure(config, fab_rng);

    const core::ProcessPair processes =
        core::make_process_pair(config.process_shift_sigma);
    core::GoldenFreePipeline pipeline(
        config.pipeline,
        silicon::SpiceSimulator(config.platform, processes.spice));
    rng::Rng sim_rng = rng.split();
    rng::Rng pipe_rng = rng.split();
    pipeline.run_premanufacturing(sim_rng);
    pipeline.run_silicon_stage(devices.pcms, pipe_rng);

    const std::string artifact_path = "bench_score_artifact.json";
    const core::BoundaryArtifact trained =
        core::BoundaryArtifact::from_pipeline(pipeline, config.seed,
                                              "bench_score_throughput");
    const Clock::time_point save_start = Clock::now();
    trained.save(artifact_path);
    const double save_ms = ms_since(save_start);
    const std::uintmax_t artifact_bytes =
        std::filesystem::file_size(artifact_path);

    const Clock::time_point load_start = Clock::now();
    const core::BoundaryScorer scorer(core::BoundaryArtifact::load(artifact_path));
    const double load_ms = ms_since(load_start);

    // Tile the measured lot into a production-sized batch: scoring cost is
    // per-row, so replicated rows measure the same kernel as distinct chips.
    constexpr std::size_t kBatchRows = 4096;
    linalg::Matrix batch(kBatchRows, devices.fingerprints.cols());
    for (std::size_t r = 0; r < kBatchRows; ++r) {
        for (std::size_t c = 0; c < batch.cols(); ++c) {
            batch(r, c) = devices.fingerprints(r % devices.fingerprints.rows(), c);
        }
    }

    std::printf("Artifact scoring throughput: %zu-row batches, artifact %ju B "
                "(save %.1f ms, load+validate %.1f ms)\n\n",
                kBatchRows, artifact_bytes, load_ms, save_ms);
    io::Table table({"boundary", "health", "reps", "chips/sec"});
    io::Json boundaries = io::Json::array();

    constexpr double kMinSecondsPerBoundary = 0.2;
    for (const core::Boundary b : core::kAllBoundaries) {
        const core::BoundaryStatus& st = scorer.boundary_status(b);
        io::Json entry = io::Json::object();
        entry.set("boundary", core::boundary_name(b));
        entry.set("health", core::boundary_health_name(st.health));
        if (!scorer.boundary_ready(b)) {
            entry.set("chips_per_sec", io::Json());
            table.add_row({core::boundary_name(b),
                           core::boundary_health_name(st.health), "-", "-"});
            boundaries.push_back(std::move(entry));
            continue;
        }
        std::size_t reps = 0;
        std::size_t scored = 0;
        const Clock::time_point start = Clock::now();
        double elapsed_s = 0.0;
        do {
            const std::vector<bool> inside = scorer.classify(b, batch);
            scored += inside.size();
            ++reps;
            elapsed_s = ms_since(start) / 1000.0;
        } while (elapsed_s < kMinSecondsPerBoundary);
        const double chips_per_sec = static_cast<double>(scored) / elapsed_s;
        entry.set("reps", reps);
        entry.set("chips_per_sec", chips_per_sec);
        table.add_row({core::boundary_name(b),
                       core::boundary_health_name(st.health),
                       std::to_string(reps), io::fmt(chips_per_sec, 0)});
        boundaries.push_back(std::move(entry));
    }

    std::printf("%s\n", table.str().c_str());

    io::Json payload = io::Json::object();
    payload.set("n_chips", config.n_chips);
    payload.set("batch_rows", kBatchRows);
    payload.set("artifact_bytes", static_cast<double>(artifact_bytes));
    payload.set("save_ms", save_ms);
    payload.set("load_ms", load_ms);
    payload.set("boundaries", std::move(boundaries));
    const std::string path = obs::write_bench_report("score", std::move(payload));
    std::printf("wrote %s\n", path.c_str());
    return 0;
}
