/// \file bench_micro.cpp
/// Experiment E9: google-benchmark microbenchmarks of the statistical
/// kernels the pipeline spends its time in — KDE construction and sampling,
/// one-class SVM training, MARS fitting, KMM solving, AES encryption and
/// the analytic circuit models — plus the htd::obs instrumentation overhead
/// (disabled vs enabled). Results are written to BENCH_micro.json through
/// the obs JSON sink for the perf trajectory.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "crypto/aes.hpp"
#include "circuit/delay.hpp"
#include "circuit/spice.hpp"
#include "ml/gpr.hpp"
#include "obs/run_report.hpp"
#include "obs/span.hpp"
#include "stats/evt.hpp"
#include "ml/kmm.hpp"
#include "ml/mars.hpp"
#include "ml/one_class_svm.hpp"
#include "process/variation_model.hpp"
#include "rng/rng.hpp"
#include "stats/kde.hpp"

namespace {

using htd::linalg::Matrix;
using htd::linalg::Vector;

Matrix gaussian_cloud(std::size_t n, std::size_t d, std::uint64_t seed) {
    htd::rng::Rng rng(seed);
    Matrix data(n, d);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < d; ++c) data(r, c) = rng.normal();
    return data;
}

void BM_AdaptiveKdeBuild(benchmark::State& state) {
    const Matrix data = gaussian_cloud(static_cast<std::size_t>(state.range(0)), 6, 1);
    for (auto _ : state) {
        htd::stats::AdaptiveKde kde(data, 0.5);
        benchmark::DoNotOptimize(kde.pilot_geometric_mean());
    }
}
BENCHMARK(BM_AdaptiveKdeBuild)->Arg(50)->Arg(100)->Arg(200);

void BM_AdaptiveKdeSample(benchmark::State& state) {
    const Matrix data = gaussian_cloud(100, 6, 2);
    const htd::stats::AdaptiveKde kde(data, 0.5);
    htd::rng::Rng rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(kde.sample(rng));
    }
}
BENCHMARK(BM_AdaptiveKdeSample);

void BM_OneClassSvmFit(benchmark::State& state) {
    const Matrix data = gaussian_cloud(static_cast<std::size_t>(state.range(0)), 6, 4);
    for (auto _ : state) {
        htd::ml::OneClassSvm svm;
        svm.fit(data);
        benchmark::DoNotOptimize(svm.rho());
    }
}
BENCHMARK(BM_OneClassSvmFit)->Arg(100)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_OneClassSvmDecision(benchmark::State& state) {
    const Matrix data = gaussian_cloud(1000, 6, 5);
    htd::ml::OneClassSvm svm;
    svm.fit(data);
    const Vector probe(6, 0.5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(svm.decision_value(probe));
    }
}
BENCHMARK(BM_OneClassSvmDecision);

void BM_MarsFit(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    htd::rng::Rng rng(6);
    Matrix x(n, 1);
    Vector y(n);
    for (std::size_t i = 0; i < n; ++i) {
        x(i, 0) = rng.uniform(-2.0, 2.0);
        y[i] = std::max(0.0, x(i, 0)) + 0.1 * rng.normal();
    }
    for (auto _ : state) {
        htd::ml::Mars mars({.max_terms = 7, .max_knots_per_variable = 7});
        mars.fit(x, y);
        benchmark::DoNotOptimize(mars.gcv());
    }
}
BENCHMARK(BM_MarsFit)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_KmmSolve(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const Matrix train = gaussian_cloud(n, 1, 7);
    Matrix test = gaussian_cloud(n, 1, 8);
    for (std::size_t r = 0; r < test.rows(); ++r) test(r, 0) += 1.0;
    const htd::ml::KernelMeanMatching kmm;
    for (auto _ : state) {
        benchmark::DoNotOptimize(kmm.solve(train, test));
    }
}
BENCHMARK(BM_KmmSolve)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_AesEncrypt(benchmark::State& state) {
    htd::crypto::Block key{};
    for (std::size_t i = 0; i < 16; ++i) key[i] = static_cast<std::uint8_t>(i);
    const htd::crypto::Aes aes(key);
    htd::crypto::Block block{};
    for (auto _ : state) {
        block = aes.encrypt(block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_AesEncrypt);

void BM_PcmPathDelay(benchmark::State& state) {
    const htd::circuit::PcmPath path;
    const auto pp = htd::process::nominal_350nm();
    for (auto _ : state) {
        benchmark::DoNotOptimize(path.delay_ns(pp));
    }
}
BENCHMARK(BM_PcmPathDelay);

void BM_ProcessSample(benchmark::State& state) {
    const auto model = htd::process::ProcessVariationModel::default_350nm();
    htd::rng::Rng rng(9);
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.sample_monte_carlo(rng));
    }
}
BENCHMARK(BM_ProcessSample);

void BM_SpiceDcInverter(benchmark::State& state) {
    htd::circuit::Netlist net;
    net.add_vsource("vdd", "vdd", "0", htd::circuit::Pwl(3.3));
    net.add_vsource("vin", "in", "0", htd::circuit::Pwl(1.65));
    net.add_inverter("x1", "in", "out", "vdd", 4.0);
    const htd::circuit::SpiceEngine engine(net);
    const auto pp = htd::process::nominal_350nm();
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.dc(pp));
    }
}
BENCHMARK(BM_SpiceDcInverter);

void BM_SpicePcmTransient(benchmark::State& state) {
    htd::circuit::PcmPath::Options opts;
    opts.stages = 2;
    const auto pp = htd::process::nominal_350nm();
    for (auto _ : state) {
        benchmark::DoNotOptimize(htd::circuit::spice_pcm_delay_ns(pp, opts, 0.1));
    }
}
BENCHMARK(BM_SpicePcmTransient)->Unit(benchmark::kMillisecond);

void BM_EvtEnhancerSample(benchmark::State& state) {
    const Matrix data = gaussian_cloud(100, 6, 10);
    const htd::stats::EvtTailEnhancer evt(data, 0.15);
    htd::rng::Rng rng(11);
    for (auto _ : state) {
        benchmark::DoNotOptimize(evt.sample(rng));
    }
}
BENCHMARK(BM_EvtEnhancerSample);

// --- htd::obs overhead -------------------------------------------------------
// The acceptance bar for leaving instrumentation in hot paths: a disabled
// span must cost no more than a few ns (one relaxed atomic load), and the
// enabled path must stay cheap enough for per-stage (not per-sample) use.

void BM_ObsSpanDisabled(benchmark::State& state) {
    htd::obs::Registry::global().configure(htd::obs::SinkKind::kOff);
    for (auto _ : state) {
        htd::obs::ScopedSpan span("bench.disabled_span");
        benchmark::DoNotOptimize(span.active());
    }
}
BENCHMARK(BM_ObsSpanDisabled);

void BM_ObsSpanEnabled(benchmark::State& state) {
    auto& registry = htd::obs::Registry::global();
    registry.configure(htd::obs::SinkKind::kJson);
    for (auto _ : state) {
        htd::obs::ScopedSpan span("bench.enabled_span");
        benchmark::DoNotOptimize(span.active());
    }
    registry.configure(htd::obs::SinkKind::kOff);
    registry.reset();  // don't let millions of bench spans pollute the report
}
BENCHMARK(BM_ObsSpanEnabled);

void BM_ObsCounterDisabled(benchmark::State& state) {
    htd::obs::Registry::global().configure(htd::obs::SinkKind::kOff);
    for (auto _ : state) {
        htd::obs::Registry::global().counter_add("bench.disabled_counter");
    }
}
BENCHMARK(BM_ObsCounterDisabled);

void BM_ObsCounterEnabled(benchmark::State& state) {
    auto& registry = htd::obs::Registry::global();
    registry.configure(htd::obs::SinkKind::kJson);
    for (auto _ : state) {
        registry.counter_add("bench.enabled_counter");
    }
    registry.configure(htd::obs::SinkKind::kOff);
    registry.reset();
}
BENCHMARK(BM_ObsCounterEnabled);

void BM_ObsHistogramEnabled(benchmark::State& state) {
    auto& registry = htd::obs::Registry::global();
    registry.configure(htd::obs::SinkKind::kJson);
    double v = 0.0;
    for (auto _ : state) {
        registry.histogram_record("bench.enabled_histogram", v);
        v += 0.1;
    }
    registry.configure(htd::obs::SinkKind::kOff);
    registry.reset();
}
BENCHMARK(BM_ObsHistogramEnabled);

void BM_GprFit(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    htd::rng::Rng rng(12);
    Matrix x(n, 1);
    Vector y(n);
    for (std::size_t i = 0; i < n; ++i) {
        x(i, 0) = rng.normal();
        y[i] = x(i, 0) + 0.1 * rng.normal();
    }
    for (auto _ : state) {
        htd::ml::GaussianProcessRegressor gpr;
        gpr.fit(x, y);
        benchmark::DoNotOptimize(gpr.r_squared());
    }
}
BENCHMARK(BM_GprFit)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);

// The usual console table, plus a JSON copy of every finished run so
// main() can serialize the lot to BENCH_micro.json.
class CapturingReporter : public benchmark::ConsoleReporter {
public:
    void ReportRuns(const std::vector<Run>& runs) override {
        benchmark::ConsoleReporter::ReportRuns(runs);
        for (const Run& run : runs) {
            if (run.error_occurred) continue;
            const double iters = static_cast<double>(run.iterations);
            htd::io::Json entry = htd::io::Json::object();
            entry.set("name", run.benchmark_name());
            entry.set("iterations", iters);
            entry.set("real_ns_per_iter",
                      iters > 0 ? run.real_accumulated_time * 1e9 / iters : 0.0);
            entry.set("cpu_ns_per_iter",
                      iters > 0 ? run.cpu_accumulated_time * 1e9 / iters : 0.0);
            results_.push_back(std::move(entry));
        }
    }

    htd::io::Json take() && { return std::move(results_); }

private:
    htd::io::Json results_ = htd::io::Json::array();
};

// Deterministic per-point work profile: run each parameterized kernel once
// with the registry recording and snapshot the work counters it reports,
// keyed "<Bench>/<arg>:<counter>". Timing in "results" says how long a
// point took; these say how much algorithmic work it did — htd_profile
// diffs both, so a BENCH_micro regression can be attributed to "more
// kernel evaluations" rather than just "slower".
htd::io::Json work_profile() {
    auto& registry = htd::obs::Registry::global();
    registry.configure(htd::obs::SinkKind::kJson);
    registry.reset();
    htd::io::Json out = htd::io::Json::object();
    auto snapshot = [&](const std::string& label) {
        for (const auto& [name, value] : registry.works()) {
            out.set(label + ":" + name, value);
        }
        registry.reset();
    };

    for (const std::size_t n : {std::size_t{50}, std::size_t{100}, std::size_t{200}}) {
        const htd::stats::AdaptiveKde kde(gaussian_cloud(n, 6, 1), 0.5);
        benchmark::DoNotOptimize(kde.pilot_geometric_mean());
        snapshot("AdaptiveKdeBuild/" + std::to_string(n));
    }
    for (const std::size_t n :
         {std::size_t{100}, std::size_t{500}, std::size_t{2000}}) {
        htd::ml::OneClassSvm svm;
        svm.fit(gaussian_cloud(n, 6, 4));
        snapshot("OneClassSvmFit/" + std::to_string(n));
    }
    for (const std::size_t n : {std::size_t{100}, std::size_t{200}}) {
        const Matrix train = gaussian_cloud(n, 1, 7);
        Matrix test = gaussian_cloud(n, 1, 8);
        for (std::size_t r = 0; r < test.rows(); ++r) test(r, 0) += 1.0;
        const htd::ml::KernelMeanMatching kmm;
        const Vector beta = kmm.solve(train, test);
        benchmark::DoNotOptimize(beta.size());
        snapshot("KmmSolve/" + std::to_string(n));
    }

    registry.configure(htd::obs::SinkKind::kOff);
    registry.reset();
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    CapturingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    const htd::io::Json work = work_profile();

    htd::obs::RunReport report("bench_micro");
    report.set("results", std::move(reporter).take());
    report.set("work_profile", work);
    report.capture_observability();
    const std::string path = "BENCH_micro.json";
    report.write(path);
    std::fprintf(stderr, "wrote %s\n", path.c_str());
    return 0;
}
