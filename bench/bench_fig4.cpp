/// \file bench_fig4.cpp
/// Reproduces Fig. 4 of the paper: the measured Trojan-free / Trojan-infested
/// fingerprints and the generated datasets S1..S5, projected on the top three
/// principal components. The paper presents six 3-D scatter plots; this
/// harness prints the per-population statistics in PC space (location and
/// spread along PC1..PC3, plus the separation between populations) and
/// writes the raw projected series to CSV files for external plotting.

#include <cstdio>
#include <string>

#include "pipeline/experiment.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "ml/pca.hpp"
#include "stats/descriptive.hpp"

namespace {

using htd::linalg::Matrix;
using htd::linalg::Vector;

void report(htd::io::Table& table, const std::string& name, const Matrix& pc_scores) {
    const Vector mean = htd::stats::column_means(pc_scores);
    const Vector sd = pc_scores.rows() >= 2 ? htd::stats::column_stddevs(pc_scores)
                                            : Vector(pc_scores.cols());
    table.add_row({name, std::to_string(pc_scores.rows()), htd::io::fmt(mean[0], 3),
                   htd::io::fmt(mean[1], 3), htd::io::fmt(mean[2], 3),
                   htd::io::fmt(sd[0], 3), htd::io::fmt(sd[1], 3),
                   htd::io::fmt(sd[2], 3)});
}

Matrix subsample(const Matrix& data, std::size_t cap) {
    if (data.rows() <= cap) return data;
    Matrix out(cap, data.cols());
    const std::size_t stride = data.rows() / cap;
    for (std::size_t i = 0; i < cap; ++i) out.set_row(i, data.row(i * stride));
    return out;
}

}  // namespace

int main() {
    using namespace htd;

    core::ExperimentConfig config;
    const core::ExperimentResult result = core::run_experiment(config);

    // PCA basis from the measured device fingerprints (as in the paper, the
    // projection visualizes the fabricated populations).
    ml::Pca pca;
    pca.fit(result.measured.fingerprints, 3);
    const linalg::Vector evr = pca.explained_variance_ratio();
    std::printf("Fig. 4: PCA projection of fingerprint populations\n");
    std::printf("explained variance ratio: PC1 %.3f, PC2 %.3f, PC3 %.3f\n\n", evr[0],
                evr[1], evr[2]);

    // Split the measured devices by ground truth.
    Matrix tf, ti_amp, ti_freq;
    for (std::size_t i = 0; i < result.measured.size(); ++i) {
        const linalg::Vector row = result.measured.fingerprints.row(i);
        switch (result.measured.variants[i]) {
            case trojan::DesignVariant::kTrojanFree: tf.append_row(row); break;
            case trojan::DesignVariant::kTrojanAmplitude: ti_amp.append_row(row); break;
            case trojan::DesignVariant::kTrojanFrequency: ti_freq.append_row(row); break;
        }
    }

    io::Table table({"population", "n", "PC1 mean", "PC2 mean", "PC3 mean", "PC1 sd",
                     "PC2 sd", "PC3 sd"});
    struct Series {
        std::string name;
        Matrix scores;
    };
    std::vector<Series> series;
    series.push_back({"measured TF (blue)", pca.transform(tf)});
    series.push_back({"measured TI-amp (green)", pca.transform(ti_amp)});
    series.push_back({"measured TI-freq (black)", pca.transform(ti_freq)});
    for (std::size_t i = 0; i < core::kAllBoundaries.size(); ++i) {
        series.push_back(
            {core::dataset_name(core::kAllBoundaries[i]) + " (purple)",
             pca.transform(subsample(result.datasets[i], 2000))});
    }
    for (const Series& s : series) report(table, s.name, s.scores);
    std::printf("%s\n", table.str().c_str());

    // Pairwise population separation along PC1 (the paper's plots separate
    // mainly along the leading components).
    const double tf_pc1 = htd::stats::column_means(series[0].scores)[0];
    std::printf("PC1 separation from measured TF:\n");
    for (std::size_t k = 1; k < series.size(); ++k) {
        const double mean_pc1 = htd::stats::column_means(series[k].scores)[0];
        std::printf("  %-26s %+8.3f\n", series[k].name.c_str(), mean_pc1 - tf_pc1);
    }

    // Export every projected series for plotting.
    const std::vector<std::string> header{"pc1", "pc2", "pc3"};
    io::write_csv("fig4_measured_tf.csv", series[0].scores, header);
    io::write_csv("fig4_measured_ti_amp.csv", series[1].scores, header);
    io::write_csv("fig4_measured_ti_freq.csv", series[2].scores, header);
    for (std::size_t i = 0; i < core::kAllBoundaries.size(); ++i) {
        io::write_csv("fig4_" + core::dataset_name(core::kAllBoundaries[i]) + ".csv",
                      series[3 + i].scores, header);
    }
    std::printf("\nwrote fig4_*.csv series (PC1..PC3 per sample)\n");
    return 0;
}
