/// \file bench_roc.cpp
/// Threshold-free view of Table 1: ROC curves of the five boundaries'
/// decision values over the 120 DUTTs, plus the same analysis with the k-NN
/// one-class baseline in place of the SVM (showing the Table-1 shape is a
/// property of the pipeline, not of the specific classifier). Writes
/// roc_<boundary>.csv series and a BENCH_roc.json run report with the
/// per-boundary AUCs and the timed pipeline spans.

#include <cstdio>

#include "pipeline/experiment.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "ml/knn_detector.hpp"
#include "obs/run_report.hpp"

int main() {
    using namespace htd;

    core::ExperimentConfig config;
    config.pipeline.obs.sink = obs::SinkKind::kJson;  // time the stages for the report
    rng::Rng master(config.seed);
    rng::Rng fab_rng = master.split();
    rng::Rng sim_rng = master.split();
    rng::Rng pipe_rng = master.split();

    const silicon::DuttDataset measured = core::fabricate_and_measure(config, fab_rng);
    const auto labels = measured.labels();

    const core::ProcessPair processes =
        core::make_process_pair(config.process_shift_sigma);
    core::GoldenFreePipeline pipeline(
        config.pipeline, silicon::SpiceSimulator(config.platform, processes.spice));
    pipeline.run_premanufacturing(sim_rng);
    pipeline.run_silicon_stage(measured.pcms, pipe_rng);

    std::printf("ROC analysis of the trusted-region decision values\n\n");
    io::Table table({"boundary", "AUC", "FN at FP=0"});
    io::Json roc_results = io::Json::array();
    for (const core::Boundary b : core::kAllBoundaries) {
        const linalg::Vector dv = pipeline.decision_values(b, measured.fingerprints);
        const std::vector<double> scores(dv.begin(), dv.end());
        const auto curve = ml::roc_curve(scores, labels);

        // Best achievable FN while keeping FP = 0 (the paper's operating
        // regime: no Trojan-infested device may be accepted).
        double fn_at_fp0 = 1.0;
        for (const auto& pt : curve) {
            if (pt.fp_rate == 0.0) fn_at_fp0 = std::min(fn_at_fp0, pt.fn_rate);
        }
        table.add_row({core::boundary_name(b), io::fmt(ml::roc_auc(curve), 3),
                       io::fmt(fn_at_fp0 * 40.0, 0) + "/40"});
        io::Json entry = io::Json::object();
        entry.set("boundary", core::boundary_name(b));
        entry.set("auc", ml::roc_auc(curve));
        entry.set("fn_rate_at_fp0", fn_at_fp0);
        roc_results.push_back(std::move(entry));

        linalg::Matrix series(curve.size(), 3);
        for (std::size_t k = 0; k < curve.size(); ++k) {
            series(k, 0) = curve[k].threshold;
            series(k, 1) = curve[k].fp_rate;
            series(k, 2) = curve[k].fn_rate;
        }
        io::write_csv("roc_" + core::boundary_name(b) + ".csv", series,
                      {"threshold", "fp_rate", "fn_rate"});
    }
    std::printf("%s\n", table.str().c_str());

    // Detector swap: k-NN one-class on the same S5 population.
    ml::KnnDetector knn({.k = 5, .nu = config.pipeline.svm.nu});
    knn.fit(pipeline.dataset(core::Boundary::kB5));
    std::vector<double> knn_scores(measured.size());
    std::vector<bool> knn_inside(measured.size());
    for (std::size_t i = 0; i < measured.size(); ++i) {
        knn_scores[i] = knn.decision_value(measured.fingerprints.row(i));
        knn_inside[i] = knn_scores[i] >= 0.0;
    }
    const auto knn_metrics = ml::evaluate_detection(knn_inside, labels);
    const double knn_auc = ml::roc_auc(ml::roc_curve(knn_scores, labels));
    std::printf("detector swap (k-NN one-class on S5): %s, AUC %.3f\n",
                knn_metrics.str().c_str(), knn_auc);
    std::printf("wrote roc_B1..B5.csv series\n");

    io::Json payload = io::Json::object();
    payload.set("boundaries", std::move(roc_results));
    io::Json swap = io::Json::object();
    swap.set("detector", "knn_one_class");
    swap.set("auc", knn_auc);
    swap.set("fp_rate", knn_metrics.false_positive_rate());
    swap.set("fn_rate", knn_metrics.false_negative_rate());
    swap.set("accuracy", knn_metrics.accuracy());
    payload.set("detector_swap", std::move(swap));
    const std::string path = obs::write_bench_report("roc", std::move(payload));
    std::printf("wrote %s\n", path.c_str());
    return 0;
}
