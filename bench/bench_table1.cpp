/// \file bench_table1.cpp
/// Reproduces Table 1 of the paper: FP/FN of the five trusted-region
/// boundaries B1..B5 on the 40 Trojan-free + 80 Trojan-infested devices.
///
/// Paper reference values (DAC'14, Table 1):
///   S1: FP 0/80  FN 40/40
///   S2: FP 0/80  FN 40/40
///   S3: FP 0/80  FN 24/40
///   S4: FP 0/80  FN 18/40
///   S5: FP 0/80  FN  3/40

#include <cstdio>

#include "pipeline/experiment.hpp"
#include "io/table.hpp"

int main() {
    using namespace htd;

    core::ExperimentConfig config;
    const core::ExperimentResult result = core::run_experiment(config);

    std::printf("Table 1: Trojan detection metrics for each data set\n");
    std::printf("(paper: S1 FN 40/40, S2 FN 40/40, S3 FN 24/40, S4 FN 18/40, S5 FN 3/40; FP 0/80 throughout)\n\n");

    io::Table table({"Data set", "FP", "FN", "FP rate", "FN rate"});
    for (std::size_t i = 0; i < core::kAllBoundaries.size(); ++i) {
        const auto& m = result.table1[i];
        table.add_row({core::dataset_name(core::kAllBoundaries[i]),
                       io::fmt_ratio(m.false_positives, m.trojan_infested_total),
                       io::fmt_ratio(m.false_negatives, m.trojan_free_total),
                       io::fmt(m.false_positive_rate(), 3),
                       io::fmt(m.false_negative_rate(), 3)});
    }
    std::printf("%s\n", table.str().c_str());

    std::printf("Golden-chip baseline [12] (reference): %s\n",
                result.golden_baseline.str().c_str());
    std::printf("MARS mean training R^2: %.4f\n", result.mars_mean_r2);
    std::printf("Kernel-mean-shift iterations: %zu\n", result.calibration_iterations);
    return 0;
}
