/// \file bench_ablation_kmm.cpp
/// Ablation E4: how much the kernel-mean-shift calibration (Section 2.4)
/// contributes. Compares
///   (a) boundary from *uncalibrated* simulated PCMs pushed through g
///       (covariate shift uncorrected),
///   (b) mean-shift-only calibration (no KMM importance resampling), and
///   (c) the full pipeline's B4,
/// and sweeps the KMM weight bound B.

#include <cstdio>

#include "pipeline/experiment.hpp"
#include "io/table.hpp"
#include "ml/kmm.hpp"

namespace {

htd::ml::DetectionMetrics boundary_from(const htd::linalg::Matrix& dataset,
                                        const htd::ml::OneClassSvm::Options& opts,
                                        const htd::silicon::DuttDataset& measured) {
    htd::ml::OneClassSvm svm(opts);
    svm.fit(dataset);
    std::vector<bool> inside(measured.size());
    for (std::size_t i = 0; i < measured.size(); ++i) {
        inside[i] = svm.contains(measured.fingerprints.row(i));
    }
    return htd::ml::evaluate_detection(inside, measured.labels());
}

}  // namespace

int main() {
    using namespace htd;

    core::ExperimentConfig config;
    config.pipeline.synthetic_samples = 20000;
    rng::Rng master(config.seed);
    rng::Rng fab_rng = master.split();
    rng::Rng sim_rng = master.split();
    rng::Rng pipe_rng = master.split();

    const silicon::DuttDataset measured = core::fabricate_and_measure(config, fab_rng);
    const core::ProcessPair processes =
        core::make_process_pair(config.process_shift_sigma);
    core::GoldenFreePipeline pipeline(
        config.pipeline, silicon::SpiceSimulator(config.platform, processes.spice));
    pipeline.run_premanufacturing(sim_rng);
    pipeline.run_silicon_stage(measured.pcms, pipe_rng);

    std::printf("Ablation: kernel-mean-shift calibration (stage behind S4/B4)\n\n");
    io::Table table({"variant", "FP", "FN"});

    // (a) no calibration at all: g applied to the raw simulated PCMs.
    const linalg::Matrix s4_uncal =
        pipeline.regressions().predict_batch(pipeline.simulated_pcms());
    const auto m_uncal = boundary_from(s4_uncal, config.pipeline.svm, measured);
    table.add_row({"no calibration",
                   io::fmt_ratio(m_uncal.false_positives, m_uncal.trojan_infested_total),
                   io::fmt_ratio(m_uncal.false_negatives, m_uncal.trojan_free_total)});

    // (b) mean-shift only: translate the simulated PCM cloud, no resampling.
    {
        const auto& calib = pipeline.calibration_result();
        linalg::Matrix shifted = pipeline.simulated_pcms();
        for (std::size_t r = 0; r < shifted.rows(); ++r) {
            auto row = shifted.row_span(r);
            for (std::size_t c = 0; c < row.size(); ++c) {
                row[c] += calib->total_shift[c];
            }
        }
        const linalg::Matrix s4_shift = pipeline.regressions().predict_batch(shifted);
        const auto m = boundary_from(s4_shift, config.pipeline.svm, measured);
        table.add_row({"mean shift only",
                       io::fmt_ratio(m.false_positives, m.trojan_infested_total),
                       io::fmt_ratio(m.false_negatives, m.trojan_free_total)});
    }

    // (c) full B4 (shift + KMM importance resampling).
    const auto m_b4 = pipeline.evaluate(core::Boundary::kB4, measured);
    table.add_row({"full B4 (shift + KMM resample)",
                   io::fmt_ratio(m_b4.false_positives, m_b4.trojan_infested_total),
                   io::fmt_ratio(m_b4.false_negatives, m_b4.trojan_free_total)});
    std::printf("%s\n", table.str().c_str());

    // Weight-bound sweep: B controls how aggressively KMM reweights.
    std::printf("KMM weight bound sweep (B4 metrics):\n");
    io::Table sweep({"B", "FP", "FN"});
    for (const double b : {1.5, 3.0, 5.0, 10.0, 100.0}) {
        core::ExperimentConfig cfg = config;
        cfg.pipeline.calibration.kmm.weight_bound = b;
        const core::ExperimentResult r = core::run_experiment(cfg);
        const auto& m = r.table1[3];
        sweep.add_row({io::fmt(b, 1),
                       io::fmt_ratio(m.false_positives, m.trojan_infested_total),
                       io::fmt_ratio(m.false_negatives, m.trojan_free_total)});
    }
    std::printf("%s", sweep.str().c_str());
    return 0;
}
