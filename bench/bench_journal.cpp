/// \file bench_journal.cpp
/// E17: decision-journal overhead. Calibrates a reduced-budget pipeline
/// once (the subject under test is the journal, not the trainer), then
/// measures three costs (DESIGN.md §15):
///
///   - raw append throughput: htd.events.v1 records/sec through
///     EventJournal::append to a real file (write+flush per record — the
///     crash-safety contract is part of the measured cost)
///   - scoring throughput with the journal disabled vs enabled: the same
///     BoundaryScorer::classify batch, silent vs emitting one chip_scored
///     event per device
///   - explain throughput: BoundaryScorer::explain per chip (the full
///     leave-one-channel-out attribution, much heavier than a verdict)
///
/// Writes BENCH_journal.json; scripts/check.sh --bench-gate compares it
/// against bench/baselines/BENCH_journal.json with a ratio floor.

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "io/table.hpp"
#include "obs/journal.hpp"
#include "obs/run_report.hpp"
#include "pipeline/artifact.hpp"
#include "pipeline/experiment.hpp"
#include "pipeline/explain.hpp"
#include "pipeline/scorer.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main() {
    using namespace htd;

    core::ExperimentConfig config;
    // Reduced calibration budget, same as bench_score_throughput: five
    // healthy models are all the journal needs.
    config.n_chips = 16;
    config.pipeline.monte_carlo_samples = 60;
    config.pipeline.synthetic_samples = 4000;

    rng::Rng rng(config.seed);
    rng::Rng fab_rng = rng.split();
    const silicon::DuttDataset devices =
        core::fabricate_and_measure(config, fab_rng);

    const core::ProcessPair processes =
        core::make_process_pair(config.process_shift_sigma);
    core::GoldenFreePipeline pipeline(
        config.pipeline,
        silicon::SpiceSimulator(config.platform, processes.spice));
    rng::Rng sim_rng = rng.split();
    rng::Rng pipe_rng = rng.split();
    pipeline.run_premanufacturing(sim_rng);
    pipeline.run_silicon_stage(devices.pcms, pipe_rng);

    const core::BoundaryScorer scorer(core::BoundaryArtifact::from_pipeline(
        pipeline, config.seed, "bench_journal"));
    const core::Boundary verdict = scorer.verdict_boundary().value();

    // Tile the measured lot into a production-sized batch (scoring cost is
    // per-row, so replicated rows measure the same kernel as distinct chips).
    constexpr std::size_t kBatchRows = 2048;
    linalg::Matrix batch(kBatchRows, devices.fingerprints.cols());
    for (std::size_t r = 0; r < kBatchRows; ++r) {
        for (std::size_t c = 0; c < batch.cols(); ++c) {
            batch(r, c) = devices.fingerprints(r % devices.fingerprints.rows(), c);
        }
    }

    obs::EventJournal& journal = obs::EventJournal::global();
    journal.close();  // the plain run must be the silent path
    constexpr double kMinSeconds = 0.2;

    // --- scoring, journal disabled -------------------------------------
    std::size_t plain_scored = 0;
    Clock::time_point start = Clock::now();
    double elapsed = 0.0;
    do {
        plain_scored += scorer.classify(verdict, batch).size();
        elapsed = seconds_since(start);
    } while (elapsed < kMinSeconds);
    const double plain_chips_per_sec =
        static_cast<double>(plain_scored) / elapsed;

    // --- scoring, journal enabled (one chip_scored event per device) ---
    const char* const journal_path = "bench_journal_events.jsonl";
    std::remove(journal_path);
    journal.open(journal_path);
    std::size_t journal_scored = 0;
    start = Clock::now();
    do {
        journal_scored += scorer.classify(verdict, batch).size();
        elapsed = seconds_since(start);
    } while (elapsed < kMinSeconds);
    const double journal_chips_per_sec =
        static_cast<double>(journal_scored) / elapsed;

    // --- raw append throughput -----------------------------------------
    std::size_t appended = 0;
    start = Clock::now();
    do {
        obs::Event event("chip_scored");
        event.chip = std::to_string(appended);
        event.boundary = core::boundary_name(verdict);
        event.value("decision", 0.25).value("inside", 1.0);
        journal.append(std::move(event));
        ++appended;
        if ((appended & 0xFF) == 0) elapsed = seconds_since(start);
    } while (elapsed < kMinSeconds);
    elapsed = seconds_since(start);
    const double append_events_per_sec =
        static_cast<double>(appended) / elapsed;
    journal.close();
    std::remove(journal_path);

    // --- explain throughput (full per-chip attribution) -----------------
    std::size_t explained = 0;
    start = Clock::now();
    do {
        const core::ExplainRecord rec = scorer.explain(
            batch.row(explained % batch.rows()), std::to_string(explained));
        explained += rec.boundaries.empty() ? 0 : 1;
        elapsed = seconds_since(start);
    } while (elapsed < kMinSeconds);
    const double explain_chips_per_sec =
        static_cast<double>(explained) / elapsed;

    const double overhead_ratio = journal_chips_per_sec / plain_chips_per_sec;

    io::Table table({"metric", "value"});
    table.add_row({"append events/sec", io::fmt(append_events_per_sec, 0)});
    table.add_row({"score chips/sec (plain)", io::fmt(plain_chips_per_sec, 0)});
    table.add_row(
        {"score chips/sec (journal)", io::fmt(journal_chips_per_sec, 0)});
    table.add_row({"journal/plain ratio", io::fmt(overhead_ratio, 3)});
    table.add_row({"explain chips/sec", io::fmt(explain_chips_per_sec, 1)});
    std::printf("Decision-journal overhead (%zu-row batches, verdict %s)\n\n%s\n",
                kBatchRows, core::boundary_name(verdict).c_str(),
                table.str().c_str());

    io::Json payload = io::Json::object();
    payload.set("n_chips", config.n_chips);
    payload.set("batch_rows", kBatchRows);
    payload.set("verdict_boundary", core::boundary_name(verdict));
    payload.set("append_events_per_sec", append_events_per_sec);
    payload.set("plain_chips_per_sec", plain_chips_per_sec);
    payload.set("journal_chips_per_sec", journal_chips_per_sec);
    payload.set("journal_overhead_ratio", overhead_ratio);
    payload.set("explain_chips_per_sec", explain_chips_per_sec);
    const std::string path =
        obs::write_bench_report("journal", std::move(payload));
    std::printf("wrote %s\n", path.c_str());
    return 0;
}
