/// \file bench_diagnostics.cpp
/// Model-calibration diagnostics: prints the population statistics that
/// determine the Table-1 shape — simulated vs silicon fingerprint/PCM
/// locations and spreads, the Trojan displacement split into its common
/// (gain-direction) and differential (orthogonal) components, and the
/// MARS regression quality.

#include <cmath>
#include <cstdio>

#include "core/experiment.hpp"
#include "io/table.hpp"
#include "stats/descriptive.hpp"

namespace {

using htd::linalg::Matrix;
using htd::linalg::Vector;

void print_population(const char* name, const Matrix& data) {
    const Vector mean = htd::stats::column_means(data);
    const Vector sd = data.rows() >= 2 ? htd::stats::column_stddevs(data)
                                       : Vector(data.cols());
    std::printf("%-22s n=%-6zu mean:", name, data.rows());
    for (std::size_t c = 0; c < mean.size(); ++c) std::printf(" %8.3f", mean[c]);
    std::printf("\n%-22s %-8s  std:", "", "");
    for (std::size_t c = 0; c < sd.size(); ++c) std::printf(" %8.4f", sd[c]);
    std::printf("\n");
}

Matrix rows_of_variant(const htd::silicon::DuttDataset& ds,
                       htd::trojan::DesignVariant v) {
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < ds.variants.size(); ++i) {
        if (ds.variants[i] == v) idx.push_back(i);
    }
    return ds.fingerprints_at(idx);
}

}  // namespace

int main() {
    using namespace htd;

    core::ExperimentConfig config;
    rng::Rng master(config.seed);
    rng::Rng fab_rng = master.split();
    rng::Rng sim_rng = master.split();

    const silicon::DuttDataset measured = core::fabricate_and_measure(config, fab_rng);
    const core::ProcessPair processes =
        core::make_process_pair(config.process_shift_sigma);
    const silicon::SpiceSimulator simulator(config.platform, processes.spice);
    const auto golden =
        simulator.simulate_golden(sim_rng, config.pipeline.monte_carlo_samples);

    const Matrix tf = rows_of_variant(measured, trojan::DesignVariant::kTrojanFree);
    const Matrix ta = rows_of_variant(measured, trojan::DesignVariant::kTrojanAmplitude);
    const Matrix tfreq =
        rows_of_variant(measured, trojan::DesignVariant::kTrojanFrequency);

    std::printf("--- fingerprints (dBm per block) ---\n");
    print_population("sim golden (S1)", golden.fingerprints);
    print_population("silicon TF", tf);
    print_population("silicon TI-amp", ta);
    print_population("silicon TI-freq", tfreq);

    // Trojan displacement relative to TF, split into the component along the
    // all-ones (common gain) direction and the orthogonal remainder.
    auto displacement = [&](const Matrix& ti, const char* name) {
        const Vector d = stats::column_means(ti) - stats::column_means(tf);
        double common = 0.0;
        for (std::size_t c = 0; c < d.size(); ++c) common += d[c];
        common /= static_cast<double>(d.size());
        double orth2 = 0.0;
        for (std::size_t c = 0; c < d.size(); ++c) {
            orth2 += (d[c] - common) * (d[c] - common);
        }
        std::printf("%-10s displacement: common %+.4f dB, orthogonal rms %.4f dB\n",
                    name, common, std::sqrt(orth2 / static_cast<double>(d.size())));
    };
    displacement(ta, "TI-amp");
    displacement(tfreq, "TI-freq");
    std::printf("meter noise sigma: %.4f dB\n", config.platform.meter.noise_sigma_db);

    std::printf("\n--- PCM (path delay ns) ---\n");
    print_population("sim golden PCM", golden.pcms);
    print_population("silicon PCM", measured.pcms);

    // Regression quality achievable from the PCM, in the pipeline's own
    // (log-transformed) input space.
    auto log_pcms = [&](const Matrix& pcms) {
        Matrix out = pcms;
        for (std::size_t r = 0; r < out.rows(); ++r) {
            for (double& v : out.row_span(r)) v = std::log(v);
        }
        return out;
    };
    ml::MarsBank bank(config.pipeline.mars);  // same options as the pipeline
    bank.fit(log_pcms(golden.pcms), golden.fingerprints);
    std::printf("\n--- MARS (log PCM -> fingerprint) training R^2 per output ---\n");
    for (std::size_t j = 0; j < bank.output_dim(); ++j) {
        std::printf("  m%zu: %.4f (terms: %zu)\n", j + 1, bank.model(j).r_squared(),
                    bank.model(j).terms().size());
    }

    // Residual structure of silicon TF devices around the regression
    // prediction from their own PCMs. The per-block residual means expose
    // transverse prediction bias (different extrapolation per fingerprint);
    // the pooled std is the spread B5's KDE inflation must cover.
    std::printf("\n--- silicon TF residuals around g(log pcm) ---\n");
    const auto tf_idx = measured.trojan_free_indices();
    const Matrix silicon_log_pcms = log_pcms(measured.pcms);
    const std::size_t nm = measured.fingerprints.cols();
    std::vector<stats::RunningStats> per_block(nm);
    stats::RunningStats resid;
    for (const std::size_t i : tf_idx) {
        const Vector pred = bank.predict(silicon_log_pcms.row(i));
        const Vector actual = measured.fingerprints.row(i);
        for (std::size_t c = 0; c < pred.size(); ++c) {
            resid.add(actual[c] - pred[c]);
            per_block[c].add(actual[c] - pred[c]);
        }
    }
    std::printf("pooled residual mean %+.4f dB, std %.4f dB\n", resid.mean(),
                resid.stddev());
    std::printf("per-block residual means:");
    for (std::size_t c = 0; c < nm; ++c) std::printf(" %+.4f", per_block[c].mean());
    std::printf("\n");

    // Full pipeline state: dataset statistics and decision values.
    std::printf("\n--- pipeline datasets ---\n");
    core::GoldenFreePipeline pipeline(config.pipeline,
                                      silicon::SpiceSimulator(config.platform,
                                                              processes.spice));
    rng::Rng pipe_rng = master.split();
    rng::Rng sim2 = master.split();
    pipeline.run_premanufacturing(sim2);
    pipeline.run_silicon_stage(measured.pcms, pipe_rng);
    for (const core::Boundary b : core::kAllBoundaries) {
        print_population(core::dataset_name(b).c_str(), pipeline.dataset(b));
    }
    print_population("measured TF", tf);

    std::printf("\n--- decision values (first 8 TF devices) ---\n");
    for (const core::Boundary b : {core::Boundary::kB3, core::Boundary::kB4,
                                   core::Boundary::kB5}) {
        const Vector dv = pipeline.decision_values(b, tf);
        std::printf("%s:", core::boundary_name(b).c_str());
        for (std::size_t i = 0; i < 8; ++i) std::printf(" %+.4f", dv[i]);
        std::printf("\n");
    }
    return 0;
}
