/// \file bench_diagnostics.cpp
/// Model-calibration diagnostics: prints the population statistics that
/// determine the Table-1 shape — simulated vs silicon fingerprint/PCM
/// locations and spreads, the Trojan displacement split into its common
/// (gain-direction) and differential (orthogonal) components, and the
/// MARS regression quality.

#include <cmath>
#include <cstdio>

#include "pipeline/experiment.hpp"
#include "io/table.hpp"
#include "stats/descriptive.hpp"

namespace {

using htd::linalg::Matrix;
using htd::linalg::Vector;

/// Table over populations sharing one feature space: two rows per
/// population (column means, column stddevs).
htd::io::Table population_table(std::size_t dims, const char* dim_prefix) {
    std::vector<std::string> header{"population", "n", "stat"};
    for (std::size_t c = 0; c < dims; ++c) {
        // Append-built (not operator+): GCC 12 -O2 emits a spurious
        // -Wrestrict for inlined string operator+ chains (PR 105329).
        std::string col = dim_prefix;
        col += std::to_string(c + 1);
        header.push_back(std::move(col));
    }
    return htd::io::Table(std::move(header));
}

void add_population(htd::io::Table& table, const std::string& name,
                    const Matrix& data) {
    const Vector mean = htd::stats::column_means(data);
    const Vector sd = data.rows() >= 2 ? htd::stats::column_stddevs(data)
                                       : Vector(data.cols());
    std::vector<std::string> mean_row{name, std::to_string(data.rows()), "mean"};
    std::vector<std::string> sd_row{"", "", "std"};
    for (std::size_t c = 0; c < mean.size(); ++c) {
        mean_row.push_back(htd::io::fmt(mean[c], 3));
        sd_row.push_back(htd::io::fmt(sd[c], 4));
    }
    table.add_row(std::move(mean_row));
    table.add_row(std::move(sd_row));
}

Matrix rows_of_variant(const htd::silicon::DuttDataset& ds,
                       htd::trojan::DesignVariant v) {
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < ds.variants.size(); ++i) {
        if (ds.variants[i] == v) idx.push_back(i);
    }
    return ds.fingerprints_at(idx);
}

}  // namespace

int main() {
    using namespace htd;

    core::ExperimentConfig config;
    rng::Rng master(config.seed);
    rng::Rng fab_rng = master.split();
    rng::Rng sim_rng = master.split();

    const silicon::DuttDataset measured = core::fabricate_and_measure(config, fab_rng);
    const core::ProcessPair processes =
        core::make_process_pair(config.process_shift_sigma);
    const silicon::SpiceSimulator simulator(config.platform, processes.spice);
    const auto golden =
        simulator.simulate_golden(sim_rng, config.pipeline.monte_carlo_samples);

    const Matrix tf = rows_of_variant(measured, trojan::DesignVariant::kTrojanFree);
    const Matrix ta = rows_of_variant(measured, trojan::DesignVariant::kTrojanAmplitude);
    const Matrix tfreq =
        rows_of_variant(measured, trojan::DesignVariant::kTrojanFrequency);

    std::printf("--- fingerprints (dBm per block) ---\n");
    io::Table fingerprints = population_table(golden.fingerprints.cols(), "m");
    add_population(fingerprints, "sim golden (S1)", golden.fingerprints);
    add_population(fingerprints, "silicon TF", tf);
    add_population(fingerprints, "silicon TI-amp", ta);
    add_population(fingerprints, "silicon TI-freq", tfreq);
    std::printf("%s\n", fingerprints.str().c_str());

    // Trojan displacement relative to TF, split into the component along the
    // all-ones (common gain) direction and the orthogonal remainder.
    auto displacement = [&](const Matrix& ti, const char* name) {
        const Vector d = stats::column_means(ti) - stats::column_means(tf);
        double common = 0.0;
        for (std::size_t c = 0; c < d.size(); ++c) common += d[c];
        common /= static_cast<double>(d.size());
        double orth2 = 0.0;
        for (std::size_t c = 0; c < d.size(); ++c) {
            orth2 += (d[c] - common) * (d[c] - common);
        }
        std::printf("%-10s displacement: common %+.4f dB, orthogonal rms %.4f dB\n",
                    name, common, std::sqrt(orth2 / static_cast<double>(d.size())));
    };
    displacement(ta, "TI-amp");
    displacement(tfreq, "TI-freq");
    std::printf("meter noise sigma: %.4f dB\n", config.platform.meter.noise_sigma_db);

    std::printf("\n--- PCM (path delay ns) ---\n");
    io::Table pcm_table = population_table(golden.pcms.cols(), "p");
    add_population(pcm_table, "sim golden PCM", golden.pcms);
    add_population(pcm_table, "silicon PCM", measured.pcms);
    std::printf("%s\n", pcm_table.str().c_str());

    // Regression quality achievable from the PCM, in the pipeline's own
    // (log-transformed) input space.
    auto log_pcms = [&](const Matrix& pcms) {
        Matrix out = pcms;
        for (std::size_t r = 0; r < out.rows(); ++r) {
            for (double& v : out.row_span(r)) v = std::log(v);
        }
        return out;
    };
    ml::MarsBank bank(config.pipeline.mars);  // same options as the pipeline
    bank.fit(log_pcms(golden.pcms), golden.fingerprints);
    std::printf("\n--- MARS (log PCM -> fingerprint) training R^2 per output ---\n");
    io::Table mars_table({"output", "R^2", "terms"});
    for (std::size_t j = 0; j < bank.output_dim(); ++j) {
        std::string model_name = "m";
        model_name += std::to_string(j + 1);
        mars_table.add_row({std::move(model_name),
                            io::fmt(bank.model(j).r_squared(), 4),
                            std::to_string(bank.model(j).terms().size())});
    }
    std::printf("%s\n", mars_table.str().c_str());

    // Residual structure of silicon TF devices around the regression
    // prediction from their own PCMs. The per-block residual means expose
    // transverse prediction bias (different extrapolation per fingerprint);
    // the pooled std is the spread B5's KDE inflation must cover.
    std::printf("\n--- silicon TF residuals around g(log pcm) ---\n");
    const auto tf_idx = measured.trojan_free_indices();
    const Matrix silicon_log_pcms = log_pcms(measured.pcms);
    const std::size_t nm = measured.fingerprints.cols();
    std::vector<stats::RunningStats> per_block(nm);
    stats::RunningStats resid;
    for (const std::size_t i : tf_idx) {
        const Vector pred = bank.predict(silicon_log_pcms.row(i));
        const Vector actual = measured.fingerprints.row(i);
        for (std::size_t c = 0; c < pred.size(); ++c) {
            resid.add(actual[c] - pred[c]);
            per_block[c].add(actual[c] - pred[c]);
        }
    }
    std::printf("pooled residual mean %+.4f dB, std %.4f dB\n", resid.mean(),
                resid.stddev());
    std::printf("per-block residual means:");
    for (std::size_t c = 0; c < nm; ++c) std::printf(" %+.4f", per_block[c].mean());
    std::printf("\n");

    // Full pipeline state: dataset statistics and decision values.
    std::printf("\n--- pipeline datasets ---\n");
    core::GoldenFreePipeline pipeline(config.pipeline,
                                      silicon::SpiceSimulator(config.platform,
                                                              processes.spice));
    rng::Rng pipe_rng = master.split();
    rng::Rng sim2 = master.split();
    pipeline.run_premanufacturing(sim2);
    pipeline.run_silicon_stage(measured.pcms, pipe_rng);
    io::Table datasets = population_table(measured.fingerprints.cols(), "m");
    for (const core::Boundary b : core::kAllBoundaries) {
        add_population(datasets, core::dataset_name(b), pipeline.dataset(b));
    }
    add_population(datasets, "measured TF", tf);
    std::printf("%s\n", datasets.str().c_str());

    std::printf("\n--- decision values (first 8 TF devices) ---\n");
    std::vector<std::string> dv_header{"boundary"};
    for (std::size_t i = 0; i < 8; ++i) {
        std::string col = "d";
        col += std::to_string(i + 1);
        dv_header.push_back(std::move(col));
    }
    io::Table dv_table(std::move(dv_header));
    for (const core::Boundary b : {core::Boundary::kB3, core::Boundary::kB4,
                                   core::Boundary::kB5}) {
        const Vector dv = pipeline.decision_values(b, tf);
        std::vector<std::string> row{core::boundary_name(b)};
        for (std::size_t i = 0; i < 8; ++i) row.push_back(io::fmt(dv[i], 4));
        dv_table.add_row(std::move(row));
    }
    std::printf("%s\n", dv_table.str().c_str());
    return 0;
}
