/// \file bench_threat_model.cpp
/// Experiment E8: validates the threat model the whole paper rests on.
/// The key-leak Trojans of [12] must (1) leak the full AES key to an
/// attacker listening on the public channel, (2) evade traditional
/// functional testing (ciphertext and demodulated data remain correct), and
/// (3) be invisible in any single transmission's nominal behaviour.

#include <cstdio>

#include "pipeline/experiment.hpp"
#include "crypto/aes.hpp"
#include "io/table.hpp"
#include "silicon/bench_measure.hpp"
#include "trojan/attacker.hpp"

int main() {
    using namespace htd;

    core::ExperimentConfig config;
    rng::Rng master(config.seed);
    rng::Rng fab_rng = master.split();
    rng::Rng attack_rng = master.split();

    const core::ProcessPair processes =
        core::make_process_pair(config.process_shift_sigma);
    const silicon::Fab fab(processes.silicon);
    const silicon::FabricatedLot lot = fab.fabricate_lot(fab_rng, 4);
    const silicon::MeasurementBench bench(config.platform);
    const auto key_bits = config.platform.key_bits();

    std::printf("Threat-model validation (the Trojans of [12])\n\n");

    // (1) Functional testing cannot see the Trojans: the AES core is
    // untouched, so ciphertext equality holds by construction; the OOK data
    // on the channel also demodulates identically.
    {
        const crypto::Aes aes(config.platform.aes_key);
        const crypto::Block ct = aes.encrypt(config.platform.plaintext_blocks[0]);
        const crypto::Block pt = aes.decrypt(ct);
        std::printf("functional test: AES encrypt/decrypt round-trip %s\n",
                    pt == config.platform.plaintext_blocks[0] ? "PASS" : "FAIL");

        const auto obs_free = bench.capture_transmission(lot.devices[0], 0);
        const auto obs_amp = bench.capture_transmission(lot.devices[1], 0);
        bool same_data = true;
        for (std::size_t i = 0; i < 128; ++i) {
            same_data &= obs_free[i].transmitted == obs_amp[i].transmitted;
        }
        std::printf("functional test: demodulated OOK data identical      %s\n\n",
                    same_data ? "PASS" : "FAIL");
    }

    // (2) The attacker recovers the key from each Trojan-infested device.
    io::Table table({"device", "channel", "blocks", "separation", "bit errors"});
    const trojan::KeyRecoveryAttacker attacker;
    struct Case {
        std::size_t device_index;
        trojan::LeakChannel channel;
        const char* name;
    };
    const Case cases[] = {
        {1, trojan::LeakChannel::kAmplitude, "TI-amp"},
        {2, trojan::LeakChannel::kFrequency, "TI-freq"},
        {0, trojan::LeakChannel::kAmplitude, "TF (control)"},
    };
    for (const Case& c : cases) {
        // Capture several block transmissions; the platform only has 6
        // stored plaintexts, so cycle through them a few times (the attacker
        // sees the repeated public ciphertexts).
        std::vector<std::vector<trojan::PulseObservation>> blocks;
        for (int rep = 0; rep < 4; ++rep) {
            for (std::size_t b = 0; b < 6; ++b) {
                blocks.push_back(
                    bench.capture_transmission(lot.devices[c.device_index], b));
            }
        }
        const auto result = attacker.recover_key(blocks, c.channel, attack_rng);
        table.add_row({c.name,
                       c.channel == trojan::LeakChannel::kAmplitude ? "amplitude"
                                                                    : "frequency",
                       std::to_string(blocks.size()), io::fmt(result.separation, 1),
                       std::to_string(result.bit_errors(key_bits))});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf(
        "Expected: both Trojan devices leak the key with ~0 bit errors; the\n"
        "Trojan-free control shows no two-level structure (the attacker's\n"
        "receiver reports low separation and recovers nothing).\n");
    return 0;
}
