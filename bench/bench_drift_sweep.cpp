/// \file bench_drift_sweep.cpp
/// E15: the statistical health monitor under silicon drift. Sweeps an extra
/// mean shift applied to the measured DUTT PCMs (0, 0.5, 1, 2 sigmas of the
/// measured per-channel spread, raw space) on top of the config's baked-in
/// foundry process shift, runs a fresh pipeline per point, and reports the
/// health verdict, the drift detector's per-channel KS maximum, the KMM
/// effective sample size, and the per-boundary detection metrics. A final
/// point forces a KMM collapse (as in E14) to demonstrate the DEGRADED
/// verdict from the recorded B4->B3 fallback. Writes BENCH_drift_sweep.json.

#include <cmath>
#include <cstdio>
#include <optional>

#include "pipeline/experiment.hpp"
#include "pipeline/report.hpp"
#include "io/table.hpp"
#include "obs/health.hpp"
#include "obs/run_report.hpp"

namespace {

struct SweepPoint {
    double shift_sigma = 0.0;
    bool force_kmm_collapse = false;
};

}  // namespace

int main() {
    using namespace htd;

    core::ExperimentConfig config;
    // Reduced budget: five full pipeline runs in one binary.
    config.pipeline.monte_carlo_samples = 80;
    config.pipeline.synthetic_samples = 20000;

    const SweepPoint points[] = {
        {0.0, false}, {0.5, false}, {1.0, false}, {2.0, false}, {1.0, true},
    };

    std::printf("Drift sweep: %zu chips, extra DUTT PCM mean shift in "
                "measured sigmas\n\n",
                config.n_chips);
    io::Table table({"shift", "verdict", "max KS", "KMM ESS", "B3 acc", "B4 acc",
                     "B5 acc", "B4 health"});
    io::Json sweep = io::Json::array();

    for (const SweepPoint& point : points) {
        // Identical streams per point: only the applied drift changes.
        rng::Rng master(config.seed);
        rng::Rng fab_rng = master.split();
        rng::Rng sim_rng = master.split();
        rng::Rng pipe_rng = master.split();

        silicon::DuttDataset measured = core::fabricate_and_measure(config, fab_rng);

        // Shift every PCM channel by `shift_sigma` measured standard
        // deviations (raw space, before the pipeline's log transform).
        if (point.shift_sigma != 0.0) {
            for (std::size_t c = 0; c < measured.pcms.cols(); ++c) {
                double mean = 0.0;
                for (std::size_t r = 0; r < measured.pcms.rows(); ++r) {
                    mean += measured.pcms(r, c);
                }
                mean /= static_cast<double>(measured.pcms.rows());
                double var = 0.0;
                for (std::size_t r = 0; r < measured.pcms.rows(); ++r) {
                    const double d = measured.pcms(r, c) - mean;
                    var += d * d;
                }
                const double sigma =
                    std::sqrt(var / static_cast<double>(measured.pcms.rows() - 1));
                for (std::size_t r = 0; r < measured.pcms.rows(); ++r) {
                    measured.pcms(r, c) += point.shift_sigma * sigma;
                }
            }
        }

        core::PipelineConfig pipe_config = config.pipeline;
        if (point.force_kmm_collapse) {
            pipe_config.kmm_min_effective_sample_size = 1e9;
        }
        const core::ProcessPair processes =
            core::make_process_pair(config.process_shift_sigma);
        core::GoldenFreePipeline pipeline(
            pipe_config, silicon::SpiceSimulator(config.platform, processes.spice));
        pipeline.run_premanufacturing(sim_rng);
        pipeline.run_silicon_stage(measured.pcms, pipe_rng);
        pipeline.probe_incoming(measured);

        const obs::HealthMonitor& health = pipeline.health();
        const std::optional<obs::ProbeResult> drift = health.find("drift.pcm");
        double max_scaled_ks = 0.0;
        if (drift.has_value()) {
            for (const auto& [key, v] : drift->values) {
                if (key == "max_scaled_ks") max_scaled_ks = v;
            }
        }

        io::Json entry = io::Json::object();
        entry.set("shift_sigma", point.shift_sigma);
        entry.set("forced_kmm_collapse", point.force_kmm_collapse);
        entry.set("verdict", obs::health_level_name(health.verdict()));
        entry.set("max_scaled_ks", max_scaled_ks);
        entry.set("kmm_fallback_applied", pipeline.kmm_fallback_applied());
        entry.set("kmm_effective_sample_size", pipeline.kmm_effective_sample_size());
        entry.set("health", health.to_json());

        io::Json boundaries = io::Json::object();
        std::vector<std::string> row{
            io::fmt(point.shift_sigma, 1) + (point.force_kmm_collapse ? "*" : ""),
            obs::health_level_name(health.verdict()), io::fmt(max_scaled_ks, 2),
            io::fmt(pipeline.kmm_effective_sample_size(), 1)};
        for (const core::Boundary b :
             {core::Boundary::kB3, core::Boundary::kB4, core::Boundary::kB5}) {
            io::Json bj = io::Json::object();
            bj.set("health", core::boundary_health_name(
                                 pipeline.boundary_status(b).health));
            if (pipeline.boundary_ready(b)) {
                const ml::DetectionMetrics m = pipeline.evaluate(b, measured);
                bj.set("fp_rate", m.false_positive_rate());
                bj.set("fn_rate", m.false_negative_rate());
                bj.set("accuracy", m.accuracy());
                row.push_back(io::fmt(m.accuracy(), 2));
            } else {
                row.push_back("-");
            }
            boundaries.set(core::boundary_name(b), std::move(bj));
        }
        row.push_back(core::boundary_health_name(
            pipeline.boundary_status(core::Boundary::kB4).health));
        entry.set("boundaries", std::move(boundaries));
        sweep.push_back(std::move(entry));
        table.add_row(std::move(row));
    }

    std::printf("%s\n", table.str().c_str());
    std::printf("(* = KMM collapse forced; the verdict degrades via the "
                "kmm_weights and boundaries probes)\n");

    io::Json payload = io::Json::object();
    payload.set("n_chips", config.n_chips);
    payload.set("monte_carlo_samples", config.pipeline.monte_carlo_samples);
    payload.set("sweep", std::move(sweep));
    const std::string path = obs::write_bench_report("drift_sweep", std::move(payload));
    std::printf("wrote %s\n", path.c_str());
    return 0;
}
