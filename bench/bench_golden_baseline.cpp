/// \file bench_golden_baseline.cpp
/// Experiment E3: the conventional golden-chip detector (Fig. 1 / reference
/// [12]) that the golden-free method is measured against. The paper's
/// premise is that a 1-class classifier trained on measured golden-IC
/// fingerprints separates the populations essentially perfectly; this
/// harness reproduces that result and sweeps the number of golden chips the
/// defender is assumed to possess.

#include <cstdio>

#include "pipeline/experiment.hpp"
#include "io/table.hpp"

int main() {
    using namespace htd;

    core::ExperimentConfig config;
    rng::Rng master(config.seed);
    rng::Rng fab_rng = master.split();
    const silicon::DuttDataset measured = core::fabricate_and_measure(config, fab_rng);
    const auto tf_rows = measured.trojan_free_indices();

    std::printf("Golden-chip baseline (Fig. 1 / [12]): 1-class SVM on measured\n");
    std::printf("Trojan-free fingerprints, whitened feature space\n\n");

    io::Table table({"golden chips", "FP", "FN", "accuracy"});
    for (const std::size_t n_golden : {5, 10, 20, 30, 40}) {
        std::vector<std::size_t> subset(tf_rows.begin(),
                                        tf_rows.begin() + static_cast<long>(n_golden));
        ml::OneClassSvm::Options opts = config.pipeline.svm;
        opts.whiten = true;
        core::GoldenChipBaseline baseline(opts);
        baseline.fit(measured.fingerprints_at(subset));
        const ml::DetectionMetrics m = baseline.evaluate(measured);
        table.add_row({std::to_string(n_golden),
                       io::fmt_ratio(m.false_positives, m.trojan_infested_total),
                       io::fmt_ratio(m.false_negatives, m.trojan_free_total),
                       io::fmt(m.accuracy(), 3)});
    }
    std::printf("%s\n", table.str().c_str());

    std::printf(
        "Note: with all 40 golden chips the baseline separates the populations\n"
        "nearly perfectly, as reported by [12]; the golden-free pipeline's B5\n"
        "aims to match this without any golden chip (see bench_table1).\n");
    return 0;
}
