/// \file bench_ablation_regression.cpp
/// Ablation: the regression family behind g : m_p -> m_j. The paper used
/// MARS; this harness replays the silicon stage with a Gaussian-process bank
/// (and a plain per-output linear fit as the floor) and compares the S3/S4
/// boundaries each produces.

#include <cmath>
#include <cstdio>
#include <functional>

#include "pipeline/experiment.hpp"
#include "io/table.hpp"
#include "linalg/decompositions.hpp"
#include "ml/gpr.hpp"
#include "ml/kmm.hpp"

namespace {

using htd::linalg::Matrix;
using htd::linalg::Vector;

/// Per-output ordinary least squares with intercept, as the simplest family.
class LinearBank {
public:
    void fit(const Matrix& x, const Matrix& y) {
        const std::size_t n = x.rows();
        Matrix design(n, x.cols() + 1, 1.0);
        for (std::size_t r = 0; r < n; ++r) {
            for (std::size_t c = 0; c < x.cols(); ++c) design(r, c + 1) = x(r, c);
        }
        const htd::linalg::Qr qr(design);
        coef_ = Matrix(x.cols() + 1, y.cols());
        for (std::size_t j = 0; j < y.cols(); ++j) {
            coef_.set_col(j, qr.solve(y.col(j)));
        }
    }
    [[nodiscard]] Matrix predict_batch(const Matrix& x) const {
        Matrix out(x.rows(), coef_.cols());
        for (std::size_t r = 0; r < x.rows(); ++r) {
            for (std::size_t j = 0; j < coef_.cols(); ++j) {
                double acc = coef_(0, j);
                for (std::size_t c = 0; c < x.cols(); ++c) {
                    acc += coef_(c + 1, j) * x(r, c);
                }
                out(r, j) = acc;
            }
        }
        return out;
    }

private:
    Matrix coef_;
};

htd::ml::DetectionMetrics evaluate_boundary(const Matrix& dataset,
                                            const htd::ml::OneClassSvm::Options& opts,
                                            const htd::silicon::DuttDataset& measured) {
    htd::ml::OneClassSvm svm(opts);
    svm.fit(dataset);
    std::vector<bool> inside(measured.size());
    for (std::size_t i = 0; i < measured.size(); ++i) {
        inside[i] = svm.contains(measured.fingerprints.row(i));
    }
    return htd::ml::evaluate_detection(inside, measured.labels());
}

Matrix log_pcms(const Matrix& pcms) {
    Matrix out = pcms;
    for (std::size_t r = 0; r < out.rows(); ++r) {
        for (double& v : out.row_span(r)) v = std::log(v);
    }
    return out;
}

}  // namespace

int main() {
    using namespace htd;

    core::ExperimentConfig config;
    rng::Rng master(config.seed);
    rng::Rng fab_rng = master.split();
    rng::Rng sim_rng = master.split();
    rng::Rng resample_rng = master.split();

    const silicon::DuttDataset measured = core::fabricate_and_measure(config, fab_rng);
    const core::ProcessPair processes =
        core::make_process_pair(config.process_shift_sigma);
    const silicon::SpiceSimulator simulator(config.platform, processes.spice);
    const auto golden =
        simulator.simulate_golden(sim_rng, config.pipeline.monte_carlo_samples);
    const Matrix mc_log = log_pcms(golden.pcms);
    const Matrix silicon_log = log_pcms(measured.pcms);

    // Shared calibration (regression-independent).
    const ml::KernelMeanShiftCalibrator calibrator(config.pipeline.calibration);
    const auto calib = calibrator.calibrate(mc_log, silicon_log);
    const Matrix calibrated = ml::weighted_resample(
        calib.calibrated, calib.weights, config.pipeline.monte_carlo_samples,
        resample_rng);

    std::printf("Ablation: regression family for g (PCM -> fingerprints)\n\n");
    io::Table table({"family", "S3 FP", "S3 FN", "S4 FP", "S4 FN"});

    auto report = [&](const std::string& name, const Matrix& s3, const Matrix& s4) {
        const auto m3 = evaluate_boundary(s3, config.pipeline.svm, measured);
        const auto m4 = evaluate_boundary(s4, config.pipeline.svm, measured);
        table.add_row({name, io::fmt_ratio(m3.false_positives, 80),
                       io::fmt_ratio(m3.false_negatives, 40),
                       io::fmt_ratio(m4.false_positives, 80),
                       io::fmt_ratio(m4.false_negatives, 40)});
    };

    {
        ml::MarsBank bank(config.pipeline.mars);
        bank.fit(mc_log, golden.fingerprints);
        report("MARS (paper)", bank.predict_batch(silicon_log),
               bank.predict_batch(calibrated));
    }
    {
        ml::GprBank bank;
        bank.fit(mc_log, golden.fingerprints);
        report("Gaussian process", bank.predict_batch(silicon_log),
               bank.predict_batch(calibrated));
    }
    {
        LinearBank bank;
        bank.fit(mc_log, golden.fingerprints);
        report("linear OLS", bank.predict_batch(silicon_log),
               bank.predict_batch(calibrated));
    }
    std::printf("%s\n", table.str().c_str());
    std::printf(
        "Note: the GP's posterior mean reverts toward the training mean at the\n"
        "silicon operating point (a 4.5-sigma extrapolation), which displaces\n"
        "its predicted trusted region; MARS and the linear fit extrapolate the\n"
        "edge trend, which this covariate-shift setting rewards.\n");
    return 0;
}
