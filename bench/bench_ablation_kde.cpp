/// \file bench_ablation_kde.cpp
/// Ablation E5: tail-modeling choices. Sweeps the adaptive-KDE locality
/// parameter alpha, the bandwidth, and the kernel family, reporting the
/// B2/B5 metrics (the two boundaries trained on KDE-enhanced populations).

#include <cstdio>

#include "pipeline/experiment.hpp"
#include "io/table.hpp"

int main() {
    using namespace htd;

    std::printf("Ablation: adaptive-KDE tail modeling (stages behind S2/B2 and S5/B5)\n\n");

    io::Table table({"alpha", "bandwidth", "kernel", "B2 FP", "B2 FN", "B5 FP", "B5 FN"});
    const double alphas[] = {0.0, 0.25, 0.5, 0.75, 1.0};
    for (const double alpha : alphas) {
        core::ExperimentConfig cfg;
        cfg.pipeline.synthetic_samples = 20000;
        cfg.pipeline.kde_alpha = alpha;
        const core::ExperimentResult r = core::run_experiment(cfg);
        table.add_row({io::fmt(alpha, 2), io::fmt(cfg.pipeline.kde_bandwidth, 2),
                       "epanechnikov",
                       io::fmt_ratio(r.table1[1].false_positives, 80),
                       io::fmt_ratio(r.table1[1].false_negatives, 40),
                       io::fmt_ratio(r.table1[4].false_positives, 80),
                       io::fmt_ratio(r.table1[4].false_negatives, 40)});
    }
    for (const double h : {0.15, 0.5, 1.0, 0.0 /* Silverman */}) {
        core::ExperimentConfig cfg;
        cfg.pipeline.synthetic_samples = 20000;
        cfg.pipeline.kde_bandwidth = h;
        const core::ExperimentResult r = core::run_experiment(cfg);
        table.add_row({io::fmt(cfg.pipeline.kde_alpha, 2),
                       h == 0.0 ? "silverman" : io::fmt(h, 2), "epanechnikov",
                       io::fmt_ratio(r.table1[1].false_positives, 80),
                       io::fmt_ratio(r.table1[1].false_negatives, 40),
                       io::fmt_ratio(r.table1[4].false_positives, 80),
                       io::fmt_ratio(r.table1[4].false_negatives, 40)});
    }
    {
        core::ExperimentConfig cfg;
        cfg.pipeline.synthetic_samples = 20000;
        cfg.pipeline.kde_kernel = stats::KernelType::kGaussian;
        const core::ExperimentResult r = core::run_experiment(cfg);
        table.add_row({io::fmt(cfg.pipeline.kde_alpha, 2),
                       io::fmt(cfg.pipeline.kde_bandwidth, 2), "gaussian",
                       io::fmt_ratio(r.table1[1].false_positives, 80),
                       io::fmt_ratio(r.table1[1].false_negatives, 40),
                       io::fmt_ratio(r.table1[4].false_positives, 80),
                       io::fmt_ratio(r.table1[4].false_negatives, 40)});
    }
    {
        // EVT alternative: GPD peaks-over-threshold tail enhancement.
        core::ExperimentConfig cfg;
        cfg.pipeline.synthetic_samples = 20000;
        cfg.pipeline.tail_model = core::TailModel::kEvtPot;
        const core::ExperimentResult r = core::run_experiment(cfg);
        table.add_row({"-", "-", "evt-pot",
                       io::fmt_ratio(r.table1[1].false_positives, 80),
                       io::fmt_ratio(r.table1[1].false_negatives, 40),
                       io::fmt_ratio(r.table1[4].false_positives, 80),
                       io::fmt_ratio(r.table1[4].false_negatives, 40)});
    }
    std::printf("%s\n", table.str().c_str());
    std::printf(
        "Note: a too-wide bandwidth lets the synthetic tails reach the Trojan\n"
        "populations (B5 FP rises); a too-narrow one stops covering the real\n"
        "process spread (B5 FN rises). The defaults sit between the regimes.\n");
    return 0;
}
