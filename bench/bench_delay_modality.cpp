/// \file bench_delay_modality.cpp
/// Side-channel modality study: the paper fingerprints transmit power; the
/// same golden chip-free pipeline runs unchanged on path-delay fingerprints
/// (the modality of reference [7]) and on the fused power+delay vector
/// (multi-parameter analysis, references [10][13]). Prints the Table-1 row
/// set per modality.

#include <cstdio>

#include "pipeline/experiment.hpp"
#include "io/table.hpp"

namespace {

const char* mode_name(htd::silicon::FingerprintMode mode) {
    switch (mode) {
        case htd::silicon::FingerprintMode::kTransmitPower: return "power (paper)";
        case htd::silicon::FingerprintMode::kPathDelay: return "path delay [7]";
        case htd::silicon::FingerprintMode::kCombined: return "power + delay";
    }
    return "?";
}

}  // namespace

int main() {
    using namespace htd;

    std::printf("Side-channel modality study (cells are 'FP/80 FN/40')\n\n");
    io::Table table({"modality", "nm", "S1", "S2", "S3", "S4", "S5"});

    for (const silicon::FingerprintMode mode :
         {silicon::FingerprintMode::kTransmitPower,
          silicon::FingerprintMode::kPathDelay,
          silicon::FingerprintMode::kCombined}) {
        core::ExperimentConfig cfg;
        cfg.platform.fingerprint_mode = mode;
        cfg.pipeline.synthetic_samples = 20000;
        const core::ExperimentResult r = core::run_experiment(cfg);
        std::vector<std::string> cells{
            mode_name(mode), std::to_string(cfg.platform.fingerprint_dim())};
        for (const auto& m : r.table1) {
            cells.push_back(io::fmt_ratio(m.false_positives, 80) + " " +
                            io::fmt_ratio(m.false_negatives, 40));
        }
        table.add_row(cells);
    }
    std::printf("%s\n", table.str().c_str());
    std::printf(
        "The delay modality behaves differently in two instructive ways: the\n"
        "PCM (itself a delay) explains delay fingerprints almost perfectly, so\n"
        "B3 already covers most Trojan-free devices; and the Trojans' tap\n"
        "loads displace a *subset* of paths — a strongly transverse signature\n"
        "the trusted tubes exclude. Naive fusion (concatenation) keeps FP = 0\n"
        "but is more conservative: with 14 axes the fixed-bandwidth synthetic\n"
        "enhancement covers relatively less volume per axis, so more\n"
        "Trojan-free devices fall outside — the multi-parameter references\n"
        "[10][13] weight modalities for exactly this reason.\n");
    return 0;
}
