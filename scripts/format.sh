#!/usr/bin/env bash
# Format verification for the htd tree (never reformats; there is no
# bulk-apply mode on purpose — see DESIGN.md §11).
#
#   scripts/format.sh --check     # the gate: portable whitespace checks,
#                                 # plus clang-format --dry-run when the
#                                 # tool is installed
#
# The portable checks (tabs, trailing whitespace, CRLF, missing final
# newline) always run and always gate — they hold on any machine. The
# clang-format pass runs only where clang-format exists; on toolchains
# without it (the default GCC container) it is skipped with a notice so
# the gate stays deterministic across environments. Set
# HTD_FORMAT_STRICT=1 to fail when clang-format is unavailable.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ $# -ne 1 || "$1" != "--check" ]]; then
    echo "usage: scripts/format.sh --check" >&2
    exit 2
fi

# Tracked C++ sources plus the build/tooling text files we gate.
mapfile -t files < <(git ls-files '*.cpp' '*.hpp' '*.sh' 'CMakeLists.txt' \
    '*/CMakeLists.txt' '*.cmake')

fail=0

report() {
    echo "format.sh: $1" >&2
    fail=1
}

for f in "${files[@]}"; do
    [[ -f "$f" ]] || continue
    if grep -qP '\t' "$f"; then
        report "$f: tab characters (4-space indent only)"
    fi
    if grep -qE ' +$' "$f"; then
        report "$f: trailing whitespace"
    fi
    if grep -qP '\r' "$f"; then
        report "$f: CRLF line endings"
    fi
    if [[ -s "$f" && -n "$(tail -c 1 "$f")" ]]; then
        report "$f: missing final newline"
    fi
done

if command -v clang-format > /dev/null 2>&1; then
    echo "format.sh: clang-format $(clang-format --version | grep -oE '[0-9]+' | head -1) over ${#files[@]} files"
    for f in "${files[@]}"; do
        [[ "$f" == *.cpp || "$f" == *.hpp ]] || continue
        if ! clang-format --style=file --dry-run --Werror "$f" > /dev/null 2>&1; then
            report "$f: clang-format drift (clang-format --style=file \"$f\" to inspect)"
        fi
    done
elif [[ "${HTD_FORMAT_STRICT:-0}" == "1" ]]; then
    report "clang-format not found and HTD_FORMAT_STRICT=1"
else
    echo "format.sh: clang-format not found; skipping style pass (whitespace checks still gate)"
fi

if [[ $fail -ne 0 ]]; then
    echo "format.sh: FAILED" >&2
    exit 1
fi
echo "format.sh: clean"
