#!/usr/bin/env bash
# Tier-1 verification: configure + build a preset and run the full ctest
# suite. This is the gate every change must keep green. With no argument
# both gates run: the release preset first, then the same suite under
# ASan+UBSan (the sanitize preset), so memory and UB bugs cannot hide
# behind a green optimized build.
#
#   scripts/check.sh            # release, then sanitize
#   scripts/check.sh release    # just the release gate (build-release/)
#   scripts/check.sh sanitize   # just the ASan+UBSan gate (build-sanitize/)
set -euo pipefail
cd "$(dirname "$0")/.."

run_preset() {
    local preset="$1"
    echo "== check.sh: preset '$preset' =="
    cmake --preset "$preset"
    cmake --build --preset "$preset" -j "$(nproc)"
    ctest --preset "$preset"
}

if [[ $# -ge 1 ]]; then
    run_preset "$1"
else
    run_preset release
    run_preset sanitize
fi
