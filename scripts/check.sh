#!/usr/bin/env bash
# Tier-1 verification: configure + build a preset and run the full ctest
# suite. This is the gate every change must keep green. With no argument
# both gates run: the release preset first, then the same suite under
# ASan+UBSan (the sanitize preset), so memory and UB bugs cannot hide
# behind a green optimized build.
#
#   scripts/check.sh               # release, then sanitize
#   scripts/check.sh release       # just the release gate (build-release/)
#   scripts/check.sh sanitize      # just the ASan+UBSan gate (build-sanitize/)
#   scripts/check.sh --bench-gate  # perf-regression gate: rerun the release
#                                  # benches and diff the fresh BENCH_*.json
#                                  # against bench/baselines/ via bench_compare
#
# The bench gate only makes sense on a quiet machine; see
# bench/baselines/README.md for how baselines are blessed.
set -euo pipefail
cd "$(dirname "$0")/.."

run_preset() {
    local preset="$1"
    echo "== check.sh: preset '$preset' =="
    cmake --preset "$preset"
    cmake --build --preset "$preset" -j "$(nproc)"
    ctest --preset "$preset"
}

run_bench_gate() {
    echo "== check.sh: bench gate (release benches vs bench/baselines/) =="
    cmake --preset release
    cmake --build --preset release -j "$(nproc)" \
        --target bench_micro bench_roc bench_fault_sweep bench_drift_sweep \
                 bench_compare
    local out
    out="$(mktemp -d)"
    # Each bench writes BENCH_<name>.json into the CWD. bench_micro runs
    # with its default min-time so the candidate methodology matches the
    # blessed baseline's.
    (cd "$out" && "$OLDPWD"/build-release/bench/bench_micro)
    (cd "$out" && "$OLDPWD"/build-release/bench/bench_roc)
    (cd "$out" && "$OLDPWD"/build-release/bench/bench_fault_sweep)
    (cd "$out" && "$OLDPWD"/build-release/bench/bench_drift_sweep)
    ./build-release/tools/bench_compare --candidate-dir "$out"
}

if [[ $# -ge 1 && "$1" == "--bench-gate" ]]; then
    run_bench_gate
elif [[ $# -ge 1 ]]; then
    run_preset "$1"
else
    run_preset release
    run_preset sanitize
fi
