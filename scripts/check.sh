#!/usr/bin/env bash
# Tier-1 verification: configure + build the release preset and run the
# full ctest suite. This is the gate every change must keep green.
#
#   scripts/check.sh            # release preset (build-release/)
#   scripts/check.sh sanitize   # same gate under ASan+UBSan
set -euo pipefail
cd "$(dirname "$0")/.."

preset="${1:-release}"

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"
ctest --preset "$preset"
