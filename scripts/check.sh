#!/usr/bin/env bash
# Tier-1 verification: configure + build a preset and run the full ctest
# suite. This is the gate every change must keep green. With no argument
# both default gates run: the release preset first, then the same suite
# under ASan+UBSan (the sanitize preset), so memory and UB bugs cannot
# hide behind a green optimized build.
#
# Gate matrix (see DESIGN.md §11 for what each prong catches):
#
#   scripts/check.sh               # release, then sanitize
#   scripts/check.sh release       # just the release gate (build-release/)
#   scripts/check.sh sanitize      # just the ASan+UBSan gate (build-sanitize/)
#   scripts/check.sh tsan          # ThreadSanitizer gate (build-tsan/):
#                                  # the full suite, including the
#                                  # test_obs_concurrency stress tests, under
#                                  # -fsanitize=thread
#   scripts/check.sh --analyze     # static-analysis gate:
#                                  #   1. htd_lint project invariants
#                                  #      (tools/htd_lint, committed allowlist)
#                                  #   2. scripts/format.sh --check
#                                  #   3. clang-tidy over the tidy preset's
#                                  #      compile_commands.json (when
#                                  #      clang-tidy is installed; skipped
#                                  #      with a notice otherwise so the gate
#                                  #      is deterministic on GCC-only boxes)
#   scripts/check.sh --bench-gate  # perf-regression gate: rerun the release
#                                  # benches plus a cold htd_lint pass and
#                                  # diff the fresh BENCH_*.json against
#                                  # bench/baselines/ via bench_compare
#   scripts/check.sh --profile-smoke
#                                  # profiler smoke: run the quickstart with
#                                  # HTD_OBS_TRACE, validate the trace with
#                                  # htd_profile, and check the five
#                                  # pipeline stage spans and nonzero work
#                                  # counters are present (byte-identity of
#                                  # same-seed traces lives in the
#                                  # --determinism gate)
#   scripts/check.sh --artifact-smoke
#                                  # calibrate/score smoke: htd_score
#                                  # calibrate -> score against the saved
#                                  # htd.boundary.v1 artifact, require
#                                  # byte-identical B-score reports, then
#                                  # corrupt the artifact with the fault
#                                  # injector and require the typed
#                                  # rejection (exit code 2)
#   scripts/check.sh --journal-smoke
#                                  # decision-forensics smoke: run the
#                                  # calibrate -> score sequence with
#                                  # --journal, validate the htd.events.v1
#                                  # journal with htd_explain, and query one
#                                  # chip's chip_scored trail (cross-run
#                                  # byte-identity lives in --determinism)
#   scripts/check.sh --determinism # determinism gate (DESIGN.md §16): every
#                                  # same-seed byte-identity contract in one
#                                  # prong. Runs the quickstart twice with a
#                                  # JSON sink + normalized trace/run-report
#                                  # observability and cmp's the run report,
#                                  # trace and stdout; then runs the
#                                  # htd_score calibrate -> score sequence
#                                  # twice with --journal + normalized
#                                  # events and cmp's the boundary artifact,
#                                  # fingerprints CSV, both B-score reports
#                                  # and the journal
#
# All presets build with HTD_WARNINGS_AS_ERRORS=ON: a new warning anywhere
# in src/, tools/, bench/ or tests/ fails the build rather than scrolling
# by. The bench gate only makes sense on a quiet machine; see
# bench/baselines/README.md for how baselines are blessed.
set -euo pipefail
cd "$(dirname "$0")/.."

run_preset() {
    local preset="$1"
    echo "== check.sh: preset '$preset' =="
    cmake --preset "$preset"
    cmake --build --preset "$preset" -j "$(nproc)"
    ctest --preset "$preset"
}

run_bench_gate() {
    echo "== check.sh: bench gate (release benches vs bench/baselines/) =="
    cmake --preset release
    cmake --build --preset release -j "$(nproc)" \
        --target bench_micro bench_roc bench_fault_sweep bench_drift_sweep \
                 bench_score_throughput bench_journal bench_compare htd_lint
    local out
    out="$(mktemp -d)"
    # Each bench writes BENCH_<name>.json into the CWD. bench_micro runs
    # with its default min-time so the candidate methodology matches the
    # blessed baseline's.
    (cd "$out" && "$OLDPWD"/build-release/bench/bench_micro)
    (cd "$out" && "$OLDPWD"/build-release/bench/bench_roc)
    (cd "$out" && "$OLDPWD"/build-release/bench/bench_fault_sweep)
    (cd "$out" && "$OLDPWD"/build-release/bench/bench_drift_sweep)
    (cd "$out" && "$OLDPWD"/build-release/bench/bench_score_throughput)
    (cd "$out" && "$OLDPWD"/build-release/bench/bench_journal)
    # The lint artifact is htd_lint's own v2 JSON report; --no-cache and
    # --jobs 1 so the gated pass wall times measure the analyzer, not the
    # cache state or the box's core count.
    ./build-release/tools/htd_lint/htd_lint --root . --json --no-cache --jobs 1 \
        > "$out/BENCH_lint.json"
    # --strict-waivers: a waiver that stops matching anything must be
    # deleted in the same change that fixed the regression it covered.
    ./build-release/tools/bench_compare --candidate-dir "$out" --strict-waivers
}

run_artifact_smoke() {
    echo "== check.sh: artifact smoke (htd_score calibrate/score/inject) =="
    cmake --preset release
    cmake --build --preset release -j "$(nproc)" --target htd_score
    local out
    out="$(mktemp -d)"
    local score=./build-release/tools/htd_score/htd_score
    # Calibrate once: persist the artifact plus the measured fingerprints
    # and the in-process pipeline's B-scores as the reference report.
    "$score" calibrate --artifact "$out/boundary.json" \
        --fingerprints "$out/fingerprints.csv" --bscores "$out/ref.json" \
        --chips 8 --mc 40 --synthetic 5000
    # Score from the artifact alone: the report must be byte-identical to
    # the calibrate-time one (the bitwise-parity contract, DESIGN.md §14).
    # Exit 0 (all clean) and 1 (devices flagged by the verdict boundary)
    # are both healthy outcomes at this tiny calibration budget; anything
    # else is a real failure.
    local score_rc=0
    "$score" score --artifact "$out/boundary.json" \
        --fingerprints "$out/fingerprints.csv" \
        --bscores "$out/scored.json" || score_rc=$?
    if [[ "$score_rc" != 0 && "$score_rc" != 1 ]]; then
        echo "check.sh: artifact smoke: score exited $score_rc, want 0 or 1" >&2
        return 1
    fi
    if ! cmp "$out/ref.json" "$out/scored.json"; then
        echo "check.sh: artifact smoke: B-score reports differ" >&2
        return 1
    fi
    # Corrupt the artifact (seeded truncation — a strict prefix, so the
    # parse must fail) and require the typed rejection exit code.
    "$score" inject --artifact "$out/boundary.json" --fault truncate --seed 7
    local rc=0
    "$score" score --artifact "$out/boundary.json" \
        --fingerprints "$out/fingerprints.csv" \
        --bscores "$out/rejected.json" || rc=$?
    if [[ "$rc" != 2 ]]; then
        echo "check.sh: artifact smoke: corrupt artifact exited $rc, want 2" >&2
        return 1
    fi
    rm -rf "$out"
    echo "== check.sh: artifact smoke OK =="
}

run_journal_smoke() {
    echo "== check.sh: journal smoke (htd_score --journal + htd_explain) =="
    cmake --preset release
    cmake --build --preset release -j "$(nproc)" --target htd_score htd_explain
    local out
    out="$(mktemp -d)"
    local score=./build-release/tools/htd_score/htd_score
    local explain=./build-release/tools/htd_explain/htd_explain
    # One calibrate -> score sequence with --journal; the cross-run
    # byte-identity of normalized journals is the --determinism gate's job.
    # Score may exit 1 (devices flagged) at this tiny calibration budget;
    # that is a verdict, not an error.
    "$score" calibrate \
        --artifact "$out/boundary.json" \
        --fingerprints "$out/fingerprints.csv" \
        --bscores "$out/ref.json" \
        --chips 8 --mc 40 --synthetic 5000 \
        --journal "$out/journal.jsonl"
    local rc=0
    "$score" score \
        --artifact "$out/boundary.json" \
        --fingerprints "$out/fingerprints.csv" \
        --bscores "$out/scored.json" \
        --journal "$out/journal.jsonl" || rc=$?
    if [[ "$rc" != 0 && "$rc" != 1 ]]; then
        echo "check.sh: journal smoke: score exited $rc, want 0 or 1" >&2
        return 1
    fi
    # Structural validation: every record parses, carries the schema tag,
    # a registered kind and a strictly increasing sequence — across the
    # calibrate and score appends to the same file.
    "$explain" validate "$out/journal.jsonl"
    # One chip's forensic trail must surface its chip_scored event.
    if ! "$explain" query "$out/journal.jsonl" --chip 0 \
            --kind chip_scored | grep -q chip_scored; then
        echo "check.sh: journal smoke: no chip_scored event for chip 0" >&2
        return 1
    fi
    rm -rf "$out"
    echo "== check.sh: journal smoke OK =="
}

run_determinism() {
    echo "== check.sh: determinism gate (same-seed byte-identity) =="
    cmake --preset release
    cmake --build --preset release -j "$(nproc)" \
        --target quickstart htd_score
    local out
    out="$(mktemp -d)"
    local run f
    # Prong 1: the quickstart, twice, with everything it can serialize made
    # deterministic — JSON sink, normalized trace and (the same flag)
    # normalized run-report observability. The whole run report, the trace
    # and stdout must be byte-identical: any clock, iteration-order or RNG
    # leak anywhere in the pipeline or the obs layer shows up as a cmp
    # diff here. This is the gate DESIGN.md §16 pairs with htd_lint's
    # determinism passes: the lint rules catch the patterns statically,
    # this catches whatever slips through at runtime.
    for run in a b; do
        mkdir "$out/$run"
        (cd "$out/$run" && HTD_OBS=json HTD_OBS_TRACE=trace.json \
            HTD_OBS_TRACE_NORMALIZE=1 \
            "$OLDPWD"/build-release/examples/quickstart > stdout.txt)
    done
    for f in quickstart_run_report.json trace.json stdout.txt; do
        if ! cmp "$out/a/$f" "$out/b/$f"; then
            echo "check.sh: determinism: same-seed quickstart $f differs" >&2
            return 1
        fi
    done
    # Prong 2: two same-seed calibrate -> score sequences with --journal
    # and normalized events (ts_ns = seq). The boundary artifact, the
    # measured fingerprints, both B-score reports and the htd.events.v1
    # journal carry no wall-clock state, so all of them must match
    # byte-for-byte across runs (DESIGN.md §15 for the journal contract).
    local score=./build-release/tools/htd_score/htd_score
    local rc
    for run in a b; do
        HTD_OBS_JOURNAL_NORMALIZE=1 "$score" calibrate \
            --artifact "$out/boundary_$run.json" \
            --fingerprints "$out/fingerprints_$run.csv" \
            --bscores "$out/ref_$run.json" \
            --chips 8 --mc 40 --synthetic 5000 \
            --journal "$out/journal_$run.jsonl"
        rc=0
        HTD_OBS_JOURNAL_NORMALIZE=1 "$score" score \
            --artifact "$out/boundary_$run.json" \
            --fingerprints "$out/fingerprints_$run.csv" \
            --bscores "$out/scored_$run.json" \
            --journal "$out/journal_$run.jsonl" || rc=$?
        if [[ "$rc" != 0 && "$rc" != 1 ]]; then
            echo "check.sh: determinism: score exited $rc, want 0 or 1" >&2
            return 1
        fi
    done
    for f in boundary.json fingerprints.csv ref.json scored.json \
             journal.jsonl; do
        if ! cmp "$out/${f%.*}_a.${f##*.}" "$out/${f%.*}_b.${f##*.}"; then
            echo "check.sh: determinism: same-seed $f artifacts differ" >&2
            return 1
        fi
    done
    rm -rf "$out"
    echo "== check.sh: determinism gate OK =="
}

run_profile_smoke() {
    echo "== check.sh: profile smoke (trace export + htd_profile) =="
    cmake --preset release
    cmake --build --preset release -j "$(nproc)" --target quickstart htd_profile
    local out
    out="$(mktemp -d)"
    # One normalized run feeds the structural checks; cross-run trace
    # byte-identity is the --determinism gate's job.
    (cd "$out" && HTD_OBS=json HTD_OBS_TRACE=trace_a.json \
        HTD_OBS_TRACE_NORMALIZE=1 "$OLDPWD"/build-release/examples/quickstart \
        > /dev/null)
    # --validate exits nonzero on a malformed trace, which fails the
    # assignment under set -e; the JSON report then feeds the span/work
    # presence checks.
    local check
    check="$(./build-release/tools/htd_profile/htd_profile --validate \
        "$out/trace_a.json" --json)"
    local stage
    for stage in pipeline.monte_carlo mars.bank_fit kmm.calibrate \
                 kde.adaptive_sample_n svm.fit; do
        if ! grep -qF "\"$stage\"" <<< "$check"; then
            echo "check.sh: profile smoke: stage span '$stage' missing" >&2
            return 1
        fi
    done
    if ! grep -qE '"work\.[a-z0-9_]+\.[a-z0-9_]+": [1-9]' <<< "$check"; then
        echo "check.sh: profile smoke: no nonzero work counters in trace" >&2
        return 1
    fi
    rm -rf "$out"
    echo "== check.sh: profile smoke OK =="
}

run_analyze() {
    echo "== check.sh: static-analysis gate =="

    # 1. htd_lint: project invariants clang-tidy cannot express (seeded
    #    RNGs, obs-only output, centralized NaN screening, header hygiene,
    #    checked stream opens, module layering + include cycles, must-use
    #    result discards, [[nodiscard]] coverage). Built through the
    #    release preset so the gate shares its cache; htd_lint's own
    #    result cache lives in build/htd_lint.cache.
    echo "-- htd_lint --"
    cmake --preset release > /dev/null
    cmake --build --preset release -j "$(nproc)" --target htd_lint
    ./build-release/tools/htd_lint/htd_lint --root .

    # 2. Format verification (portable whitespace checks always; the
    #    clang-format pass where the tool exists).
    echo "-- format --"
    scripts/format.sh --check

    # 3. clang-tidy over the tidy preset's compile_commands.json. The
    #    curated .clang-tidy runs everything as errors; without clang-tidy
    #    installed this prong is skipped loudly (the htd_lint + warning-
    #    as-error gates above still hold).
    echo "-- clang-tidy --"
    cmake --preset tidy > /dev/null
    if command -v clang-tidy > /dev/null 2>&1; then
        local sources
        mapfile -t sources < <(git ls-files 'src/*.cpp' 'tools/*.cpp' \
            'bench/*.cpp' 'tests/*.cpp')
        if command -v run-clang-tidy > /dev/null 2>&1; then
            run-clang-tidy -p build-tidy -quiet "${sources[@]}"
        else
            clang-tidy -p build-tidy --quiet "${sources[@]}"
        fi
    else
        echo "check.sh: clang-tidy not found; skipping (htd_lint, format and"
        echo "          warnings-as-errors gates above still ran)"
    fi

    echo "== check.sh: static-analysis gate OK =="
}

if [[ $# -ge 1 && "$1" == "--bench-gate" ]]; then
    run_bench_gate
elif [[ $# -ge 1 && "$1" == "--analyze" ]]; then
    run_analyze
elif [[ $# -ge 1 && "$1" == "--profile-smoke" ]]; then
    run_profile_smoke
elif [[ $# -ge 1 && "$1" == "--artifact-smoke" ]]; then
    run_artifact_smoke
elif [[ $# -ge 1 && "$1" == "--journal-smoke" ]]; then
    run_journal_smoke
elif [[ $# -ge 1 && "$1" == "--determinism" ]]; then
    run_determinism
elif [[ $# -ge 1 ]]; then
    run_preset "$1"
else
    run_preset release
    run_preset sanitize
fi
