#!/usr/bin/env bash
# One-shot CI entrypoint: every gate a change must pass, in dependency
# order, with a machine-readable summary at the end.
#
#   scripts/ci.sh [--summary PATH] [--skip-bench-gate]
#
# Stages (each maps onto a scripts/check.sh prong — see that file and
# DESIGN.md §11 for what every prong catches):
#
#   release     configure + build the release preset, full ctest suite
#   sanitize    the same suite under ASan+UBSan
#   analyze     scripts/check.sh --analyze (htd_lint invariants + layering,
#               format check, clang-tidy where installed)
#   profile     scripts/check.sh --profile-smoke (quickstart under
#               HTD_OBS_TRACE: htd_profile validation, the five pipeline
#               stage spans, nonzero work counters)
#   artifact    scripts/check.sh --artifact-smoke (htd_score calibrate ->
#               score round trip with byte-identical B-score reports, then
#               a fault-injected artifact must be rejected with exit 2)
#   journal     scripts/check.sh --journal-smoke (calibrate -> score with
#               --journal: htd_explain validation, one chip's chip_scored
#               trail queryable)
#   determinism scripts/check.sh --determinism (every same-seed
#               byte-identity contract in one gate, DESIGN.md §16:
#               quickstart run report + normalized trace + stdout, and the
#               calibrate -> score artifact/fingerprints/B-score/journal
#               set, each cmp'd across two runs)
#   bench-gate  scripts/check.sh --bench-gate (perf/quality regression
#               diff against bench/baselines/ under --strict-waivers;
#               skippable — latency baselines only gate on comparable,
#               quiet hardware)
#
# Every stage runs even when an earlier one fails, so one CI round reports
# every broken gate instead of the first. Exit is nonzero when any stage
# failed. The summary is a JSON object on stdout (and to --summary PATH):
#
#   {"tool": "ci", "ok": false,
#    "stages": [{"name": "release", "ok": true, "seconds": 123}, ...]}
set -uo pipefail
cd "$(dirname "$0")/.."

summary_path=""
skip_bench=0
for arg in "$@"; do
    case "$arg" in
        --summary)
            summary_path="__NEXT__"
            ;;
        --skip-bench-gate)
            skip_bench=1
            ;;
        --help|-h)
            sed -n '2,34p' "$0" | sed 's/^# \{0,1\}//'
            exit 0
            ;;
        *)
            if [[ "$summary_path" == "__NEXT__" ]]; then
                summary_path="$arg"
            else
                echo "ci.sh: unknown argument '$arg'" >&2
                exit 2
            fi
            ;;
    esac
done
if [[ "$summary_path" == "__NEXT__" ]]; then
    echo "ci.sh: --summary needs a path" >&2
    exit 2
fi

stage_names=()
stage_oks=()
stage_secs=()
overall_ok=1

run_stage() {
    local name="$1"
    shift
    echo "=== ci.sh: stage '$name' ==="
    local start end ok
    start=$(date +%s)
    if "$@"; then
        ok=1
    else
        ok=0
        overall_ok=0
    fi
    end=$(date +%s)
    stage_names+=("$name")
    stage_oks+=("$ok")
    stage_secs+=($((end - start)))
    if [[ "$ok" == 1 ]]; then
        echo "=== ci.sh: stage '$name' OK ($((end - start))s) ==="
    else
        echo "=== ci.sh: stage '$name' FAILED ($((end - start))s) ===" >&2
    fi
}

run_stage release scripts/check.sh release
run_stage sanitize scripts/check.sh sanitize
run_stage analyze scripts/check.sh --analyze
run_stage profile scripts/check.sh --profile-smoke
run_stage artifact scripts/check.sh --artifact-smoke
run_stage journal scripts/check.sh --journal-smoke
run_stage determinism scripts/check.sh --determinism
if [[ "$skip_bench" == 0 ]]; then
    # The latency baselines only hold on a quiet machine, and this stage
    # starts seconds after the build+test stages saturated every core —
    # let the CPU (frequency/thermal state) and page cache settle first.
    # HTD_CI_BENCH_SETTLE overrides the settle window (seconds, 0 = none).
    settle="${HTD_CI_BENCH_SETTLE:-60}"
    if [[ "$settle" -gt 0 ]]; then
        echo "=== ci.sh: settling ${settle}s before 'bench-gate' ==="
        sleep "$settle"
    fi
    run_stage bench-gate scripts/check.sh --bench-gate
else
    echo "=== ci.sh: stage 'bench-gate' skipped (--skip-bench-gate) ==="
fi

summary="{\"tool\": \"ci\", \"ok\": $( ((overall_ok)) && echo true || echo false ), \"stages\": ["
for i in "${!stage_names[@]}"; do
    [[ $i -gt 0 ]] && summary+=", "
    summary+="{\"name\": \"${stage_names[$i]}\", "
    summary+="\"ok\": $( [[ "${stage_oks[$i]}" == 1 ]] && echo true || echo false ), "
    summary+="\"seconds\": ${stage_secs[$i]}}"
done
summary+="]}"

echo "$summary"
if [[ -n "$summary_path" ]]; then
    echo "$summary" > "$summary_path"
fi
((overall_ok)) || exit 1
exit 0
