/// \file custom_pcm_study.cpp
/// Extending the platform beyond the paper: the DAC'14 experiment used a
/// single path-delay PCM (np = 1). Real wafers carry several e-test
/// structures; this example adds the kerf ring-oscillator PCM (np = 2) and
/// compares detection quality, illustrating how to reconfigure the platform
/// and re-run the pipeline with a custom PCM set.

#include <cstdio>

#include "pipeline/experiment.hpp"
#include "io/table.hpp"

namespace {

std::array<htd::ml::DetectionMetrics, 5> run_with(bool ring_oscillator,
                                                  std::uint64_t seed) {
    htd::core::ExperimentConfig config;
    config.seed = seed;
    config.platform.include_ring_oscillator = ring_oscillator;
    config.pipeline.synthetic_samples = 20000;
    return htd::core::run_experiment(config).table1;
}

}  // namespace

int main() {
    using namespace htd;

    std::printf("PCM study: path-delay only (np=1, the paper) vs path delay +\n");
    std::printf("ring oscillator (np=2)\n\n");

    const auto with_one = run_with(false, 0xda145eedULL);
    const auto with_two = run_with(true, 0xda145eedULL);

    io::Table table({"boundary", "np=1 FP", "np=1 FN", "np=2 FP", "np=2 FN"});
    for (std::size_t b = 0; b < 5; ++b) {
        table.add_row({core::boundary_name(core::kAllBoundaries[b]),
                       io::fmt_ratio(with_one[b].false_positives, 80),
                       io::fmt_ratio(with_one[b].false_negatives, 40),
                       io::fmt_ratio(with_two[b].false_positives, 80),
                       io::fmt_ratio(with_two[b].false_negatives, 40)});
    }
    std::printf("%s\n", table.str().c_str());

    std::printf(
        "A second PCM gives the regression bank a second silicon anchor: the\n"
        "predicted trusted region tracks two process directions instead of\n"
        "one, which typically lowers the false-alarm (FN) counts of B3-B5.\n");
    return 0;
}
