/// \file spice_pcm_demo.cpp
/// Device-level view of the trusted simulation model: builds the on-die
/// path-delay PCM as a transistor-level netlist, runs the mini-SPICE
/// transient at several process corners, prints the waveform-derived delays
/// next to the analytic model the Monte Carlo pipeline uses, and dumps one
/// waveform to CSV.

#include <cstdio>

#include "circuit/spice.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "process/variation_model.hpp"

int main() {
    using namespace htd;

    circuit::PcmPath::Options opts;
    opts.stages = 4;  // short chain keeps the demo fast

    const auto model = process::ProcessVariationModel::default_350nm();
    struct Corner {
        const char* name;
        process::ProcessPoint point;
    };
    const Corner corners[] = {
        {"nominal", process::nominal_350nm()},
        {"slow (-2 sigma)",
         model.shifted(process::ProcessShift::slow_corner(2.0)).nominal()},
        {"fast (+2 sigma)",
         model.shifted(process::ProcessShift::fast_corner(2.0)).nominal()},
    };

    std::printf("PCM path (%zu inverters + wire RC) — transistor-level transient vs\n",
                opts.stages);
    std::printf("the analytic Elmore model used by the Monte Carlo pipeline\n\n");

    io::Table table({"corner", "spice delay [ps]", "analytic delay [ps]", "ratio"});
    for (const Corner& corner : corners) {
        const double spice = circuit::spice_pcm_delay_ns(corner.point, opts) * 1e3;
        const double analytic = circuit::PcmPath(opts).delay_ns(corner.point) * 1e3;
        table.add_row({corner.name, io::fmt(spice, 2), io::fmt(analytic, 2),
                       io::fmt(spice / analytic, 3)});
    }
    std::printf("%s\n", table.str().c_str());

    // Dump the nominal-corner waveforms of the input and final output.
    circuit::Netlist net = circuit::build_pcm_path_netlist(opts);
    circuit::SpiceEngine engine(net);
    const auto tr = engine.transient(process::nominal_350nm(), 0.4e-9, 0.5e-12);
    const std::size_t in_node = net.node("in");
    // Append-built node name: inlined string operator+ trips GCC 12's
    // spurious -Wrestrict at -O2 (PR 105329).
    std::string out_name = "n";
    out_name += std::to_string(opts.stages);
    const std::size_t out_node = net.node(out_name);
    linalg::Matrix wave(tr.time.size(), 3);
    for (std::size_t k = 0; k < tr.time.size(); ++k) {
        wave(k, 0) = tr.time[k] * 1e12;  // ps
        wave(k, 1) = tr.voltages(k, in_node);
        wave(k, 2) = tr.voltages(k, out_node);
    }
    io::write_csv("pcm_waveform.csv", wave, {"t_ps", "v_in", "v_out"});
    std::printf("wrote pcm_waveform.csv (%zu time points)\n", tr.time.size());
    std::printf(
        "\nThe analytic model overestimates absolute delay (it averages rise and\n"
        "fall and lumps the wire) but tracks process variation monotonically —\n"
        "which is all the statistical fingerprinting pipeline relies on.\n");
    return 0;
}
