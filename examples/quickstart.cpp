/// \file quickstart.cpp
/// Minimal end-to-end use of the library:
///   1. describe the platform (key, fingerprint blocks, Trojan strengths),
///   2. fabricate and measure a small lot of devices under Trojan test,
///   3. run the golden chip-free pipeline (no trusted chips involved),
///   4. classify every device against the best boundary, B5,
///   5. write a structured RunReport (quickstart_run_report.json) with the
///      timed stage spans and per-boundary metrics.
///
/// Build & run:  ./build/examples/quickstart
/// Set HTD_OBS=text to stream the stage spans to stderr while it runs.

#include <cstdio>

#include "obs/trace_export.hpp"
#include "pipeline/experiment.hpp"
#include "pipeline/report.hpp"

int main() {
    using namespace htd;

    // 1. Platform + experiment description. paper_default() gives the DAC'14
    //    setup: AES-128 + UWB transmitter, nm = 6 transmit-power
    //    fingerprints, np = 1 path-delay PCM.
    core::ExperimentConfig config;
    config.n_chips = 12;                         // small demo lot: 36 devices
    config.pipeline.synthetic_samples = 20000;   // faster than the paper's 1e5

    // Collect spans + metrics for the RunReport unless the HTD_OBS
    // environment variable already picked a sink (e.g. HTD_OBS=text).
    if (obs::Registry::global().sink() == obs::SinkKind::kOff) {
        config.pipeline.obs.sink = obs::SinkKind::kJson;
    }

    // 2. Fabricate and measure the devices under Trojan test. In a real
    //    deployment this is the tester output; here the virtual fab plays
    //    the (untrusted) foundry.
    rng::Rng rng(config.seed);
    rng::Rng fab_rng = rng.split();
    const silicon::DuttDataset devices = core::fabricate_and_measure(config, fab_rng);
    std::printf("measured %zu devices (%zu PCMs, %zu fingerprints each)\n",
                devices.size(), devices.pcms.cols(), devices.fingerprints.cols());

    // 3. The golden-free pipeline: Monte Carlo simulation of the *trusted*
    //    design model, PCM->fingerprint regression, calibration to the
    //    silicon operating point, KDE tail enhancement.
    const core::ProcessPair processes =
        core::make_process_pair(config.process_shift_sigma);
    core::GoldenFreePipeline pipeline(
        config.pipeline, silicon::SpiceSimulator(config.platform, processes.spice));
    rng::Rng sim_rng = rng.split();
    rng::Rng pipe_rng = rng.split();
    pipeline.run_premanufacturing(sim_rng);
    pipeline.run_silicon_stage(devices.pcms, pipe_rng);

    // 4. Trojan test: devices inside the B5 trusted region are declared
    //    Trojan-free.
    const std::vector<bool> verdicts =
        pipeline.classify(core::Boundary::kB5, devices.fingerprints);
    std::printf("\n%-8s %-18s %-14s %s\n", "device", "actual", "verdict", "correct");
    std::size_t correct = 0;
    for (std::size_t i = 0; i < devices.size(); ++i) {
        const bool actually_free =
            devices.variants[i] == trojan::DesignVariant::kTrojanFree;
        const bool ok = verdicts[i] == actually_free;
        correct += ok ? 1 : 0;
        std::printf("%-8zu %-18s %-14s %s\n", i,
                    trojan::variant_name(devices.variants[i]).c_str(),
                    verdicts[i] ? "trojan-free" : "TROJAN", ok ? "yes" : "NO");
    }
    std::printf("\n%zu/%zu devices classified correctly — with zero golden chips.\n",
                correct, devices.size());

    // 5. Structured run record: config, all five boundaries with their
    //    detection metrics on this lot, calibration diagnostics, and the
    //    timed spans/counters of everything above.
    const obs::RunReport report =
        core::pipeline_run_report(pipeline, "quickstart", &devices);
    report.write("quickstart_run_report.json");
    std::printf("wrote quickstart_run_report.json (%zu spans captured)\n",
                obs::Registry::global().span_count());

    // 6. Optional execution trace: HTD_OBS_TRACE=<file>.json writes the
    //    span tree as Chrome/Perfetto trace-event JSON (see DESIGN.md §13
    //    and the README "Profiling a run" walkthrough).
    const std::string trace = obs::write_trace_if_configured();
    if (!trace.empty()) std::printf("wrote trace %s\n", trace.c_str());
    return 0;
}
