/// \file wireless_crypto_audit.cpp
/// The paper's full scenario as a security-audit workflow: a batch of 40
/// chips (each hosting the Trojan-free design and two Trojan-infested
/// versions, 120 devices total) comes back from an untrusted foundry. The
/// auditor has the trusted design database (Spice model) and the tester's
/// PCM + transmit-power measurements, and must decide per device whether it
/// is Trojan-infested — without a single golden chip.
///
/// The audit report shows every stage of the decision: all five boundaries'
/// verdicts per device, the per-boundary summary, and a CSV export.

#include <cstdio>
#include <string>

#include "pipeline/experiment.hpp"
#include "pipeline/report.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"

int main() {
    using namespace htd;

    core::ExperimentConfig config;  // the paper's 40-chip batch
    rng::Rng master(config.seed);
    rng::Rng fab_rng = master.split();
    rng::Rng sim_rng = master.split();
    rng::Rng pipe_rng = master.split();

    std::printf("=== Wireless cryptographic IC audit ===\n");
    std::printf("batch: %zu chips x 3 design versions = %zu devices under test\n",
                config.n_chips, 3 * config.n_chips);
    std::printf("root of trust: design database + on-die PCMs (no golden chips)\n\n");

    const silicon::DuttDataset devices = core::fabricate_and_measure(config, fab_rng);

    const core::ProcessPair processes =
        core::make_process_pair(config.process_shift_sigma);
    core::GoldenFreePipeline pipeline(
        config.pipeline, silicon::SpiceSimulator(config.platform, processes.spice));

    std::printf("[stage 1] pre-manufacturing: Monte Carlo of %zu golden devices,\n",
                config.pipeline.monte_carlo_samples);
    std::printf("          MARS bank g : PCM -> fingerprints, boundaries B1/B2\n");
    pipeline.run_premanufacturing(sim_rng);
    double r2 = 0.0;
    for (std::size_t j = 0; j < pipeline.regressions().output_dim(); ++j) {
        r2 += pipeline.regressions().model(j).r_squared();
    }
    std::printf("          mean regression R^2 = %.3f\n\n",
                r2 / static_cast<double>(pipeline.regressions().output_dim()));

    std::printf("[stage 2] silicon measurement: PCM calibration + boundaries B3..B5\n");
    pipeline.run_silicon_stage(devices.pcms, pipe_rng);
    std::printf("          kernel-mean-shift iterations: %zu\n\n",
                pipeline.calibration_result()->iterations);

    std::printf("[stage 3] Trojan test\n\n");
    std::array<std::vector<bool>, 5> verdicts;
    for (std::size_t b = 0; b < 5; ++b) {
        verdicts[b] =
            pipeline.classify(core::kAllBoundaries[b], devices.fingerprints);
    }

    // Per-boundary summary.
    io::Table summary({"boundary", "FP (missed Trojans)", "FN (false alarms)",
                       "accuracy"});
    for (std::size_t b = 0; b < 5; ++b) {
        const auto m = pipeline.evaluate(core::kAllBoundaries[b], devices);
        summary.add_row({core::boundary_name(core::kAllBoundaries[b]),
                         io::fmt_ratio(m.false_positives, m.trojan_infested_total),
                         io::fmt_ratio(m.false_negatives, m.trojan_free_total),
                         io::fmt(m.accuracy(), 3)});
    }
    std::printf("%s\n", summary.str().c_str());

    // Devices flagged by the recommended boundary (B5).
    std::printf("devices flagged Trojan-infested by B5:\n ");
    std::size_t flagged = 0;
    for (std::size_t i = 0; i < devices.size(); ++i) {
        if (!verdicts[4][i]) {
            std::printf(" %zu", i);
            ++flagged;
        }
    }
    std::printf("\n  (%zu of %zu; ground truth has %zu Trojan-infested)\n\n", flagged,
                devices.size(), devices.size() - devices.trojan_free_indices().size());

    // CSV export: one row per device with PCM, fingerprints, all verdicts.
    linalg::Matrix report(devices.size(), 1 + devices.pcms.cols() +
                                              devices.fingerprints.cols() + 5);
    for (std::size_t i = 0; i < devices.size(); ++i) {
        std::size_t c = 0;
        report(i, c++) =
            devices.variants[i] == trojan::DesignVariant::kTrojanFree ? 0.0 : 1.0;
        for (std::size_t p = 0; p < devices.pcms.cols(); ++p) {
            report(i, c++) = devices.pcms(i, p);
        }
        for (std::size_t f = 0; f < devices.fingerprints.cols(); ++f) {
            report(i, c++) = devices.fingerprints(i, f);
        }
        for (std::size_t b = 0; b < 5; ++b) {
            report(i, c++) = verdicts[b][i] ? 0.0 : 1.0;  // 1 = flagged
        }
    }
    std::vector<std::string> header{"is_trojan", "pcm_delay_ns"};
    for (int f = 1; f <= 6; ++f) header.push_back("fp_m" + std::to_string(f) + "_dbm");
    for (int b = 1; b <= 5; ++b) header.push_back("flagged_B" + std::to_string(b));
    io::write_csv("audit_report.csv", report, header);
    std::printf("wrote audit_report.csv (one row per device)\n");

    // Machine-readable summary for archiving / regression tracking. The
    // example rebuilds the canonical result via the experiment driver so the
    // JSON matches what bench_table1 reports.
    const core::ExperimentResult canonical = core::run_experiment(config);
    core::write_experiment_report("audit_report.json", config, canonical);
    std::printf("wrote audit_report.json (Table-1 metrics + diagnostics)\n");
    return 0;
}
