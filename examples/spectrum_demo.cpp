/// \file spectrum_demo.cpp
/// The spectrum view of the frequency-leak Trojan: synthesizes the sampled
/// antenna waveform of one block transmission for the Trojan-free and the
/// Trojan-infested design, sweeps both with the DFT spectrum analyzer, and
/// writes the spectra to CSV. The Trojan's second carrier at +0.6 GHz is
/// plainly visible to anyone who knows what to look for — and so is the
/// power it moves into the bench's measurement band.

#include <cstdio>

#include "pipeline/experiment.hpp"
#include "io/csv.hpp"
#include "rf/waveform.hpp"
#include "silicon/bench_measure.hpp"

int main() {
    using namespace htd;

    core::ExperimentConfig config;
    rng::Rng master(config.seed);
    rng::Rng fab_rng = master.split();

    const core::ProcessPair processes =
        core::make_process_pair(config.process_shift_sigma);
    const silicon::Fab fab(processes.silicon);
    const silicon::FabricatedLot lot = fab.fabricate_lot(fab_rng, 1);
    const silicon::MeasurementBench bench(config.platform);

    const double rate_ghz = 20.0;
    const double bit_ns = config.platform.meter.bit_period_ns;
    const rf::SpectrumAnalyzer analyzer(0.05);

    struct Case {
        const char* name;
        std::size_t device;
    };
    const Case cases[] = {{"trojan-free", 0}, {"trojan-frequency", 2}};

    linalg::Matrix spectra;
    std::vector<std::string> header{"freq_ghz"};
    for (const Case& c : cases) {
        const auto obs = bench.capture_transmission(lot.devices[c.device], 0);
        const auto wave = rf::synthesize_block(obs, bit_ns, rate_ghz);
        const auto sweep = analyzer.sweep(wave, 3.0, 5.5);
        if (spectra.rows() == 0) {
            spectra = linalg::Matrix(sweep.size(), 3);
            for (std::size_t k = 0; k < sweep.size(); ++k) {
                spectra(k, 0) = sweep[k].first;
            }
        }
        const std::size_t col = header.size() - 1 + 1;
        for (std::size_t k = 0; k < sweep.size(); ++k) {
            spectra(k, col - 1 + 1) = 0.0;  // placeholder; filled below
        }
        for (std::size_t k = 0; k < sweep.size(); ++k) {
            spectra(k, header.size()) = sweep[k].second * 1e3;  // mW
        }
        header.emplace_back(std::string(c.name) + "_mw");

        // Print the two carrier regions.
        const double p_base = analyzer.band_power_w(wave, 3.8, 4.2) * 1e3;
        const double p_leak = analyzer.band_power_w(wave, 4.4, 4.8) * 1e3;
        std::printf("%-18s  3.8-4.2 GHz: %8.4f mW   4.4-4.8 GHz: %8.4f mW\n",
                    c.name, p_base, p_leak);
    }

    io::write_csv("spectrum_demo.csv", spectra, header);
    std::printf("\nwrote spectrum_demo.csv (3.0-5.5 GHz sweep, both devices)\n");
    std::printf(
        "The infested device splits its energy between the nominal carrier and\n"
        "the +0.6 GHz leak carrier; the bench's 4.5 GHz measurement band picks\n"
        "up the difference, which is what the fingerprinting detector sees.\n");
    return 0;
}
