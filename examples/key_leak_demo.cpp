/// \file key_leak_demo.cpp
/// The adversary's view: a Trojan-infested wireless cryptographic IC leaks
/// its AES key over the public channel while passing every functional test.
/// This demo walks through the attack — capture transmissions, demodulate
/// the amplitude margin, recover the 128-bit key — and then shows the same
/// device being caught by the golden-free side-channel detector.

#include <cstdio>

#include "pipeline/experiment.hpp"
#include "crypto/aes.hpp"
#include "silicon/bench_measure.hpp"
#include "trojan/attacker.hpp"

namespace {

void print_key(const char* label, const std::array<bool, 128>& bits) {
    const htd::crypto::Block block = htd::crypto::bits_to_block(bits);
    std::printf("%s", label);
    for (const auto byte : block) std::printf("%02x", byte);
    std::printf("\n");
}

}  // namespace

int main() {
    using namespace htd;

    core::ExperimentConfig config;
    rng::Rng master(config.seed);
    rng::Rng fab_rng = master.split();
    rng::Rng attack_rng = master.split();

    const core::ProcessPair processes =
        core::make_process_pair(config.process_shift_sigma);
    const silicon::Fab fab(processes.silicon);
    const silicon::FabricatedLot lot = fab.fabricate_lot(fab_rng, 1);
    const silicon::MeasurementBench bench(config.platform);
    const silicon::Device& infested = lot.devices[1];  // amplitude-leak Trojan

    std::printf("=== step 1: the chip passes functional test ===\n");
    const crypto::Aes aes(config.platform.aes_key);
    const crypto::Block ct = aes.encrypt(config.platform.plaintext_blocks[0]);
    std::printf("AES ciphertext correct: %s\n",
                aes.decrypt(ct) == config.platform.plaintext_blocks[0] ? "yes" : "no");

    std::printf("\n=== step 2: the attacker listens on the public channel ===\n");
    std::vector<std::vector<trojan::PulseObservation>> captured;
    for (int rep = 0; rep < 4; ++rep) {
        for (std::size_t b = 0; b < config.platform.plaintext_blocks.size(); ++b) {
            captured.push_back(bench.capture_transmission(infested, b));
        }
    }
    std::printf("captured %zu block transmissions (128 OOK slots each)\n",
                captured.size());

    const trojan::KeyRecoveryAttacker attacker;
    const auto recovery =
        attacker.recover_key(captured, trojan::LeakChannel::kAmplitude, attack_rng);
    std::printf("amplitude clusters separated by %.1f sigma\n", recovery.separation);
    print_key("on-chip AES key:  ", config.platform.key_bits());
    print_key("recovered key:    ", recovery.key_bits);
    std::printf("bit errors: %zu / 128\n",
                recovery.bit_errors(config.platform.key_bits()));

    std::printf("\n=== step 3: the defender catches the chip without golden ICs ===\n");
    core::GoldenFreePipeline pipeline(
        config.pipeline, silicon::SpiceSimulator(config.platform, processes.spice));
    rng::Rng sim_rng = master.split();
    rng::Rng pipe_rng = master.split();
    rng::Rng meas_rng = master.split();

    // Measure the whole lot (the pipeline calibrates on the DUTT population).
    const silicon::DuttDataset devices = bench.measure_lot(lot, meas_rng);
    pipeline.run_premanufacturing(sim_rng);

    // A single chip's 3 devices are a very small calibration population; a
    // real audit would use the full batch, but the pipeline still runs.
    pipeline.run_silicon_stage(devices.pcms, pipe_rng);
    const auto verdicts = pipeline.classify(core::Boundary::kB5, devices.fingerprints);
    for (std::size_t i = 0; i < devices.size(); ++i) {
        std::printf("device %zu (%s): %s\n", i,
                    trojan::variant_name(devices.variants[i]).c_str(),
                    verdicts[i] ? "inside trusted region" : "FLAGGED as Trojan");
    }
    return 0;
}
