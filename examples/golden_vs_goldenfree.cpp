/// \file golden_vs_goldenfree.cpp
/// The paper's central claim, head to head: how many golden chips is the
/// golden-free pipeline worth? Trains the conventional golden-chip detector
/// with increasing numbers of trusted chips and compares each against the
/// golden-free boundary B5 — which uses zero.

#include <cstdio>

#include "pipeline/experiment.hpp"
#include "io/table.hpp"

int main() {
    using namespace htd;

    core::ExperimentConfig config;
    const core::ExperimentResult result = core::run_experiment(config);
    const auto tf_rows = result.measured.trojan_free_indices();

    std::printf("Golden-chip detector vs the golden-free pipeline\n\n");
    io::Table table({"detector", "golden chips", "FP", "FN"});

    for (const std::size_t n_golden : {4, 8, 16, 40}) {
        std::vector<std::size_t> subset(tf_rows.begin(),
                                        tf_rows.begin() + static_cast<long>(n_golden));
        ml::OneClassSvm::Options opts = config.pipeline.svm;
        opts.whiten = true;
        core::GoldenChipBaseline baseline(opts);
        baseline.fit(result.measured.fingerprints_at(subset));
        const auto m = baseline.evaluate(result.measured);
        table.add_row({"golden-chip SVM", std::to_string(n_golden),
                       io::fmt_ratio(m.false_positives, m.trojan_infested_total),
                       io::fmt_ratio(m.false_negatives, m.trojan_free_total)});
    }
    const auto& b5 = result.table1[4];
    table.add_row({"golden-free B5", "0",
                   io::fmt_ratio(b5.false_positives, b5.trojan_infested_total),
                   io::fmt_ratio(b5.false_negatives, b5.trojan_free_total)});
    std::printf("%s\n", table.str().c_str());

    std::printf(
        "The golden-free boundary B5 — learned from the trusted simulation\n"
        "model, the DUTTs' own PCM measurements, KMM calibration and KDE\n"
        "tail modeling — approaches the detector that required a trusted\n"
        "foundry run, which is exactly the paper's conclusion.\n");
    return 0;
}
