#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <stdexcept>

namespace htd::lint {

namespace {

namespace fs = std::filesystem;

// --- path helpers -----------------------------------------------------------

std::string normalize(std::string path) {
    std::replace(path.begin(), path.end(), '\\', '/');
    // Strip a leading "./" so rule scoping sees "src/..." either way.
    while (path.rfind("./", 0) == 0) path.erase(0, 2);
    return path;
}

bool path_in(const std::string& path, const std::string& dir) {
    return path.rfind(dir, 0) == 0 || path.find("/" + dir) != std::string::npos;
}

bool is_header(const std::string& path) {
    return path.size() > 4 && path.compare(path.size() - 4, 4, ".hpp") == 0;
}

bool is_source_file(const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".hpp";
}

// --- line utilities ---------------------------------------------------------

std::vector<std::string> split_lines(const std::string& text) {
    std::vector<std::string> lines;
    std::string current;
    for (const char c : text) {
        if (c == '\n') {
            lines.push_back(std::move(current));
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    if (!current.empty()) lines.push_back(std::move(current));
    return lines;
}

bool blank_line(const std::string& line) {
    return std::all_of(line.begin(), line.end(),
                       [](unsigned char c) { return std::isspace(c) != 0; });
}

// --- rule implementations ---------------------------------------------------

void check_rng_seed(const std::string& path, const std::vector<std::string>& code,
                    std::vector<Finding>& out) {
    static const std::regex random_device(R"(\bstd\s*::\s*random_device\b)");
    // An engine identifier followed by `;` / `{}` / nothing before the end
    // of the declarator is default-constructed (seeded from the fixed
    // default_seed — worse, a reader cannot tell it was intentional).
    static const std::regex default_engine(
        R"(\bstd\s*::\s*(mt19937(_64)?|minstd_rand0?|default_random_engine|)"
        R"(ranlux(24|48)(_base)?|knuth_b)\s*(\{\s*\}|\(\s*\))?\s+[A-Za-z_]\w*\s*(;|\{\s*\}|\(\s*\)))");
    static const std::regex default_temporary(
        R"(\bstd\s*::\s*(mt19937(_64)?|minstd_rand0?|default_random_engine|)"
        R"(ranlux(24|48)(_base)?|knuth_b)\s*(\{\s*\}|\(\s*\)))");
    for (std::size_t i = 0; i < code.size(); ++i) {
        if (std::regex_search(code[i], random_device)) {
            out.push_back({path, i + 1, "rng-seed",
                           "std::random_device is a nondeterministic seed source; "
                           "derive seeds from the experiment seed instead"});
        }
        if (std::regex_search(code[i], default_engine) ||
            std::regex_search(code[i], default_temporary)) {
            out.push_back({path, i + 1, "rng-seed",
                           "default-constructed standard engine; construct with an "
                           "explicit seed so runs are reproducible"});
        }
    }
}

void check_std_random_in_library(const std::string& path,
                                 const std::vector<std::string>& code,
                                 std::vector<Finding>& out) {
    if (!path_in(path, "src/") || path_in(path, "src/rng/")) return;
    static const std::regex std_random(
        R"(\bstd\s*::\s*(mt19937(_64)?|minstd_rand0?|default_random_engine|)"
        R"(ranlux(24|48)(_base)?|knuth_b|(normal|uniform_real|uniform_int|bernoulli|)"
        R"(exponential|poisson|gamma|cauchy|lognormal)_distribution)\b)");
    for (std::size_t i = 0; i < code.size(); ++i) {
        std::smatch m;
        if (std::regex_search(code[i], m, std_random)) {
            out.push_back({path, i + 1, "std-random-in-library",
                           "library code uses std::" + m.str(1) +
                               "; draw through htd::rng::Rng so one seed "
                               "reproduces the whole experiment"});
        }
    }
}

void check_raw_nan(const std::string& path, const std::vector<std::string>& code,
                   std::vector<Finding>& out) {
    if (!path_in(path, "src/") || path_in(path, "src/core/ingest")) return;
    static const std::regex raw_nan(R"(\bstd\s*::\s*(isnan|isinf|isfinite)\s*\()");
    for (std::size_t i = 0; i < code.size(); ++i) {
        // One finding per call, not per line: a screening helper often
        // chains several checks and every one needs a justification.
        for (auto it = std::sregex_iterator(code[i].begin(), code[i].end(), raw_nan);
             it != std::sregex_iterator(); ++it) {
            out.push_back({path, i + 1, "raw-nan-check",
                           "std::" + it->str(1) +
                               " outside core::MeasurementValidator; ingested "
                               "measurement screening lives in core/ingest — "
                               "allowlist this site if the float is not a "
                               "measurement field"});
        }
    }
}

void check_stdio_in_library(const std::string& path,
                            const std::vector<std::string>& code,
                            std::vector<Finding>& out) {
    if (!path_in(path, "src/") || path_in(path, "src/obs/")) return;
    // `[^\w.]` keeps member calls (logger.printf) out but lets both the
    // qualified std::fprintf and the unqualified C spelling through.
    static const std::regex stdio(
        R"(\bstd\s*::\s*(cout|cerr|clog)\b|(^|[^\w.])(f?printf|puts|putchar)\s*\()");
    for (std::size_t i = 0; i < code.size(); ++i) {
        if (std::regex_search(code[i], stdio)) {
            out.push_back({path, i + 1, "stdio-in-library",
                           "library code writes to stdio; route output through "
                           "the htd::obs sinks (src/obs/ is the only exempt "
                           "layer)"});
        }
    }
}

void check_header_hygiene(const std::string& path,
                          const std::vector<std::string>& code,
                          std::vector<Finding>& out) {
    if (!path_in(path, "src/") || !is_header(path)) return;
    std::size_t first_code = 0;
    while (first_code < code.size() && blank_line(code[first_code])) ++first_code;
    static const std::regex pragma_once(R"(^\s*#\s*pragma\s+once\b)");
    if (first_code >= code.size() ||
        !std::regex_search(code[first_code], pragma_once)) {
        out.push_back({path, first_code < code.size() ? first_code + 1 : 1,
                       "header-hygiene",
                       "first directive of a src/ header must be #pragma once"});
    }
    static const std::regex htd_ns(R"(\bnamespace\s+htd\b)");
    const bool has_ns = std::any_of(code.begin(), code.end(), [](const std::string& l) {
        return std::regex_search(l, htd_ns);
    });
    if (!has_ns) {
        out.push_back({path, 1, "header-hygiene",
                       "src/ header declares nothing in the htd:: namespace"});
    }
}

void check_stream_unchecked(const std::string& path,
                            const std::vector<std::string>& code,
                            std::vector<Finding>& out) {
    if (!path_in(path, "src/") && !path_in(path, "tools/")) return;
    static const std::regex decl(
        R"(\bstd\s*::\s*[io]fstream\s+([A-Za-z_]\w*)\s*[({])");
    constexpr std::size_t kWindow = 12;
    for (std::size_t i = 0; i < code.size(); ++i) {
        std::smatch m;
        if (!std::regex_search(code[i], m, decl)) continue;
        const std::string name = m.str(1);
        const std::regex checked(
            R"((!\s*)" + name + R"(\b|\b)" + name +
            R"(\s*\.\s*(is_open|fail|good|bad)\s*\())");
        bool ok = false;
        for (std::size_t j = i; j < std::min(code.size(), i + kWindow); ++j) {
            // Skip the declaration itself on its own line (a `!name` there
            // would be part of an initializer, not a check).
            const std::string& hay = code[j];
            if (j == i) {
                const std::string after = hay.substr(
                    static_cast<std::size_t>(m.position(0)) + m.length(0));
                if (std::regex_search(after, checked)) ok = true;
                continue;
            }
            if (std::regex_search(hay, checked)) {
                ok = true;
                break;
            }
        }
        if (!ok) {
            out.push_back({path, i + 1, "stream-unchecked",
                           "std::fstream '" + name +
                               "' is never checked (is_open/fail/operator!) "
                               "within " +
                               std::to_string(kWindow) +
                               " lines of construction; unreadable files must "
                               "fail loudly"});
        }
    }
}

}  // namespace

// --- scanner ----------------------------------------------------------------

std::string blank_noncode(const std::string& contents) {
    std::string out = contents;
    enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
    State state = State::kCode;
    std::string raw_delim;  // for R"delim( ... )delim"
    for (std::size_t i = 0; i < out.size(); ++i) {
        const char c = out[i];
        const char next = i + 1 < out.size() ? out[i + 1] : '\0';
        switch (state) {
            case State::kCode:
                if (c == '/' && next == '/') {
                    state = State::kLineComment;
                    out[i] = ' ';
                } else if (c == '/' && next == '*') {
                    state = State::kBlockComment;
                    out[i] = ' ';
                } else if (c == 'R' && next == '"' &&
                           (i == 0 || (std::isalnum(static_cast<unsigned char>(
                                           out[i - 1])) == 0 &&
                                       out[i - 1] != '_'))) {
                    // R"delim( — capture the delimiter up to '('.
                    std::size_t j = i + 2;
                    raw_delim.clear();
                    while (j < out.size() && out[j] != '(') raw_delim += out[j++];
                    state = State::kRawString;
                    // Keep the prefix readable length but blank it.
                    for (std::size_t k = i; k <= std::min(j, out.size() - 1); ++k) {
                        if (out[k] != '\n') out[k] = ' ';
                    }
                    i = j;
                } else if (c == '"') {
                    state = State::kString;
                    out[i] = ' ';
                } else if (c == '\'') {
                    state = State::kChar;
                    out[i] = ' ';
                }
                break;
            case State::kLineComment:
                if (c == '\n') {
                    state = State::kCode;
                } else {
                    out[i] = ' ';
                }
                break;
            case State::kBlockComment:
                if (c == '*' && next == '/') {
                    out[i] = ' ';
                    out[i + 1] = ' ';
                    ++i;
                    state = State::kCode;
                } else if (c != '\n') {
                    out[i] = ' ';
                }
                break;
            case State::kString:
                if (c == '\\' && next != '\0') {
                    out[i] = ' ';
                    if (next != '\n') out[i + 1] = ' ';
                    ++i;
                } else if (c == '"') {
                    out[i] = ' ';
                    state = State::kCode;
                } else if (c != '\n') {
                    out[i] = ' ';
                }
                break;
            case State::kChar:
                if (c == '\\' && next != '\0') {
                    out[i] = ' ';
                    if (next != '\n') out[i + 1] = ' ';
                    ++i;
                } else if (c == '\'') {
                    out[i] = ' ';
                    state = State::kCode;
                } else if (c != '\n') {
                    out[i] = ' ';
                }
                break;
            case State::kRawString: {
                // Terminated by )delim"
                const std::string terminator = ")" + raw_delim + "\"";
                if (out.compare(i, terminator.size(), terminator) == 0) {
                    for (std::size_t k = 0; k < terminator.size(); ++k) out[i + k] = ' ';
                    i += terminator.size() - 1;
                    state = State::kCode;
                } else if (c != '\n') {
                    out[i] = ' ';
                }
                break;
            }
        }
    }
    return out;
}

// --- public API -------------------------------------------------------------

const std::vector<std::string>& rule_ids() {
    static const std::vector<std::string> ids = {
        "rng-seed",        "std-random-in-library", "raw-nan-check",
        "stdio-in-library", "header-hygiene",       "stream-unchecked"};
    return ids;
}

std::vector<AllowEntry> parse_allowlist(const std::string& text) {
    std::vector<AllowEntry> entries;
    std::istringstream in(text);
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos) line.erase(hash);
        std::istringstream fields(line);
        std::string rule;
        std::string suffix;
        if (!(fields >> rule)) continue;  // blank / comment-only line
        if (!(fields >> suffix)) {
            throw std::runtime_error("allowlist line " + std::to_string(line_no) +
                                     ": expected '<rule> <path-suffix>'");
        }
        std::string extra;
        if (fields >> extra) {
            throw std::runtime_error("allowlist line " + std::to_string(line_no) +
                                     ": trailing tokens (use # for comments)");
        }
        if (rule != "*" &&
            std::find(rule_ids().begin(), rule_ids().end(), rule) == rule_ids().end()) {
            throw std::runtime_error("allowlist line " + std::to_string(line_no) +
                                     ": unknown rule '" + rule + "'");
        }
        entries.push_back({std::move(rule), normalize(std::move(suffix))});
    }
    return entries;
}

std::vector<Finding> lint_source(const std::string& path, const std::string& contents) {
    const std::string norm = normalize(path);
    const std::vector<std::string> code = split_lines(blank_noncode(contents));
    std::vector<Finding> findings;
    check_rng_seed(norm, code, findings);
    check_std_random_in_library(norm, code, findings);
    check_raw_nan(norm, code, findings);
    check_stdio_in_library(norm, code, findings);
    check_header_hygiene(norm, code, findings);
    check_stream_unchecked(norm, code, findings);
    std::sort(findings.begin(), findings.end(),
              [](const Finding& a, const Finding& b) { return a.line < b.line; });
    return findings;
}

namespace {

bool allow_matches(const AllowEntry& entry, const Finding& finding) {
    if (entry.rule != "*" && entry.rule != finding.rule) return false;
    const std::string& suffix = entry.path_suffix;
    const std::string& file = finding.file;
    if (suffix.size() > file.size()) return false;
    return file.compare(file.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

Report lint_paths(const std::vector<std::string>& paths,
                  const std::vector<AllowEntry>& allow) {
    // Collect files deterministically so diagnostics are stable across runs.
    std::vector<fs::path> files;
    for (const std::string& p : paths) {
        const fs::path root(p);
        if (!fs::exists(root)) {
            throw std::runtime_error("htd_lint: no such path: " + p);
        }
        if (fs::is_directory(root)) {
            for (const auto& entry : fs::recursive_directory_iterator(root)) {
                if (entry.is_regular_file() && is_source_file(entry.path())) {
                    files.push_back(entry.path());
                }
            }
        } else if (is_source_file(root)) {
            files.push_back(root);
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    Report report;
    std::vector<bool> allow_used(allow.size(), false);
    for (const fs::path& file : files) {
        std::ifstream in(file);
        if (!in.is_open()) {
            throw std::runtime_error("htd_lint: cannot open " + file.string());
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        ++report.files_checked;
        for (Finding& finding : lint_source(file.generic_string(), buffer.str())) {
            bool suppressed = false;
            for (std::size_t i = 0; i < allow.size(); ++i) {
                if (allow_matches(allow[i], finding)) {
                    allow_used[i] = true;
                    suppressed = true;
                }
            }
            if (suppressed) {
                ++report.suppressed;
            } else {
                report.findings.push_back(std::move(finding));
            }
        }
    }
    for (std::size_t i = 0; i < allow.size(); ++i) {
        if (!allow_used[i]) report.unused_allow.push_back(allow[i]);
    }
    return report;
}

io::Json report_json(const Report& report) {
    io::Json out = io::Json::object();
    out.set("schema", std::string("htd_lint.v1"));
    io::Json findings = io::Json::array();
    for (const Finding& f : report.findings) {
        io::Json rec = io::Json::object();
        rec.set("file", f.file);
        rec.set("line", static_cast<double>(f.line));
        rec.set("rule", f.rule);
        rec.set("message", f.message);
        findings.push_back(std::move(rec));
    }
    out.set("findings", std::move(findings));
    out.set("files_checked", static_cast<double>(report.files_checked));
    out.set("suppressed", static_cast<double>(report.suppressed));
    io::Json unused = io::Json::array();
    for (const AllowEntry& entry : report.unused_allow) {
        io::Json rec = io::Json::object();
        rec.set("rule", entry.rule);
        rec.set("path_suffix", entry.path_suffix);
        unused.push_back(std::move(rec));
    }
    out.set("unused_allowlist_entries", std::move(unused));
    return out;
}

std::string report_text(const Report& report) {
    std::ostringstream out;
    for (const Finding& f : report.findings) {
        out << f.file << ':' << f.line << ": [" << f.rule << "] " << f.message
            << '\n';
    }
    for (const AllowEntry& entry : report.unused_allow) {
        out << "htd_lint: stale allowlist entry (suppressed nothing): "
            << entry.rule << ' ' << entry.path_suffix << '\n';
    }
    out << "htd_lint: " << report.files_checked << " files, "
        << report.findings.size() << " finding(s), " << report.suppressed
        << " suppressed\n";
    return out.str();
}

}  // namespace htd::lint
