#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>

#include "internal.hpp"
#include "lexer.hpp"
#include "obs/journal.hpp"

namespace htd::lint {

namespace detail {

std::string normalize(std::string path) {
    std::replace(path.begin(), path.end(), '\\', '/');
    while (path.rfind("./", 0) == 0) path.erase(0, 2);
    return path;
}

bool path_in(const std::string& path, const std::string& dir) {
    return path.rfind(dir, 0) == 0 || path.find("/" + dir) != std::string::npos;
}

bool is_header(const std::string& path) {
    return path.size() > 4 && path.compare(path.size() - 4, 4, ".hpp") == 0;
}

std::string module_of(const std::string& normalized_path) {
    std::size_t pos = normalized_path.rfind("src/");
    if (pos != 0 && (pos == std::string::npos || normalized_path[pos - 1] != '/')) {
        return {};
    }
    pos += 4;
    const std::size_t slash = normalized_path.find('/', pos);
    if (slash == std::string::npos) return {};
    return normalized_path.substr(pos, slash - pos);
}

}  // namespace detail

namespace {

using detail::is_header;
using detail::normalize;
using detail::path_in;

// --- line utilities ---------------------------------------------------------

std::vector<std::string> split_lines(const std::string& text) {
    std::vector<std::string> lines;
    std::string current;
    for (const char c : text) {
        if (c == '\n') {
            lines.push_back(std::move(current));
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    if (!current.empty()) lines.push_back(std::move(current));
    return lines;
}

bool blank_line(const std::string& line) {
    return std::all_of(line.begin(), line.end(),
                       [](unsigned char c) { return std::isspace(c) != 0; });
}

// --- line rules (v1) --------------------------------------------------------

void check_rng_seed(const std::string& path, const std::vector<std::string>& code,
                    std::vector<Finding>& out) {
    static const std::regex random_device(R"(\bstd\s*::\s*random_device\b)");
    // An engine identifier followed by `;` / `{}` / nothing before the end
    // of the declarator is default-constructed (seeded from the fixed
    // default_seed — worse, a reader cannot tell it was intentional).
    static const std::regex default_engine(
        R"(\bstd\s*::\s*(mt19937(_64)?|minstd_rand0?|default_random_engine|)"
        R"(ranlux(24|48)(_base)?|knuth_b)\s*(\{\s*\}|\(\s*\))?\s+[A-Za-z_]\w*\s*(;|\{\s*\}|\(\s*\)))");
    static const std::regex default_temporary(
        R"(\bstd\s*::\s*(mt19937(_64)?|minstd_rand0?|default_random_engine|)"
        R"(ranlux(24|48)(_base)?|knuth_b)\s*(\{\s*\}|\(\s*\)))");
    for (std::size_t i = 0; i < code.size(); ++i) {
        if (std::regex_search(code[i], random_device)) {
            out.push_back({path, i + 1, "rng-seed",
                           "std::random_device is a nondeterministic seed source; "
                           "derive seeds from the experiment seed instead"});
        }
        if (std::regex_search(code[i], default_engine) ||
            std::regex_search(code[i], default_temporary)) {
            out.push_back({path, i + 1, "rng-seed",
                           "default-constructed standard engine; construct with an "
                           "explicit seed so runs are reproducible"});
        }
    }
}

void check_std_random_in_library(const std::string& path,
                                 const std::vector<std::string>& code,
                                 std::vector<Finding>& out) {
    if (!path_in(path, "src/") || path_in(path, "src/rng/")) return;
    static const std::regex std_random(
        R"(\bstd\s*::\s*(mt19937(_64)?|minstd_rand0?|default_random_engine|)"
        R"(ranlux(24|48)(_base)?|knuth_b|(normal|uniform_real|uniform_int|bernoulli|)"
        R"(exponential|poisson|gamma|cauchy|lognormal)_distribution)\b)");
    for (std::size_t i = 0; i < code.size(); ++i) {
        std::smatch m;
        if (std::regex_search(code[i], m, std_random)) {
            out.push_back({path, i + 1, "std-random-in-library",
                           "library code uses std::" + m.str(1) +
                               "; draw through htd::rng::Rng so one seed "
                               "reproduces the whole experiment"});
        }
    }
}

void check_raw_nan(const std::string& path, const std::vector<std::string>& code,
                   std::vector<Finding>& out) {
    if (!path_in(path, "src/") || path_in(path, "src/pipeline/ingest")) return;
    static const std::regex raw_nan(R"(\bstd\s*::\s*(isnan|isinf|isfinite)\s*\()");
    for (std::size_t i = 0; i < code.size(); ++i) {
        // One finding per call, not per line: a screening helper often
        // chains several checks and every one needs a justification.
        for (auto it = std::sregex_iterator(code[i].begin(), code[i].end(), raw_nan);
             it != std::sregex_iterator(); ++it) {
            out.push_back({path, i + 1, "raw-nan-check",
                           "std::" + it->str(1) +
                               " outside core::MeasurementValidator; ingested "
                               "measurement screening lives in pipeline/ingest — "
                               "allowlist this site if the float is not a "
                               "measurement field"});
        }
    }
}

void check_stdio_in_library(const std::string& path,
                            const std::vector<std::string>& code,
                            std::vector<Finding>& out) {
    if (!path_in(path, "src/") || path_in(path, "src/obs/")) return;
    // `[^\w.]` keeps member calls (logger.printf) out but lets both the
    // qualified std::fprintf and the unqualified C spelling through.
    static const std::regex stdio(
        R"(\bstd\s*::\s*(cout|cerr|clog)\b|(^|[^\w.])(f?printf|puts|putchar)\s*\()");
    for (std::size_t i = 0; i < code.size(); ++i) {
        if (std::regex_search(code[i], stdio)) {
            out.push_back({path, i + 1, "stdio-in-library",
                           "library code writes to stdio; route output through "
                           "the htd::obs sinks (src/obs/ is the only exempt "
                           "layer)"});
        }
    }
}

void check_header_hygiene(const std::string& path,
                          const std::vector<std::string>& code,
                          std::vector<Finding>& out) {
    if (!path_in(path, "src/") || !is_header(path)) return;
    std::size_t first_code = 0;
    while (first_code < code.size() && blank_line(code[first_code])) ++first_code;
    static const std::regex pragma_once(R"(^\s*#\s*pragma\s+once\b)");
    if (first_code >= code.size() ||
        !std::regex_search(code[first_code], pragma_once)) {
        out.push_back({path, first_code < code.size() ? first_code + 1 : 1,
                       "header-hygiene",
                       "first directive of a src/ header must be #pragma once"});
    }
    static const std::regex htd_ns(R"(\bnamespace\s+htd\b)");
    const bool has_ns = std::any_of(code.begin(), code.end(), [](const std::string& l) {
        return std::regex_search(l, htd_ns);
    });
    if (!has_ns) {
        out.push_back({path, 1, "header-hygiene",
                       "src/ header declares nothing in the htd:: namespace"});
    }
}

void check_stream_unchecked(const std::string& path,
                            const std::vector<std::string>& code,
                            std::vector<Finding>& out) {
    if (!path_in(path, "src/") && !path_in(path, "tools/")) return;
    static const std::regex decl(
        R"(\bstd\s*::\s*[io]fstream\s+([A-Za-z_]\w*)\s*[({])");
    constexpr std::size_t kWindow = 12;
    for (std::size_t i = 0; i < code.size(); ++i) {
        std::smatch m;
        if (!std::regex_search(code[i], m, decl)) continue;
        const std::string name = m.str(1);
        const std::regex checked(
            R"((!\s*)" + name + R"(\b|\b)" + name +
            R"(\s*\.\s*(is_open|fail|good|bad)\s*\())");
        bool ok = false;
        for (std::size_t j = i; j < std::min(code.size(), i + kWindow); ++j) {
            // Skip the declaration itself on its own line (a `!name` there
            // would be part of an initializer, not a check).
            const std::string& hay = code[j];
            if (j == i) {
                const std::string after = hay.substr(
                    static_cast<std::size_t>(m.position(0)) + m.length(0));
                if (std::regex_search(after, checked)) ok = true;
                continue;
            }
            if (std::regex_search(hay, checked)) {
                ok = true;
                break;
            }
        }
        if (!ok) {
            out.push_back({path, i + 1, "stream-unchecked",
                           "std::fstream '" + name +
                               "' is never checked (is_open/fail/operator!) "
                               "within " +
                               std::to_string(kWindow) +
                               " lines of construction; unreadable files must "
                               "fail loudly"});
        }
    }
}

// --- token helpers ----------------------------------------------------------

bool is_punct(const Token& t, const char* text) {
    return t.kind == TokKind::kPunct && t.text == text;
}

bool is_ident(const Token& t, const char* text) {
    return t.kind == TokKind::kIdent && t.text == text;
}

/// Macro-shaped identifier (GUARDED_BY, HTD_CAPABILITY, ...): upper-case
/// letters, digits and underscores with at least one letter.
bool all_caps(const std::string& s) {
    bool alpha = false;
    for (const char c : s) {
        const auto u = static_cast<unsigned char>(c);
        if (std::islower(u) != 0) return false;
        if (std::isupper(u) != 0) alpha = true;
        if (std::isalnum(u) == 0 && c != '_') return false;
    }
    return alpha;
}

bool is_decl_specifier(const std::string& s) {
    return s == "static" || s == "inline" || s == "constexpr" ||
           s == "consteval" || s == "constinit" || s == "explicit" ||
           s == "virtual" || s == "extern" || s == "mutable" ||
           s == "thread_local" || s == "register";
}

/// Types whose values encode a boundary/ingestion decision and must not
/// be dropped on the floor (DESIGN.md §12). `optional` covers the probe
/// accessors such as HealthMonitor::find.
bool is_must_use_type(const std::string& s) {
    return s == "BoundaryStatus" || s == "QuarantineSummary" ||
           s == "ValidationResult" || s == "IngestResult" || s == "optional";
}

/// Statement-leading keywords that rule a token run out as a bare call.
bool is_stmt_keyword(const std::string& s) {
    return s == "return" || s == "throw" || s == "if" || s == "else" ||
           s == "while" || s == "for" || s == "do" || s == "switch" ||
           s == "case" || s == "goto" || s == "break" || s == "continue" ||
           s == "new" || s == "delete" || s == "using" || s == "namespace" ||
           s == "template" || s == "typedef" || s == "co_return" ||
           s == "co_await" || s == "co_yield";
}

std::string blank_noncode_tokens(const std::string& contents,
                                 const std::vector<Token>& tokens) {
    std::string out(contents.size(), ' ');
    for (std::size_t i = 0; i < contents.size(); ++i) {
        if (contents[i] == '\n') out[i] = '\n';
    }
    for (const Token& t : tokens) {
        if (t.kind == TokKind::kString || t.kind == TokKind::kChar) continue;
        for (std::size_t k = 0; k < t.length; ++k) {
            const char c = contents[t.offset + k];
            if (c != '\n') out[t.offset + k] = c;
        }
    }
    return out;
}

// --- include extraction -----------------------------------------------------

void collect_includes(const std::vector<Token>& toks, FileAnalysis& fa) {
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!is_punct(toks[i], "#") || !toks[i].at_line_start) continue;
        if (!is_ident(toks[i + 1], "include")) continue;
        const Token& arg = toks[i + 2];
        // Only quoted includes participate in the project graph; <...>
        // names the outside world.
        if (arg.kind != TokKind::kString || arg.text.size() < 2) continue;
        fa.includes.push_back(
            {arg.text.substr(1, arg.text.size() - 2), toks[i].line});
    }
}

// --- declaration scanner (missing-nodiscard + must-use extraction) ----------

/// Examine one declaration head (tokens since the last `;` / `{` / `}` at
/// namespace or class scope). Emits a missing-nodiscard finding for a
/// public value-returning function without the attribute, and records the
/// function name when the return type is must-use.
void process_declaration(const std::string& path, const std::vector<Token>& toks,
                         const std::vector<std::size_t>& head, bool is_public,
                         bool enforce_nodiscard, std::vector<Finding>& findings,
                         std::vector<std::string>& must_use) {
    if (head.empty()) return;
    bool has_nodiscard = false;
    std::vector<std::size_t> sig;  // head minus attributes / specifiers
    sig.reserve(head.size());
    for (std::size_t k = 0; k < head.size(); ++k) {
        const Token& t = toks[head[k]];
        if (is_punct(t, "[") && k + 1 < head.size() &&
            is_punct(toks[head[k + 1]], "[")) {
            // [[...]] attribute group.
            int depth = 0;
            for (; k < head.size(); ++k) {
                const Token& a = toks[head[k]];
                if (is_punct(a, "[")) ++depth;
                if (is_punct(a, "]") && --depth == 0) break;
                if (a.kind == TokKind::kIdent && a.text == "nodiscard") {
                    has_nodiscard = true;
                }
            }
            continue;
        }
        if (t.kind == TokKind::kIdent) {
            if (is_decl_specifier(t.text)) continue;
            if (t.text == "template") {
                // Skip the parameter list; the declaration that follows is
                // checked like any other.
                int angle = 0;
                for (++k; k < head.size(); ++k) {
                    const Token& a = toks[head[k]];
                    if (is_punct(a, "<")) ++angle;
                    if (is_punct(a, ">") && --angle == 0) break;
                    if (a.kind == TokKind::kPunct && a.text == ">>") {
                        angle -= 2;
                        if (angle <= 0) break;
                    }
                }
                continue;
            }
            if (t.text == "friend" || t.text == "typedef" || t.text == "using" ||
                t.text == "operator" || t.text == "static_assert" ||
                t.text == "class" || t.text == "struct" || t.text == "union" ||
                t.text == "enum" || t.text == "concept" || t.text == "requires") {
                return;
            }
        }
        sig.push_back(head[k]);
    }

    // First '(' outside template angles starts the parameter list. A
    // top-level '=' before it means this is an initialized variable.
    int angle = 0;
    std::size_t paren = sig.size();
    for (std::size_t k = 0; k < sig.size(); ++k) {
        const Token& t = toks[sig[k]];
        if (is_punct(t, "<") && k > 0 &&
            toks[sig[k - 1]].kind == TokKind::kIdent) {
            ++angle;
        } else if (is_punct(t, ">") && angle > 0) {
            --angle;
        } else if (t.kind == TokKind::kPunct && t.text == ">>" && angle > 0) {
            angle = angle >= 2 ? angle - 2 : 0;
        } else if (is_punct(t, "=") && angle == 0) {
            return;
        } else if (is_punct(t, "(") && angle == 0) {
            paren = k;
            break;
        }
    }
    if (paren == sig.size() || paren == 0) return;
    const Token& name_tok = toks[sig[paren - 1]];
    if (name_tok.kind != TokKind::kIdent) return;
    if (all_caps(name_tok.text)) return;  // macro annotation, not a declarator

    // Walk back over a qualified-name chain (Json::at) and reject
    // destructors. A qualified name is an out-of-line definition whose
    // in-class declaration carries the attribute.
    bool qualified = false;
    std::size_t chain = paren - 1;
    while (chain >= 2 && toks[sig[chain - 1]].kind == TokKind::kPunct &&
           toks[sig[chain - 1]].text == "::" &&
           toks[sig[chain - 2]].kind == TokKind::kIdent) {
        qualified = true;
        chain -= 2;
    }
    if (chain > 0 && is_punct(toks[sig[chain - 1]], "~")) return;
    if (chain == 0) return;  // constructor (or a bare macro-style call)

    // `= default` / `= delete` after the parameter list: nothing to mark.
    int pd = 0;
    std::size_t close = sig.size();
    for (std::size_t k = paren; k < sig.size(); ++k) {
        if (is_punct(toks[sig[k]], "(")) ++pd;
        if (is_punct(toks[sig[k]], ")") && --pd == 0) {
            close = k;
            break;
        }
    }
    for (std::size_t k = close + 1; k + 1 < sig.size() + 1 && k < sig.size(); ++k) {
        if (is_punct(toks[sig[k]], "=") && k + 1 < sig.size() &&
            (is_ident(toks[sig[k + 1]], "delete") ||
             is_ident(toks[sig[k + 1]], "default"))) {
            return;
        }
    }

    // Return type = tokens before the name chain (trailing type after ->
    // for `auto f() -> T`).
    std::vector<const Token*> ret;
    for (std::size_t k = 0; k < chain; ++k) ret.push_back(&toks[sig[k]]);
    const bool leading_auto =
        ret.size() == 1 && ret[0]->kind == TokKind::kIdent && ret[0]->text == "auto";
    if (leading_auto && close != sig.size()) {
        for (std::size_t k = close + 1; k < sig.size(); ++k) {
            if (toks[sig[k]].kind == TokKind::kPunct && toks[sig[k]].text == "->") {
                ret.clear();
                for (std::size_t m = k + 1; m < sig.size(); ++m) {
                    ret.push_back(&toks[sig[m]]);
                }
                break;
            }
        }
    }
    if (ret.empty()) return;

    bool returns_must_use = false;
    for (const Token* t : ret) {
        if (t->kind == TokKind::kIdent && is_must_use_type(t->text)) {
            returns_must_use = true;
        }
    }
    if (returns_must_use) must_use.push_back(name_tok.text);

    for (const Token* t : ret) {
        // References are the chaining idiom (stream inserters, builder
        // setters): requiring [[nodiscard]] there would force spurious
        // casts at legitimate fluent call sites.
        if (t->kind == TokKind::kPunct && (t->text == "&" || t->text == "&&")) {
            return;
        }
    }
    std::vector<const Token*> type_only;
    for (const Token* t : ret) {
        if (t->kind == TokKind::kIdent && (t->text == "const" || t->text == "volatile")) {
            continue;
        }
        type_only.push_back(t);
    }
    if (type_only.size() == 1 && type_only[0]->kind == TokKind::kIdent &&
        type_only[0]->text == "void") {
        return;
    }
    if (has_nodiscard || qualified || !is_public || !enforce_nodiscard) return;
    findings.push_back(
        {path, name_tok.line, "missing-nodiscard",
         "public function '" + name_tok.text +
             "' returns a value but is not [[nodiscard]]; every "
             "value-returning function in a src/ header must be marked so "
             "discarded results are compile errors"});
}

void scan_declarations(const std::string& path, const std::vector<Token>& toks,
                       bool enforce_nodiscard, std::vector<Finding>& findings,
                       std::vector<std::string>& must_use) {
    struct Scope {
        enum Kind { kNamespace, kClass, kSkip } kind = kNamespace;
        bool is_public = true;
    };
    std::vector<Scope> scopes{{Scope::kNamespace, true}};
    std::vector<std::size_t> head;
    int paren = 0;

    const auto classify_and_push = [&](const std::vector<std::size_t>& h) {
        // Decide what the '{' opens from the declaration head before it.
        std::size_t class_kw = toks.size();
        bool saw_enum = false;
        bool saw_namespace = false;
        std::size_t first_paren = toks.size();
        for (const std::size_t idx : h) {
            const Token& t = toks[idx];
            if (is_ident(t, "namespace")) saw_namespace = true;
            if (is_ident(t, "enum")) saw_enum = true;
            if ((is_ident(t, "class") || is_ident(t, "struct") ||
                 is_ident(t, "union")) &&
                class_kw == toks.size()) {
                class_kw = idx;
            }
            if (is_punct(t, "(") && first_paren == toks.size()) first_paren = idx;
        }
        if (saw_namespace) {
            scopes.push_back({Scope::kNamespace, true});
            return;
        }
        if (saw_enum) {
            scopes.push_back({Scope::kSkip, false});
            return;
        }
        if (class_kw != toks.size() &&
            (first_paren == toks.size() || first_paren > class_kw)) {
            // class/struct head; annotation macros after the keyword are
            // fine, a '(' before it would make this a function instead.
            bool is_struct = is_ident(toks[class_kw], "struct") ||
                             is_ident(toks[class_kw], "union");
            scopes.push_back({Scope::kClass, is_struct});
            return;
        }
        // Function body / initializer / lambda: treat the head as a
        // declaration first, then skip the braces.
        process_declaration(path, toks, h, scopes.back().is_public,
                            enforce_nodiscard, findings, must_use);
        scopes.push_back({Scope::kSkip, false});
    };

    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token& t = toks[i];
        // Preprocessor directives never participate in declarations — and a
        // macro body may hold unbalanced braces, so skip before tracking.
        if (t.in_directive) continue;
        if (scopes.back().kind == Scope::kSkip) {
            if (is_punct(t, "{")) scopes.push_back({Scope::kSkip, false});
            if (is_punct(t, "}") && scopes.size() > 1) scopes.pop_back();
            continue;
        }
        if (is_punct(t, "(")) {
            ++paren;
            head.push_back(i);
            continue;
        }
        if (is_punct(t, ")")) {
            if (paren > 0) --paren;
            head.push_back(i);
            continue;
        }
        if (paren > 0) {
            head.push_back(i);
            continue;
        }
        if (is_punct(t, ";")) {
            process_declaration(path, toks, head, scopes.back().is_public,
                                enforce_nodiscard, findings, must_use);
            head.clear();
            continue;
        }
        if (is_punct(t, ":") && scopes.back().kind == Scope::kClass &&
            head.size() == 1) {
            const std::string& w = toks[head[0]].text;
            if (w == "public" || w == "private" || w == "protected") {
                scopes.back().is_public = (w == "public");
                head.clear();
                continue;
            }
        }
        if (is_punct(t, "{")) {
            classify_and_push(head);
            head.clear();
            paren = 0;
            continue;
        }
        if (is_punct(t, "}")) {
            if (scopes.size() > 1) scopes.pop_back();
            head.clear();
            continue;
        }
        head.push_back(i);
    }
}

// --- discard-site scanner ---------------------------------------------------

/// If toks[s..e) spells a bare postfix call chain (`v.find(x);`,
/// `validate(m);`, `a.f(x).g();`) return the name of the *last* call —
/// the one whose result the statement drops.
std::optional<std::string> bare_call_chain(const std::vector<Token>& toks,
                                           std::size_t s, std::size_t e) {
    std::size_t k = s;
    std::string last_call;
    if (k < e && is_punct(toks[k], "::")) ++k;
    bool expect_ident = true;
    while (k < e) {
        if (!expect_ident) return std::nullopt;
        if (toks[k].kind != TokKind::kIdent) return std::nullopt;
        const std::string name = toks[k].text;
        if (is_stmt_keyword(name)) return std::nullopt;
        ++k;
        if (k < e && is_punct(toks[k], "<")) {
            int angle = 0;
            const std::size_t start = k;
            for (; k < e; ++k) {
                if (is_punct(toks[k], "<")) ++angle;
                if (is_punct(toks[k], ">") && --angle == 0) {
                    ++k;
                    break;
                }
                if (toks[k].kind == TokKind::kPunct && toks[k].text == ">>") {
                    angle -= 2;
                    if (angle <= 0) {
                        ++k;
                        break;
                    }
                }
            }
            if (angle > 0 || k == start) return std::nullopt;
        }
        if (k < e && is_punct(toks[k], "(")) {
            int pd = 0;
            bool closed = false;
            for (; k < e; ++k) {
                if (is_punct(toks[k], "(")) ++pd;
                if (is_punct(toks[k], ")") && --pd == 0) {
                    ++k;
                    closed = true;
                    break;
                }
            }
            if (!closed) return std::nullopt;
            last_call = name;
            if (k == e) {
                if (last_call.empty() || all_caps(last_call)) return std::nullopt;
                return last_call;
            }
            if (is_punct(toks[k], ".") || is_punct(toks[k], "->")) {
                ++k;
                expect_ident = true;
                continue;
            }
            return std::nullopt;
        }
        if (k < e && (is_punct(toks[k], "::") || is_punct(toks[k], ".") ||
                      is_punct(toks[k], "->"))) {
            ++k;
            expect_ident = true;
            continue;
        }
        return std::nullopt;
    }
    return std::nullopt;
}

void collect_discard_sites(const std::vector<Token>& toks, FileAnalysis& fa) {
    std::size_t start = 0;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token& t = toks[i];
        if (t.in_directive) {
            // A directive splits any statement run; macro bodies are not
            // statements.
            start = i + 1;
            continue;
        }
        if (t.kind != TokKind::kPunct) continue;
        if (t.text == ";") {
            if (const auto name = bare_call_chain(toks, start, i)) {
                fa.discards.push_back({*name, toks[start].line});
            }
            start = i + 1;
        } else if (t.text == "{" || t.text == "}") {
            start = i + 1;
        }
    }
}

// --- work-counter-name (v3) -------------------------------------------------
//
// Work counters are the profiler's attribution currency (DESIGN.md §13):
// htd_profile ranks stages by `work.<stage>.<quantity>` deltas, so a
// misnamed counter silently falls out of every report. Enforce the shape
// at the recording site, and keep the `work.` namespace reserved for
// Registry::work_add so the metric kind stays trustworthy.

void check_work_counter_names(const std::string& path,
                              const std::vector<Token>& toks,
                              std::vector<Finding>& out) {
    if (!path_in(path, "src/")) return;
    static const std::regex shape(
        R"(work\.[a-z][a-z0-9_]*\.[a-z][a-z0-9_]*)");
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        const Token& callee = toks[i];
        if (callee.kind != TokKind::kIdent || callee.in_directive) continue;
        const bool is_work = callee.text == "work_add";
        const bool reserves = callee.text == "counter_add" ||
                              callee.text == "gauge_set" ||
                              callee.text == "histogram_record";
        if (!is_work && !reserves) continue;
        if (!is_punct(toks[i + 1], "(")) continue;
        const Token& arg = toks[i + 2];
        // Only literal names are statically checkable; a computed name is
        // the caller's responsibility. Encoding-prefixed / raw literals do
        // not occur for metric names, so plain cooked strings suffice.
        if (arg.kind != TokKind::kString || arg.text.size() < 2 ||
            arg.text.front() != '"' || arg.text.back() != '"') {
            continue;
        }
        const std::string name = arg.text.substr(1, arg.text.size() - 2);
        if (is_work) {
            if (!std::regex_match(name, shape)) {
                out.push_back(
                    {path, arg.line, "work-counter-name",
                     "work counter '" + name +
                         "' must be named work.<stage>.<quantity> "
                         "(lowercase [a-z0-9_] segments, exactly two dots) "
                         "so htd_profile can attribute it to a stage"});
            }
        } else if (name.rfind("work.", 0) == 0) {
            out.push_back(
                {path, arg.line, "work-counter-name",
                 "'" + name + "' claims the work. namespace but is recorded "
                 "via " + callee.text +
                     "; record work counters through Registry::work_add so "
                     "traces and reports agree on the metric kind"});
        }
    }
}

// --- artifact-schema-version (v4) -------------------------------------------
//
// The `htd.boundary.*` schema string is the artifact compatibility contract
// (DESIGN.md §14): load-time version negotiation compares against the single
// constant pair in src/pipeline/artifact.hpp. A second literal spelling
// anywhere in src/ or tools/ is a fork of that contract — it keeps compiling
// after a version bump and silently writes (or accepts) skewed envelopes.
// Comments and docs are free to mention the schema; only string literals in
// code are gated. tools/htd_lint/ is exempt: the rule and its fixtures must
// spell the prefix to detect it.

void check_artifact_schema_version(const std::string& path,
                                   const std::vector<Token>& toks,
                                   std::vector<Finding>& out) {
    if (!path_in(path, "src/") && !path_in(path, "tools/")) return;
    if (path_in(path, "tools/htd_lint/")) return;
    static const std::string owner = "src/pipeline/artifact.hpp";
    if (path == owner ||
        (path.size() > owner.size() &&
         path.compare(path.size() - owner.size() - 1, owner.size() + 1,
                      "/" + owner) == 0)) {
        return;
    }
    for (const Token& t : toks) {
        if (t.kind != TokKind::kString || t.in_directive) continue;
        if (t.text.find("htd.boundary.") == std::string::npos) continue;
        out.push_back(
            {path, t.line, "artifact-schema-version",
             "literal htd.boundary.* schema string; reference "
             "core::kBoundaryArtifactSchema / kBoundaryArtifactVersion from "
             "src/pipeline/artifact.hpp instead — a second spelling skews "
             "silently on the next version bump"});
    }
}

// --- event-kind-name (v5) ---------------------------------------------------
//
// htd.events.v1 journal records are filtered and validated by kind
// (tools/htd_explain, DESIGN.md §15): an event constructed with a kind
// outside obs::event_kinds() throws at append time, but only on the code
// path that emits it — which for rare kinds like drift_trip may never run
// under test. Catch the typo statically at the construction site. Only
// literal kinds are checkable; a computed kind is the caller's
// responsibility (append() still validates at runtime). tools/htd_lint/ is
// exempt: the rule and its fixtures must spell bad kinds to detect them.

void check_event_kind_names(const std::string& path,
                            const std::vector<Token>& toks,
                            std::vector<Finding>& out) {
    if (!path_in(path, "src/") && !path_in(path, "tools/")) return;
    if (path_in(path, "tools/htd_lint/")) return;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        const Token& type = toks[i];
        if (type.kind != TokKind::kIdent || type.in_directive ||
            type.text != "Event") {
            continue;
        }
        // Event("kind") or Event <var> ("kind").
        std::size_t j = i + 1;
        if (toks[j].kind == TokKind::kIdent) ++j;
        if (j + 1 >= toks.size() || !is_punct(toks[j], "(")) continue;
        const Token& arg = toks[j + 1];
        if (arg.kind != TokKind::kString || arg.text.size() < 2 ||
            arg.text.front() != '"' || arg.text.back() != '"') {
            continue;
        }
        const std::string kind = arg.text.substr(1, arg.text.size() - 2);
        if (!obs::event_kind_registered(kind)) {
            std::string registered;
            for (const std::string& k : obs::event_kinds()) {
                if (!registered.empty()) registered += ", ";
                registered += k;
            }
            out.push_back(
                {path, arg.line, "event-kind-name",
                 "journal event kind '" + kind +
                     "' is not registered in obs::event_kinds() — "
                     "htd_explain validation would reject it and append() "
                     "would throw at runtime; registered kinds: " +
                     registered});
        }
    }
}

// --- determinism passes (v6) ------------------------------------------------
//
// The four passes below gate the path to the parallel statistical core
// (DESIGN.md §16): they run over src/ and tools/ and encode the properties
// bitwise same-seed reproducibility depends on once the thread pool lands —
// no unaudited shared mutable state, no hash-order leakage into serialized
// output, per-thread RNG substream discipline, and pinned floating-point
// reduction order inside regions marked HTD_PARALLEL_READY.

/// Skip toks[k] == "(" through its matching ")". Returns the index of the
/// closing paren (or toks.size() when unbalanced).
std::size_t skip_parens(const std::vector<Token>& toks, std::size_t k) {
    int depth = 0;
    for (; k < toks.size(); ++k) {
        if (is_punct(toks[k], "(")) ++depth;
        if (is_punct(toks[k], ")") && --depth == 0) return k;
    }
    return toks.size();
}

/// One HTD_PARALLEL_READY region: the `for`/`while` statement (including
/// its body) that follows the marker. `begin`/`end` are token indices.
struct ParallelRegion {
    std::size_t marker_line = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
};

std::vector<ParallelRegion> parallel_regions(const std::vector<Token>& toks) {
    std::vector<ParallelRegion> regions;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token& t = toks[i];
        if (t.in_directive || !is_ident(t, "HTD_PARALLEL_READY")) continue;
        // Find the loop the marker governs; a `}` first means the marker
        // dangles at the end of a scope and governs nothing.
        std::size_t loop = toks.size();
        for (std::size_t k = i + 1; k < toks.size(); ++k) {
            if (toks[k].in_directive) continue;
            if (is_ident(toks[k], "for") || is_ident(toks[k], "while")) {
                loop = k;
                break;
            }
            if (is_punct(toks[k], "}")) break;
        }
        if (loop == toks.size()) continue;
        std::size_t k = loop + 1;
        if (k < toks.size() && is_punct(toks[k], "(")) {
            k = skip_parens(toks, k);
            if (k < toks.size()) ++k;
        }
        std::size_t end = toks.size();
        if (k < toks.size() && is_punct(toks[k], "{")) {
            int depth = 0;
            for (; k < toks.size(); ++k) {
                if (is_punct(toks[k], "{")) ++depth;
                if (is_punct(toks[k], "}") && --depth == 0) {
                    end = k + 1;
                    break;
                }
            }
        } else {
            // Single-statement body.
            for (; k < toks.size(); ++k) {
                if (is_punct(toks[k], ";")) {
                    end = k + 1;
                    break;
                }
            }
        }
        regions.push_back({t.line, loop, end});
    }
    return regions;
}

// --- global-mutable-state ---------------------------------------------------

void check_global_mutable_state(const std::string& path,
                                const std::vector<Token>& toks,
                                std::vector<Finding>& findings,
                                std::vector<FileAnalysis::Annotation>& annotations) {
    if (!path_in(path, "src/") && !path_in(path, "tools/")) return;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token& t = toks[i];
        if (t.in_directive || t.kind != TokKind::kIdent) continue;
        if (t.text != "static" && t.text != "thread_local") continue;
        // `static thread_local X` fires once, on the first keyword.
        if (i > 0 && toks[i - 1].kind == TokKind::kIdent &&
            !toks[i - 1].in_directive &&
            (toks[i - 1].text == "static" || toks[i - 1].text == "thread_local")) {
            continue;
        }

        bool immutable = false;
        bool not_a_variable = false;
        bool annotated = false;
        std::string symbol;
        std::size_t symbol_line = t.line;
        std::string justification;
        int angle = 0;
        std::size_t k = i + 1;
        for (; k < toks.size(); ++k) {
            const Token& u = toks[k];
            if (u.in_directive) {
                not_a_variable = true;  // declaration ran into a directive
                break;
            }
            if (u.kind == TokKind::kPunct) {
                if (u.text == "<" && k > 0 &&
                    toks[k - 1].kind == TokKind::kIdent) {
                    ++angle;
                } else if (u.text == ">" && angle > 0) {
                    --angle;
                } else if (u.text == ">>" && angle > 0) {
                    angle = angle >= 2 ? angle - 2 : 0;
                } else if (angle > 0) {
                    continue;  // template-argument innards
                } else if (u.text == ";" || u.text == "=" || u.text == "{") {
                    break;  // end of declarator
                } else if (u.text == "}") {
                    not_a_variable = true;  // ill-formed run, bail
                    break;
                } else if (u.text == "(") {
                    const Token& prev = toks[k - 1];
                    if (prev.kind == TokKind::kIdent &&
                        prev.text == "HTD_SHARED_STATE_OK") {
                        annotated = true;
                        if (k + 1 < toks.size() &&
                            toks[k + 1].kind == TokKind::kString &&
                            toks[k + 1].text.size() >= 2) {
                            justification = toks[k + 1].text.substr(
                                1, toks[k + 1].text.size() - 2);
                        }
                        k = skip_parens(toks, k);
                    } else if (prev.kind == TokKind::kIdent &&
                               all_caps(prev.text)) {
                        k = skip_parens(toks, k);  // other annotation macro
                    } else {
                        not_a_variable = true;  // function declaration
                        break;
                    }
                }
                continue;
            }
            if (u.kind != TokKind::kIdent || angle != 0) continue;
            if (u.text == "const" || u.text == "constexpr" ||
                u.text == "constinit" || u.text == "consteval") {
                immutable = true;
            } else if (u.text == "using" || u.text == "typedef" ||
                       u.text == "class" || u.text == "struct" ||
                       u.text == "union" || u.text == "enum" ||
                       u.text == "friend" || u.text == "operator" ||
                       u.text == "extern" || u.text == "static_assert") {
                not_a_variable = true;
                break;
            } else if (!is_decl_specifier(u.text) && !all_caps(u.text)) {
                symbol = u.text;
                symbol_line = u.line;
            }
        }

        if (not_a_variable || immutable || symbol.empty()) continue;
        if (annotated) {
            const bool blank = std::all_of(
                justification.begin(), justification.end(),
                [](unsigned char c) { return std::isspace(c) != 0; });
            if (justification.empty() || blank) {
                findings.push_back(
                    {path, symbol_line, "global-mutable-state",
                     "HTD_SHARED_STATE_OK on '" + symbol +
                         "' needs a non-empty justification string — the "
                         "annotation is the audit record for why this shared "
                         "mutable state is safe"});
            } else {
                annotations.push_back({symbol, symbol_line, justification});
            }
        } else {
            findings.push_back(
                {path, symbol_line, "global-mutable-state",
                 "mutable " + t.text + " state '" + symbol +
                     "' is shared once the statistical core runs on a thread "
                     "pool; make it const/constexpr, pass it explicitly, or "
                     "annotate the declarator with "
                     "HTD_SHARED_STATE_OK(\"reason\") after an audit"});
        }
    }
}

// --- unordered-iteration-escape ---------------------------------------------

bool is_unordered_container(const std::string& s) {
    return s == "unordered_map" || s == "unordered_set" ||
           s == "unordered_multimap" || s == "unordered_multiset";
}

/// Member/free calls that move a value toward serialized output: io::Json
/// setters, container appends, and raw stream writes.
bool is_escape_call(const std::string& s) {
    return s == "set" || s == "push_back" || s == "emplace_back" ||
           s == "append" || s == "write";
}

void check_unordered_iteration_escape(const std::string& path,
                                      const std::vector<Token>& toks,
                                      std::vector<Finding>& out) {
    if (!path_in(path, "src/") && !path_in(path, "tools/")) return;
    // Pass 1: names declared with an unordered container type, with their
    // declaration lines. Member declarations in the same file count.
    std::map<std::string, std::size_t> unordered_vars;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token& t = toks[i];
        if (t.in_directive || t.kind != TokKind::kIdent ||
            !is_unordered_container(t.text)) {
            continue;
        }
        std::size_t k = i + 1;
        if (k >= toks.size() || !is_punct(toks[k], "<")) continue;
        int angle = 0;
        for (; k < toks.size(); ++k) {
            if (is_punct(toks[k], "<")) ++angle;
            if (is_punct(toks[k], ">") && --angle == 0) {
                ++k;
                break;
            }
            if (toks[k].kind == TokKind::kPunct && toks[k].text == ">>") {
                angle -= 2;
                if (angle <= 0) {
                    ++k;
                    break;
                }
            }
        }
        while (k < toks.size() && toks[k].kind == TokKind::kPunct &&
               (toks[k].text == "&" || toks[k].text == "*")) {
            ++k;
        }
        if (k < toks.size() && toks[k].kind == TokKind::kIdent &&
            !all_caps(toks[k].text)) {
            unordered_vars.emplace(toks[k].text, toks[k].line);
        }
    }
    if (unordered_vars.empty()) return;

    // Pass 2: range-for loops whose range expression names one of them.
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].in_directive || !is_ident(toks[i], "for") ||
            !is_punct(toks[i + 1], "(")) {
            continue;
        }
        const std::size_t open = i + 1;
        const std::size_t close = skip_parens(toks, open);
        if (close == toks.size()) continue;
        // The range-for ':' sits at paren depth 1 (a `::` is one fused
        // token, so a plain ':' cannot be confused with it).
        std::size_t colon = toks.size();
        int depth = 0;
        for (std::size_t k = open; k <= close; ++k) {
            if (is_punct(toks[k], "(")) ++depth;
            if (is_punct(toks[k], ")")) --depth;
            if (depth == 1 && is_punct(toks[k], ":")) {
                colon = k;
                break;
            }
        }
        if (colon == toks.size()) continue;
        std::string container;
        std::size_t decl_line = 0;
        for (std::size_t k = colon + 1; k < close; ++k) {
            if (toks[k].kind != TokKind::kIdent) continue;
            const auto it = unordered_vars.find(toks[k].text);
            if (it != unordered_vars.end()) {
                container = it->first;
                decl_line = it->second;
                break;
            }
        }
        if (container.empty()) continue;

        // Body extent: brace-matched block or single statement.
        std::size_t body_begin = close + 1;
        std::size_t body_end = toks.size();
        if (body_begin < toks.size() && is_punct(toks[body_begin], "{")) {
            int bd = 0;
            for (std::size_t k = body_begin; k < toks.size(); ++k) {
                if (is_punct(toks[k], "{")) ++bd;
                if (is_punct(toks[k], "}") && --bd == 0) {
                    body_end = k + 1;
                    break;
                }
            }
        } else {
            for (std::size_t k = body_begin; k < toks.size(); ++k) {
                if (is_punct(toks[k], ";")) {
                    body_end = k + 1;
                    break;
                }
            }
        }
        for (std::size_t k = body_begin; k < body_end; ++k) {
            const Token& u = toks[k];
            if (u.in_directive) continue;
            if (u.kind == TokKind::kPunct && u.text == "<<") {
                out.push_back(
                    {path, toks[i].line, "unordered-iteration-escape",
                     "iteration over unordered container '" + container +
                         "' (declared line " + std::to_string(decl_line) +
                         ") streams its elements via operator<< at line " +
                         std::to_string(u.line) +
                         "; hash iteration order is nondeterministic — copy "
                         "into a sorted container before serializing"});
            } else if (u.kind == TokKind::kIdent && is_escape_call(u.text) &&
                       k > 0 && k + 1 < body_end &&
                       (is_punct(toks[k - 1], ".") ||
                        is_punct(toks[k - 1], "->")) &&
                       is_punct(toks[k + 1], "(")) {
                out.push_back(
                    {path, toks[i].line, "unordered-iteration-escape",
                     "iteration over unordered container '" + container +
                         "' (declared line " + std::to_string(decl_line) +
                         ") feeds '" + u.text + "(...)' at line " +
                         std::to_string(u.line) +
                         ", an order-preserving sink; hash iteration order "
                         "is nondeterministic — copy into a sorted container "
                         "before appending or serializing"});
            }
        }
    }
}

// --- rng-discipline ---------------------------------------------------------

bool is_engine_type(const std::string& s) {
    return s == "mt19937" || s == "mt19937_64" || s == "minstd_rand" ||
           s == "minstd_rand0" || s == "default_random_engine" ||
           s == "ranlux24" || s == "ranlux48" || s == "ranlux24_base" ||
           s == "ranlux48_base" || s == "knuth_b" || s == "Rng";
}

/// Identifier that reads a wall clock: `time(...)`, `...::now(...)`, or
/// any `*clock` type's member chain.
bool is_clock_ident(const std::string& s) {
    return s == "time" || s == "now" || s == "clock" ||
           (s.size() > 6 && s.compare(s.size() - 6, 6, "_clock") == 0);
}

void check_rng_discipline(const std::string& path,
                          const std::vector<Token>& toks,
                          std::vector<Finding>& out) {
    if (!path_in(path, "src/") && !path_in(path, "tools/")) return;

    // (a) Time-seeded constructions: an engine variable whose constructor
    // arguments read a clock. Same-seed reruns then never reproduce.
    std::vector<std::string> engine_vars;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        const Token& t = toks[i];
        if (t.in_directive || t.kind != TokKind::kIdent ||
            !is_engine_type(t.text)) {
            continue;
        }
        std::size_t k = i + 1;
        while (k < toks.size() && toks[k].kind == TokKind::kPunct &&
               (toks[k].text == "&" || toks[k].text == "*")) {
            ++k;
        }
        std::string var;
        if (k < toks.size() && toks[k].kind == TokKind::kIdent &&
            !all_caps(toks[k].text)) {
            var = toks[k].text;
            engine_vars.push_back(var);
            ++k;
        }
        if (k >= toks.size()) break;
        if (!is_punct(toks[k], "(") && !is_punct(toks[k], "{")) continue;
        const char* const open = toks[k].text == "(" ? "(" : "{";
        const char* const shut = toks[k].text == "(" ? ")" : "}";
        int depth = 0;
        for (std::size_t a = k; a < toks.size(); ++a) {
            if (is_punct(toks[a], open)) ++depth;
            if (is_punct(toks[a], shut) && --depth == 0) break;
            if (toks[a].kind == TokKind::kIdent && is_clock_ident(toks[a].text) &&
                a + 1 < toks.size() &&
                (is_punct(toks[a + 1], "(") || is_punct(toks[a + 1], "::"))) {
                out.push_back(
                    {path, t.line, "rng-discipline",
                     "engine '" + (var.empty() ? t.text : var) +
                         "' is seeded from a wall clock ('" + toks[a].text +
                         "'); same-seed runs can never reproduce — derive "
                         "the seed from the experiment seed instead"});
                break;
            }
        }
    }

    // (b) Engine reuse across call sites inside HTD_PARALLEL_READY
    // regions: each loop iteration advancing one shared engine serializes
    // the loop and makes the stream order thread-schedule-dependent.
    const std::vector<ParallelRegion> regions = parallel_regions(toks);
    if (regions.empty() || engine_vars.empty()) return;
    std::sort(engine_vars.begin(), engine_vars.end());
    engine_vars.erase(std::unique(engine_vars.begin(), engine_vars.end()),
                      engine_vars.end());
    for (const ParallelRegion& region : regions) {
        // engine -> list of "callee:line" call sites it is passed into.
        std::map<std::string, std::vector<std::string>> uses;
        for (std::size_t k = region.begin; k < region.end; ++k) {
            const Token& t = toks[k];
            if (t.in_directive || t.kind != TokKind::kIdent) continue;
            if (k + 1 >= region.end || !is_punct(toks[k + 1], "(")) continue;
            if (all_caps(t.text) || is_stmt_keyword(t.text)) continue;
            const std::size_t close = skip_parens(toks, k + 1);
            for (std::size_t a = k + 2; a < close && a < region.end; ++a) {
                if (toks[a].kind != TokKind::kIdent) continue;
                if (!std::binary_search(engine_vars.begin(), engine_vars.end(),
                                        toks[a].text)) {
                    continue;
                }
                // A bare engine argument (next token closes or separates
                // the argument) is a by-reference handoff of engine state.
                if (a + 1 < toks.size() && (is_punct(toks[a + 1], ",") ||
                                            is_punct(toks[a + 1], ")"))) {
                    uses[toks[a].text].push_back(
                        t.text + "(...) at line " + std::to_string(t.line));
                }
            }
        }
        for (const auto& [engine, sites] : uses) {
            if (sites.size() < 2) continue;
            std::string chain;
            for (const std::string& s : sites) {
                if (!chain.empty()) chain += ", ";
                chain += s;
            }
            out.push_back(
                {path, region.marker_line, "rng-discipline",
                 "engine '" + engine + "' is passed into " +
                     std::to_string(sites.size()) +
                     " call sites inside an HTD_PARALLEL_READY region (" +
                     chain +
                     "); one shared engine serializes the loop — give each "
                     "worker its own substream via Rng::split before "
                     "parallelizing"});
        }
    }
}

// --- float-reduction-order --------------------------------------------------

void check_float_reduction_order(const std::string& path,
                                 const std::vector<Token>& toks,
                                 std::vector<Finding>& out) {
    if (!path_in(path, "src/") && !path_in(path, "tools/")) return;
    const std::vector<ParallelRegion> regions = parallel_regions(toks);
    if (regions.empty()) return;

    // Names declared (anywhere in the file) with a floating-point type —
    // the candidates a naive in-region `+=` reduction accumulates into.
    std::set<std::string> fp_vars;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        const Token& t = toks[i];
        if (t.in_directive || t.kind != TokKind::kIdent) continue;
        if (t.text != "double" && t.text != "float") continue;
        std::size_t k = i + 1;
        while (k < toks.size() && toks[k].kind == TokKind::kPunct &&
               (toks[k].text == "&" || toks[k].text == "*")) {
            ++k;
        }
        if (k < toks.size() && toks[k].kind == TokKind::kIdent &&
            !all_caps(toks[k].text) && !is_decl_specifier(toks[k].text)) {
            fp_vars.insert(toks[k].text);
        }
    }

    for (const ParallelRegion& region : regions) {
        for (std::size_t k = region.begin; k < region.end; ++k) {
            const Token& t = toks[k];
            if (t.in_directive) continue;
            if (t.kind == TokKind::kIdent && fp_vars.count(t.text) != 0 &&
                k + 1 < region.end &&
                toks[k + 1].kind == TokKind::kPunct &&
                toks[k + 1].text == "+=") {
                out.push_back(
                    {path, t.line, "float-reduction-order",
                     "naive floating-point reduction '" + t.text +
                         " += ...' inside an HTD_PARALLEL_READY region "
                         "(marker at line " +
                         std::to_string(region.marker_line) +
                         "); accumulation order changes under threading — "
                         "reduce through core::StableAccumulator or "
                         "core::stable_sum (src/core/stable_sum.hpp)"});
            }
            if (t.kind == TokKind::kIdent &&
                (t.text == "accumulate" || t.text == "reduce") &&
                k + 1 < region.end && is_punct(toks[k + 1], "(")) {
                out.push_back(
                    {path, t.line, "float-reduction-order",
                     "std::" + t.text +
                         " inside an HTD_PARALLEL_READY region (marker at "
                         "line " +
                         std::to_string(region.marker_line) +
                         ") reduces in unspecified-for-threading order; use "
                         "core::stable_sum (src/core/stable_sum.hpp), whose "
                         "reduction tree is pinned"});
            }
        }
    }
}

}  // namespace

// --- public API -------------------------------------------------------------

std::string blank_noncode(const std::string& contents) {
    return blank_noncode_tokens(contents, lex(contents));
}

const std::vector<std::string>& rule_ids() {
    static const std::vector<std::string> ids = {
        "rng-seed",         "std-random-in-library", "raw-nan-check",
        "stdio-in-library", "header-hygiene",        "stream-unchecked",
        "layering",         "include-cycle",         "layer-unmapped",
        "result-discard",   "missing-nodiscard",     "work-counter-name",
        "artifact-schema-version", "event-kind-name",
        "global-mutable-state",    "unordered-iteration-escape",
        "rng-discipline",          "float-reduction-order"};
    return ids;
}

std::vector<AllowEntry> parse_allowlist(const std::string& text) {
    std::vector<AllowEntry> entries;
    std::istringstream in(text);
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        std::string justification;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos) {
            justification = line.substr(hash + 1);
            // Trim the comment into a usable justification string.
            const std::size_t b = justification.find_first_not_of(" \t");
            justification = b == std::string::npos ? "" : justification.substr(b);
            const std::size_t e = justification.find_last_not_of(" \t");
            if (e != std::string::npos) justification.erase(e + 1);
            line.erase(hash);
        }
        std::istringstream fields(line);
        std::string rule;
        std::string suffix;
        if (!(fields >> rule)) continue;  // blank / comment-only line
        if (!(fields >> suffix)) {
            throw std::runtime_error("allowlist line " + std::to_string(line_no) +
                                     ": expected '<rule> <path-suffix>'");
        }
        std::string extra;
        if (fields >> extra) {
            throw std::runtime_error("allowlist line " + std::to_string(line_no) +
                                     ": trailing tokens (use # for comments)");
        }
        if (rule != "*" &&
            std::find(rule_ids().begin(), rule_ids().end(), rule) == rule_ids().end()) {
            throw std::runtime_error("allowlist line " + std::to_string(line_no) +
                                     ": unknown rule '" + rule + "'");
        }
        entries.push_back({std::move(rule), detail::normalize(std::move(suffix)),
                           std::move(justification)});
    }
    return entries;
}

LayerSpec parse_layers(const std::string& text) {
    LayerSpec spec;
    std::istringstream in(text);
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos) line.erase(hash);
        std::istringstream fields(line);
        std::vector<std::string> modules;
        std::string m;
        while (fields >> m) modules.push_back(m);
        if (modules.empty()) continue;
        const int layer = static_cast<int>(spec.layers.size());
        for (const std::string& mod : modules) {
            if (!spec.rank.emplace(mod, layer).second) {
                throw std::runtime_error("layers line " + std::to_string(line_no) +
                                         ": module '" + mod +
                                         "' already assigned to a layer");
            }
        }
        spec.layers.push_back(std::move(modules));
    }
    return spec;
}

FileAnalysis analyze_file(const std::string& path, const std::string& contents) {
    const std::string norm = detail::normalize(path);
    FileAnalysis fa;
    const std::vector<Token> toks = lex(contents);
    const std::vector<std::string> code =
        split_lines(blank_noncode_tokens(contents, toks));

    check_rng_seed(norm, code, fa.findings);
    check_std_random_in_library(norm, code, fa.findings);
    check_raw_nan(norm, code, fa.findings);
    check_stdio_in_library(norm, code, fa.findings);
    check_header_hygiene(norm, code, fa.findings);
    check_stream_unchecked(norm, code, fa.findings);

    check_work_counter_names(norm, toks, fa.findings);
    check_artifact_schema_version(norm, toks, fa.findings);
    check_event_kind_names(norm, toks, fa.findings);

    // Determinism passes, individually timed so the report can attribute
    // the v4 analysis cost (the timings stay out of the cache: a hit
    // genuinely does no work).
    using clock = std::chrono::steady_clock;
    const auto timed_ms = [](auto&& fn) {
        const auto t0 = clock::now();
        fn();
        return std::chrono::duration<double, std::milli>(clock::now() - t0)
            .count();
    };
    fa.determinism_ms.global_mutable_state = timed_ms([&] {
        check_global_mutable_state(norm, toks, fa.findings, fa.annotations);
    });
    fa.determinism_ms.unordered_iteration = timed_ms(
        [&] { check_unordered_iteration_escape(norm, toks, fa.findings); });
    fa.determinism_ms.rng_discipline =
        timed_ms([&] { check_rng_discipline(norm, toks, fa.findings); });
    fa.determinism_ms.float_reduction =
        timed_ms([&] { check_float_reduction_order(norm, toks, fa.findings); });

    collect_includes(toks, fa);
    if (path_in(norm, "src/")) {
        // must-use extraction runs on every src/ file; the [[nodiscard]]
        // contract is enforced on the public surface, i.e. headers.
        scan_declarations(norm, toks, /*enforce_nodiscard=*/is_header(norm),
                          fa.findings, fa.must_use);
    }
    if (path_in(norm, "src/") || path_in(norm, "tools/")) {
        collect_discard_sites(toks, fa);
    }

    std::sort(fa.findings.begin(), fa.findings.end(),
              [](const Finding& a, const Finding& b) {
                  return std::tie(a.line, a.rule, a.message) <
                         std::tie(b.line, b.rule, b.message);
              });
    std::sort(fa.must_use.begin(), fa.must_use.end());
    fa.must_use.erase(std::unique(fa.must_use.begin(), fa.must_use.end()),
                      fa.must_use.end());
    std::sort(fa.annotations.begin(), fa.annotations.end(),
              [](const FileAnalysis::Annotation& a,
                 const FileAnalysis::Annotation& b) {
                  return std::tie(a.line, a.symbol) < std::tie(b.line, b.symbol);
              });
    return fa;
}

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& contents) {
    return analyze_file(path, contents).findings;
}

io::Json FileAnalysis::to_json() const {
    io::Json doc = io::Json::object();
    io::Json fs = io::Json::array();
    for (const Finding& f : findings) {
        io::Json rec = io::Json::object();
        rec.set("file", f.file);
        rec.set("line", f.line);
        rec.set("rule", f.rule);
        rec.set("message", f.message);
        fs.push_back(std::move(rec));
    }
    doc.set("findings", std::move(fs));
    io::Json inc = io::Json::array();
    for (const Include& e : includes) {
        io::Json rec = io::Json::object();
        rec.set("target", e.target);
        rec.set("line", e.line);
        inc.push_back(std::move(rec));
    }
    doc.set("includes", std::move(inc));
    io::Json mu = io::Json::array();
    for (const std::string& name : must_use) mu.push_back(name);
    doc.set("must_use", std::move(mu));
    io::Json ds = io::Json::array();
    for (const CallSite& c : discards) {
        io::Json rec = io::Json::object();
        rec.set("name", c.name);
        rec.set("line", c.line);
        ds.push_back(std::move(rec));
    }
    doc.set("discards", std::move(ds));
    io::Json ann = io::Json::array();
    for (const Annotation& a : annotations) {
        io::Json rec = io::Json::object();
        rec.set("symbol", a.symbol);
        rec.set("line", a.line);
        rec.set("justification", a.justification);
        ann.push_back(std::move(rec));
    }
    doc.set("annotations", std::move(ann));
    return doc;
}

FileAnalysis FileAnalysis::from_json(const io::Json& doc) {
    FileAnalysis fa;
    for (const io::Json& rec : doc.at("findings").elements()) {
        fa.findings.push_back({rec.at("file").str(),
                               static_cast<std::size_t>(rec.at("line").number()),
                               rec.at("rule").str(), rec.at("message").str()});
    }
    for (const io::Json& rec : doc.at("includes").elements()) {
        fa.includes.push_back({rec.at("target").str(),
                               static_cast<std::size_t>(rec.at("line").number())});
    }
    for (const io::Json& rec : doc.at("must_use").elements()) {
        fa.must_use.push_back(rec.str());
    }
    for (const io::Json& rec : doc.at("discards").elements()) {
        fa.discards.push_back({rec.at("name").str(),
                               static_cast<std::size_t>(rec.at("line").number())});
    }
    for (const io::Json& rec : doc.at("annotations").elements()) {
        fa.annotations.push_back(
            {rec.at("symbol").str(),
             static_cast<std::size_t>(rec.at("line").number()),
             rec.at("justification").str()});
    }
    return fa;
}

}  // namespace htd::lint
