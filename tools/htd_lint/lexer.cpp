#include "lexer.hpp"

#include <cctype>

namespace htd::lint {

namespace {

bool ident_start(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

/// True when the identifier spelled [begin, end) is a string/char literal
/// encoding prefix (u8, u, U, L) optionally followed by R for raw.
bool is_literal_prefix(const std::string& s, std::size_t begin, std::size_t end,
                       bool& raw) {
    std::string p = s.substr(begin, end - begin);
    raw = !p.empty() && p.back() == 'R';
    if (raw) p.pop_back();
    return p.empty() || p == "u8" || p == "u" || p == "U" || p == "L";
}

/// Two-character punctuators fused into one token. `::` and `->` matter to
/// the passes; the comparison/shift/compound set is fused so that a `<=`
/// never looks like a template-angle opener to the declaration scanner.
bool two_char_punct(char a, char b) {
    switch (a) {
        case ':': return b == ':';
        case '-': return b == '>' || b == '-' || b == '=';
        case '+': return b == '+' || b == '=';
        case '<': return b == '<' || b == '=';
        case '>': return b == '>' || b == '=';
        case '=': return b == '=';
        case '!': return b == '=';
        case '&': return b == '&' || b == '=';
        case '|': return b == '|' || b == '=';
        case '*': return b == '=';
        case '/': return b == '=';
        case '%': return b == '=';
        case '^': return b == '=';
        default: return false;
    }
}

}  // namespace

std::vector<Token> lex(const std::string& src) {
    std::vector<Token> tokens;
    std::size_t line = 1;
    bool line_start = true;
    bool in_directive = false;
    std::size_t i = 0;
    const std::size_t n = src.size();

    const auto push = [&](TokKind kind, std::size_t begin, std::size_t end,
                          std::size_t tok_line) {
        if (kind == TokKind::kPunct && line_start && end - begin == 1 &&
            src[begin] == '#') {
            in_directive = true;
        }
        Token t;
        t.kind = kind;
        t.text = src.substr(begin, end - begin);
        t.line = tok_line;
        t.offset = begin;
        t.length = end - begin;
        t.at_line_start = line_start;
        t.in_directive = in_directive;
        tokens.push_back(std::move(t));
        line_start = false;
    };

    while (i < n) {
        const char c = src[i];
        const char next = i + 1 < n ? src[i + 1] : '\0';

        if (c == '\n') {
            ++line;
            line_start = true;
            in_directive = false;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c)) != 0) {
            ++i;
            continue;
        }
        // Line continuation: glue, but keep the physical line count right.
        if (c == '\\' && next == '\n') {
            ++line;
            i += 2;
            continue;
        }
        if (c == '/' && next == '/') {
            while (i < n && src[i] != '\n') ++i;
            continue;
        }
        if (c == '/' && next == '*') {
            i += 2;
            while (i < n && !(src[i] == '*' && i + 1 < n && src[i + 1] == '/')) {
                if (src[i] == '\n') ++line;
                ++i;
            }
            i = i + 2 <= n ? i + 2 : n;
            continue;
        }

        // Identifier — or a literal with an encoding prefix (u8R"(...)",
        // L"...", u'\x41'), which must be lexed as one literal token.
        if (ident_start(c)) {
            std::size_t j = i;
            while (j < n && ident_char(src[j])) ++j;
            bool raw = false;
            if (j < n && (src[j] == '"' || src[j] == '\'') &&
                is_literal_prefix(src, i, j, raw)) {
                const char quote = src[j];
                if (quote == '"' && raw) {
                    // Raw string: R"delim( ... )delim"
                    const std::size_t begin = i;
                    const std::size_t tok_line = line;
                    std::size_t k = j + 1;
                    std::string delim;
                    while (k < n && src[k] != '(' && src[k] != '\n') delim += src[k++];
                    const std::string terminator = ")" + delim + "\"";
                    std::size_t end = src.find(terminator, k);
                    if (end == std::string::npos) {
                        end = n;
                    } else {
                        end += terminator.size();
                    }
                    push(TokKind::kString, begin, end, tok_line);
                    for (std::size_t p = begin; p < end; ++p) {
                        if (src[p] == '\n') ++line;
                    }
                    i = end;
                    continue;
                }
                // Cooked string/char with prefix: fall through to the
                // quoted-literal scanner below, keeping the prefix.
                const std::size_t begin = i;
                const std::size_t tok_line = line;
                std::size_t k = j + 1;
                while (k < n && src[k] != quote && src[k] != '\n') {
                    if (src[k] == '\\' && k + 1 < n) ++k;
                    ++k;
                }
                if (k < n && src[k] == quote) ++k;
                push(quote == '"' ? TokKind::kString : TokKind::kChar, begin, k,
                     tok_line);
                i = k;
                continue;
            }
            push(TokKind::kIdent, i, j, line);
            i = j;
            continue;
        }

        // pp-number: digits, or '.' followed by a digit.
        if (digit(c) || (c == '.' && digit(next))) {
            std::size_t j = i + 1;
            while (j < n) {
                const char d = src[j];
                if (ident_char(d) || d == '.') {
                    ++j;
                } else if (d == '\'' && j + 1 < n && ident_char(src[j + 1])) {
                    j += 2;  // digit separator
                } else if ((d == '+' || d == '-') &&
                           (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                            src[j - 1] == 'p' || src[j - 1] == 'P')) {
                    ++j;  // exponent sign
                } else {
                    break;
                }
            }
            push(TokKind::kNumber, i, j, line);
            i = j;
            continue;
        }

        if (c == '"' || c == '\'') {
            const std::size_t begin = i;
            const std::size_t tok_line = line;
            std::size_t k = i + 1;
            while (k < n && src[k] != c && src[k] != '\n') {
                if (src[k] == '\\' && k + 1 < n) ++k;
                ++k;
            }
            if (k < n && src[k] == c) ++k;
            push(c == '"' ? TokKind::kString : TokKind::kChar, begin, k, tok_line);
            i = k;
            continue;
        }

        // Punctuation.
        if (c == '.' && next == '.' && i + 2 < n && src[i + 2] == '.') {
            push(TokKind::kPunct, i, i + 3, line);
            i += 3;
            continue;
        }
        if (i + 1 < n && two_char_punct(c, next)) {
            push(TokKind::kPunct, i, i + 2, line);
            i += 2;
            continue;
        }
        push(TokKind::kPunct, i, i + 1, line);
        ++i;
    }
    return tokens;
}

}  // namespace htd::lint
