/// \file analyzer.cpp
/// The htd_lint v4 analyzer core: walks the tree, runs the per-file front
/// end (lint.cpp) on a thread pool with a content-hash result cache (keyed
/// by file content *and* the rule configuration — layers, allowlist, rule
/// set), then runs the global passes — include-graph layering,
/// include-cycle detection, and result-discard resolution — over the
/// per-file extractions. Diagnostic order is deterministic regardless of
/// thread count or cache state: files are visited in sorted order and
/// findings are sorted before reporting.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "internal.hpp"
#include "lint.hpp"

namespace htd::lint {

namespace fs = std::filesystem;

namespace {

// --- cache ------------------------------------------------------------------

/// Bump when FileAnalysis or any per-file pass changes behaviour: the key
/// participates in the content hash, so stale cache entries simply miss.
// v3: work-counter-name rule added to the per-file scan.
// v4: artifact-schema-version rule added to the per-file scan.
// v5: event-kind-name rule added to the per-file scan.
// v6: determinism passes (global-mutable-state, unordered-iteration-escape,
//     rng-discipline, float-reduction-order) + annotations added; the
//     layering spec, allowlist and rule configuration are folded into the
//     key so editing rule inputs invalidates cached per-file results.
constexpr const char* kCacheVersion = "htd_lint.cache.v6";

std::uint64_t fnv1a64(const std::string& data, std::uint64_t h) {
    for (const char c : data) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

/// Everything besides the file's own bytes that can change a cached
/// FileAnalysis (or how the driver interprets it): the rule set, the
/// layering spec, and the allowlist. Editing any of these must miss the
/// cache — before v6 only the source content was hashed, so a warm cache
/// could keep enforcing a stale layers.txt.
std::uint64_t config_fingerprint(const Options& options) {
    std::uint64_t h = 1469598103934665603ULL;
    const std::string sep(1, '\0');
    for (const std::string& rule : rule_ids()) {
        h = fnv1a64(rule, h);
        h = fnv1a64(sep, h);
    }
    for (const std::vector<std::string>& layer : options.layers.layers) {
        for (const std::string& mod : layer) {
            h = fnv1a64(mod, h);
            h = fnv1a64(sep, h);
        }
        h = fnv1a64(sep, h);
    }
    for (const AllowEntry& e : options.allow) {
        h = fnv1a64(e.rule, h);
        h = fnv1a64(sep, h);
        h = fnv1a64(e.path_suffix, h);
        h = fnv1a64(sep, h);
        h = fnv1a64(e.justification, h);
        h = fnv1a64(sep, h);
    }
    return h;
}

std::string content_key(const std::string& path, const std::string& contents,
                        std::uint64_t config_hash) {
    std::uint64_t h = 1469598103934665603ULL;
    h = fnv1a64(kCacheVersion, h);
    h = fnv1a64(path, h);
    h = fnv1a64(std::string(1, '\0'), h);
    h = fnv1a64(contents, h);
    h ^= config_hash;
    h *= 1099511628211ULL;
    std::ostringstream hex;
    hex << std::hex << h;
    return hex.str();
}

bool load_cached(const std::string& cache_dir, const std::string& key,
                 FileAnalysis& fa) {
    const fs::path entry = fs::path(cache_dir) / (key + ".json");
    std::error_code ec;
    if (!fs::exists(entry, ec) || ec) return false;
    try {
        fa = FileAnalysis::from_json(io::Json::parse_file(entry.string()));
        return true;
    } catch (const std::exception&) {
        return false;  // corrupt entry: fall through to a fresh scan
    }
}

void store_cached(const std::string& cache_dir, const std::string& key,
                  const FileAnalysis& fa) {
    try {
        fa.to_json().dump_to_file(
            (fs::path(cache_dir) / (key + ".json")).string(), 0);
    } catch (const std::exception&) {
        // Best effort: a read-only build tree must not fail the lint run.
    }
}

// --- tree walk --------------------------------------------------------------

bool lintable(const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".hpp";
}

std::vector<fs::path> collect_files(const std::vector<std::string>& paths) {
    std::vector<fs::path> files;
    for (const std::string& raw : paths) {
        const fs::path p(raw);
        if (fs::is_directory(p)) {
            for (const auto& entry : fs::recursive_directory_iterator(p)) {
                if (entry.is_regular_file() && lintable(entry.path())) {
                    files.push_back(entry.path());
                }
            }
        } else if (fs::is_regular_file(p)) {
            files.push_back(p);
        } else {
            throw std::runtime_error("htd_lint: no such path: " + raw);
        }
    }
    std::sort(files.begin(), files.end(),
              [](const fs::path& a, const fs::path& b) {
                  return a.generic_string() < b.generic_string();
              });
    files.erase(std::unique(files.begin(), files.end()), files.end());
    return files;
}

/// One walked file plus everything the front end extracted from it.
struct ScanSlot {
    std::string path;  ///< normalized forward-slash path
    FileAnalysis fa;
    bool cached = false;
    std::string error;  ///< nonempty when the scan failed (reported once)
};

// --- layering pass ----------------------------------------------------------

std::string module_of_include(const std::string& target) {
    const std::size_t slash = target.find('/');
    if (slash == std::string::npos) return {};  // same-directory include
    return target.substr(0, slash);
}

void layering_pass(const std::vector<ScanSlot>& slots, const LayerSpec& spec,
                   std::vector<Finding>& out) {
    // Modules actually present in the walked tree: includes of unknown
    // first components ("gtest/gtest.h") name the outside world, not a
    // layering violation.
    std::set<std::string> present;
    for (const ScanSlot& s : slots) {
        const std::string mod = detail::module_of(s.path);
        if (!mod.empty()) present.insert(mod);
    }
    for (const ScanSlot& s : slots) {
        const std::string mod = detail::module_of(s.path);
        if (mod.empty()) continue;
        const auto from = spec.rank.find(mod);
        if (from == spec.rank.end()) {
            out.push_back(
                {s.path, 1, "layer-unmapped",
                 "module '" + mod +
                     "' is not declared in the layering spec "
                     "(tools/htd_lint/layers.txt); every src/ module must be "
                     "assigned a layer so the architecture contract applies"});
            continue;  // unrankable edges; the cycle pass still covers it
        }
        for (const FileAnalysis::Include& inc : s.fa.includes) {
            const std::string to_mod = module_of_include(inc.target);
            if (to_mod.empty() || to_mod == mod) continue;
            const auto to = spec.rank.find(to_mod);
            if (to == spec.rank.end()) {
                if (present.count(to_mod) != 0) {
                    out.push_back({s.path, inc.line, "layer-unmapped",
                                   "include of \"" + inc.target +
                                       "\" reaches module '" + to_mod +
                                       "', which is not declared in the "
                                       "layering spec"});
                }
                continue;
            }
            if (to->second > from->second) {
                out.push_back(
                    {s.path, inc.line, "layering",
                     "layering back-edge: module '" + mod + "' (layer " +
                         std::to_string(from->second) +
                         ") may not include '" + to_mod + "' (layer " +
                         std::to_string(to->second) + "): " + s.path +
                         " -> \"" + inc.target + "\""});
            } else if (to->second == from->second) {
                out.push_back(
                    {s.path, inc.line, "layering",
                     "peer coupling: modules '" + mod + "' and '" + to_mod +
                         "' share layer " + std::to_string(from->second) +
                         " and must stay mutually independent: " + s.path +
                         " -> \"" + inc.target + "\""});
            }
        }
    }
}

// --- include-cycle pass -----------------------------------------------------

std::string dir_of(const std::string& path) {
    const std::size_t slash = path.rfind('/');
    return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

/// Resolve each quoted include to an index in `slots` the way the build
/// does: relative to the including file's directory first, then relative
/// to the src/ root (our -I src include path).
std::vector<std::vector<std::pair<std::size_t, std::size_t>>> resolve_edges(
    const std::vector<ScanSlot>& slots) {
    std::map<std::string, std::size_t> index_of;
    for (std::size_t i = 0; i < slots.size(); ++i) index_of[slots[i].path] = i;
    // src/ roots seen in the walked tree ("src/", "foo/src/", ...).
    std::set<std::string> roots;
    for (const ScanSlot& s : slots) {
        const std::size_t pos = s.path.rfind("src/");
        if (pos == 0 || (pos != std::string::npos && s.path[pos - 1] == '/')) {
            roots.insert(s.path.substr(0, pos + 4));
        }
    }
    std::vector<std::vector<std::pair<std::size_t, std::size_t>>> edges(
        slots.size());
    for (std::size_t i = 0; i < slots.size(); ++i) {
        for (const FileAnalysis::Include& inc : slots[i].fa.includes) {
            std::vector<std::string> candidates;
            const std::string dir = dir_of(slots[i].path);
            candidates.push_back(dir.empty() ? inc.target : dir + "/" + inc.target);
            for (const std::string& root : roots) {
                candidates.push_back(root + inc.target);
            }
            for (const std::string& cand : candidates) {
                const auto it = index_of.find(cand);
                if (it != index_of.end()) {
                    edges[i].push_back({it->second, inc.line});
                    break;
                }
            }
        }
    }
    return edges;
}

void cycle_pass(const std::vector<ScanSlot>& slots, std::vector<Finding>& out) {
    const auto edges = resolve_edges(slots);
    enum Color : unsigned char { kWhite, kGray, kBlack };
    std::vector<Color> color(slots.size(), kWhite);
    // Each cycle is reported once, keyed by its canonical rotation.
    std::set<std::vector<std::size_t>> seen;

    struct Frame {
        std::size_t node;
        std::size_t next_edge = 0;
    };
    std::vector<Frame> stack;
    std::vector<std::size_t> chain;  // gray nodes, root -> current

    for (std::size_t start = 0; start < slots.size(); ++start) {
        if (color[start] != kWhite) continue;
        stack.push_back({start});
        color[start] = kGray;
        chain.push_back(start);
        while (!stack.empty()) {
            Frame& f = stack.back();
            if (f.next_edge < edges[f.node].size()) {
                const auto [to, line] = edges[f.node][f.next_edge++];
                if (color[to] == kWhite) {
                    color[to] = kGray;
                    chain.push_back(to);
                    stack.push_back({to});
                } else if (color[to] == kGray) {
                    // Back edge: the cycle is chain[pos..end] closed by
                    // this include.
                    const auto pos =
                        std::find(chain.begin(), chain.end(), to);
                    std::vector<std::size_t> cyc(pos, chain.end());
                    // Canonical rotation: start at the smallest index.
                    const auto min_it = std::min_element(cyc.begin(), cyc.end());
                    std::rotate(cyc.begin(), min_it, cyc.end());
                    if (seen.insert(cyc).second) {
                        std::string msg = "include cycle: ";
                        for (auto it = pos; it != chain.end(); ++it) {
                            msg += slots[*it].path + " -> ";
                        }
                        msg += slots[to].path +
                               " (break one of these includes)";
                        out.push_back({slots[f.node].path, line,
                                       "include-cycle", std::move(msg)});
                    }
                }
            } else {
                color[f.node] = kBlack;
                chain.pop_back();
                stack.pop_back();
            }
        }
    }
}

// --- result-discard pass ----------------------------------------------------

void discard_pass(const std::vector<ScanSlot>& slots,
                  std::vector<Finding>& out) {
    std::set<std::string> must_use;
    for (const ScanSlot& s : slots) {
        must_use.insert(s.fa.must_use.begin(), s.fa.must_use.end());
    }
    // `find` alone is too common a name to act on without its declaration
    // being in the walked set — which it is here, since the declaration
    // scanner recorded it. Statement-level drops of anything in the set
    // are boundary decisions skipped silently.
    for (const ScanSlot& s : slots) {
        for (const FileAnalysis::CallSite& c : s.fa.discards) {
            if (must_use.count(c.name) == 0) continue;
            out.push_back(
                {s.path, c.line, "result-discard",
                 "result of '" + c.name + "(...)' is discarded; '" + c.name +
                     "' returns a must-use type (a boundary/validation "
                     "decision or std::optional) — act on the value, or cast "
                     "to void with a comment explaining the drop"});
        }
    }
}

// --- allowlist --------------------------------------------------------------

bool suffix_match(const std::string& path, const std::string& suffix) {
    return path.size() >= suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

}  // namespace

// --- driver -----------------------------------------------------------------

Report lint_paths(const std::vector<std::string>& paths,
                  const Options& options) {
    const auto t_total = std::chrono::steady_clock::now();
    const std::vector<fs::path> files = collect_files(paths);

    bool cache_enabled = !options.cache_dir.empty();
    if (cache_enabled) {
        std::error_code ec;
        fs::create_directories(options.cache_dir, ec);
        if (ec) cache_enabled = false;  // unwritable cache: scan everything
    }

    const std::uint64_t config_hash = config_fingerprint(options);
    std::vector<ScanSlot> slots(files.size());
    std::atomic<std::size_t> next{0};
    const auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= slots.size()) return;
            ScanSlot& slot = slots[i];
            slot.path = detail::normalize(files[i].generic_string());
            try {
                std::ifstream in(files[i], std::ios::binary);
                if (!in.is_open()) {
                    throw std::runtime_error("htd_lint: cannot read " +
                                             slot.path);
                }
                std::ostringstream buf;
                buf << in.rdbuf();
                const std::string contents = buf.str();
                std::string key;
                if (cache_enabled) {
                    key = content_key(slot.path, contents, config_hash);
                    if (load_cached(options.cache_dir, key, slot.fa)) {
                        slot.cached = true;
                        continue;
                    }
                }
                slot.fa = analyze_file(slot.path, contents);
                if (cache_enabled) store_cached(options.cache_dir, key, slot.fa);
            } catch (const std::exception& e) {
                slot.error = e.what();
            }
        }
    };

    const auto t_scan = std::chrono::steady_clock::now();
    std::size_t jobs = options.jobs != 0
                           ? options.jobs
                           : std::max(1u, std::thread::hardware_concurrency());
    jobs = std::min(jobs, std::max<std::size_t>(slots.size(), 1));
    if (jobs <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (std::size_t t = 0; t < jobs; ++t) pool.emplace_back(worker);
        for (std::thread& t : pool) t.join();
    }
    const double scan_ms = ms_since(t_scan);
    for (const ScanSlot& slot : slots) {
        if (!slot.error.empty()) throw std::runtime_error(slot.error);
    }

    Report report;
    report.files_checked = slots.size();
    for (const ScanSlot& slot : slots) {
        report.files_cached += slot.cached ? 1 : 0;
    }

    std::vector<Finding> findings;
    FileAnalysis::DeterminismMs det_ms;
    for (const ScanSlot& slot : slots) {
        findings.insert(findings.end(), slot.fa.findings.begin(),
                        slot.fa.findings.end());
        for (const FileAnalysis::Annotation& a : slot.fa.annotations) {
            report.annotations.push_back(
                {slot.path, a.line, a.symbol, a.justification});
        }
        det_ms.global_mutable_state += slot.fa.determinism_ms.global_mutable_state;
        det_ms.unordered_iteration += slot.fa.determinism_ms.unordered_iteration;
        det_ms.rng_discipline += slot.fa.determinism_ms.rng_discipline;
        det_ms.float_reduction += slot.fa.determinism_ms.float_reduction;
    }
    // Slots are path-sorted, so annotations already sort by (file, line) —
    // the per-file scan ordered them by line.

    const auto t_layer = std::chrono::steady_clock::now();
    if (!options.layers.empty()) {
        layering_pass(slots, options.layers, findings);
        cycle_pass(slots, findings);
    }
    const double layer_ms = ms_since(t_layer);

    const auto t_discard = std::chrono::steady_clock::now();
    discard_pass(slots, findings);
    const double discard_ms = ms_since(t_discard);

    // Deterministic order: slots are sorted by path, but global passes
    // append out of file order.
    std::sort(findings.begin(), findings.end(),
              [](const Finding& a, const Finding& b) {
                  return std::tie(a.file, a.line, a.rule, a.message) <
                         std::tie(b.file, b.line, b.rule, b.message);
              });

    std::vector<std::size_t> hits(options.allow.size(), 0);
    for (Finding& f : findings) {
        bool suppressed = false;
        for (std::size_t a = 0; a < options.allow.size(); ++a) {
            const AllowEntry& entry = options.allow[a];
            if ((entry.rule == "*" || entry.rule == f.rule) &&
                suffix_match(f.file, entry.path_suffix)) {
                ++hits[a];
                suppressed = true;
                break;
            }
        }
        if (suppressed) {
            ++report.suppressed;
        } else {
            report.findings.push_back(std::move(f));
        }
    }
    for (std::size_t a = 0; a < options.allow.size(); ++a) {
        if (hits[a] == 0) {
            report.unused_allow.push_back(options.allow[a]);
        } else {
            report.allow_usage.push_back({options.allow[a], hits[a]});
        }
    }

    // The four determinism passes run inside the scan workers; their wall
    // times are summed across files (zero for cache hits) and reported as
    // first-class passes so the v4 analysis cost stays attributable.
    report.passes.push_back({"scan", scan_ms});
    report.passes.push_back(
        {"global-mutable-state", det_ms.global_mutable_state});
    report.passes.push_back(
        {"unordered-iteration-escape", det_ms.unordered_iteration});
    report.passes.push_back({"rng-discipline", det_ms.rng_discipline});
    report.passes.push_back({"float-reduction-order", det_ms.float_reduction});
    report.passes.push_back({"layering", layer_ms});
    report.passes.push_back({"result-discard", discard_ms});
    report.passes.push_back({"total", ms_since(t_total)});
    return report;
}

Report lint_paths(const std::vector<std::string>& paths,
                  const std::vector<AllowEntry>& allow) {
    Options options;
    options.allow = allow;
    options.jobs = 1;
    return lint_paths(paths, options);
}

// --- reports ----------------------------------------------------------------

io::Json report_json(const Report& report) {
    io::Json doc = io::Json::object();
    doc.set("schema", std::string("htd_lint.v3"));
    io::Json arr = io::Json::array();
    for (const Finding& f : report.findings) {
        io::Json rec = io::Json::object();
        rec.set("file", f.file);
        rec.set("line", f.line);
        rec.set("rule", f.rule);
        rec.set("message", f.message);
        arr.push_back(std::move(rec));
    }
    doc.set("findings", std::move(arr));
    doc.set("files_checked", report.files_checked);
    doc.set("files_cached", report.files_cached);
    doc.set("suppressed", report.suppressed);
    io::Json passes = io::Json::array();
    for (const PassTiming& p : report.passes) {
        io::Json rec = io::Json::object();
        rec.set("name", p.name);
        rec.set("wall_ms", p.wall_ms);
        passes.push_back(std::move(rec));
    }
    doc.set("passes", std::move(passes));
    io::Json annotations = io::Json::array();
    for (const ReportAnnotation& a : report.annotations) {
        io::Json rec = io::Json::object();
        rec.set("file", a.file);
        rec.set("line", a.line);
        rec.set("symbol", a.symbol);
        rec.set("justification", a.justification);
        annotations.push_back(std::move(rec));
    }
    doc.set("annotations", std::move(annotations));
    io::Json allow = io::Json::array();
    for (const AllowUsage& u : report.allow_usage) {
        io::Json rec = io::Json::object();
        rec.set("rule", u.entry.rule);
        rec.set("path_suffix", u.entry.path_suffix);
        rec.set("justification", u.entry.justification);
        rec.set("findings_suppressed", u.hits);
        allow.push_back(std::move(rec));
    }
    doc.set("allowlist", std::move(allow));
    io::Json unused = io::Json::array();
    for (const AllowEntry& e : report.unused_allow) {
        io::Json rec = io::Json::object();
        rec.set("rule", e.rule);
        rec.set("path_suffix", e.path_suffix);
        unused.push_back(std::move(rec));
    }
    doc.set("unused_allowlist_entries", std::move(unused));
    return doc;
}

std::string report_text(const Report& report) {
    std::ostringstream out;
    for (const Finding& f : report.findings) {
        out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
            << "\n";
    }
    for (const AllowEntry& e : report.unused_allow) {
        out << "htd_lint: stale allowlist entry (no findings matched): "
            << e.rule << " " << e.path_suffix << "\n";
    }
    out << "htd_lint: " << report.files_checked << " files";
    if (report.files_cached > 0) {
        out << " (" << report.files_cached << " cached)";
    }
    out << ", " << report.findings.size() << " finding(s), "
        << report.suppressed << " suppressed";
    if (!report.annotations.empty()) {
        out << ", " << report.annotations.size()
            << " audited shared-state site(s)";
    }
    out << "\n";
    if (!report.passes.empty()) {
        out << "htd_lint: passes:";
        for (const PassTiming& p : report.passes) {
            std::ostringstream ms;
            ms.setf(std::ios::fixed);
            ms.precision(1);
            ms << p.wall_ms;
            out << " " << p.name << " " << ms.str() << " ms";
            if (&p != &report.passes.back()) out << ",";
        }
        out << "\n";
    }
    return out.str();
}

}  // namespace htd::lint
