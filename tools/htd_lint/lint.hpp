#pragma once
/// \file lint.hpp
/// htd_lint: the project-invariant checker behind `scripts/check.sh
/// --analyze`. clang-tidy proves general C++ hygiene; these rules encode
/// *project* contracts that no generic checker can express:
///
///   rng-seed            Deterministic reproducibility: no
///                       `std::random_device`, no default-constructed
///                       standard engines — every generator takes an
///                       explicit seed.
///   std-random-in-library
///                       Library code (src/, outside src/rng/) draws
///                       randomness through `htd::rng::Rng`, never raw
///                       `<random>` engines/distributions, so one seed
///                       reproduces a whole experiment.
///   raw-nan-check       `std::isnan` / `std::isinf` on measurement data
///                       belongs in `core::MeasurementValidator`
///                       (src/core/ingest.*); other sites need a vetted
///                       allowlist entry explaining why they screen
///                       floats themselves.
///   stdio-in-library    Library code never prints (`printf` family,
///                       `std::cout` / `std::cerr`); output goes through
///                       the `htd::obs` sinks. src/obs/ itself is exempt —
///                       it *is* the sink layer.
///   header-hygiene      Headers under src/ start with `#pragma once` and
///                       declare into the `htd::` namespace.
///   stream-unchecked    A `std::ifstream` / `std::ofstream` must have its
///                       open/error state checked near the construction
///                       site (CSV/JSON ingestion silently reading an
///                       unopened stream was the PR 2 failure mode).
///
/// The scanner blanks comments and string/char literals before matching,
/// so a rule pattern quoted in a test fixture or in this very file does
/// not self-trip. Findings can be suppressed through an allowlist file
/// (one `<rule> <path-suffix>` pair per line); unused entries are
/// reported so the allowlist cannot silently rot. See DESIGN.md §11.

#include <cstddef>
#include <string>
#include <vector>

#include "io/json.hpp"

namespace htd::lint {

/// One diagnostic: `file:line: [rule] message`.
struct Finding {
    std::string file;  ///< forward-slash path as walked
    std::size_t line = 0;  ///< 1-based
    std::string rule;
    std::string message;
};

/// One allowlist entry: suppress `rule` findings in files whose path ends
/// with `path_suffix`. `rule == "*"` matches every rule.
struct AllowEntry {
    std::string rule;
    std::string path_suffix;
};

/// Parse allowlist text: one `<rule> <path-suffix>` per line, `#` starts
/// a comment, blank lines ignored. Throws std::runtime_error naming the
/// line on a malformed entry.
[[nodiscard]] std::vector<AllowEntry> parse_allowlist(const std::string& text);

/// The rule ids in reporting order.
[[nodiscard]] const std::vector<std::string>& rule_ids();

/// Lint one in-memory file. `path` selects which rules apply (library
/// rules only fire under src/) and is echoed into findings.
[[nodiscard]] std::vector<Finding> lint_source(const std::string& path,
                                               const std::string& contents);

/// Aggregate result of a tree walk.
struct Report {
    std::vector<Finding> findings;  ///< after allowlist filtering
    std::size_t files_checked = 0;
    std::size_t suppressed = 0;  ///< findings removed by the allowlist
    /// Allowlist entries that suppressed nothing (stale — rot guard).
    std::vector<AllowEntry> unused_allow;

    [[nodiscard]] bool clean() const noexcept { return findings.empty(); }
};

/// Lint every *.cpp / *.hpp under `paths` (files or directories, walked
/// recursively in sorted order). Throws std::runtime_error for a path
/// that does not exist.
[[nodiscard]] Report lint_paths(const std::vector<std::string>& paths,
                                const std::vector<AllowEntry>& allow);

/// Machine-readable report (schema "htd_lint.v1"):
/// {"schema", "findings": [{file,line,rule,message}], "files_checked",
///  "suppressed", "unused_allowlist_entries": [{rule,path_suffix}]}.
[[nodiscard]] io::Json report_json(const Report& report);

/// Human-readable rendering: one `file:line: [rule] message` per finding
/// plus a summary line.
[[nodiscard]] std::string report_text(const Report& report);

/// Strip comments and string/char literals (replaced by spaces) while
/// preserving line structure. Exposed for tests.
[[nodiscard]] std::string blank_noncode(const std::string& contents);

}  // namespace htd::lint
