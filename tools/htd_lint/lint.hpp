#pragma once
/// \file lint.hpp
/// htd_lint v4: the project-invariant analyzer behind `scripts/check.sh
/// --analyze`. clang-tidy proves general C++ hygiene; these passes encode
/// *project* contracts that no generic checker can express.
///
/// Line rules (v1, matched over comment/string-blanked text):
///
///   rng-seed            Deterministic reproducibility: no
///                       `std::random_device`, no default-constructed
///                       standard engines — every generator takes an
///                       explicit seed.
///   std-random-in-library
///                       Library code (src/, outside src/rng/) draws
///                       randomness through `htd::rng::Rng`, never raw
///                       `<random>` engines/distributions, so one seed
///                       reproduces a whole experiment.
///   raw-nan-check       `std::isnan` / `std::isinf` on measurement data
///                       belongs in `core::MeasurementValidator`
///                       (src/pipeline/ingest.*); other sites need a vetted
///                       allowlist entry explaining why they screen
///                       floats themselves.
///   stdio-in-library    Library code never prints (`printf` family,
///                       `std::cout` / `std::cerr`); output goes through
///                       the `htd::obs` sinks. src/obs/ itself is exempt —
///                       it *is* the sink layer.
///   header-hygiene      Headers under src/ start with `#pragma once` and
///                       declare into the `htd::` namespace.
///   stream-unchecked    A `std::ifstream` / `std::ofstream` must have its
///                       open/error state checked near the construction
///                       site (CSV/JSON ingestion silently reading an
///                       unopened stream was the PR 2 failure mode).
///
/// Structural passes (v2, over the lexer's token stream — see lexer.hpp):
///
///   layering            The module DAG under src/ obeys the layering
///                       declared in tools/htd_lint/layers.txt: a module
///                       may include only modules on strictly lower
///                       layers (or itself). Peers sharing a layer are
///                       mutually independent. Diagnostics carry the
///                       offending include edge; see DESIGN.md §12.
///   include-cycle       No cycle in the file-level include graph; the
///                       diagnostic prints the full include chain.
///   layer-unmapped      Every src/ module appears in layers.txt, so the
///                       layering contract cannot silently not apply.
///   result-discard      A statement that calls a function returning a
///                       must-use type (`BoundaryStatus`,
///                       `QuarantineSummary`, `ValidationResult`,
///                       `IngestResult`, or a `std::optional` such as
///                       `HealthMonitor::find`) and drops the value is a
///                       silently-skipped boundary decision. Cast to void
///                       with a comment if the drop is intentional.
///   missing-nodiscard   Every public value-returning function declared in
///                       a src/ header is `[[nodiscard]]`. Exemptions:
///                       reference returns (chaining), operators,
///                       constructors/destructors, `friend`/`using`
///                       declarations, and out-of-line definitions (the
///                       in-class declaration carries the attribute).
///   work-counter-name   (v3) A literal name passed to `work_add` in src/
///                       must be `work.<stage>.<quantity>` (lowercase
///                       [a-z0-9_] segments, exactly two dots) so
///                       htd_profile can attribute it; conversely
///                       `counter_add` / `gauge_set` /
///                       `histogram_record` must not claim the `work.`
///                       namespace — the metric kind is part of the
///                       profiling contract (DESIGN.md §13).
///   artifact-schema-version
///                       (v4) The `htd.boundary.*` artifact schema string
///                       may be spelled as a literal only in its defining
///                       header, src/pipeline/artifact.hpp; any other
///                       string literal containing the prefix in src/ or
///                       tools/ forks the compatibility contract and skews
///                       silently on the next version bump (DESIGN.md §14).
///                       tools/htd_lint/ itself is exempt.
///
/// Determinism & concurrency-readiness passes (v4 of the tool, DESIGN.md
/// §16 — they gate the path to the parallel statistical core; scoped to
/// src/ and tools/):
///
///   global-mutable-state
///                       Namespace-scope and function-local `static` /
///                       `thread_local` mutable variables are data races
///                       waiting for the thread pool. Each site is flagged
///                       unless the declarator carries
///                       `HTD_SHARED_STATE_OK("reason")`
///                       (src/core/annotations.hpp); surviving annotations
///                       are surfaced — with their justifications — in the
///                       JSON report so the audit cannot rot.
///   unordered-iteration-escape
///                       A range-for over a `std::unordered_map` /
///                       `unordered_set` whose body writes to a stream,
///                       `io::Json`, or an append-only container leaks the
///                       hash table's nondeterministic iteration order into
///                       serialized output. The diagnostic carries the
///                       chain: container declaration line, loop line, and
///                       the escaping write.
///   rng-discipline      Time-seeded engine constructions
///                       (`time(...)`/`...::now()` in ctor args) break
///                       same-seed reproducibility anywhere; inside an
///                       `HTD_PARALLEL_READY` region, one engine fed into
///                       two or more call sites serializes the whole loop
///                       on the engine state — per-thread substreams via
///                       `Rng::split` are required first. The diagnostic
///                       lists every call site sharing the engine.
///   float-reduction-order
///                       Inside an `HTD_PARALLEL_READY` region, a naive
///                       `+=` / `std::accumulate` reduction over
///                       floating-point values makes the result depend on
///                       accumulation order, which threading will change.
///                       Reductions there go through `core::stable_sum` /
///                       `core::StableAccumulator`
///                       (src/core/stable_sum.hpp), whose order is pinned.
///
/// The analyzer core runs per-file scans on a thread pool, caches per-file
/// results keyed by content hash — salted with the layering spec, the
/// allowlist, and the rule configuration, so editing any rule input
/// invalidates cached results — orders diagnostics deterministically, and
/// reports wall time per pass into the `htd_lint.v3` JSON schema. Findings
/// can be suppressed through an allowlist file (`<rule> <path-suffix>  #
/// justification` per line); unused entries are reported so the allowlist
/// cannot silently rot, and the surviving entries are emitted — with their
/// justifications — in the JSON report for audits.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "io/json.hpp"

namespace htd::lint {

/// One diagnostic: `file:line: [rule] message`.
struct Finding {
    std::string file;  ///< forward-slash path as walked
    std::size_t line = 0;  ///< 1-based
    std::string rule;
    std::string message;
};

/// One allowlist entry: suppress `rule` findings in files whose path ends
/// with `path_suffix`. `rule == "*"` matches every rule. `justification`
/// is the trailing `#` comment of the entry's line — the audit trail for
/// why the invariant does not apply at that site.
struct AllowEntry {
    std::string rule;
    std::string path_suffix;
    std::string justification;
};

/// Parse allowlist text: one `<rule> <path-suffix>` per line, `#` starts
/// a comment (a trailing comment becomes the entry's justification),
/// blank lines ignored. Throws std::runtime_error naming the line on a
/// malformed entry.
[[nodiscard]] std::vector<AllowEntry> parse_allowlist(const std::string& text);

/// The rule ids in reporting order.
[[nodiscard]] const std::vector<std::string>& rule_ids();

/// The declared module layering: `layers[0]` is the bottom. Modules on
/// the same line of layers.txt share a layer and are mutually
/// independent peers.
struct LayerSpec {
    std::vector<std::vector<std::string>> layers;
    std::map<std::string, int> rank;  ///< module -> index into layers

    [[nodiscard]] bool empty() const noexcept { return layers.empty(); }
};

/// Parse a layering spec: one layer per line, bottom first, modules
/// separated by whitespace, `#` starts a comment. Throws
/// std::runtime_error on a duplicated module.
[[nodiscard]] LayerSpec parse_layers(const std::string& text);

/// Everything the per-file scan extracts from one translation unit. This
/// is the unit of caching: the global passes (layering, result-discard)
/// run over these, so a cache hit skips lexing and scanning entirely.
struct FileAnalysis {
    struct Include {
        std::string target;  ///< quoted include text, e.g. "io/json.hpp"
        std::size_t line = 0;
    };
    struct CallSite {
        std::string name;  ///< callee of a bare statement-level call
        std::size_t line = 0;
    };
    /// One surviving `HTD_SHARED_STATE_OK("reason")` site: the audit trail
    /// for deliberately shared mutable state (global-mutable-state pass).
    struct Annotation {
        std::string symbol;  ///< annotated variable name
        std::size_t line = 0;
        std::string justification;
    };
    /// Wall time the determinism passes spent on this file. Deliberately
    /// not cached: a cache hit reports zero because the work was not
    /// redone.
    struct DeterminismMs {
        double global_mutable_state = 0.0;
        double unordered_iteration = 0.0;
        double rng_discipline = 0.0;
        double float_reduction = 0.0;
    };

    std::vector<Finding> findings;       ///< per-file findings (line rules + nodiscard)
    std::vector<Include> includes;       ///< quoted includes, in order
    std::vector<std::string> must_use;   ///< functions declared here returning must-use types
    std::vector<CallSite> discards;      ///< statement-level calls whose value is dropped
    std::vector<Annotation> annotations; ///< audited shared-state sites
    DeterminismMs determinism_ms;        ///< per-pass wall time (not cached)

    /// Cache round-trip (schema private to the cache directory).
    [[nodiscard]] io::Json to_json() const;
    [[nodiscard]] static FileAnalysis from_json(const io::Json& doc);
};

/// Scan one in-memory file: line rules, include extraction, declaration
/// scan (src/ headers), discard-site collection. `path` selects which
/// rules apply and is echoed into findings.
[[nodiscard]] FileAnalysis analyze_file(const std::string& path,
                                        const std::string& contents);

/// Per-file findings only (line rules + missing-nodiscard) — the v1
/// entry point, kept for fixtures. Cross-file passes need lint_paths.
[[nodiscard]] std::vector<Finding> lint_source(const std::string& path,
                                               const std::string& contents);

/// Wall time of one analyzer pass.
struct PassTiming {
    std::string name;
    double wall_ms = 0.0;
};

/// One surviving allowlist entry and how many findings it suppressed.
struct AllowUsage {
    AllowEntry entry;
    std::size_t hits = 0;
};

/// One surviving shared-state annotation, with the file it lives in.
struct ReportAnnotation {
    std::string file;
    std::size_t line = 0;
    std::string symbol;
    std::string justification;
};

/// Aggregate result of a tree walk.
struct Report {
    std::vector<Finding> findings;  ///< after allowlist filtering
    std::size_t files_checked = 0;
    std::size_t files_cached = 0;  ///< scans served from the result cache
    std::size_t suppressed = 0;    ///< findings removed by the allowlist
    /// Allowlist entries that suppressed nothing (stale — rot guard).
    std::vector<AllowEntry> unused_allow;
    /// Allowlist entries that did suppress findings, with hit counts.
    std::vector<AllowUsage> allow_usage;
    /// Surviving HTD_SHARED_STATE_OK sites with their justifications,
    /// sorted by (file, line) — the shared-state audit trail.
    std::vector<ReportAnnotation> annotations;
    /// Wall time per pass ("scan", the four determinism passes,
    /// "layering", "result-discard", "total").
    std::vector<PassTiming> passes;

    [[nodiscard]] bool clean() const noexcept { return findings.empty(); }
};

/// Analyzer configuration for lint_paths.
struct Options {
    std::vector<AllowEntry> allow;
    /// Module layering to enforce; empty disables the layering pass.
    LayerSpec layers;
    /// Directory for per-file result caching keyed by content hash
    /// (e.g. build/htd_lint.cache); empty disables the cache.
    std::string cache_dir;
    /// Worker threads for the per-file scan; 0 = hardware concurrency.
    unsigned jobs = 0;
};

/// Lint every *.cpp / *.hpp under `paths` (files or directories, walked
/// recursively in sorted order). Diagnostic order is deterministic
/// regardless of thread count or cache state. Throws std::runtime_error
/// for a path that does not exist or a file that cannot be read.
[[nodiscard]] Report lint_paths(const std::vector<std::string>& paths,
                                const Options& options);

/// Back-compat convenience: line rules + structural per-file passes with
/// no layering, cache or threading options.
[[nodiscard]] Report lint_paths(const std::vector<std::string>& paths,
                                const std::vector<AllowEntry>& allow);

/// Machine-readable report (schema "htd_lint.v3"):
/// {"schema", "findings": [{file,line,rule,message}], "files_checked",
///  "files_cached", "suppressed", "passes": [{name,wall_ms}],
///  "annotations": [{file,line,symbol,justification}],
///  "allowlist": [{rule,path_suffix,justification,findings_suppressed}],
///  "unused_allowlist_entries": [{rule,path_suffix}]}.
[[nodiscard]] io::Json report_json(const Report& report);

/// Human-readable rendering: one `file:line: [rule] message` per finding
/// plus pass timings and a summary line.
[[nodiscard]] std::string report_text(const Report& report);

/// Strip comments and string/char literals (replaced by spaces) while
/// preserving line structure. Lexer-backed since v2, so encoding-prefixed
/// raw strings (`u8R"(...)"`) blank correctly. Exposed for tests.
[[nodiscard]] std::string blank_noncode(const std::string& contents);

}  // namespace htd::lint
