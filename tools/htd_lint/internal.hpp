#pragma once
/// \file internal.hpp
/// Helpers shared between the per-file front end (lint.cpp) and the
/// analyzer driver (analyzer.cpp). Not part of the public lint.hpp API.

#include <string>

namespace htd::lint::detail {

/// Forward-slash the path and strip a leading "./" so rule scoping sees
/// "src/..." either way.
[[nodiscard]] std::string normalize(std::string path);

/// True when `path` lies under directory `dir` (prefix or any component).
[[nodiscard]] bool path_in(const std::string& path, const std::string& dir);

/// True for *.hpp.
[[nodiscard]] bool is_header(const std::string& path);

/// Module of a src/ file: the path component after the last "src/"
/// ("src/ml/kmm.hpp" -> "ml"); empty when the path is not under src/ or
/// sits directly in it.
[[nodiscard]] std::string module_of(const std::string& normalized_path);

}  // namespace htd::lint::detail
