#pragma once
/// \file lexer.hpp
/// A small C++ lexer for htd_lint v2. It produces the token stream the
/// structural passes (include-graph layering, result-discard,
/// [[nodiscard]] enforcement) walk, and it is the single place that knows
/// the C++ literal grammar — including encoding-prefixed raw strings
/// (`u8R"(...)"`), which the v1 character-state scanner mis-lexed by
/// falling back to the plain quote heuristic mid-delimiter.
///
/// The lexer is deliberately approximate where precision is not needed:
/// keywords are ordinary identifier tokens, preprocessor directives lex as
/// `#` followed by normal tokens, and only `::` / `->` are fused into
/// multi-character punctuators (plus the two-character operators needed to
/// keep angle-bracket tracking honest). Comments are consumed, not
/// emitted.

#include <cstddef>
#include <string>
#include <vector>

namespace htd::lint {

enum class TokKind {
    kIdent,    ///< identifier or keyword
    kNumber,   ///< pp-number (handles 0x1p-3, 1'000'000, 1.5e-7)
    kString,   ///< string literal, any encoding prefix, raw or cooked
    kChar,     ///< character literal, any encoding prefix
    kPunct,    ///< punctuation / operator (text holds the spelling)
};

struct Token {
    TokKind kind = TokKind::kPunct;
    std::string text;           ///< spelling; for literals the full source form
    std::size_t line = 0;       ///< 1-based line of the first character
    std::size_t offset = 0;     ///< byte offset into the source
    std::size_t length = 0;     ///< byte length in the source
    bool at_line_start = false; ///< first token on its line (comments ignored)
    /// True for tokens inside a preprocessor directive (from a
    /// line-leading `#` through the end of its logical line, including
    /// backslash continuations). Declaration/statement passes skip these;
    /// the include pass reads them.
    bool in_directive = false;
};

/// Tokenize a translation unit. Never throws on malformed input: an
/// unterminated literal simply runs to end-of-file, because lint must not
/// die on the code it is criticizing.
[[nodiscard]] std::vector<Token> lex(const std::string& source);

}  // namespace htd::lint
