/// \file main.cpp
/// htd_lint CLI. See lint.hpp for the rule catalog and DESIGN.md §11 for
/// why these invariants exist.
///
///   htd_lint [--json] [--allowlist FILE] [--root DIR] [PATH...]
///
/// PATHs default to `src tools bench tests examples` (relative to
/// --root, default "."). Exit 0 when clean, 1 on findings or stale
/// allowlist entries, 2 on usage/IO errors.

#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

constexpr const char* kUsage =
    "usage: htd_lint [--json] [--allowlist FILE] [--root DIR] [PATH...]\n"
    "\n"
    "Checks htd project invariants (seeded RNG, obs-only output, centralized\n"
    "NaN screening, header hygiene, checked stream opens) over *.cpp/*.hpp\n"
    "trees. Default PATHs: src tools bench tests examples.\n"
    "\n"
    "  --json            machine-readable htd_lint.v1 report on stdout\n"
    "  --allowlist FILE  vetted exceptions, '<rule> <path-suffix>' per line\n"
    "                    (default: tools/htd_lint/allowlist.txt under --root\n"
    "                    when present)\n"
    "  --root DIR        directory PATHs are resolved against (default .)\n";

std::string read_file(const std::string& path) {
    std::ifstream in(path);
    if (!in.is_open()) throw std::runtime_error("htd_lint: cannot open " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
    bool json = false;
    std::string allowlist_path;
    std::string root = ".";
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--allowlist") {
            if (i + 1 >= argc) {
                std::cerr << "htd_lint: --allowlist needs a file argument\n"
                          << kUsage;
                return 2;
            }
            allowlist_path = argv[++i];
        } else if (arg == "--root") {
            if (i + 1 >= argc) {
                std::cerr << "htd_lint: --root needs a directory argument\n"
                          << kUsage;
                return 2;
            }
            root = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::cout << kUsage;
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "htd_lint: unknown option '" << arg << "'\n" << kUsage;
            return 2;
        } else {
            paths.push_back(arg);
        }
    }

    try {
        namespace fs = std::filesystem;
        if (paths.empty()) {
            for (const char* dir : {"src", "tools", "bench", "tests", "examples"}) {
                if (fs::exists(fs::path(root) / dir)) paths.emplace_back(dir);
            }
        }
        for (std::string& p : paths) p = (fs::path(root) / p).generic_string();

        if (allowlist_path.empty()) {
            const fs::path def = fs::path(root) / "tools" / "htd_lint" / "allowlist.txt";
            if (fs::exists(def)) allowlist_path = def.generic_string();
        }
        std::vector<htd::lint::AllowEntry> allow;
        if (!allowlist_path.empty()) {
            allow = htd::lint::parse_allowlist(read_file(allowlist_path));
        }

        const htd::lint::Report report = htd::lint::lint_paths(paths, allow);
        if (json) {
            std::cout << htd::lint::report_json(report).dump(2) << '\n';
        } else {
            std::cout << htd::lint::report_text(report);
        }
        return report.clean() && report.unused_allow.empty() ? 0 : 1;
    } catch (const std::exception& e) {
        std::cerr << e.what() << '\n';
        return 2;
    }
}
