/// \file main.cpp
/// htd_lint CLI. See lint.hpp for the rule catalog and DESIGN.md §11–12
/// for why these invariants exist.
///
///   htd_lint [--json] [--allowlist FILE] [--layers FILE] [--root DIR]
///            [--cache-dir DIR] [--no-cache] [--jobs N] [PATH...]
///
/// PATHs default to `src tools bench tests examples` (relative to
/// --root, default "."). Exit 0 when clean, 1 on findings or stale
/// allowlist entries, 2 on usage/IO errors.

#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

constexpr const char* kUsage =
    "usage: htd_lint [--json] [--allowlist FILE] [--layers FILE]\n"
    "                [--root DIR] [--cache-dir DIR] [--no-cache] [--jobs N]\n"
    "                [PATH...]\n"
    "\n"
    "Checks htd project invariants (seeded RNG, obs-only output, centralized\n"
    "NaN screening, header hygiene, checked stream opens, module layering,\n"
    "include cycles, must-use result discards, [[nodiscard]] coverage) and\n"
    "determinism/concurrency-readiness contracts (audited shared mutable\n"
    "state, unordered-iteration escapes into serialized output, RNG engine\n"
    "discipline, stable float reduction order inside HTD_PARALLEL_READY\n"
    "regions) over *.cpp/*.hpp trees. Default PATHs: src tools bench tests\n"
    "examples.\n"
    "\n"
    "  --json            machine-readable htd_lint.v3 report on stdout\n"
    "  --allowlist FILE  vetted exceptions, '<rule> <path-suffix>' per line\n"
    "                    (default: tools/htd_lint/allowlist.txt under --root\n"
    "                    when present)\n"
    "  --layers FILE     module layering spec (default:\n"
    "                    tools/htd_lint/layers.txt under --root when present;\n"
    "                    absent file disables the layering pass)\n"
    "  --root DIR        directory PATHs are resolved against (default .)\n"
    "  --cache-dir DIR   per-file result cache keyed by content hash\n"
    "                    (default: build/htd_lint.cache under --root)\n"
    "  --no-cache        disable the result cache for this run\n"
    "  --jobs N          scan worker threads (default: hardware concurrency)\n";

std::string read_file(const std::string& path) {
    std::ifstream in(path);
    if (!in.is_open()) throw std::runtime_error("htd_lint: cannot open " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
    bool json = false;
    bool no_cache = false;
    std::string allowlist_path;
    std::string layers_path;
    std::string cache_dir;
    std::string root = ".";
    unsigned jobs = 0;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto need_value = [&](const char* what) -> const char* {
            if (i + 1 >= argc) {
                std::cerr << "htd_lint: " << arg << " needs " << what << "\n"
                          << kUsage;
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--json") {
            json = true;
        } else if (arg == "--no-cache") {
            no_cache = true;
        } else if (arg == "--allowlist") {
            const char* v = need_value("a file argument");
            if (v == nullptr) return 2;
            allowlist_path = v;
        } else if (arg == "--layers") {
            const char* v = need_value("a file argument");
            if (v == nullptr) return 2;
            layers_path = v;
        } else if (arg == "--cache-dir") {
            const char* v = need_value("a directory argument");
            if (v == nullptr) return 2;
            cache_dir = v;
        } else if (arg == "--root") {
            const char* v = need_value("a directory argument");
            if (v == nullptr) return 2;
            root = v;
        } else if (arg == "--jobs") {
            const char* v = need_value("a thread count");
            if (v == nullptr) return 2;
            try {
                jobs = static_cast<unsigned>(std::stoul(v));
            } catch (const std::exception&) {
                std::cerr << "htd_lint: --jobs needs a number, got '" << v
                          << "'\n"
                          << kUsage;
                return 2;
            }
        } else if (arg == "--help" || arg == "-h") {
            std::cout << kUsage;
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "htd_lint: unknown option '" << arg << "'\n" << kUsage;
            return 2;
        } else {
            paths.push_back(arg);
        }
    }

    try {
        namespace fs = std::filesystem;
        if (paths.empty()) {
            for (const char* dir : {"src", "tools", "bench", "tests", "examples"}) {
                if (fs::exists(fs::path(root) / dir)) paths.emplace_back(dir);
            }
        }
        for (std::string& p : paths) p = (fs::path(root) / p).generic_string();

        if (allowlist_path.empty()) {
            const fs::path def = fs::path(root) / "tools" / "htd_lint" / "allowlist.txt";
            if (fs::exists(def)) allowlist_path = def.generic_string();
        }
        if (layers_path.empty()) {
            const fs::path def = fs::path(root) / "tools" / "htd_lint" / "layers.txt";
            if (fs::exists(def)) layers_path = def.generic_string();
        }

        htd::lint::Options options;
        if (!allowlist_path.empty()) {
            options.allow = htd::lint::parse_allowlist(read_file(allowlist_path));
        }
        if (!layers_path.empty()) {
            options.layers = htd::lint::parse_layers(read_file(layers_path));
        }
        if (!no_cache) {
            options.cache_dir =
                cache_dir.empty()
                    ? (fs::path(root) / "build" / "htd_lint.cache").generic_string()
                    : cache_dir;
        }
        options.jobs = jobs;

        const htd::lint::Report report = htd::lint::lint_paths(paths, options);
        if (json) {
            std::cout << htd::lint::report_json(report).dump(2) << '\n';
        } else {
            std::cout << htd::lint::report_text(report);
        }
        return report.clean() && report.unused_allow.empty() ? 0 : 1;
    } catch (const std::exception& e) {
        std::cerr << e.what() << '\n';
        return 2;
    }
}
