/// \file bench_compare.cpp
/// Perf/quality regression gate over the BENCH_*.json artifacts.
///
/// Compares freshly produced bench reports against the blessed baselines in
/// bench/baselines/ with per-metric thresholds:
///
///   micro        real_ns_per_iter per benchmark — lower is better; a
///                regression needs BOTH > +20% relative AND > +100 ns
///                absolute, so nanosecond-scale benchmarks don't flap.
///   roc          per-boundary AUC (higher, abs 0.02) and FN rate at zero
///                FP (lower, abs 0.05), plus the detector_swap block.
///   fault_sweep  per sweep point x boundary accuracy (lower by > 0.1
///                fails) and fp/fn rates (higher by > 0.1 fails).
///   drift_sweep  per sweep point: the health verdict must not worsen
///                (healthy < warn < degraded < critical) and boundary
///                accuracy follows the fault_sweep rule.
///   lint         htd_lint pass wall times (scan / layering /
///                result-discard / total) from the htd_lint.v2 JSON
///                report — lower is better; a regression needs BOTH
///                > +50% relative AND > +250 ms absolute, so analyzer
///                slowdowns trip the gate without flapping on noise.
///   score        artifact scoring throughput (bench_score_throughput):
///                per-boundary chips/sec must stay >= 50% of the
///                baseline, and the artifact load+validate time follows
///                the lint-style lower-is-better rule. Machine-to-machine
///                variance is real, hence the wide ratio floor.
///
/// Usage:
///   bench_compare [--baseline-dir DIR] [--candidate-dir DIR]
///                 [--json PATH] [--waivers FILE] [--strict-waivers]
///                 [--bless] [name...]
///
/// Names default to "micro roc fault_sweep drift_sweep lint score". A name whose
/// baseline file does not exist is reported as unblessed and skipped; a
/// missing *candidate* file is a hard usage error. Exit codes: 0 = no
/// regression, 1 = regression detected, 2 = usage / IO error.
///
/// Known, accepted failures can be *waived* through a waiver file
/// (htd.bench_waivers.v1; default <baseline-dir>/WAIVERS.json when
/// present). Every entry names an artifact + metric and must carry a
/// written rationale — entries without one are a usage error. A waived
/// failing check is reported loudly (WAIVED line + JSON flag) but does not
/// trip the gate; a waiver that matches nothing is reported as unused so
/// stale entries get cleaned up instead of silently shadowing future
/// regressions. Under --strict-waivers (the CI default) an unused waiver
/// is itself a gate failure — stale entries must be deleted, not tolerated.
///
/// On any gated regression the tool points at tools/htd_profile, which
/// attributes the delta to pipeline stages / work counters.
///
/// --bless copies the candidate artifacts over the baselines (exit 0).

#include <cstdio>
#include <filesystem>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/json.hpp"
#include "obs/health.hpp"

namespace {

namespace fs = std::filesystem;
using htd::io::Json;

struct Check {
    std::string metric;
    double baseline = 0.0;
    double candidate = 0.0;
    std::string rule;  ///< human-readable threshold description
    bool ok = true;
    bool waived = false;        ///< failing but covered by a waiver entry
    std::string waive_reason{};  ///< the waiver's written rationale
};

struct Comparison {
    std::string name;    ///< "micro", "roc", ...
    std::string status;  ///< "ok" / "waived" / "regression" / "unblessed"
    std::vector<Check> checks;
};

/// One htd.bench_waivers.v1 entry: a known failing metric that must not
/// trip the gate, with the written rationale that justifies it.
struct Waiver {
    std::string artifact;  ///< "roc", "micro", ...
    std::string metric;    ///< exact check metric, e.g. "B5.fn_rate_at_fp0"
    std::string reason;
    bool used = false;
};

/// Parse a waiver file; throws std::runtime_error on schema violations
/// (including a missing or empty rationale — waivers must be justified).
std::vector<Waiver> load_waivers(const std::string& path) {
    const Json doc = Json::parse_file(path);
    if (!doc.is_object() || !doc.contains("schema") ||
        doc.at("schema").str() != "htd.bench_waivers.v1") {
        throw std::runtime_error(path + ": schema is not htd.bench_waivers.v1");
    }
    std::vector<Waiver> waivers;
    for (const Json& entry : doc.at("waivers").elements()) {
        Waiver w;
        if (!entry.is_object() || !entry.contains("artifact") ||
            !entry.contains("metric") || !entry.contains("reason")) {
            throw std::runtime_error(
                path + ": every waiver needs artifact, metric and reason");
        }
        w.artifact = entry.at("artifact").str();
        w.metric = entry.at("metric").str();
        w.reason = entry.at("reason").str();
        if (w.reason.empty()) {
            throw std::runtime_error(path + ": waiver for " + w.artifact + " " +
                                     w.metric + " has an empty reason");
        }
        waivers.push_back(std::move(w));
    }
    return waivers;
}

/// Lower-is-better metric: fail when the candidate exceeds the baseline by
/// more than `rel` relative AND `abs_floor` absolute.
Check check_lower(std::string metric, double base, double cand, double rel,
                  double abs_floor, const char* unit) {
    Check c{std::move(metric), base, cand, {}, true};
    char buf[96];
    std::snprintf(buf, sizeof buf, "<= baseline +%g%% (+%g %s floor)", rel * 100.0,
                  abs_floor, unit);
    c.rule = buf;
    c.ok = !(cand > base * (1.0 + rel) && cand - base > abs_floor);
    return c;
}

/// Higher-is-better throughput metric: fail when the candidate drops below
/// `ratio` times the baseline. Ratio thresholds (not absolute bands) because
/// throughput scales with the host machine.
Check check_ratio_min(std::string metric, double base, double cand,
                      double ratio) {
    Check c{std::move(metric), base, cand, {}, true};
    char buf[96];
    std::snprintf(buf, sizeof buf, ">= %g%% of baseline", ratio * 100.0);
    c.rule = buf;
    c.ok = cand >= base * ratio;
    return c;
}

/// Absolute-band metric: fail when the candidate moves past the baseline in
/// the bad direction by more than `abs_tol`.
Check check_abs(std::string metric, double base, double cand, double abs_tol,
                bool higher_is_better) {
    Check c{std::move(metric), base, cand, {}, true};
    char buf[96];
    std::snprintf(buf, sizeof buf, "%s baseline %s %g",
                  higher_is_better ? ">=" : "<=", higher_is_better ? "-" : "+",
                  abs_tol);
    c.rule = buf;
    c.ok = higher_is_better ? cand >= base - abs_tol : cand <= base + abs_tol;
    return c;
}

void compare_micro(const Json& base, const Json& cand, Comparison& out) {
    std::map<std::string, double> cand_ns;
    for (const Json& r : cand.at("results").elements()) {
        cand_ns[r.at("name").str()] = r.at("real_ns_per_iter").number();
    }
    for (const Json& r : base.at("results").elements()) {
        const std::string& name = r.at("name").str();
        const auto it = cand_ns.find(name);
        if (it == cand_ns.end()) {
            out.checks.push_back({name + ".real_ns_per_iter",
                                  r.at("real_ns_per_iter").number(), 0.0,
                                  "benchmark present in candidate", false});
            continue;
        }
        out.checks.push_back(check_lower(name + ".real_ns_per_iter",
                                         r.at("real_ns_per_iter").number(),
                                         it->second, 0.20, 100.0, "ns"));
    }
}

void compare_roc(const Json& base, const Json& cand, Comparison& out) {
    std::map<std::string, const Json*> cand_rows;
    for (const Json& r : cand.at("results").at("boundaries").elements()) {
        cand_rows[r.at("boundary").str()] = &r;
    }
    for (const Json& r : base.at("results").at("boundaries").elements()) {
        const std::string& b = r.at("boundary").str();
        const auto it = cand_rows.find(b);
        if (it == cand_rows.end()) {
            out.checks.push_back(
                {b + ".auc", r.at("auc").number(), 0.0, "boundary present", false});
            continue;
        }
        out.checks.push_back(check_abs(b + ".auc", r.at("auc").number(),
                                       it->second->at("auc").number(), 0.02, true));
        out.checks.push_back(check_abs(
            b + ".fn_rate_at_fp0", r.at("fn_rate_at_fp0").number(),
            it->second->at("fn_rate_at_fp0").number(), 0.05, false));
    }
    if (base.at("results").contains("detector_swap") &&
        cand.at("results").contains("detector_swap")) {
        const Json& bs = base.at("results").at("detector_swap");
        const Json& cs = cand.at("results").at("detector_swap");
        out.checks.push_back(check_abs("detector_swap.accuracy",
                                       bs.at("accuracy").number(),
                                       cs.at("accuracy").number(), 0.05, true));
        out.checks.push_back(check_abs("detector_swap.auc", bs.at("auc").number(),
                                       cs.at("auc").number(), 0.02, true));
    }
}

void compare_boundary_block(const std::string& prefix, const Json& base,
                            const Json& cand, Comparison& out) {
    for (const auto& [boundary, bb] : base.members()) {
        if (!cand.contains(boundary)) {
            out.checks.push_back({prefix + boundary + ".accuracy",
                                  bb.at("accuracy").number(), 0.0,
                                  "boundary present", false});
            continue;
        }
        const Json& cb = cand.at(boundary);
        out.checks.push_back(check_abs(prefix + boundary + ".accuracy",
                                       bb.at("accuracy").number(),
                                       cb.at("accuracy").number(), 0.10, true));
        out.checks.push_back(check_abs(prefix + boundary + ".fp_rate",
                                       bb.at("fp_rate").number(),
                                       cb.at("fp_rate").number(), 0.10, false));
        out.checks.push_back(check_abs(prefix + boundary + ".fn_rate",
                                       bb.at("fn_rate").number(),
                                       cb.at("fn_rate").number(), 0.10, false));
    }
}

void compare_sweep(const Json& base, const Json& cand, bool with_verdict,
                   Comparison& out) {
    const auto& base_sweep = base.at("results").at("sweep").elements();
    const auto& cand_sweep = cand.at("results").at("sweep").elements();
    for (std::size_t i = 0; i < base_sweep.size(); ++i) {
        const std::string prefix = "sweep[" + std::to_string(i) + "].";
        if (i >= cand_sweep.size()) {
            out.checks.push_back(
                {prefix + "present", 1.0, 0.0, "sweep point present", false});
            continue;
        }
        const Json& bp = base_sweep[i];
        const Json& cp = cand_sweep[i];
        if (with_verdict && bp.contains("verdict") && cp.contains("verdict")) {
            const auto rank = [](const Json& p) {
                return static_cast<double>(
                    htd::obs::health_level_from_name(p.at("verdict").str()));
            };
            out.checks.push_back(check_abs(prefix + "verdict_rank", rank(bp),
                                           rank(cp), 0.0, false));
        }
        if (bp.contains("boundaries") && cp.contains("boundaries")) {
            compare_boundary_block(prefix, bp.at("boundaries"), cp.at("boundaries"),
                                   out);
        }
    }
}

/// htd_lint analyzer perf: the BENCH_lint.json artifact IS the
/// `htd_lint --json` (htd_lint.v2) report; the gated metrics are the
/// per-pass wall times. Thresholds are generous — the point is catching
/// an accidentally quadratic pass, not millisecond noise.
void compare_lint(const Json& base, const Json& cand, Comparison& out) {
    std::map<std::string, double> cand_ms;
    for (const Json& p : cand.at("passes").elements()) {
        cand_ms[p.at("name").str()] = p.at("wall_ms").number();
    }
    for (const Json& p : base.at("passes").elements()) {
        const std::string& name = p.at("name").str();
        const auto it = cand_ms.find(name);
        if (it == cand_ms.end()) {
            out.checks.push_back({"passes." + name + ".wall_ms",
                                  p.at("wall_ms").number(), 0.0,
                                  "pass present in candidate", false});
            continue;
        }
        out.checks.push_back(check_lower("passes." + name + ".wall_ms",
                                         p.at("wall_ms").number(), it->second,
                                         0.50, 250.0, "ms"));
    }
}

/// bench_score_throughput: per-boundary artifact-scoring chips/sec plus the
/// load+validate wall time. An unusable boundary serializes its throughput
/// as null — only boundaries that score in BOTH reports are compared, but a
/// boundary that was scoreable in the baseline and is not in the candidate
/// is a hard failure (the artifact lost a model).
void compare_score(const Json& base, const Json& cand, Comparison& out) {
    std::map<std::string, double> cand_tp;
    for (const Json& r : cand.at("results").at("boundaries").elements()) {
        if (r.at("chips_per_sec").is_null()) continue;
        cand_tp[r.at("boundary").str()] = r.at("chips_per_sec").number();
    }
    for (const Json& r : base.at("results").at("boundaries").elements()) {
        if (r.at("chips_per_sec").is_null()) continue;
        const std::string& b = r.at("boundary").str();
        const auto it = cand_tp.find(b);
        if (it == cand_tp.end()) {
            out.checks.push_back({b + ".chips_per_sec",
                                  r.at("chips_per_sec").number(), 0.0,
                                  "boundary scoreable in candidate", false});
            continue;
        }
        out.checks.push_back(check_ratio_min(b + ".chips_per_sec",
                                             r.at("chips_per_sec").number(),
                                             it->second, 0.50));
    }
    out.checks.push_back(check_lower(
        "load_ms", base.at("results").at("load_ms").number(),
        cand.at("results").at("load_ms").number(), 1.00, 250.0, "ms"));
}

/// bench_journal: decision-journal append throughput and the scoring
/// throughput with the journal disabled/enabled, plus the full per-chip
/// explain rate. All higher-is-better rates gated with the same ratio
/// floor as artifact scoring — throughput scales with the host, so the
/// gate is relative to the blessed baseline, not absolute.
void compare_journal(const Json& base, const Json& cand, Comparison& out) {
    for (const char* metric :
         {"append_events_per_sec", "plain_chips_per_sec",
          "journal_chips_per_sec", "explain_chips_per_sec"}) {
        out.checks.push_back(
            check_ratio_min(metric, base.at("results").at(metric).number(),
                            cand.at("results").at(metric).number(), 0.50));
    }
    // The relative cost of journaling must not quietly explode even if the
    // host got faster across the board.
    out.checks.push_back(check_ratio_min(
        "journal_overhead_ratio",
        base.at("results").at("journal_overhead_ratio").number(),
        cand.at("results").at("journal_overhead_ratio").number(), 0.50));
}

Json comparison_json(const std::vector<Comparison>& comparisons,
                     const std::string& baseline_dir,
                     const std::string& candidate_dir, int regressions,
                     const std::vector<Waiver>& waivers) {
    Json doc = Json::object();
    doc.set("tool", "bench_compare");
    doc.set("baseline_dir", baseline_dir);
    doc.set("candidate_dir", candidate_dir);
    doc.set("regressions", regressions);
    Json list = Json::array();
    for (const Comparison& cmp : comparisons) {
        Json entry = Json::object();
        entry.set("name", cmp.name);
        entry.set("status", cmp.status);
        Json checks = Json::array();
        for (const Check& c : cmp.checks) {
            Json check = Json::object();
            check.set("metric", c.metric);
            check.set("baseline", c.baseline);
            check.set("candidate", c.candidate);
            check.set("rule", c.rule);
            check.set("ok", c.ok);
            check.set("waived", c.waived);
            if (c.waived) check.set("waive_reason", c.waive_reason);
            checks.push_back(std::move(check));
        }
        entry.set("checks", std::move(checks));
        list.push_back(std::move(entry));
    }
    doc.set("comparisons", std::move(list));
    Json unused = Json::array();
    for (const Waiver& w : waivers) {
        if (w.used) continue;
        Json entry = Json::object();
        entry.set("artifact", w.artifact);
        entry.set("metric", w.metric);
        entry.set("reason", w.reason);
        unused.push_back(std::move(entry));
    }
    doc.set("unused_waivers", std::move(unused));
    return doc;
}

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--baseline-dir DIR] [--candidate-dir DIR] "
                 "[--json PATH] [--waivers FILE] [--strict-waivers] [--bless] "
                 "[name...]\n"
                 "names default to: micro roc fault_sweep drift_sweep lint score "
                 "journal\n"
                 "waivers default to <baseline-dir>/WAIVERS.json when present;\n"
                 "--strict-waivers makes an unused waiver a nonzero exit\n",
                 argv0);
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    std::string baseline_dir = "bench/baselines";
    std::string candidate_dir = ".";
    std::string json_path;
    std::string waivers_path;
    bool strict_waivers = false;
    bool bless = false;
    std::vector<std::string> names;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--baseline-dir") {
            const char* v = next();
            if (v == nullptr) return usage(argv[0]);
            baseline_dir = v;
        } else if (arg == "--candidate-dir") {
            const char* v = next();
            if (v == nullptr) return usage(argv[0]);
            candidate_dir = v;
        } else if (arg == "--json") {
            const char* v = next();
            if (v == nullptr) return usage(argv[0]);
            json_path = v;
        } else if (arg == "--waivers") {
            const char* v = next();
            if (v == nullptr) return usage(argv[0]);
            waivers_path = v;
        } else if (arg == "--strict-waivers") {
            strict_waivers = true;
        } else if (arg == "--bless") {
            bless = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            names.push_back(arg);
        }
    }
    if (names.empty()) {
        names = {"micro", "roc",         "fault_sweep", "drift_sweep",
                 "lint",  "score",       "journal"};
    }

    if (bless) {
        std::error_code ec;
        fs::create_directories(baseline_dir, ec);
        for (const std::string& name : names) {
            const fs::path src = fs::path(candidate_dir) / ("BENCH_" + name + ".json");
            if (!fs::exists(src)) {
                std::fprintf(stderr, "bench_compare: cannot bless %s: %s missing\n",
                             name.c_str(), src.string().c_str());
                return 2;
            }
            const fs::path dst = fs::path(baseline_dir) / ("BENCH_" + name + ".json");
            fs::copy_file(src, dst, fs::copy_options::overwrite_existing, ec);
            if (ec) {
                std::fprintf(stderr, "bench_compare: bless %s failed: %s\n",
                             name.c_str(), ec.message().c_str());
                return 2;
            }
            std::printf("blessed %s -> %s\n", src.string().c_str(),
                        dst.string().c_str());
        }
        return 0;
    }

    if (waivers_path.empty()) {
        const fs::path default_waivers = fs::path(baseline_dir) / "WAIVERS.json";
        if (fs::exists(default_waivers)) waivers_path = default_waivers.string();
    }
    std::vector<Waiver> waivers;
    if (!waivers_path.empty()) {
        try {
            waivers = load_waivers(waivers_path);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "bench_compare: %s\n", e.what());
            return 2;
        }
    }

    std::vector<Comparison> comparisons;
    int regressions = 0;
    for (const std::string& name : names) {
        Comparison cmp;
        cmp.name = name;
        const fs::path base_path =
            fs::path(baseline_dir) / ("BENCH_" + name + ".json");
        const fs::path cand_path =
            fs::path(candidate_dir) / ("BENCH_" + name + ".json");
        if (!fs::exists(base_path)) {
            cmp.status = "unblessed";
            std::printf("%-12s UNBLESSED (no %s; run with --bless to create)\n",
                        name.c_str(), base_path.string().c_str());
            comparisons.push_back(std::move(cmp));
            continue;
        }
        if (!fs::exists(cand_path)) {
            std::fprintf(stderr, "bench_compare: candidate %s missing\n",
                         cand_path.string().c_str());
            return 2;
        }
        Json base;
        Json cand;
        try {
            base = Json::parse_file(base_path.string());
            cand = Json::parse_file(cand_path.string());
            if (name == "micro") {
                compare_micro(base, cand, cmp);
            } else if (name == "roc") {
                compare_roc(base, cand, cmp);
            } else if (name == "fault_sweep") {
                compare_sweep(base, cand, /*with_verdict=*/false, cmp);
            } else if (name == "drift_sweep") {
                compare_sweep(base, cand, /*with_verdict=*/true, cmp);
            } else if (name == "lint") {
                compare_lint(base, cand, cmp);
            } else if (name == "score") {
                compare_score(base, cand, cmp);
            } else if (name == "journal") {
                compare_journal(base, cand, cmp);
            } else {
                std::fprintf(stderr, "bench_compare: unknown artifact '%s'\n",
                             name.c_str());
                return 2;
            }
        } catch (const std::exception& e) {
            std::fprintf(stderr, "bench_compare: %s: %s\n", name.c_str(), e.what());
            return 2;
        }

        int failed = 0;
        int waived = 0;
        for (Check& c : cmp.checks) {
            if (c.ok) continue;
            for (Waiver& w : waivers) {
                if (w.artifact == name && w.metric == c.metric) {
                    c.waived = true;
                    c.waive_reason = w.reason;
                    w.used = true;
                    break;
                }
            }
            if (c.waived) {
                ++waived;
            } else {
                ++failed;
            }
        }
        cmp.status = failed != 0 ? "regression" : (waived != 0 ? "waived" : "ok");
        regressions += failed;
        std::printf("%-12s %s (%zu checks, %d failed, %d waived)\n", name.c_str(),
                    failed != 0 ? "REGRESSION" : (waived != 0 ? "OK*" : "OK"),
                    cmp.checks.size(), failed, waived);
        for (const Check& c : cmp.checks) {
            if (c.ok) continue;
            if (c.waived) {
                std::printf("  WAIVED %-38s baseline %.6g candidate %.6g  rule: %s\n"
                            "         reason: %s\n",
                            c.metric.c_str(), c.baseline, c.candidate, c.rule.c_str(),
                            c.waive_reason.c_str());
            } else {
                std::printf("  FAIL %-40s baseline %.6g candidate %.6g  rule: %s\n",
                            c.metric.c_str(), c.baseline, c.candidate, c.rule.c_str());
            }
        }
        if (failed != 0) {
            std::printf("  hint: attribute this with tools/htd_profile — e.g.\n"
                        "        htd_profile %s %s\n",
                        (fs::path(baseline_dir) / ("BENCH_" + name + ".json"))
                            .string()
                            .c_str(),
                        (fs::path(candidate_dir) / ("BENCH_" + name + ".json"))
                            .string()
                            .c_str());
        }
        comparisons.push_back(std::move(cmp));
    }

    int unused_waivers = 0;
    for (const Waiver& w : waivers) {
        if (w.used) continue;
        ++unused_waivers;
        std::printf("UNUSED WAIVER %s %s — nothing failing matches it; remove it "
                    "from %s so it cannot shadow a future regression%s\n",
                    w.artifact.c_str(), w.metric.c_str(), waivers_path.c_str(),
                    strict_waivers ? " (gated by --strict-waivers)" : "");
    }
    if (strict_waivers) regressions += unused_waivers;

    if (!json_path.empty()) {
        comparison_json(comparisons, baseline_dir, candidate_dir, regressions, waivers)
            .dump_to_file(json_path);
    }
    return regressions == 0 ? 0 : 1;
}
