/// \file main.cpp
/// htd_profile CLI — regression attribution over htd profiling artifacts.
///
///   htd_profile --validate TRACE.json [--json]
///   htd_profile A.json B.json [--json] [--top N]
///
/// Validate mode checks a trace written via HTD_OBS_TRACE against the
/// htd.trace.v1 shape (scripts/ci.sh profile stage). Diff mode loads two
/// artifacts — traces, run reports or BENCH_*.json — and prints the
/// per-stage wall-time and work-counter diff ranked by contribution, which
/// is how a bench_compare regression gets attributed to a stage/kernel.
/// Exit 0 on success (valid trace / diff printed), 1 on an invalid trace,
/// 2 on usage or IO errors.

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "profile.hpp"

namespace {

constexpr const char* kUsage =
    "usage: htd_profile --validate TRACE.json [--json]\n"
    "       htd_profile A.json B.json [--json] [--top N]\n"
    "\n"
    "Validate an htd.trace.v1 trace-event file, or diff two profiling\n"
    "artifacts (trace-event JSON, htd.run_report.* documents, or\n"
    "BENCH_*.json) into a per-stage wall/work attribution ranked by\n"
    "contribution.\n"
    "\n"
    "  --validate        check the single input instead of diffing\n"
    "  --json            machine-readable output on stdout\n"
    "  --top N           show only the N highest-contributing rows (diff)\n";

int run(int argc, char** argv) {
    bool validate = false;
    bool json = false;
    std::size_t top_n = 0;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--validate") {
            validate = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--top") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "htd_profile: --top needs a value\n%s", kUsage);
                return 2;
            }
            top_n = static_cast<std::size_t>(std::stoul(argv[++i]));
        } else if (arg == "--help" || arg == "-h") {
            std::printf("%s", kUsage);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "htd_profile: unknown option %s\n%s", arg.c_str(),
                         kUsage);
            return 2;
        } else {
            paths.push_back(arg);
        }
    }

    if (validate) {
        if (paths.size() != 1) {
            std::fprintf(stderr, "htd_profile: --validate takes exactly one file\n%s",
                         kUsage);
            return 2;
        }
        const htd::profile::TraceCheck check =
            htd::profile::check_trace(htd::io::Json::parse_file(paths[0]));
        if (json) {
            std::printf("%s\n", htd::profile::check_json(check).dump(2).c_str());
        } else if (check.ok) {
            std::printf("%s: valid htd.trace.v1 (%zu span events, %zu span names, "
                        "%zu work counters)\n",
                        paths[0].c_str(), check.span_events, check.span_names.size(),
                        check.work.size());
        } else {
            for (const std::string& e : check.errors) {
                std::fprintf(stderr, "%s: %s\n", paths[0].c_str(), e.c_str());
            }
        }
        return check.ok ? 0 : 1;
    }

    if (paths.size() != 2) {
        std::fprintf(stderr, "htd_profile: diff mode takes exactly two files\n%s",
                     kUsage);
        return 2;
    }
    const htd::profile::ProfileData a =
        htd::profile::load_profile(htd::io::Json::parse_file(paths[0]));
    const htd::profile::ProfileData b =
        htd::profile::load_profile(htd::io::Json::parse_file(paths[1]));
    const htd::profile::ProfileDiff diff = htd::profile::diff_profiles(a, b);
    if (json) {
        std::printf("%s\n", htd::profile::diff_json(diff).dump(2).c_str());
    } else {
        std::printf("a: %s (%s)\nb: %s (%s)\n\n", paths[0].c_str(), a.kind.c_str(),
                    paths[1].c_str(), b.kind.c_str());
        std::printf("%s", htd::profile::diff_text(diff, top_n).c_str());
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    try {
        return run(argc, argv);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "htd_profile: %s\n", e.what());
        return 2;
    }
}
