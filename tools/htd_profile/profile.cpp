#include "profile.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <stdexcept>
#include <utility>

namespace htd::profile {

namespace {

constexpr const char* kTraceSchema = "htd.trace.v1";

bool number_at(const io::Json& obj, const std::string& key, double* out) {
    if (!obj.contains(key) || !obj.at(key).is_number()) return false;
    *out = obj.at(key).number();
    return true;
}

std::string fmt(double v) {
    char buf[48];
    if (std::abs(v) >= 1e7 || (v != 0.0 && std::abs(v) < 1e-3)) {
        std::snprintf(buf, sizeof buf, "%.3g", v);
    } else {
        std::snprintf(buf, sizeof buf, "%.2f", v);
    }
    return buf;
}

void load_work_object(const io::Json& obj, std::map<std::string, double>* work) {
    for (const auto& [name, value] : obj.members()) {
        if (value.is_number()) (*work)[name] += value.number();
    }
}

/// Aggregate a run_report "spans" array (sink.hpp shape) into stage stats.
void load_span_array(const io::Json& spans, std::map<std::string, StageStat>* stages) {
    for (const io::Json& rec : spans.elements()) {
        if (!rec.is_object() || !rec.contains("name")) continue;
        StageStat& stat = (*stages)[rec.at("name").str()];
        double v = 0.0;
        if (number_at(rec, "wall_ns", &v)) stat.wall_us += v / 1e3;
        if (number_at(rec, "cpu_ns", &v)) stat.cpu_us += v / 1e3;
        stat.count += 1.0;
    }
}

}  // namespace

TraceCheck check_trace(const io::Json& doc) {
    TraceCheck check;
    auto fail = [&check](std::string message) {
        check.errors.push_back(std::move(message));
    };

    if (!doc.is_object() || !doc.contains("traceEvents")) {
        fail("not a trace-event document: missing traceEvents");
        return check;
    }
    if (!doc.at("traceEvents").is_array()) {
        fail("traceEvents is not an array");
        return check;
    }
    if (!doc.contains("otherData") || !doc.at("otherData").is_object() ||
        !doc.at("otherData").contains("schema") ||
        !doc.at("otherData").at("schema").is_string() ||
        doc.at("otherData").at("schema").str() != kTraceSchema) {
        fail(std::string("otherData.schema is not \"") + kTraceSchema + "\"");
    } else if (doc.at("otherData").contains("work") &&
               doc.at("otherData").at("work").is_object()) {
        load_work_object(doc.at("otherData").at("work"), &check.work);
    }

    // First pass: collect span ids with their thread so parent links can be
    // verified to stay on-thread (the nesting guarantee Perfetto relies on).
    std::map<double, double> thread_of_id;
    for (const io::Json& event : doc.at("traceEvents").elements()) {
        if (!event.is_object() || !event.contains("ph")) continue;
        if (event.at("ph").str() != "X" || !event.contains("args")) continue;
        double id = 0.0;
        double tid = 0.0;
        if (number_at(event.at("args"), "id", &id) && number_at(event, "tid", &tid)) {
            thread_of_id[id] = tid;
        }
    }

    std::set<std::string> names;
    std::size_t index = 0;
    for (const io::Json& event : doc.at("traceEvents").elements()) {
        const std::string where = "traceEvents[" + std::to_string(index++) + "]";
        if (!event.is_object()) {
            fail(where + ": not an object");
            continue;
        }
        if (!event.contains("ph") || !event.at("ph").is_string()) {
            fail(where + ": missing ph");
            continue;
        }
        const std::string& ph = event.at("ph").str();
        if (ph == "M") continue;  // metadata: name/pid/tid/args, not validated deeply
        if (ph != "X") {
            fail(where + ": unexpected phase '" + ph + "' (only X and M are emitted)");
            continue;
        }
        ++check.span_events;
        if (!event.contains("name") || !event.at("name").is_string()) {
            fail(where + ": span event without a string name");
            continue;
        }
        names.insert(event.at("name").str());
        double v = 0.0;
        for (const char* field : {"pid", "tid", "ts", "dur"}) {
            if (!number_at(event, field, &v)) {
                fail(where + ": missing numeric " + field);
            } else if (v < 0.0) {
                fail(where + ": negative " + field);
            }
        }
        if (!event.contains("args") || !event.at("args").is_object()) {
            fail(where + ": span event without args");
            continue;
        }
        const io::Json& args = event.at("args");
        double id = 0.0;
        double parent = 0.0;
        double depth = 0.0;
        if (!number_at(args, "id", &id) || !number_at(args, "parent", &parent) ||
            !number_at(args, "depth", &depth)) {
            fail(where + ": args must carry numeric id/parent/depth");
            continue;
        }
        if (parent != 0.0) {
            const auto it = thread_of_id.find(parent);
            double tid = 0.0;
            (void)number_at(event, "tid", &tid);
            if (it == thread_of_id.end()) {
                fail(where + ": parent " + fmt(parent) + " not present in trace");
            } else if (it->second != tid) {
                fail(where + ": parent " + fmt(parent) + " lives on another thread");
            }
        }
    }

    check.span_names.assign(names.begin(), names.end());
    check.ok = check.errors.empty();
    return check;
}

io::Json check_json(const TraceCheck& check) {
    io::Json out = io::Json::object();
    out.set("schema", "htd.profile.check.v1");
    out.set("ok", check.ok);
    out.set("span_events", check.span_events);
    io::Json errors = io::Json::array();
    for (const std::string& e : check.errors) errors.push_back(e);
    out.set("errors", std::move(errors));
    io::Json names = io::Json::array();
    for (const std::string& n : check.span_names) names.push_back(n);
    out.set("span_names", std::move(names));
    io::Json work = io::Json::object();
    for (const auto& [name, value] : check.work) work.set(name, value);
    out.set("work", std::move(work));
    return out;
}

ProfileData load_profile(const io::Json& doc) {
    if (!doc.is_object()) {
        throw std::invalid_argument("load_profile: document is not a JSON object");
    }
    ProfileData data;

    if (doc.contains("traceEvents")) {
        data.kind = "trace";
        for (const io::Json& event : doc.at("traceEvents").elements()) {
            if (!event.is_object() || !event.contains("ph") ||
                !event.at("ph").is_string() || event.at("ph").str() != "X" ||
                !event.contains("name") || !event.at("name").is_string()) {
                continue;
            }
            StageStat& stat = data.stages[event.at("name").str()];
            double v = 0.0;
            if (number_at(event, "dur", &v)) stat.wall_us += v;
            if (event.contains("args") && event.at("args").is_object() &&
                number_at(event.at("args"), "cpu_ns", &v)) {
                stat.cpu_us += v / 1e3;
            }
            stat.count += 1.0;
        }
        if (doc.contains("otherData") && doc.at("otherData").is_object() &&
            doc.at("otherData").contains("work") &&
            doc.at("otherData").at("work").is_object()) {
            load_work_object(doc.at("otherData").at("work"), &data.work);
        }
        return data;
    }

    bool recognized = false;
    if (doc.contains("observability") && doc.at("observability").is_object()) {
        recognized = true;
        data.kind = "run_report";
        const io::Json& observability = doc.at("observability");
        if (observability.contains("spans") && observability.at("spans").is_array()) {
            load_span_array(observability.at("spans"), &data.stages);
        }
        if (observability.contains("metrics") &&
            observability.at("metrics").is_object() &&
            observability.at("metrics").contains("work") &&
            observability.at("metrics").at("work").is_object()) {
            load_work_object(observability.at("metrics").at("work"), &data.work);
        }
    }

    // google-benchmark rows (BENCH_*.json): one stage per row at its
    // per-iteration cost, so two bench artifacts diff point by point.
    if (doc.contains("results") && doc.at("results").is_array()) {
        recognized = true;
        data.kind = "bench";
        for (const io::Json& row : doc.at("results").elements()) {
            if (!row.is_object() || !row.contains("name") ||
                !row.at("name").is_string()) {
                continue;
            }
            StageStat& stat = data.stages[row.at("name").str()];
            double v = 0.0;
            if (number_at(row, "real_ns_per_iter", &v)) stat.wall_us += v / 1e3;
            if (number_at(row, "cpu_ns_per_iter", &v)) stat.cpu_us += v / 1e3;
            if (number_at(row, "iterations", &v)) stat.count += v;
        }
    }
    if (doc.contains("work_profile") && doc.at("work_profile").is_object()) {
        recognized = true;
        if (data.kind.empty()) data.kind = "bench";
        load_work_object(doc.at("work_profile"), &data.work);
    }

    if (!recognized) {
        throw std::invalid_argument(
            "load_profile: unrecognized document (expected traceEvents, "
            "observability, results or work_profile)");
    }
    return data;
}

namespace {

std::vector<DiffEntry> ranked_diff(const std::map<std::string, double>& a,
                                   const std::map<std::string, double>& b) {
    std::map<std::string, DiffEntry> merged;
    for (const auto& [name, value] : a) {
        DiffEntry& e = merged[name];
        e.name = name;
        e.a = value;
    }
    for (const auto& [name, value] : b) {
        DiffEntry& e = merged[name];
        e.name = name;
        e.b = value;
    }

    std::vector<DiffEntry> rows;
    rows.reserve(merged.size());
    double total_delta = 0.0;
    double total_magnitude = 0.0;
    for (auto& [name, e] : merged) {
        e.delta = e.b - e.a;
        total_delta += std::abs(e.delta);
        total_magnitude += std::max(std::abs(e.a), std::abs(e.b));
        rows.push_back(std::move(e));
    }
    // Contribution: movement when anything moved, magnitude otherwise
    // (identical runs still get a meaningful ranking).
    const bool by_delta = total_delta > 0.0;
    const double total = by_delta ? total_delta : total_magnitude;
    for (DiffEntry& e : rows) {
        const double contribution =
            by_delta ? std::abs(e.delta) : std::max(std::abs(e.a), std::abs(e.b));
        e.share = total > 0.0 ? contribution / total : 0.0;
    }
    std::sort(rows.begin(), rows.end(), [](const DiffEntry& x, const DiffEntry& y) {
        if (x.share != y.share) return x.share > y.share;
        const double mx = std::max(std::abs(x.a), std::abs(x.b));
        const double my = std::max(std::abs(y.a), std::abs(y.b));
        if (mx != my) return mx > my;
        return x.name < y.name;
    });
    return rows;
}

}  // namespace

ProfileDiff diff_profiles(const ProfileData& a, const ProfileData& b) {
    std::map<std::string, double> wall_a;
    std::map<std::string, double> wall_b;
    for (const auto& [name, stat] : a.stages) wall_a[name] = stat.wall_us;
    for (const auto& [name, stat] : b.stages) wall_b[name] = stat.wall_us;

    ProfileDiff diff;
    diff.stages = ranked_diff(wall_a, wall_b);
    diff.work = ranked_diff(a.work, b.work);
    return diff;
}

std::string diff_text(const ProfileDiff& diff, std::size_t top_n) {
    std::string out;
    auto render = [&out, top_n](const char* title, const char* unit,
                                const std::vector<DiffEntry>& rows) {
        if (rows.empty()) return;
        out += title;
        out += '\n';
        char line[256];
        std::snprintf(line, sizeof line, "  %-44s %14s %14s %14s %7s\n", "name",
                      (std::string("a (") + unit + ")").c_str(),
                      (std::string("b (") + unit + ")").c_str(), "delta", "share");
        out += line;
        std::size_t shown = 0;
        for (const DiffEntry& e : rows) {
            if (top_n != 0 && shown++ >= top_n) {
                std::snprintf(line, sizeof line, "  ... %zu more\n",
                              rows.size() - top_n);
                out += line;
                break;
            }
            std::snprintf(line, sizeof line, "  %-44s %14s %14s %14s %6.1f%%\n",
                          e.name.c_str(), fmt(e.a).c_str(), fmt(e.b).c_str(),
                          fmt(e.delta).c_str(), e.share * 100.0);
            out += line;
        }
    };
    render("per-stage wall time (ranked by contribution)", "us", diff.stages);
    if (!diff.stages.empty() && !diff.work.empty()) out += '\n';
    render("work counters (ranked by contribution)", "count", diff.work);
    if (out.empty()) out = "no stages or work counters in either profile\n";
    return out;
}

io::Json diff_json(const ProfileDiff& diff) {
    auto rows_json = [](const std::vector<DiffEntry>& rows) {
        io::Json out = io::Json::array();
        for (const DiffEntry& e : rows) {
            io::Json row = io::Json::object();
            row.set("name", e.name);
            row.set("a", e.a);
            row.set("b", e.b);
            row.set("delta", e.delta);
            row.set("share", e.share);
            out.push_back(std::move(row));
        }
        return out;
    };
    io::Json out = io::Json::object();
    out.set("schema", "htd.profile.diff.v1");
    out.set("stages", rows_json(diff.stages));
    out.set("work", rows_json(diff.work));
    return out;
}

}  // namespace htd::profile
