#pragma once
/// \file profile.hpp
/// htd_profile core: load execution profiles from htd trace-event JSON
/// (src/obs/trace_export.hpp), `htd.run_report.*` documents, or
/// BENCH_*.json artifacts, validate traces, and diff two profiles into a
/// per-stage wall/CPU/work attribution ranked by contribution. Lives in a
/// static library (htd_profile_lib) so tests/test_profile.cpp can exercise
/// it without shelling out to the binary — the same split htd_lint uses.
///
/// The three accepted document shapes, auto-detected:
///  - trace:      {"traceEvents": [...], "otherData": {"schema":
///                "htd.trace.v1", "work": {...}}} — stages aggregate the
///                "X" events per span name, work comes from otherData.
///  - run_report: {"observability": {"spans": [...], "metrics": {"work":
///                {...}}}} — stages aggregate the recorded spans.
///  - bench:      a run_report that also carries "results" (google-benchmark
///                rows; each becomes a stage at its per-iteration time) and
///                optionally "work_profile" ("<Bench>/<arg>:work.<x>.<y>"
///                per-iteration work counters, merged into the work map).

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "io/json.hpp"

namespace htd::profile {

/// Trace validation outcome (the `htd_profile --validate` mode and the
/// scripts/ci.sh profile smoke stage).
struct TraceCheck {
    bool ok = false;
    std::vector<std::string> errors;       ///< empty iff ok
    std::size_t span_events = 0;           ///< "X" events seen
    std::vector<std::string> span_names;   ///< distinct span names, sorted
    std::map<std::string, double> work;    ///< otherData.work counters
};

/// Validate `doc` against the htd.trace.v1 shape: traceEvents array,
/// schema tag, complete events with pid/tid/ts/dur >= 0 and args carrying
/// id/parent/depth, parents resolving to spans on the same thread.
[[nodiscard]] TraceCheck check_trace(const io::Json& doc);

/// JSON rendering of a TraceCheck (schema htd.profile.check.v1).
[[nodiscard]] io::Json check_json(const TraceCheck& check);

/// Aggregated cost of one stage (span name or bench row).
struct StageStat {
    double wall_us = 0.0;
    double cpu_us = 0.0;   ///< 0 for normalized traces (cpu_ns is dropped)
    double count = 0.0;    ///< spans aggregated / bench iterations
};

/// One loaded profile document.
struct ProfileData {
    std::string kind;                        ///< "trace" / "run_report" / "bench"
    std::map<std::string, StageStat> stages;
    std::map<std::string, double> work;
};

/// Load a profile from any accepted shape; throws std::invalid_argument
/// when the document matches none of them.
[[nodiscard]] ProfileData load_profile(const io::Json& doc);

/// One ranked attribution row of a profile diff.
struct DiffEntry {
    std::string name;
    double a = 0.0;
    double b = 0.0;
    double delta = 0.0;  ///< b - a
    double share = 0.0;  ///< fraction of the total contribution, in [0, 1]
};

/// Per-stage and per-work-counter diff, each ranked most-contributing
/// first. Contribution is |delta| when anything moved, falling back to
/// magnitude (max(|a|, |b|)) so diffing two identical runs still ranks the
/// dominant stages/counters instead of printing an all-zero table.
struct ProfileDiff {
    std::vector<DiffEntry> stages;  ///< wall-time attribution (µs)
    std::vector<DiffEntry> work;    ///< work-counter attribution
};

[[nodiscard]] ProfileDiff diff_profiles(const ProfileData& a, const ProfileData& b);

/// Human-readable rendering (two ranked tables).
[[nodiscard]] std::string diff_text(const ProfileDiff& diff, std::size_t top_n = 0);

/// JSON rendering (schema htd.profile.diff.v1).
[[nodiscard]] io::Json diff_json(const ProfileDiff& diff);

}  // namespace htd::profile
