#include "score_cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/csv.hpp"
#include "io/json.hpp"
#include "obs/journal.hpp"
#include "pipeline/artifact.hpp"
#include "pipeline/artifact_fault.hpp"
#include "pipeline/experiment.hpp"
#include "pipeline/explain.hpp"
#include "pipeline/scorer.hpp"

namespace htd::score_cli {

namespace {

const char* const kHelpText =
    "htd_score - calibrate once, score forever (DESIGN.md SS14)\n"
    "\n"
    "usage:\n"
    "  htd_score calibrate --artifact <out.json> [--fingerprints <out.csv>]\n"
    "                      [--bscores <out.json>] [--chips N] [--mc N]\n"
    "                      [--synthetic N] [--seed N] [--journal <file>]\n"
    "  htd_score score     --artifact <in.json> --fingerprints <in.csv>\n"
    "                      --bscores <out.json> [--strict] [--journal <file>]\n"
    "                      [--explain <out.json>]\n"
    "  htd_score inject    --artifact <file.json>\n"
    "                      --fault truncate|bit_flip|section_swap|stale_version\n"
    "                      [--seed N]\n"
    "  htd_score --help\n"
    "\n"
    "commands:\n"
    "  calibrate  run the golden-free pipeline end to end on the virtual\n"
    "             platform and persist the trained boundary set as a\n"
    "             versioned artifact (plus measured fingerprints as CSV and\n"
    "             their B-scores as a reference report)\n"
    "  score      load an artifact and classify a fingerprint CSV with zero\n"
    "             retraining; the verdict comes from the highest boundary\n"
    "             that survived calibration and loading\n"
    "  inject     corrupt an artifact with a seeded fault to demonstrate the\n"
    "             rejection path\n"
    "\n"
    "forensics flags:\n"
    "  --journal <file>       append htd.events.v1 records (calibration,\n"
    "                         boundary_fallback, chip_scored, ...) to <file>\n"
    "                         as JSONL; reopening the same file resumes the\n"
    "                         sequence. HTD_OBS_JOURNAL_NORMALIZE=1 makes\n"
    "                         same-seed journals byte-identical for diffing.\n"
    "  --journal-normalize    same as HTD_OBS_JOURNAL_NORMALIZE=1\n"
    "  --explain <out.json>   (score) write one htd.explain.v1 record per\n"
    "                         device: per-boundary decision + margin,\n"
    "                         leave-one-channel-out channel ranking, nearest\n"
    "                         calibration neighbours and KDE tail mass\n"
    "\n"
    "exit codes:\n"
    "  0  clean: command succeeded; for score, no device was flagged by the\n"
    "     verdict boundary\n"
    "  1  flagged or error: at least one device fell outside the verdict\n"
    "     boundary, or a usage/runtime error occurred\n"
    "  2  artifact rejected: the artifact failed validation (never score\n"
    "     against a corrupt artifact)\n";

using namespace htd;

std::string hex_seed(std::uint64_t v) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/// The htd.bscores.v1 report: per-boundary health + decision values for a
/// device batch. Emitted identically by the calibrate (in-process pipeline)
/// and score (artifact) paths so the two can be compared byte for byte.
template <typename Source>
io::Json bscores_json(const Source& source, std::uint64_t seed,
                      const linalg::Matrix& fingerprints) {
    io::Json boundaries = io::Json::object();
    for (const core::Boundary b : core::kAllBoundaries) {
        const core::BoundaryStatus& st = source.boundary_status(b);
        io::Json entry = io::Json::object();
        entry.set("health", core::boundary_health_name(st.health));
        entry.set("detail", st.detail);
        if (st.usable()) {
            entry.set("scores",
                      io::Json::from(source.decision_values(b, fingerprints)));
        } else {
            entry.set("scores", io::Json());
        }
        boundaries.set(core::boundary_name(b), std::move(entry));
    }
    io::Json doc = io::Json::object();
    doc.set("schema", "htd.bscores.v1");
    doc.set("seed", hex_seed(seed));
    doc.set("devices", fingerprints.rows());
    doc.set("boundaries", std::move(boundaries));
    return doc;
}

struct Args {
    std::string artifact;
    std::string fingerprints;
    std::string bscores;
    std::string fault;
    std::string journal;
    std::string explain;
    std::size_t chips = 12;
    std::size_t mc = 0;         // 0 = pipeline default
    std::size_t synthetic = 20000;
    std::uint64_t seed = 0;
    bool seed_set = false;
    bool strict = false;
    bool journal_normalize = false;
};

Args parse_args(int argc, const char* const* argv, int first) {
    Args args;
    for (int i = first; i < argc; ++i) {
        const std::string flag = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                throw std::invalid_argument("missing value for " + flag);
            }
            return argv[++i];
        };
        if (flag == "--artifact") {
            args.artifact = next();
        } else if (flag == "--fingerprints") {
            args.fingerprints = next();
        } else if (flag == "--bscores") {
            args.bscores = next();
        } else if (flag == "--fault") {
            args.fault = next();
        } else if (flag == "--journal") {
            args.journal = next();
        } else if (flag == "--explain") {
            args.explain = next();
        } else if (flag == "--chips") {
            args.chips = std::stoul(next());
        } else if (flag == "--mc") {
            args.mc = std::stoul(next());
        } else if (flag == "--synthetic") {
            args.synthetic = std::stoul(next());
        } else if (flag == "--seed") {
            args.seed = std::stoull(next());
            args.seed_set = true;
        } else if (flag == "--strict") {
            args.strict = true;
        } else if (flag == "--journal-normalize") {
            args.journal_normalize = true;
        } else {
            throw std::invalid_argument("unknown flag " + flag);
        }
    }
    return args;
}

/// Attach the decision-forensics journal before any pipeline work runs, so
/// calibration/fallback/chip_scored events from this invocation land in it.
void open_journal(const Args& args) {
    if (args.journal_normalize) {
        obs::EventJournal::global().set_normalized(true);
    }
    if (!args.journal.empty()) {
        obs::EventJournal::global().open(args.journal);
    }
}

int run_calibrate(const Args& args) {
    if (args.artifact.empty()) {
        throw std::invalid_argument("calibrate requires --artifact");
    }
    core::ExperimentConfig config;
    config.n_chips = args.chips;
    if (args.mc > 0) config.pipeline.monte_carlo_samples = args.mc;
    config.pipeline.synthetic_samples = args.synthetic;
    if (args.seed_set) config.seed = args.seed;

    // The canonical experiment driver (same stream discipline as
    // examples/quickstart.cpp): one master seed, one split per stochastic
    // stage. Reproducing this exact split order is what makes the
    // calibrate-time B-scores bit-for-bit reproducible.
    rng::Rng rng(config.seed);
    rng::Rng fab_rng = rng.split();
    const silicon::DuttDataset devices =
        core::fabricate_and_measure(config, fab_rng);

    const core::ProcessPair processes =
        core::make_process_pair(config.process_shift_sigma);
    core::GoldenFreePipeline pipeline(
        config.pipeline,
        silicon::SpiceSimulator(config.platform, processes.spice));
    rng::Rng sim_rng = rng.split();
    rng::Rng pipe_rng = rng.split();
    pipeline.run_premanufacturing(sim_rng);
    pipeline.run_silicon_stage(devices.pcms, pipe_rng);

    const core::BoundaryArtifact artifact =
        core::BoundaryArtifact::from_pipeline(pipeline, config.seed, "htd_score");
    artifact.save(args.artifact);
    std::printf("calibrated %zu devices -> %s (config %s)\n", devices.size(),
                args.artifact.c_str(),
                artifact.provenance().config_hash.c_str());

    if (!args.fingerprints.empty()) {
        io::write_csv(args.fingerprints, devices.fingerprints);
        std::printf("wrote fingerprints %s (%zu x %zu)\n",
                    args.fingerprints.c_str(), devices.fingerprints.rows(),
                    devices.fingerprints.cols());
    }
    if (!args.bscores.empty()) {
        bscores_json(pipeline, config.seed, devices.fingerprints)
            .dump_to_file(args.bscores);
        std::printf("wrote reference B-scores %s\n", args.bscores.c_str());
    }
    return kExitClean;
}

int run_score(const Args& args) {
    if (args.artifact.empty() || args.fingerprints.empty() ||
        args.bscores.empty()) {
        throw std::invalid_argument(
            "score requires --artifact, --fingerprints and --bscores");
    }
    core::ArtifactLoadReport report;
    const core::BoundaryScorer scorer(core::BoundaryArtifact::load(
        args.artifact, {.strict = args.strict}, &report));
    for (const std::string& note : report.notes) {
        std::fprintf(stderr, "warning: %s\n", note.c_str());
    }

    const linalg::Matrix fingerprints = io::read_csv(args.fingerprints);
    bscores_json(scorer, scorer.artifact().provenance().seed, fingerprints)
        .dump_to_file(args.bscores);

    std::size_t usable = 0;
    for (const core::Boundary b : core::kAllBoundaries) {
        usable += scorer.boundary_ready(b) ? 1 : 0;
    }
    std::printf("scored %zu devices against %zu/5 boundaries -> %s\n",
                fingerprints.rows(), usable, args.bscores.c_str());

    const std::optional<core::Boundary> vb = scorer.verdict_boundary();
    if (!vb.has_value()) {
        std::fprintf(stderr,
                     "htd_score: no usable boundary survived calibration and "
                     "loading; no verdict possible\n");
        return kExitFlaggedOrError;
    }

    // The production verdict: classify against the highest surviving
    // boundary. With --journal this emits one chip_scored event per device.
    const std::vector<bool> inside = scorer.classify(*vb, fingerprints);
    std::size_t flagged = 0;
    for (const bool in : inside) flagged += in ? 0 : 1;

    if (!args.explain.empty()) {
        io::Json records = io::Json::array();
        for (std::size_t r = 0; r < fingerprints.rows(); ++r) {
            records.push_back(
                scorer.explain(fingerprints.row(r), std::to_string(r))
                    .to_json());
        }
        io::Json doc = io::Json::object();
        doc.set("schema", std::string(core::kExplainSchema));
        doc.set("devices", fingerprints.rows());
        doc.set("records", std::move(records));
        doc.dump_to_file(args.explain);
        std::printf("wrote explanations %s\n", args.explain.c_str());
    }

    std::printf("verdict boundary %s: %zu of %zu devices flagged\n",
                core::boundary_name(*vb).c_str(), flagged, inside.size());
    return flagged > 0 ? kExitFlaggedOrError : kExitClean;
}

int run_inject(const Args& args) {
    if (args.artifact.empty() || args.fault.empty()) {
        throw std::invalid_argument("inject requires --artifact and --fault");
    }
    core::ArtifactFault fault{};
    if (args.fault == "truncate") {
        fault = core::ArtifactFault::kTruncate;
    } else if (args.fault == "bit_flip") {
        fault = core::ArtifactFault::kBitFlip;
    } else if (args.fault == "section_swap") {
        fault = core::ArtifactFault::kSectionSwap;
    } else if (args.fault == "stale_version") {
        fault = core::ArtifactFault::kStaleVersion;
    } else {
        throw std::invalid_argument("unknown fault '" + args.fault + "'");
    }
    core::ArtifactFaultInjector injector(args.seed_set ? args.seed : 1);
    const std::string what = injector.corrupt_file(args.artifact, fault);
    std::printf("injected %s into %s\n", what.c_str(), args.artifact.c_str());
    return kExitClean;
}

}  // namespace

const std::string& help_text() {
    static const std::string text = kHelpText;
    return text;
}

int run(int argc, const char* const* argv) {
    if (argc < 2) {
        std::fputs(kHelpText, stderr);
        return kExitFlaggedOrError;
    }
    const std::string command = argv[1];
    if (command == "--help" || command == "-h" || command == "help") {
        std::fputs(kHelpText, stdout);
        return kExitClean;
    }
    try {
        const Args args = parse_args(argc, argv, 2);
        open_journal(args);
        if (command == "calibrate") return run_calibrate(args);
        if (command == "score") return run_score(args);
        if (command == "inject") return run_inject(args);
        std::fprintf(stderr, "htd_score: unknown command '%s'\n",
                     command.c_str());
        std::fputs(kHelpText, stderr);
        return kExitFlaggedOrError;
    } catch (const core::ArtifactError& e) {
        std::fprintf(stderr, "htd_score: artifact rejected: %s\n", e.what());
        return kExitArtifactRejected;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "htd_score: %s\n", e.what());
        return kExitFlaggedOrError;
    }
}

}  // namespace htd::score_cli
