#pragma once
/// \file score_cli.hpp
/// htd_score's command-line driver as a library, so tests can exercise the
/// help text, flag parsing and exit-code contract in-process instead of
/// shelling out to the binary (same split as tools/htd_profile).
///
/// Exit-code contract (documented in `help_text()`, asserted in
/// tests/test_score_cli.cpp):
///
///   0  kExitClean             command succeeded; for `score`, every device
///                             fell inside the verdict boundary
///   1  kExitFlaggedOrError    at least one device was flagged by the
///                             verdict boundary, or a usage/runtime error
///   2  kExitArtifactRejected  the artifact failed validation (typed
///                             core::ArtifactError — never score against a
///                             corrupt artifact)

#include <string>

namespace htd::score_cli {

inline constexpr int kExitClean = 0;
inline constexpr int kExitFlaggedOrError = 1;
inline constexpr int kExitArtifactRejected = 2;

/// The full --help text (usage, flags, exit codes).
[[nodiscard]] const std::string& help_text();

/// Run the htd_score CLI: argv[0] is the program name, the rest are the
/// command and flags. Never throws; errors map onto the exit codes above.
[[nodiscard]] int run(int argc, const char* const* argv);

}  // namespace htd::score_cli
