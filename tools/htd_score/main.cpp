/// \file main.cpp
/// htd_score — calibrate once, score forever. All logic lives in
/// score_cli.{hpp,cpp} (htd_score_lib) so tests can drive the CLI
/// in-process; see that header for the command set and exit-code contract.

#include "score_cli.hpp"

int main(int argc, char** argv) { return htd::score_cli::run(argc, argv); }
