/// \file main.cpp
/// htd_score — calibrate once, score forever.
///
/// The production face of the calibrate/score split (DESIGN.md §14):
///
///   htd_score calibrate  runs the golden-free pipeline end to end on the
///                        virtual platform and persists the trained boundary
///                        set as an htd.boundary.v1 artifact (plus the
///                        measured fingerprints as CSV and their B-scores
///                        as a reference report).
///   htd_score score      loads an artifact and classifies a fingerprint
///                        CSV with zero retraining. For a pristine artifact
///                        the emitted B-score report is byte-identical to
///                        the calibrate-time one — the CI artifact stage
///                        diffs the two.
///   htd_score inject     corrupts an artifact with a seeded fault
///                        (truncate / bit_flip / section_swap /
///                        stale_version) to demonstrate the rejection path.
///
/// Exit codes: 0 success, 1 usage or runtime error, 2 artifact rejected
/// (typed ArtifactError — the "never score against a corrupt artifact"
/// contract).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/csv.hpp"
#include "io/json.hpp"
#include "pipeline/artifact.hpp"
#include "pipeline/artifact_fault.hpp"
#include "pipeline/experiment.hpp"
#include "pipeline/scorer.hpp"

namespace {

using namespace htd;

constexpr int kExitOk = 0;
constexpr int kExitError = 1;
constexpr int kExitArtifactRejected = 2;

void usage() {
    std::fprintf(
        stderr,
        "usage:\n"
        "  htd_score calibrate --artifact <out.json> [--fingerprints <out.csv>]\n"
        "                      [--bscores <out.json>] [--chips N] [--mc N]\n"
        "                      [--synthetic N] [--seed N]\n"
        "  htd_score score     --artifact <in.json> --fingerprints <in.csv>\n"
        "                      --bscores <out.json> [--strict]\n"
        "  htd_score inject    --artifact <file.json>\n"
        "                      --fault truncate|bit_flip|section_swap|stale_version\n"
        "                      [--seed N]\n"
        "\n"
        "exit codes: 0 ok, 1 error, 2 artifact rejected\n");
}

std::string hex_seed(std::uint64_t v) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/// The htd.bscores.v1 report: per-boundary health + decision values for a
/// device batch. Emitted identically by the calibrate (in-process pipeline)
/// and score (artifact) paths so the two can be compared byte for byte.
template <typename Source>
io::Json bscores_json(const Source& source, std::uint64_t seed,
                      const linalg::Matrix& fingerprints) {
    io::Json boundaries = io::Json::object();
    for (const core::Boundary b : core::kAllBoundaries) {
        const core::BoundaryStatus& st = source.boundary_status(b);
        io::Json entry = io::Json::object();
        entry.set("health", core::boundary_health_name(st.health));
        entry.set("detail", st.detail);
        if (st.usable()) {
            entry.set("scores",
                      io::Json::from(source.decision_values(b, fingerprints)));
        } else {
            entry.set("scores", io::Json());
        }
        boundaries.set(core::boundary_name(b), std::move(entry));
    }
    io::Json doc = io::Json::object();
    doc.set("schema", "htd.bscores.v1");
    doc.set("seed", hex_seed(seed));
    doc.set("devices", fingerprints.rows());
    doc.set("boundaries", std::move(boundaries));
    return doc;
}

struct Args {
    std::string artifact;
    std::string fingerprints;
    std::string bscores;
    std::string fault;
    std::size_t chips = 12;
    std::size_t mc = 0;         // 0 = pipeline default
    std::size_t synthetic = 20000;
    std::uint64_t seed = 0;
    bool seed_set = false;
    bool strict = false;
};

Args parse_args(int argc, char** argv, int first) {
    Args args;
    for (int i = first; i < argc; ++i) {
        const std::string flag = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                throw std::invalid_argument("missing value for " + flag);
            }
            return argv[++i];
        };
        if (flag == "--artifact") {
            args.artifact = next();
        } else if (flag == "--fingerprints") {
            args.fingerprints = next();
        } else if (flag == "--bscores") {
            args.bscores = next();
        } else if (flag == "--fault") {
            args.fault = next();
        } else if (flag == "--chips") {
            args.chips = std::stoul(next());
        } else if (flag == "--mc") {
            args.mc = std::stoul(next());
        } else if (flag == "--synthetic") {
            args.synthetic = std::stoul(next());
        } else if (flag == "--seed") {
            args.seed = std::stoull(next());
            args.seed_set = true;
        } else if (flag == "--strict") {
            args.strict = true;
        } else {
            throw std::invalid_argument("unknown flag " + flag);
        }
    }
    return args;
}

int run_calibrate(const Args& args) {
    if (args.artifact.empty()) {
        throw std::invalid_argument("calibrate requires --artifact");
    }
    core::ExperimentConfig config;
    config.n_chips = args.chips;
    if (args.mc > 0) config.pipeline.monte_carlo_samples = args.mc;
    config.pipeline.synthetic_samples = args.synthetic;
    if (args.seed_set) config.seed = args.seed;

    // The canonical experiment driver (same stream discipline as
    // examples/quickstart.cpp): one master seed, one split per stochastic
    // stage. Reproducing this exact split order is what makes the
    // calibrate-time B-scores bit-for-bit reproducible.
    rng::Rng rng(config.seed);
    rng::Rng fab_rng = rng.split();
    const silicon::DuttDataset devices =
        core::fabricate_and_measure(config, fab_rng);

    const core::ProcessPair processes =
        core::make_process_pair(config.process_shift_sigma);
    core::GoldenFreePipeline pipeline(
        config.pipeline,
        silicon::SpiceSimulator(config.platform, processes.spice));
    rng::Rng sim_rng = rng.split();
    rng::Rng pipe_rng = rng.split();
    pipeline.run_premanufacturing(sim_rng);
    pipeline.run_silicon_stage(devices.pcms, pipe_rng);

    const core::BoundaryArtifact artifact =
        core::BoundaryArtifact::from_pipeline(pipeline, config.seed, "htd_score");
    artifact.save(args.artifact);
    std::printf("calibrated %zu devices -> %s (config %s)\n", devices.size(),
                args.artifact.c_str(),
                artifact.provenance().config_hash.c_str());

    if (!args.fingerprints.empty()) {
        io::write_csv(args.fingerprints, devices.fingerprints);
        std::printf("wrote fingerprints %s (%zu x %zu)\n",
                    args.fingerprints.c_str(), devices.fingerprints.rows(),
                    devices.fingerprints.cols());
    }
    if (!args.bscores.empty()) {
        bscores_json(pipeline, config.seed, devices.fingerprints)
            .dump_to_file(args.bscores);
        std::printf("wrote reference B-scores %s\n", args.bscores.c_str());
    }
    return kExitOk;
}

int run_score(const Args& args) {
    if (args.artifact.empty() || args.fingerprints.empty() ||
        args.bscores.empty()) {
        throw std::invalid_argument(
            "score requires --artifact, --fingerprints and --bscores");
    }
    core::ArtifactLoadReport report;
    const core::BoundaryScorer scorer(core::BoundaryArtifact::load(
        args.artifact, {.strict = args.strict}, &report));
    for (const std::string& note : report.notes) {
        std::fprintf(stderr, "warning: %s\n", note.c_str());
    }

    const linalg::Matrix fingerprints = io::read_csv(args.fingerprints);
    bscores_json(scorer, scorer.artifact().provenance().seed, fingerprints)
        .dump_to_file(args.bscores);

    std::size_t usable = 0;
    for (const core::Boundary b : core::kAllBoundaries) {
        usable += scorer.boundary_ready(b) ? 1 : 0;
    }
    std::printf("scored %zu devices against %zu/5 boundaries -> %s\n",
                fingerprints.rows(), usable, args.bscores.c_str());
    return kExitOk;
}

int run_inject(const Args& args) {
    if (args.artifact.empty() || args.fault.empty()) {
        throw std::invalid_argument("inject requires --artifact and --fault");
    }
    core::ArtifactFault fault{};
    if (args.fault == "truncate") {
        fault = core::ArtifactFault::kTruncate;
    } else if (args.fault == "bit_flip") {
        fault = core::ArtifactFault::kBitFlip;
    } else if (args.fault == "section_swap") {
        fault = core::ArtifactFault::kSectionSwap;
    } else if (args.fault == "stale_version") {
        fault = core::ArtifactFault::kStaleVersion;
    } else {
        throw std::invalid_argument("unknown fault '" + args.fault + "'");
    }
    core::ArtifactFaultInjector injector(args.seed_set ? args.seed : 1);
    const std::string what = injector.corrupt_file(args.artifact, fault);
    std::printf("injected %s into %s\n", what.c_str(), args.artifact.c_str());
    return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        usage();
        return kExitError;
    }
    const std::string command = argv[1];
    try {
        const Args args = parse_args(argc, argv, 2);
        if (command == "calibrate") return run_calibrate(args);
        if (command == "score") return run_score(args);
        if (command == "inject") return run_inject(args);
        usage();
        return kExitError;
    } catch (const core::ArtifactError& e) {
        std::fprintf(stderr, "htd_score: artifact rejected: %s\n", e.what());
        return kExitArtifactRejected;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "htd_score: %s\n", e.what());
        return kExitError;
    }
}
