#include "explain_cli.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "io/csv.hpp"
#include "obs/journal.hpp"
#include "pipeline/artifact.hpp"
#include "pipeline/explain.hpp"
#include "pipeline/scorer.hpp"

namespace htd::explain_cli {

namespace {

const char* const kHelpText =
    "htd_explain - decision forensics over htd.events.v1 journals and\n"
    "calibration boundary artifacts (DESIGN.md SS15)\n"
    "\n"
    "usage:\n"
    "  htd_explain explain  --artifact <in.json> --fingerprints <in.csv>\n"
    "                       --chip N [--journal <file>] [--top K]\n"
    "                       [--neighbors K] [--json]\n"
    "  htd_explain validate <journal.jsonl>\n"
    "  htd_explain query    <journal.jsonl> [--chip N] [--kind <kind>]\n"
    "                       [--since SEQ] [--json]\n"
    "  htd_explain tail     <journal.jsonl> [--n N] [--json]\n"
    "  htd_explain --help\n"
    "\n"
    "explain joins the calibration artifact, the measured fingerprint CSV\n"
    "and (optionally) the decision journal into one chip's verdict\n"
    "attribution: per-boundary decision + margin, leave-one-channel-out\n"
    "channel ranking with z-scores, nearest calibration neighbours, KDE\n"
    "tail mass, and the journal events that mention the chip.\n"
    "\n"
    "exit codes: 0 ok, 1 error (including a journal failing validation)\n";

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
        throw std::runtime_error("cannot open " + path);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/// Split journal text into (line_number, line) pairs, skipping empty lines.
std::vector<std::pair<std::size_t, std::string>> journal_lines(
    const std::string& text) {
    std::vector<std::pair<std::size_t, std::string>> lines;
    std::size_t line_no = 0;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string::npos) end = text.size();
        ++line_no;
        if (end > start) {
            lines.emplace_back(line_no, text.substr(start, end - start));
        }
        start = end + 1;
    }
    return lines;
}

std::string format_double(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

}  // namespace

JournalCheck check_journal_text(const std::string& text) {
    JournalCheck check;
    std::uint64_t prev_seq = 0;
    for (const auto& [line_no, line] : journal_lines(text)) {
        const std::string at = "line " + std::to_string(line_no) + ": ";
        io::Json event;
        try {
            event = io::Json::parse(line);
        } catch (const std::exception& e) {
            check.errors.push_back(at + "parse error: " + e.what());
            continue;
        }
        if (!event.is_object()) {
            check.errors.push_back(at + "event is not a JSON object");
            continue;
        }
        ++check.records;
        if (!event.contains("schema") || !event.at("schema").is_string() ||
            event.at("schema").str() != std::string(obs::kEventsSchema)) {
            check.errors.push_back(at + "schema tag is not '" +
                                   std::string(obs::kEventsSchema) + "'");
        }
        if (!event.contains("kind") || !event.at("kind").is_string()) {
            check.errors.push_back(at + "missing string 'kind'");
        } else {
            const std::string& kind = event.at("kind").str();
            if (!obs::event_kind_registered(kind)) {
                check.errors.push_back(at + "unregistered event kind '" +
                                       kind + "'");
            }
            ++check.kinds[kind];
        }
        if (!event.contains("seq") || !event.at("seq").is_number()) {
            check.errors.push_back(at + "missing numeric 'seq'");
        } else {
            const auto seq =
                static_cast<std::uint64_t>(event.at("seq").number());
            if (seq <= prev_seq) {
                check.errors.push_back(
                    at + "sequence not strictly increasing (seq " +
                    std::to_string(seq) + " after " +
                    std::to_string(prev_seq) + ")");
            }
            prev_seq = seq;
            if (seq > check.last_seq) check.last_seq = seq;
        }
    }
    check.ok = check.errors.empty();
    return check;
}

JournalCheck check_journal_file(const std::string& path) {
    try {
        return check_journal_text(read_file(path));
    } catch (const std::exception& e) {
        JournalCheck check;
        check.errors.emplace_back(e.what());
        return check;
    }
}

std::vector<io::Json> query_journal_text(const std::string& text,
                                         const JournalQuery& query) {
    std::vector<io::Json> matches;
    for (const auto& [line_no, line] : journal_lines(text)) {
        (void)line_no;
        io::Json event;
        try {
            event = io::Json::parse(line);
        } catch (const std::exception&) {
            continue;  // validate reports these; query just filters
        }
        if (!event.is_object()) continue;
        const auto field = [&](const char* name) -> std::string {
            return event.contains(name) && event.at(name).is_string()
                       ? event.at(name).str()
                       : std::string();
        };
        if (!query.chip.empty() && field("chip") != query.chip) continue;
        if (!query.kind.empty() && field("kind") != query.kind) continue;
        if (query.since > 0) {
            if (!event.contains("seq") || !event.at("seq").is_number() ||
                static_cast<std::uint64_t>(event.at("seq").number()) <
                    query.since) {
                continue;
            }
        }
        matches.push_back(std::move(event));
    }
    return matches;
}

std::string render_event(const io::Json& event) {
    const auto field = [&](const char* name) -> std::string {
        return event.contains(name) && event.at(name).is_string()
                   ? event.at(name).str()
                   : std::string();
    };
    std::ostringstream out;
    if (event.contains("seq") && event.at("seq").is_number()) {
        out << "#" << static_cast<std::uint64_t>(event.at("seq").number());
    } else {
        out << "#?";
    }
    out << " " << field("kind");
    if (const std::string chip = field("chip"); !chip.empty()) {
        out << " chip=" << chip;
    }
    if (const std::string boundary = field("boundary"); !boundary.empty()) {
        out << " boundary=" << boundary;
    }
    if (event.contains("values") && event.at("values").is_object()) {
        for (const auto& [name, value] : event.at("values").members()) {
            if (value.is_number()) {
                out << " " << name << "=" << format_double(value.number());
            }
        }
    }
    if (const std::string detail = field("detail"); !detail.empty()) {
        out << " -- " << detail;
    }
    return out.str();
}

std::string render_explanation(const io::Json& record) {
    std::ostringstream out;
    const std::string chip =
        record.contains("chip") && record.at("chip").is_string()
            ? record.at("chip").str()
            : "?";
    const bool flagged = record.contains("flagged") &&
                         record.at("flagged").is_bool() &&
                         record.at("flagged").boolean();
    const std::string verdict_boundary =
        record.contains("verdict_boundary") &&
                record.at("verdict_boundary").is_string()
            ? record.at("verdict_boundary").str()
            : "";

    out << "chip " << chip << ": ";
    if (verdict_boundary.empty()) {
        out << "NO VERDICT (no usable boundary)\n";
    } else {
        out << (flagged ? "FLAGGED" : "clean") << " by verdict boundary "
            << verdict_boundary << "\n";
    }

    out << "boundaries:\n";
    const io::Json* verdict_entry = nullptr;
    if (record.contains("boundaries") && record.at("boundaries").is_array()) {
        for (const io::Json& be : record.at("boundaries").elements()) {
            const std::string name = be.at("boundary").str();
            const bool usable =
                be.contains("usable") && be.at("usable").boolean();
            out << "  " << name << "  " << be.at("health").str();
            if (usable) {
                const bool inside = be.at("inside").boolean();
                out << "  " << (inside ? "inside " : "OUTSIDE")
                    << "  decision " << format_double(be.at("decision").number())
                    << "  margin " << format_double(be.at("margin").number());
            } else if (be.contains("detail") && be.at("detail").is_string() &&
                       !be.at("detail").str().empty()) {
                out << "  unusable (" << be.at("detail").str() << ")";
            } else {
                out << "  unusable";
            }
            out << "\n";
            if (name == verdict_boundary && usable) verdict_entry = &be;
        }
    }

    if (verdict_entry != nullptr) {
        out << "channel contributions at " << verdict_boundary
            << " (leave-one-channel-out, strongest first):\n";
        std::size_t rank = 0;
        for (const io::Json& ca : verdict_entry->at("channels").elements()) {
            out << "  " << ++rank << ". channel "
                << static_cast<std::size_t>(ca.at("channel").number())
                << "  delta " << format_double(ca.at("loco_delta").number())
                << "  z " << format_double(ca.at("z").number()) << "\n";
        }
        out << "nearest calibration neighbours at " << verdict_boundary
            << ":\n";
        for (const io::Json& nb : verdict_entry->at("neighbors").elements()) {
            out << "  sv#" << static_cast<std::size_t>(nb.at("index").number())
                << "  distance " << format_double(nb.at("distance").number())
                << "  alpha " << format_double(nb.at("alpha").number())
                << "\n";
        }
    }

    if (record.contains("kde") && record.at("kde").is_object()) {
        out << "kde tail mass:";
        for (const char* name : {"s2", "s5"}) {
            const io::Json& t = record.at("kde").at(name);
            out << "  " << name << " ";
            if (t.contains("present") && t.at("present").boolean()) {
                out << "density " << format_double(t.at("density").number())
                    << " (tail percentile "
                    << format_double(t.at("tail_percentile").number()) << ")";
            } else {
                out << "absent";
            }
        }
        out << "\n";
    }
    return out.str();
}

namespace {

struct Args {
    std::string journal;      // positional for validate/query/tail
    std::string artifact;
    std::string fingerprints;
    std::string chip;
    std::string kind;
    std::uint64_t since = 0;
    std::size_t top = 0;       // 0 = all channels
    std::size_t neighbors = 3;
    std::size_t tail_n = 10;
    bool json = false;
    bool chip_set = false;
};

Args parse_args(int argc, const char* const* argv, int first,
                bool journal_positional) {
    Args args;
    for (int i = first; i < argc; ++i) {
        const std::string flag = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                throw std::invalid_argument("missing value for " + flag);
            }
            return argv[++i];
        };
        if (flag == "--artifact") {
            args.artifact = next();
        } else if (flag == "--fingerprints") {
            args.fingerprints = next();
        } else if (flag == "--journal") {
            args.journal = next();
        } else if (flag == "--chip") {
            args.chip = next();
            args.chip_set = true;
        } else if (flag == "--kind") {
            args.kind = next();
        } else if (flag == "--since") {
            args.since = std::stoull(next());
        } else if (flag == "--top") {
            args.top = std::stoul(next());
        } else if (flag == "--neighbors") {
            args.neighbors = std::stoul(next());
        } else if (flag == "--n") {
            args.tail_n = std::stoul(next());
        } else if (flag == "--json") {
            args.json = true;
        } else if (journal_positional && flag.rfind("--", 0) != 0 &&
                   args.journal.empty()) {
            args.journal = flag;
        } else {
            throw std::invalid_argument("unknown flag " + flag);
        }
    }
    if (journal_positional && args.journal.empty()) {
        throw std::invalid_argument("missing <journal.jsonl> argument");
    }
    return args;
}

int run_explain(const Args& args) {
    if (args.artifact.empty() || args.fingerprints.empty() || !args.chip_set) {
        throw std::invalid_argument(
            "explain requires --artifact, --fingerprints and --chip");
    }
    const std::size_t chip = std::stoul(args.chip);
    core::ArtifactLoadReport report;
    const core::BoundaryScorer scorer(
        core::BoundaryArtifact::load(args.artifact, {}, &report));
    for (const std::string& note : report.notes) {
        std::fprintf(stderr, "warning: %s\n", note.c_str());
    }
    const linalg::Matrix fingerprints = io::read_csv(args.fingerprints);
    if (chip >= fingerprints.rows()) {
        throw std::invalid_argument(
            "--chip " + std::to_string(chip) + " out of range (CSV has " +
            std::to_string(fingerprints.rows()) + " devices)");
    }
    core::ExplainOptions opts;
    opts.top_channels = args.top;
    opts.neighbors = args.neighbors;
    const core::ExplainRecord rec =
        scorer.explain(fingerprints.row(chip), args.chip, opts);
    const io::Json doc = rec.to_json();

    if (args.json) {
        std::printf("%s\n", doc.dump(2).c_str());
        return kExitOk;
    }
    std::fputs(render_explanation(doc).c_str(), stdout);
    if (!args.journal.empty()) {
        JournalQuery chip_query;
        chip_query.chip = args.chip;
        const std::vector<io::Json> events =
            query_journal_text(read_file(args.journal), chip_query);
        std::printf("journal events for chip %s (%zu):\n", args.chip.c_str(),
                    events.size());
        for (const io::Json& event : events) {
            std::printf("  %s\n", render_event(event).c_str());
        }
    }
    return kExitOk;
}

int run_validate(const Args& args) {
    const JournalCheck check = check_journal_file(args.journal);
    std::printf("%s: %zu records, last seq %llu\n", args.journal.c_str(),
                check.records,
                static_cast<unsigned long long>(check.last_seq));
    for (const auto& [kind, count] : check.kinds) {
        std::printf("  %-18s %zu\n", kind.c_str(), count);
    }
    for (const std::string& error : check.errors) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
    }
    std::printf(check.ok ? "OK\n" : "INVALID\n");
    return check.ok ? kExitOk : kExitError;
}

int run_query(const Args& args, bool tail) {
    const std::string text = read_file(args.journal);
    std::vector<io::Json> events = query_journal_text(
        text,
        JournalQuery{.chip = args.chip, .kind = args.kind, .since = args.since});
    if (tail && events.size() > args.tail_n) {
        events.erase(events.begin(),
                     events.end() - static_cast<std::ptrdiff_t>(args.tail_n));
    }
    for (const io::Json& event : events) {
        if (args.json) {
            std::printf("%s\n", event.dump().c_str());
        } else {
            std::printf("%s\n", render_event(event).c_str());
        }
    }
    std::fprintf(stderr, "%zu event(s)\n", events.size());
    return kExitOk;
}

}  // namespace

int run(int argc, const char* const* argv) {
    if (argc < 2) {
        std::fputs(kHelpText, stderr);
        return kExitError;
    }
    const std::string command = argv[1];
    if (command == "--help" || command == "-h" || command == "help") {
        std::fputs(kHelpText, stdout);
        return kExitOk;
    }
    try {
        if (command == "explain") {
            return run_explain(parse_args(argc, argv, 2, false));
        }
        if (command == "validate") {
            return run_validate(parse_args(argc, argv, 2, true));
        }
        if (command == "query") {
            return run_query(parse_args(argc, argv, 2, true), false);
        }
        if (command == "tail") {
            return run_query(parse_args(argc, argv, 2, true), true);
        }
        std::fprintf(stderr, "htd_explain: unknown command '%s'\n",
                     command.c_str());
        std::fputs(kHelpText, stderr);
        return kExitError;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "htd_explain: %s\n", e.what());
        return kExitError;
    }
}

}  // namespace htd::explain_cli
