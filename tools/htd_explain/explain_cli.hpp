#pragma once
/// \file explain_cli.hpp
/// htd_explain core: validate/query/tail htd.events.v1 decision journals
/// and render per-chip htd.explain.v1 verdict attributions (computed by
/// core::BoundaryScorer::explain) as ranked human-readable text. Lives in
/// a static library (htd_explain_lib) so tests/test_explain.cpp can
/// exercise it without shelling out to the binary — the same split
/// htd_lint / htd_profile / htd_score use.
///
/// Subcommands (wired in run()):
///   explain   join an htd.boundary.v1 artifact, a fingerprint CSV and
///             (optionally) a journal into one chip's explanation
///   validate  structural check of a journal: every line parses, schema
///             tag matches, sequence strictly increases, kinds registered
///   query     filter journal events by --chip / --kind / --since <seq>
///   tail      the last N journal events

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "io/json.hpp"

namespace htd::explain_cli {

inline constexpr int kExitOk = 0;
inline constexpr int kExitError = 1;

/// Outcome of `htd_explain validate` (and the scripts/ci.sh journal smoke).
struct JournalCheck {
    bool ok = false;
    std::vector<std::string> errors;        ///< empty iff ok, "line N: ..."
    std::size_t records = 0;                ///< parsed event records
    std::uint64_t last_seq = 0;             ///< highest sequence number seen
    std::map<std::string, std::size_t> kinds;  ///< record count per kind
};

/// Validate journal text (one JSON event per line): every non-empty line
/// must parse as an object with schema "htd.events.v1", a kind registered
/// in obs::event_kinds(), and a strictly increasing positive "seq".
[[nodiscard]] JournalCheck check_journal_text(const std::string& text);

/// check_journal_text over a file; a missing/unreadable file is an error.
[[nodiscard]] JournalCheck check_journal_file(const std::string& path);

/// Event filter for `query` / `tail`. Empty string / zero = wildcard.
struct JournalQuery {
    std::string chip;         ///< match event "chip" field exactly
    std::string kind;         ///< match event "kind" field exactly
    std::uint64_t since = 0;  ///< keep events with seq >= since
};

/// Parse journal text and return the events matching `query`, in journal
/// order. Unparseable lines are skipped (use check_journal_* to reject
/// them loudly).
[[nodiscard]] std::vector<io::Json> query_journal_text(
    const std::string& text, const JournalQuery& query);

/// Render one htd.explain.v1 record (core::ExplainRecord::to_json shape)
/// as ranked human-readable text: verdict line, per-boundary table, top
/// channel contributions, nearest calibration neighbours, KDE tail mass.
[[nodiscard]] std::string render_explanation(const io::Json& record);

/// Render one htd.events.v1 event as a single human-readable line.
[[nodiscard]] std::string render_event(const io::Json& event);

/// Run the htd_explain CLI; never throws. 0 ok, 1 error (including a
/// journal that fails validation).
[[nodiscard]] int run(int argc, const char* const* argv);

}  // namespace htd::explain_cli
