/// \file main.cpp
/// htd_explain — decision forensics CLI. All logic lives in
/// explain_cli.{hpp,cpp} (htd_explain_lib) so tests can drive the
/// subcommands in-process; see that header for the command set.

#include "explain_cli.hpp"

int main(int argc, char** argv) { return htd::explain_cli::run(argc, argv); }
