#include "pipeline/report.hpp"

#include "trojan/trojan.hpp"

namespace htd::core {

io::Json experiment_report(const ExperimentConfig& config,
                           const ExperimentResult& result,
                           bool include_measurements) {
    io::Json doc = io::Json::object();
    doc.set("paper",
            "Hardware Trojan Detection through Golden Chip-Free Statistical "
            "Side-Channel Fingerprinting (DAC 2014)");

    io::Json cfg = io::Json::object();
    cfg.set("seed", static_cast<double>(config.seed));
    cfg.set("n_chips", config.n_chips);
    cfg.set("process_shift_sigma", config.process_shift_sigma);
    cfg.set("monte_carlo_samples", config.pipeline.monte_carlo_samples);
    cfg.set("synthetic_samples", config.pipeline.synthetic_samples);
    cfg.set("kde_alpha", config.pipeline.kde_alpha);
    cfg.set("kde_bandwidth", config.pipeline.kde_bandwidth);
    cfg.set("svm_nu", config.pipeline.svm.nu);
    cfg.set("fingerprint_dim", config.platform.fingerprint_dim());
    cfg.set("pcm_dim", config.platform.pcm_dim());
    cfg.set("trojan_amplitude_epsilon", config.platform.trojan_amplitude_epsilon);
    cfg.set("trojan_frequency_delta_ghz", config.platform.trojan_frequency_delta_ghz);
    doc.set("config", std::move(cfg));

    io::Json table = io::Json::array();
    for (std::size_t i = 0; i < kAllBoundaries.size(); ++i) {
        const auto& m = result.table1[i];
        io::Json row = io::Json::object();
        row.set("dataset", dataset_name(kAllBoundaries[i]));
        row.set("boundary", boundary_name(kAllBoundaries[i]));
        row.set("false_positives", m.false_positives);
        row.set("false_negatives", m.false_negatives);
        row.set("trojan_infested_total", m.trojan_infested_total);
        row.set("trojan_free_total", m.trojan_free_total);
        row.set("fp_rate", m.false_positive_rate());
        row.set("fn_rate", m.false_negative_rate());
        row.set("accuracy", m.accuracy());
        table.push_back(std::move(row));
    }
    doc.set("table1", std::move(table));

    io::Json baseline = io::Json::object();
    baseline.set("false_positives", result.golden_baseline.false_positives);
    baseline.set("false_negatives", result.golden_baseline.false_negatives);
    baseline.set("accuracy", result.golden_baseline.accuracy());
    doc.set("golden_chip_baseline", std::move(baseline));

    io::Json diag = io::Json::object();
    diag.set("mars_mean_r2", result.mars_mean_r2);
    diag.set("calibration_iterations", result.calibration_iterations);
    doc.set("diagnostics", std::move(diag));

    if (include_measurements) {
        io::Json devices = io::Json::array();
        for (std::size_t i = 0; i < result.measured.size(); ++i) {
            io::Json dev = io::Json::object();
            dev.set("variant", trojan::variant_name(result.measured.variants[i]));
            dev.set("pcm", io::Json::from(result.measured.pcms.row(i)));
            dev.set("fingerprint",
                    io::Json::from(result.measured.fingerprints.row(i)));
            devices.push_back(std::move(dev));
        }
        doc.set("devices", std::move(devices));
    }
    return doc;
}

void write_experiment_report(const std::string& path, const ExperimentConfig& config,
                             const ExperimentResult& result,
                             bool include_measurements) {
    experiment_report(config, result, include_measurements).dump_to_file(path);
}

obs::RunReport pipeline_run_report(const GoldenFreePipeline& pipeline,
                                   const std::string& run_name,
                                   const silicon::DuttDataset* dutts,
                                   const QuarantineSummary* quarantine) {
    obs::RunReport report(run_name);
    const PipelineConfig& config = pipeline.config();

    io::Json cfg = io::Json::object();
    cfg.set("monte_carlo_samples", config.monte_carlo_samples);
    cfg.set("synthetic_samples", config.synthetic_samples);
    cfg.set("kde_alpha", config.kde_alpha);
    cfg.set("kde_bandwidth", config.kde_bandwidth);
    cfg.set("kde_max_lambda", config.kde_max_lambda);
    cfg.set("tail_model",
            config.tail_model == TailModel::kAdaptiveKde ? "adaptive_kde" : "evt_pot");
    cfg.set("log_transform_pcm", config.log_transform_pcm);
    cfg.set("svm_nu", config.svm.nu);
    cfg.set("svm_gamma_scale", config.svm.gamma_scale);
    cfg.set("kmm_weight_bound", config.calibration.kmm.weight_bound);
    cfg.set("obs_sink", obs::sink_kind_name(obs::Registry::global().sink()));
    report.set("config", std::move(cfg));

    io::Json boundaries = io::Json::array();
    for (const Boundary b : kAllBoundaries) {
        if (!pipeline.boundary_ready(b)) continue;
        io::Json entry = io::Json::object();
        entry.set("boundary", boundary_name(b));
        entry.set("dataset", dataset_name(b));
        entry.set("health", boundary_health_name(pipeline.boundary_status(b).health));
        const linalg::Matrix& ds = pipeline.dataset(b);
        entry.set("dataset_rows", ds.rows());
        entry.set("dataset_cols", ds.cols());
        const ml::OneClassSvm& svm = pipeline.boundary_svm(b);
        entry.set("support_vectors", svm.support_vector_count());
        entry.set("effective_gamma", svm.effective_gamma());
        entry.set("smo_iterations", svm.iterations_used());
        if (dutts != nullptr) {
            const ml::DetectionMetrics m = pipeline.evaluate(b, *dutts);
            io::Json metrics = io::Json::object();
            metrics.set("false_positives", m.false_positives);
            metrics.set("false_negatives", m.false_negatives);
            metrics.set("trojan_free_total", m.trojan_free_total);
            metrics.set("trojan_infested_total", m.trojan_infested_total);
            metrics.set("fp_rate", m.false_positive_rate());
            metrics.set("fn_rate", m.false_negative_rate());
            metrics.set("accuracy", m.accuracy());
            entry.set("metrics", std::move(metrics));
        }
        boundaries.push_back(std::move(entry));
    }
    report.set("boundaries", std::move(boundaries));

    if (pipeline.calibration_result()) {
        const auto& calibration = *pipeline.calibration_result();
        io::Json cal = io::Json::object();
        cal.set("shift_iterations", calibration.iterations);
        cal.set("total_shift_norm", calibration.total_shift.norm());
        cal.set("kmm_effective_sample_size",
                ml::effective_sample_size(calibration.weights));
        report.set("calibration", std::move(cal));
    }

    report.set("degradation", pipeline.degradation_report());
    if (quarantine != nullptr) {
        report.set("quarantine", quarantine->to_json());
    }

    // The statistical health section (run_report.v2): refresh the
    // incoming-population probes when the DUTT measurements are available,
    // then serialize everything the stages recorded.
    if (dutts != nullptr && dutts->size() > 0) {
        pipeline.probe_incoming(*dutts);
    }
    report.set("health", pipeline.health().to_json());

    report.capture_observability();
    return report;
}

}  // namespace htd::core
