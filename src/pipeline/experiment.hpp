#pragma once
/// \file experiment.hpp
/// End-to-end experiment driver reproducing the paper's evaluation: build
/// the silicon process and the stale Spice model, fabricate and measure the
/// 40 x 3 DUTT population, run the golden-free pipeline, and score every
/// boundary — i.e. regenerate Table 1 (and the populations behind Fig. 4).

#include <array>
#include <cstdint>

#include "pipeline/pipeline.hpp"
#include "process/variation_model.hpp"
#include "silicon/bench_measure.hpp"
#include "silicon/fab.hpp"
#include "silicon/platform.hpp"

namespace htd::core {

/// Everything needed to run one full experiment.
struct ExperimentConfig {
    /// Master seed; every stochastic stage derives an independent stream.
    std::uint64_t seed = 0xda14'5eedULL;

    /// Fabricated chips (each hosting 3 design versions -> 3x devices).
    std::size_t n_chips = 40;

    /// Platform (key, blocks, Trojan strengths, analog models).
    silicon::PlatformConfig platform = silicon::PlatformConfig::paper_default();

    /// Foundry drift relative to the Spice model, in sigmas along the slow
    /// corner (see ProcessShift::slow_corner). This is the discrepancy that
    /// defeats boundaries B1/B2.
    double process_shift_sigma = 4.5;

    /// Fabrication options (wafer count, within-die mismatch).
    silicon::Fab::Options fab{};

    /// Detection pipeline options.
    PipelineConfig pipeline{};
};

/// Outputs of one full experiment run.
struct ExperimentResult {
    /// Measured DUTT population (fingerprints, PCMs, ground truth).
    silicon::DuttDataset measured;

    /// Table 1: FP/FN of B1..B5 in pipeline order.
    std::array<ml::DetectionMetrics, 5> table1;

    /// The golden-chip baseline of [12] (Fig. 1) on the same population.
    ml::DetectionMetrics golden_baseline;

    /// Copies of the datasets S1..S5 the boundaries were trained on
    /// (S2/S5 may be large; they are kept for the Fig. 4 projections).
    std::array<linalg::Matrix, 5> datasets;

    /// Mean training R^2 of the MARS regression bank (diagnostic).
    double mars_mean_r2 = 0.0;

    /// Kernel-mean-shift iterations used by the calibration stage.
    std::size_t calibration_iterations = 0;
};

/// Run the full experiment. This is the programmatic equivalent of the
/// paper's Section 3 and the engine behind bench_table1 / bench_fig4.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config);

/// Construct the pieces individually (exposed for custom studies):

/// The silicon process = default 350 nm model; the Spice model = the same
/// process shifted *back* by the foundry drift (the foundry moved forward).
struct ProcessPair {
    process::ProcessVariationModel silicon;
    process::ProcessVariationModel spice;
};
[[nodiscard]] ProcessPair make_process_pair(double process_shift_sigma);

/// Fabricate and measure the DUTT population for a config.
[[nodiscard]] silicon::DuttDataset fabricate_and_measure(const ExperimentConfig& config,
                                                         rng::Rng& rng);

}  // namespace htd::core
