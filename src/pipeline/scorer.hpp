#pragma once
/// \file scorer.hpp
/// The score half of the calibrate/score split: classify measured
/// fingerprint batches against a persisted `BoundaryArtifact` with zero
/// retraining. Calibrate once on the trusted workstation, then fan the
/// artifact out to production testers and score millions of devices.
///
/// Contract: for the same artifact and inputs, `classify` and
/// `decision_values` are *bitwise identical* to the in-process
/// `GoldenFreePipeline` they were calibrated from — the SVM state is
/// persisted in the exact representation the decision function consumes,
/// and doubles round-trip exactly through the JSON layer.

#include <optional>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "ml/metrics.hpp"
#include "pipeline/artifact.hpp"
#include "pipeline/explain.hpp"
#include "pipeline/pipeline.hpp"
#include "silicon/bench_measure.hpp"

namespace htd::core {

/// Batch classifier over a loaded calibration artifact. Boundaries that
/// failed calibration or artifact validation stay unavailable (typed
/// BoundaryUnavailableError naming the reason); the survivors score as if
/// the original pipeline were still in memory.
class BoundaryScorer {
public:
    /// Takes ownership of the artifact (load it with BoundaryArtifact::load).
    explicit BoundaryScorer(BoundaryArtifact artifact);

    /// Classify measured fingerprints against one boundary: true = inside
    /// the trusted region (Trojan-free verdict). Throws
    /// BoundaryUnavailableError when the boundary is not usable,
    /// DimensionError on a fingerprint-width mismatch, DataQualityError on
    /// non-finite fingerprints.
    [[nodiscard]] std::vector<bool> classify(Boundary b,
                                             const linalg::Matrix& fingerprints) const;

    /// Decision values (positive = inside) for diagnostics; same error
    /// contract as classify.
    [[nodiscard]] linalg::Vector decision_values(
        Boundary b, const linalg::Matrix& fingerprints) const;

    /// Convenience: classify + score a measured DUTT population.
    [[nodiscard]] ml::DetectionMetrics evaluate(Boundary b,
                                                const silicon::DuttDataset& dutts) const;

    /// The boundary a production verdict comes from: the highest boundary
    /// (B5 down to B1) that survived calibration and loading; nullopt when
    /// none did.
    [[nodiscard]] std::optional<Boundary> verdict_boundary() const noexcept;

    /// Full htd.explain.v1 attribution for one chip (explain.hpp): per-
    /// boundary decision + margin, leave-one-channel-out contribution
    /// ranking with z-scores, k nearest calibration neighbours, and the S2/
    /// S5 KDE tail mass. Deterministic at fixed seed and bitwise-identical
    /// between an in-process artifact and its save/load round trip. Throws
    /// DimensionError / DataQualityError like classify.
    [[nodiscard]] ExplainRecord explain(const linalg::Vector& fingerprint,
                                        std::string chip,
                                        const ExplainOptions& opts = {}) const;

    /// True when the boundary survived calibration and loading.
    [[nodiscard]] bool boundary_ready(Boundary b) const noexcept {
        return artifact_.boundary_ready(b);
    }

    [[nodiscard]] const BoundaryStatus& boundary_status(Boundary b) const noexcept {
        return artifact_.boundary_status(b);
    }

    [[nodiscard]] const BoundaryArtifact& artifact() const noexcept {
        return artifact_;
    }

private:
    [[nodiscard]] const ml::OneClassSvm& svm_for(Boundary b) const;

    BoundaryArtifact artifact_;
};

}  // namespace htd::core
