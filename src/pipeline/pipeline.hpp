#pragma once
/// \file pipeline.hpp
/// The paper's contribution: learning a trusted side-channel region without
/// golden chips. The pipeline has three stages (Section 2):
///
/// 1. *Pre-manufacturing* — Monte Carlo "Spice" simulation of n golden
///    devices gives PCM vectors and fingerprints. A bank of MARS regressions
///    g_j : m_p -> m_j is trained, the raw simulated fingerprints form S1
///    (boundary B1), and adaptive-KDE tail enhancement of S1 forms S2
///    (boundary B2).
/// 2. *Silicon measurement* — PCMs measured on the DUTTs are pushed through
///    g to predict golden fingerprints S3 (boundary B3); kernel-mean-shift
///    calibration of the simulated PCMs onto the measured ones, followed by
///    g, yields S4 (boundary B4); KDE enhancement of S4 yields S5 (B5).
/// 3. *Trojan test* — each boundary is a 1-class SVM; a DUTT whose measured
///    fingerprint falls inside is declared Trojan-free.

#include <array>
#include <limits>
#include <optional>
#include <string>

#include "core/errors.hpp"
#include "io/json.hpp"
#include "linalg/matrix.hpp"
#include "ml/kmm.hpp"
#include "ml/mars.hpp"
#include "ml/metrics.hpp"
#include "ml/one_class_svm.hpp"
#include "obs/health.hpp"
#include "obs/obs.hpp"
#include "rng/rng.hpp"
#include "silicon/bench_measure.hpp"
#include "stats/evt.hpp"
#include "stats/kde.hpp"

namespace htd::core {

/// The five trusted-region constructions of the paper.
enum class Boundary {
    kB1,  ///< raw Monte Carlo fingerprints (S1)
    kB2,  ///< KDE tail-enhanced Monte Carlo fingerprints (S2)
    kB3,  ///< fingerprints predicted from measured DUTT PCMs (S3)
    kB4,  ///< fingerprints predicted from KMM-calibrated simulated PCMs (S4)
    kB5,  ///< KDE tail-enhanced version of S4 (S5)
};

/// All boundaries in pipeline order.
inline constexpr std::array<Boundary, 5> kAllBoundaries = {
    Boundary::kB1, Boundary::kB2, Boundary::kB3, Boundary::kB4, Boundary::kB5};

/// "B1".."B5".
[[nodiscard]] std::string boundary_name(Boundary b);

/// "S1".."S5" — the dataset each boundary is trained on.
[[nodiscard]] std::string dataset_name(Boundary b);

/// Health of one trained boundary. The pipeline degrades gracefully: a
/// boundary whose training fails or whose inputs collapse is marked here
/// instead of poisoning the others, and classify/evaluate keep working on
/// every boundary that stays kHealthy or kDegraded.
enum class BoundaryHealth {
    kUntrained,  ///< its stage has not run (or ran before this boundary)
    kHealthy,    ///< trained as designed
    kDegraded,   ///< trained on fallback data (e.g. B4 on S3 after a KMM collapse)
    kFailed,     ///< training threw; the boundary is unavailable
};

/// "untrained" / "healthy" / "degraded" / "failed".
[[nodiscard]] std::string boundary_health_name(BoundaryHealth health);

/// Health plus the human-readable reason for a degradation or failure.
struct BoundaryStatus {
    BoundaryHealth health = BoundaryHealth::kUntrained;
    std::string detail;

    [[nodiscard]] bool usable() const noexcept {
        return health == BoundaryHealth::kHealthy ||
               health == BoundaryHealth::kDegraded;
    }
};

/// Which tail-modeling technique builds the synthetic populations S2/S5.
enum class TailModel {
    kAdaptiveKde,  ///< the paper's adaptive Epanechnikov KDE (Section 2.5)
    kEvtPot,       ///< EVT alternative: per-axis GPD peaks-over-threshold
};

/// Tuning knobs of the detection pipeline.
struct PipelineConfig {
    /// Monte Carlo golden devices n (the paper uses 100).
    std::size_t monte_carlo_samples = 100;

    /// Tail-enhanced synthetic population size M' (the paper uses 1e5).
    std::size_t synthetic_samples = 100000;

    /// Adaptive-KDE locality parameter alpha, bandwidth (0 = Silverman),
    /// and clamp on the local bandwidth factors of Eq. (8).
    double kde_alpha = 0.5;
    double kde_bandwidth = 0.5;
    double kde_max_lambda = 2.5;
    stats::KernelType kde_kernel = stats::KernelType::kEpanechnikov;

    /// Tail-modeling technique for S2/S5 (KDE is the paper's choice; the
    /// EVT alternative is compared in bench_ablation_kde).
    TailModel tail_model = TailModel::kAdaptiveKde;

    /// Tail fraction per side for the EVT enhancer.
    double evt_tail_fraction = 0.15;

    /// Regress fingerprints against log(PCM) instead of raw PCM values.
    /// Transmit power in dB is log-linear in the drive parameters, and so is
    /// log(delay), so the log transform makes the PCM->fingerprint relation
    /// near-linear and keeps the MARS extrapolation to the (shifted) silicon
    /// operating point well behaved. Requires strictly positive PCMs.
    bool log_transform_pcm = true;

    /// MARS regression options for the PCM -> fingerprint bank. The term
    /// budget is kept small so the six per-fingerprint models extrapolate
    /// consistently to the (shifted) silicon operating point.
    ml::Mars::Options mars{.max_terms = 7, .max_knots_per_variable = 7};

    /// 1-class SVM options shared by every boundary.
    ml::OneClassSvm::Options svm{.nu = 0.08, .gamma_scale = 1.0};

    /// KMM / kernel-mean-shift calibration options. The weight bound is kept
    /// small so the importance-resampled PCM population m''_p keeps a healthy
    /// effective sample size instead of collapsing onto a handful of
    /// training points.
    ml::KernelMeanShiftCalibrator::Options calibration{
        .kmm = {.weight_bound = 5.0, .gamma = 8.0}};

    /// Kish effective-sample-size floor for the KMM calibration weights.
    /// Below it the calibration has collapsed onto a handful of Monte Carlo
    /// points and boundary B4 would train on effectively no data.
    double kmm_min_effective_sample_size = 4.0;

    /// On a KMM collapse, train B4/B5 on S3 (the fingerprints predicted
    /// from the measured PCMs) instead of throwing CalibrationCollapseError.
    /// The fallback is recorded in the boundary status and observability.
    bool kmm_fallback_to_b3 = true;

    /// Observability sink selection, applied to the global obs registry when
    /// the pipeline is constructed. The default (kInherit) leaves whatever
    /// the process / HTD_OBS environment variable configured.
    obs::Config obs{};

    /// Thresholds behind the statistical health probes recorded by every
    /// stage (KMM weight diagnostics, PCM drift, KDE tail mass, MARS fit,
    /// SVM margins). Defaults keep the paper-default clean path all-healthy.
    obs::HealthThresholds health{};
};

/// The golden chip-free detection pipeline.
class GoldenFreePipeline {
public:
    /// `simulator` wraps the trusted (but possibly stale) process model and
    /// the platform's circuit models. Throws ConfigError on a degenerate
    /// configuration.
    GoldenFreePipeline(PipelineConfig config, silicon::SpiceSimulator simulator);

    /// Stage 1. Runs the Monte Carlo, fits the MARS bank, and trains B1/B2.
    /// Must be called before any other stage. A per-boundary training
    /// failure marks that boundary kFailed instead of aborting the stage.
    void run_premanufacturing(rng::Rng& rng);

    /// Stage 2. Consumes the PCM measurements of the DUTTs (rows = devices)
    /// and trains B3/B4/B5. Throws StageOrderError when stage 1 has not
    /// run, DimensionError on a PCM dimension mismatch, DataQualityError on
    /// empty or non-finite input. A collapsed KMM calibration either falls
    /// back to training B4/B5 on S3 (kmm_fallback_to_b3, boundary marked
    /// kDegraded) or throws CalibrationCollapseError — in which case B3
    /// stays usable. Other per-boundary failures mark that boundary kFailed
    /// and the rest keep working.
    void run_silicon_stage(const linalg::Matrix& dutt_pcms, rng::Rng& rng);

    /// Stage 3. Classify measured fingerprints against one boundary:
    /// true = inside the trusted region (Trojan-free verdict). Throws
    /// BoundaryUnavailableError when the boundary is not usable,
    /// DimensionError on a fingerprint-width mismatch, and
    /// DataQualityError on non-finite fingerprints.
    [[nodiscard]] std::vector<bool> classify(Boundary b,
                                             const linalg::Matrix& fingerprints) const;

    /// Decision values (positive = inside) for diagnostics.
    [[nodiscard]] linalg::Vector decision_values(
        Boundary b, const linalg::Matrix& fingerprints) const;

    /// Convenience: classify + score a measured DUTT population.
    [[nodiscard]] ml::DetectionMetrics evaluate(Boundary b,
                                                const silicon::DuttDataset& dutts) const;

    /// The training dataset Sk behind a boundary (throws
    /// BoundaryUnavailableError if not built yet).
    [[nodiscard]] const linalg::Matrix& dataset(Boundary b) const;

    /// The fitted regression bank g (throws StageOrderError if stage 1 has
    /// not run).
    [[nodiscard]] const ml::MarsBank& regressions() const;

    /// The simulated golden PCM matrix from stage 1.
    [[nodiscard]] const linalg::Matrix& simulated_pcms() const;

    /// Calibration diagnostics from stage 2 (empty before it runs).
    [[nodiscard]] const std::optional<ml::KernelMeanShiftCalibrator::Result>&
    calibration_result() const noexcept {
        return calibration_;
    }

    [[nodiscard]] const PipelineConfig& config() const noexcept { return config_; }

    /// True once the given boundary has been trained and is usable
    /// (healthy or degraded).
    [[nodiscard]] bool boundary_ready(Boundary b) const noexcept;

    /// Health + detail of one boundary (degradation / failure reasons).
    [[nodiscard]] const BoundaryStatus& boundary_status(Boundary b) const noexcept {
        return status_[static_cast<std::size_t>(b)];
    }

    /// True when stage 2 trained B4/B5 on S3 after a KMM collapse.
    [[nodiscard]] bool kmm_fallback_applied() const noexcept {
        return kmm_fallback_applied_;
    }

    /// Kish effective sample size of the final KMM weights (NaN before
    /// stage 2 ran).
    [[nodiscard]] double kmm_effective_sample_size() const noexcept {
        return kmm_ess_;
    }

    /// JSON array of per-boundary {boundary, health, detail} records — the
    /// degradation section of a RunReport.
    [[nodiscard]] io::Json degradation_report() const;

    /// Statistical health probes recorded so far (cleared when stage 1
    /// re-runs; stage re-runs replace same-name probes). Serialized as the
    /// "health" section of a run_report.v2 by core::pipeline_run_report.
    [[nodiscard]] const obs::HealthMonitor& health() const noexcept {
        return health_;
    }

    /// Record the incoming-population probes for a measured DUTT batch:
    /// per-device |fingerprint - g(pcm)| residuals against the training
    /// residual distribution (the model-staleness signal). Throws
    /// StageOrderError before stage 1 ran, DimensionError on a PCM /
    /// fingerprint width mismatch.
    void probe_incoming(const silicon::DuttDataset& dutts) const;

    /// The trained 1-class SVM behind a boundary (throws
    /// BoundaryUnavailableError when it is not usable). Exposed for
    /// diagnostics and the observability RunReport (support-vector counts,
    /// effective gamma).
    [[nodiscard]] const ml::OneClassSvm& boundary_svm(Boundary b) const {
        return svm_for(b);
    }

    /// The adaptive-KDE estimator that generated a boundary's synthetic
    /// population. Engaged only for B2/B5 under the kAdaptiveKde tail model;
    /// empty otherwise (EVT tail model, stage not run, boundary failed).
    /// Persisted in the boundary artifact so a calibration can be audited
    /// and its synthetic populations regenerated without re-simulation.
    [[nodiscard]] const std::optional<stats::AdaptiveKde>& kde_estimator(
        Boundary b) const noexcept {
        return kdes_[static_cast<std::size_t>(b)];
    }

private:
    /// Build one boundary's dataset + SVM; a thrown std::exception marks
    /// the boundary kFailed (detail = what()) instead of propagating.
    template <typename BuildDataset>
    void build_boundary(Boundary b, BuildDataset&& build);
    [[nodiscard]] const ml::OneClassSvm& svm_for(Boundary b) const;
    [[nodiscard]] linalg::Matrix transform_pcms(const linalg::Matrix& pcms) const;
    [[nodiscard]] ml::OneClassSvm train_boundary(const linalg::Matrix& dataset) const;
    /// Build the synthetic tail-enhanced population for boundary `b` from
    /// `source`, record a `<probe_name>` health probe over it, and (under
    /// the adaptive-KDE tail model) retain the fitted estimator in `kdes_`
    /// for artifact export.
    [[nodiscard]] linalg::Matrix kde_enhance(Boundary b,
                                             const linalg::Matrix& source,
                                             rng::Rng& rng,
                                             std::string_view probe_name);
    /// Record the `svm.<boundary>` margin probe for a freshly trained
    /// boundary (decision values over a strided sample of its dataset).
    void record_svm_probe(Boundary b) const;
    /// Record the `boundaries` probe summarizing the BoundaryStatus array
    /// (any failed boundary -> CRITICAL, any degraded -> DEGRADED).
    void record_boundary_probe() const;

    PipelineConfig config_;
    silicon::SpiceSimulator simulator_;

    bool premanufacturing_done_ = false;
    bool silicon_done_ = false;
    /// Completed stage runs, so the journal can distinguish a first
    /// `calibration` from a `recalibration` (a stage re-run on new data).
    std::size_t premanufacturing_runs_ = 0;
    std::size_t silicon_runs_ = 0;

    linalg::Matrix mc_pcms_;
    std::array<linalg::Matrix, 5> datasets_;
    std::array<ml::OneClassSvm, 5> boundaries_;
    /// Fitted tail estimators (B2/B5 only under kAdaptiveKde).
    std::array<std::optional<stats::AdaptiveKde>, 5> kdes_;
    std::array<BoundaryStatus, 5> status_{};
    ml::MarsBank regressions_;
    std::optional<ml::KernelMeanShiftCalibrator::Result> calibration_;
    bool kmm_fallback_applied_ = false;
    double kmm_ess_ = std::numeric_limits<double>::quiet_NaN();

    /// Per-run statistical health probes. Mutable: const observers
    /// (probe_incoming, record_svm_probe) record diagnostics without
    /// changing the detection state.
    mutable obs::HealthMonitor health_;
    /// |fingerprint - g(pcm)| on the Monte Carlo training set — the
    /// reference distribution for the incoming residual probe.
    linalg::Matrix train_abs_residuals_;
};

/// The conventional golden-chip detector of Fig. 1 / [12]: a 1-class SVM
/// trained directly on measured fingerprints of trusted devices. Used as
/// the reference the golden-free pipeline is compared against.
class GoldenChipBaseline {
public:
    explicit GoldenChipBaseline(ml::OneClassSvm::Options svm_opts = {});

    /// Train on measured fingerprints of known Trojan-free devices.
    void fit(const linalg::Matrix& golden_fingerprints);

    /// True = inside the trusted region.
    [[nodiscard]] std::vector<bool> classify(const linalg::Matrix& fingerprints) const;

    /// Classify + score a measured population.
    [[nodiscard]] ml::DetectionMetrics evaluate(const silicon::DuttDataset& dutts) const;

    [[nodiscard]] const ml::OneClassSvm& svm() const noexcept { return svm_; }

private:
    ml::OneClassSvm svm_;
};

}  // namespace htd::core
