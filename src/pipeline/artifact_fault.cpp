#include "pipeline/artifact_fault.hpp"

#include <fstream>
#include <iterator>
#include <stdexcept>
#include <utility>
#include <vector>

#include "io/json.hpp"
#include "pipeline/artifact.hpp"

namespace htd::core {

std::string artifact_fault_name(ArtifactFault fault) {
    switch (fault) {
        case ArtifactFault::kTruncate: return "truncate";
        case ArtifactFault::kBitFlip: return "bit_flip";
        case ArtifactFault::kSectionSwap: return "section_swap";
        case ArtifactFault::kStaleVersion: return "stale_version";
    }
    throw std::invalid_argument("artifact_fault_name: unknown fault");
}

std::string ArtifactFaultInjector::corrupt(std::string& text, ArtifactFault fault) {
    if (text.size() < 2) {
        throw std::invalid_argument(
            "ArtifactFaultInjector: input too small to corrupt");
    }
    switch (fault) {
        case ArtifactFault::kTruncate: {
            // Keep a strict prefix (at most size-2 bytes): a JSON object
            // document never parses without its closing brace, so every
            // truncation is guaranteed to be a loud kParse rejection.
            const std::size_t keep = rng_.uniform_index(text.size() - 1);
            const std::size_t original = text.size();
            text.resize(keep);
            ++stats_.truncations;
            return "truncate: " + std::to_string(original) + " -> " +
                   std::to_string(keep) + " bytes";
        }
        case ArtifactFault::kBitFlip: {
            const std::size_t byte = rng_.uniform_index(text.size());
            const std::size_t bit = rng_.uniform_index(8);
            text[byte] = static_cast<char>(static_cast<unsigned char>(text[byte]) ^
                                           (1U << bit));
            ++stats_.bit_flips;
            return "bit_flip: byte " + std::to_string(byte) + " bit " +
                   std::to_string(bit);
        }
        case ArtifactFault::kSectionSwap: {
            io::Json doc = io::Json::parse(text);
            if (!doc.is_object() || !doc.contains("sections") ||
                !doc.at("sections").is_object() ||
                doc.at("sections").size() < 2) {
                throw std::invalid_argument(
                    "ArtifactFaultInjector: section swap needs an envelope "
                    "with >= 2 sections");
            }
            std::vector<std::string> names;
            for (const auto& [name, entry] : doc.at("sections").members()) {
                names.push_back(name);
            }
            const std::size_t a = rng_.uniform_index(names.size());
            std::size_t b = rng_.uniform_index(names.size() - 1);
            if (b >= a) ++b;
            io::Json sections = io::Json::object();
            for (const auto& [name, entry] : doc.at("sections").members()) {
                if (name == names[a]) {
                    sections.set(name, doc.at("sections").at(names[b]));
                } else if (name == names[b]) {
                    sections.set(name, doc.at("sections").at(names[a]));
                } else {
                    sections.set(name, entry);
                }
            }
            io::Json out = io::Json::object();
            for (const auto& [key, value] : doc.members()) {
                out.set(key, key == "sections" ? std::move(sections) : value);
            }
            text = out.dump(2) + "\n";
            ++stats_.section_swaps;
            return "section_swap: " + names[a] + " <-> " + names[b];
        }
        case ArtifactFault::kStaleVersion: {
            io::Json doc = io::Json::parse(text);
            if (!doc.is_object() || !doc.contains("version") ||
                !doc.at("version").is_number()) {
                throw std::invalid_argument(
                    "ArtifactFaultInjector: stale version needs an envelope "
                    "with a version member");
            }
            const double old_version = doc.at("version").number();
            io::Json out = io::Json::object();
            for (const auto& [key, value] : doc.members()) {
                out.set(key, key == "version" ? io::Json(old_version + 1.0) : value);
            }
            text = out.dump(2) + "\n";
            ++stats_.stale_versions;
            return "stale_version: " + std::to_string(old_version) + " -> " +
                   std::to_string(old_version + 1.0);
        }
    }
    throw std::invalid_argument("ArtifactFaultInjector: unknown fault mode");
}

std::string ArtifactFaultInjector::corrupt_file(const std::string& path,
                                                ArtifactFault fault) {
    std::string text;
    {
        std::ifstream in(path, std::ios::binary);
        if (!in.is_open()) {
            throw std::runtime_error("ArtifactFaultInjector: cannot open " + path);
        }
        text.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
        if (in.bad()) {
            throw std::runtime_error("ArtifactFaultInjector: cannot read " + path);
        }
    }
    std::string description = corrupt(text, fault);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
        throw std::runtime_error("ArtifactFaultInjector: cannot rewrite " + path);
    }
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out.close();
    if (!out) {
        throw std::runtime_error("ArtifactFaultInjector: short write to " + path);
    }
    return description;
}

}  // namespace htd::core
