#pragma once
/// \file report.hpp
/// Machine-readable experiment report: serializes an ExperimentResult (and
/// the configuration that produced it) to JSON for archiving, regression
/// tracking or external plotting. Used by the audit example.

#include <string>

#include "pipeline/experiment.hpp"
#include "pipeline/ingest.hpp"
#include "io/json.hpp"
#include "obs/run_report.hpp"

namespace htd::core {

/// Build the JSON document for one experiment run. Includes the per-boundary
/// Table-1 metrics, the golden-chip baseline, diagnostics, the key
/// configuration knobs, and (optionally) the measured per-device data.
[[nodiscard]] io::Json experiment_report(const ExperimentConfig& config,
                                         const ExperimentResult& result,
                                         bool include_measurements = false);

/// Convenience: build and write the report; throws std::runtime_error on IO
/// failure.
void write_experiment_report(const std::string& path, const ExperimentConfig& config,
                             const ExperimentResult& result,
                             bool include_measurements = false);

/// Structured record of one pipeline execution for the obs subsystem: the
/// pipeline configuration, every trained boundary (dataset name/size,
/// support-vector count, effective RBF gamma, SMO iterations), calibration
/// diagnostics (kernel-mean-shift iterations, KMM effective sample size),
/// and — when `dutts` is non-null — per-boundary detection metrics on that
/// population. Every boundary row carries its health, a "degradation"
/// section records per-boundary status plus the KMM fallback, and — when
/// `quarantine` is non-null — the MeasurementValidator's QuarantineSummary
/// is embedded as the "quarantine" section. Finishes by capturing the
/// global registry's spans + metrics as the report's "observability"
/// section, so call it after the stages of interest have run.
[[nodiscard]] obs::RunReport pipeline_run_report(
    const GoldenFreePipeline& pipeline, const std::string& run_name,
    const silicon::DuttDataset* dutts = nullptr,
    const QuarantineSummary* quarantine = nullptr);

}  // namespace htd::core
