#pragma once
/// \file explain.hpp
/// Per-chip verdict attribution (schema `htd.explain.v1`): *why* did a chip
/// land inside or outside each boundary? For one fingerprint the record
/// carries, per usable boundary:
///
///  - the decision value and its margin to the zero threshold (positive =
///    inside the trusted region, i.e. Trojan-free);
///  - a per-channel contribution ranking: leave-one-channel-out decision
///    deltas (replace channel c with the training mean and re-evaluate —
///    the delta is what that channel's reading contributed to the verdict)
///    plus the chip's standardized coordinates against the KMM-weighted
///    calibration cloud (the SVM's whitening transform `z = W (x - mean)`
///    is fit on exactly that cloud, so `z` reads as per-channel z-scores);
///  - the k nearest calibration neighbours (support vectors, preprocessed
///    space) with distances and SMO weights;
///
/// plus the KDE tail mass of the fingerprint under the persisted S2/S5
/// adaptive estimators: the density at the chip and the fraction of
/// calibration observations whose own density is at most the chip's (a
/// density-percentile — 0 means "deeper in the tail than every calibration
/// sample").
///
/// Everything is computed from the artifact's persisted state — the same
/// representation `htd.boundary.v1` round-trips bitwise — so a record is
/// identical whether the scorer was built in-process via
/// `BoundaryArtifact::from_pipeline` or from a saved/loaded artifact, and
/// deterministic at a fixed seed. `BoundaryScorer::explain` (scorer.hpp)
/// produces records; `tools/htd_explain` renders them.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "io/json.hpp"
#include "pipeline/pipeline.hpp"

namespace htd::core {

/// Schema tag stamped on every explain record.
inline constexpr std::string_view kExplainSchema = "htd.explain.v1";

/// One channel's contribution to a boundary decision.
struct ChannelAttribution {
    std::size_t channel = 0;
    /// Standardized coordinate of the chip against the calibration cloud.
    double z = 0.0;
    /// decision(x) - decision(x with this channel at the training mean):
    /// positive = the channel's actual reading pushed the chip inward.
    double loco_delta = 0.0;
};

/// One of the k nearest calibration neighbours (a support vector).
struct NeighborRef {
    std::size_t index = 0;  ///< support-vector row in the boundary model
    double distance = 0.0;  ///< Euclidean distance, preprocessed space
    double alpha = 0.0;     ///< SMO weight of the neighbour
};

/// Attribution for one boundary. Unusable boundaries keep `usable = false`
/// and carry only their health/detail, so a degraded artifact still
/// explains what it can.
struct BoundaryExplanation {
    Boundary boundary = Boundary::kB1;
    std::string health;
    std::string detail;
    bool usable = false;
    double decision = 0.0;
    double margin = 0.0;  ///< distance to the zero threshold (== decision)
    bool inside = false;
    std::vector<ChannelAttribution> channels;  ///< ranked by |loco_delta|
    std::vector<NeighborRef> neighbors;        ///< nearest first
};

/// KDE tail mass under one persisted estimator (S2 or S5).
struct KdeTailMass {
    bool present = false;    ///< estimator available in the artifact
    double density = 0.0;    ///< adaptive density at the chip's fingerprint
    /// Fraction of calibration observations with density <= the chip's;
    /// 0 = deeper in the tail than every calibration sample.
    double tail_percentile = 0.0;
};

/// The full htd.explain.v1 record for one chip.
struct ExplainRecord {
    std::string chip;
    bool flagged = false;          ///< verdict-boundary decision < 0
    std::string verdict_boundary;  ///< best usable boundary, "" when none
    std::vector<BoundaryExplanation> boundaries;  ///< B1..B5 order
    KdeTailMass kde_s2;
    KdeTailMass kde_s5;

    [[nodiscard]] io::Json to_json() const;
};

/// Rendering/size knobs for `BoundaryScorer::explain`.
struct ExplainOptions {
    /// Channels kept per boundary after ranking (0 = all).
    std::size_t top_channels = 0;
    /// Nearest calibration neighbours reported per boundary.
    std::size_t neighbors = 3;
};

}  // namespace htd::core
