#pragma once
/// \file artifact_fault.hpp
/// Seeded corruption of persisted boundary artifacts — the storage-layer
/// sibling of `silicon::FaultyBench`. Where FaultyBench proves the pipeline
/// survives a flaky measurement bench, this injector proves the scorer
/// survives a flaky disk: every fault it can produce must end in a typed
/// rejection or a per-boundary degradation, never a silently wrong score
/// (tests/test_artifact.cpp sweeps the full matrix).

#include <cstdint>
#include <string>

#include "rng/rng.hpp"

namespace htd::core {

/// The corruption modes the storage layer must survive.
enum class ArtifactFault {
    kTruncate,      ///< crash mid-write: keep only a prefix of the file
    kBitFlip,       ///< media decay: flip one random bit
    kSectionSwap,   ///< confused tooling: exchange two section entries
    kStaleVersion,  ///< version skew: bump the envelope schema version
};

/// "truncate" / "bit_flip" / "section_swap" / "stale_version".
[[nodiscard]] std::string artifact_fault_name(ArtifactFault fault);

/// How many faults of each mode an injector has produced.
struct ArtifactFaultStats {
    std::size_t truncations = 0;
    std::size_t bit_flips = 0;
    std::size_t section_swaps = 0;
    std::size_t stale_versions = 0;

    [[nodiscard]] std::size_t total() const noexcept {
        return truncations + bit_flips + section_swaps + stale_versions;
    }
};

/// Deterministic artifact corruptor. All randomness (truncation point, bit
/// position, section choice) comes from the seeded stream, so a failing
/// fault-sweep case replays exactly from its seed.
class ArtifactFaultInjector {
public:
    explicit ArtifactFaultInjector(std::uint64_t seed) : rng_(seed) {}

    /// Corrupt `text` in place. Throws std::invalid_argument when the input
    /// is too small to corrupt (< 2 bytes) or, for the structured modes
    /// (section swap / stale version), when it is not a parseable artifact
    /// envelope. Returns a human-readable description of what was done.
    [[nodiscard]] std::string corrupt(std::string& text, ArtifactFault fault);

    /// Read a file, corrupt its contents, write it back in place (a plain,
    /// deliberately non-atomic write — this *simulates* the torn files the
    /// atomic save path prevents). Returns the corruption description;
    /// throws std::runtime_error on IO failure.
    [[nodiscard]] std::string corrupt_file(const std::string& path,
                                           ArtifactFault fault);

    [[nodiscard]] const ArtifactFaultStats& stats() const noexcept { return stats_; }

private:
    rng::Rng rng_;
    ArtifactFaultStats stats_;
};

}  // namespace htd::core
