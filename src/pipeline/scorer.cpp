#include "pipeline/scorer.hpp"

#include <cmath>
#include <string>
#include <utility>

#include "obs/journal.hpp"
#include "obs/obs.hpp"
#include "obs/span.hpp"

namespace htd::core {

namespace {

std::size_t index_of(Boundary b) { return static_cast<std::size_t>(b); }

void require_finite(const linalg::Matrix& m, const char* context) {
    for (std::size_t r = 0; r < m.rows(); ++r) {
        for (std::size_t c = 0; c < m.cols(); ++c) {
            if (!std::isfinite(m(r, c))) {
                throw DataQualityError(std::string(context) +
                                       ": non-finite value at row " +
                                       std::to_string(r) + ", column " +
                                       std::to_string(c));
            }
        }
    }
}

}  // namespace

BoundaryScorer::BoundaryScorer(BoundaryArtifact artifact)
    : artifact_(std::move(artifact)) {}

const ml::OneClassSvm& BoundaryScorer::svm_for(Boundary b) const {
    const BoundaryStatus& st = artifact_.boundary_status(b);
    if (!st.usable() || !artifact_.svm(b).has_value()) {
        std::string msg = "BoundaryScorer: boundary " + boundary_name(b);
        if (st.health == BoundaryHealth::kFailed) {
            msg += " failed: " + st.detail;
        } else {
            msg += " is not present in the artifact";
        }
        throw BoundaryUnavailableError(msg);
    }
    return *artifact_.svm(b);
}

std::vector<bool> BoundaryScorer::classify(Boundary b,
                                           const linalg::Matrix& fingerprints) const {
    const ml::OneClassSvm& svm = svm_for(b);
    if (fingerprints.cols() != artifact_.fingerprint_dim(b)) {
        throw DimensionError("classify: fingerprint dimension mismatch (got " +
                             std::to_string(fingerprints.cols()) +
                             " columns, boundary " + boundary_name(b) +
                             " was calibrated on " +
                             std::to_string(artifact_.fingerprint_dim(b)) + ")");
    }
    require_finite(fingerprints, "classify: fingerprints");
    obs::ScopedSpan span("score.classify");
    span.attr("boundary", static_cast<double>(index_of(b)) + 1.0);  // 1 = B1
    span.attr("devices", static_cast<double>(fingerprints.rows()));
    std::vector<bool> inside(fingerprints.rows());
    std::size_t accepted = 0;
    obs::EventJournal& journal = obs::EventJournal::global();
    const bool forensics = journal.enabled();
    for (std::size_t r = 0; r < fingerprints.rows(); ++r) {
        if (forensics) {
            // contains() is decision_value >= 0, so journaling the decision
            // costs one evaluation, not two, and verdicts stay bitwise
            // identical to the silent path.
            const double decision = svm.decision_value(fingerprints.row(r));
            inside[r] = decision >= 0.0;
            obs::Event ev("chip_scored");
            ev.chip = std::to_string(r);
            ev.boundary = boundary_name(b);
            ev.value("decision", decision)
                .value("inside", inside[r] ? 1.0 : 0.0);
            journal.append(std::move(ev));
        } else {
            inside[r] = svm.contains(fingerprints.row(r));
        }
        accepted += inside[r] ? 1 : 0;
    }
    span.attr("accepted", static_cast<double>(accepted));
    obs::Registry::global().work_add("work.score.devices",
                                     static_cast<double>(fingerprints.rows()));
    return inside;
}

linalg::Vector BoundaryScorer::decision_values(
    Boundary b, const linalg::Matrix& fingerprints) const {
    const ml::OneClassSvm& svm = svm_for(b);
    if (fingerprints.cols() != artifact_.fingerprint_dim(b)) {
        throw DimensionError(
            "decision_values: fingerprint dimension mismatch (got " +
            std::to_string(fingerprints.cols()) + " columns, boundary " +
            boundary_name(b) + " was calibrated on " +
            std::to_string(artifact_.fingerprint_dim(b)) + ")");
    }
    require_finite(fingerprints, "decision_values: fingerprints");
    return svm.decision_values(fingerprints);
}

ml::DetectionMetrics BoundaryScorer::evaluate(
    Boundary b, const silicon::DuttDataset& dutts) const {
    const std::vector<bool> inside = classify(b, dutts.fingerprints);
    const std::vector<ml::DeviceLabel> labels = dutts.labels();
    return ml::evaluate_detection(inside, labels);
}

}  // namespace htd::core
