#include "pipeline/ingest.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/journal.hpp"
#include "obs/obs.hpp"
#include "obs/span.hpp"
#include "stats/descriptive.hpp"

namespace htd::core {

namespace {

/// MAD-based robust sigma with a floor so an (almost) constant column does
/// not flag float-noise deviations as outliers.
double robust_sigma(double mad, double median) {
    return std::max(1.4826 * mad, 1e-12 + 1e-9 * std::abs(median));
}

}  // namespace

void IngestPolicy::validate() const {
    if (!(pcm_range.lo <= pcm_range.hi) ||
        !(fingerprint_range.lo <= fingerprint_range.hi)) {
        throw ConfigError("IngestPolicy: physical range lo must be <= hi");
    }
    if (!(robust_z_threshold > 0.0) || !(device_rms_z_threshold > 0.0)) {
        throw ConfigError("IngestPolicy: outlier thresholds must be positive");
    }
    if (!(max_imputed_fraction >= 0.0 && max_imputed_fraction <= 1.0)) {
        throw ConfigError("IngestPolicy: max_imputed_fraction must be in [0, 1]");
    }
    if (min_devices == 0) {
        throw ConfigError("IngestPolicy: min_devices must be >= 1");
    }
}

std::string cell_fault_name(CellFault fault) {
    switch (fault) {
        case CellFault::kNonFinite: return "non_finite";
        case CellFault::kOutOfRange: return "out_of_range";
        case CellFault::kOutlier: return "outlier";
    }
    return "unknown";
}

std::size_t ScreenResult::flagged_rows() const noexcept {
    std::size_t n = 0;
    for (std::size_t r = 0; r < row_flagged.size(); ++r) {
        n += (row_flagged[r] != 0 || row_rejected[r] != 0) ? 1 : 0;
    }
    return n;
}

io::Json QuarantineSummary::to_json() const {
    io::Json out = io::Json::object();
    out.set("devices_total", devices_total);
    out.set("devices_kept", devices_kept);
    out.set("devices_dropped", devices_dropped);
    out.set("devices_retried", devices_retried);
    out.set("retries_used", retries_used);
    out.set("channels_imputed", channels_imputed);
    out.set("nonfinite_cells", nonfinite_cells);
    out.set("range_violation_cells", range_violation_cells);
    out.set("outlier_cells", outlier_cells);
    return out;
}

MeasurementValidator::MeasurementValidator(IngestPolicy policy) : policy_(policy) {
    policy_.validate();
}

ScreenResult MeasurementValidator::screen(const linalg::Matrix& data,
                                          const PhysicalRange& range) const {
    ScreenResult res;
    res.row_flagged.assign(data.rows(), 0);
    res.row_rejected.assign(data.rows(), 0);
    if (data.rows() == 0 || data.cols() == 0) return res;

    const std::size_t rows = data.rows();
    const std::size_t cols = data.cols();

    // Per-column median / MAD over the cells that pass the hard checks.
    std::vector<double> med(cols, 0.0);
    std::vector<double> sigma(cols, -1.0);  // <= 0 disables the z cut
    std::vector<double> buf;
    buf.reserve(rows);
    for (std::size_t c = 0; c < cols; ++c) {
        buf.clear();
        for (std::size_t r = 0; r < rows; ++r) {
            const double v = data(r, c);
            if (std::isfinite(v) && range.contains(v)) buf.push_back(v);
        }
        if (buf.empty()) continue;
        med[c] = stats::median(buf);
        for (double& x : buf) x = std::abs(x - med[c]);
        sigma[c] = robust_sigma(stats::median(buf), med[c]);
    }

    for (std::size_t r = 0; r < rows; ++r) {
        const auto flag = [&](std::size_t c, CellFault fault, double value) {
            res.issues.push_back({r, c, fault, value});
            res.row_flagged[r] = 1;
            switch (fault) {
                case CellFault::kNonFinite: ++res.nonfinite; break;
                case CellFault::kOutOfRange: ++res.out_of_range; break;
                case CellFault::kOutlier: ++res.outliers; break;
            }
        };
        double z_sq_sum = 0.0;
        std::size_t z_count = 0;
        for (std::size_t c = 0; c < cols; ++c) {
            const double v = data(r, c);
            if (!std::isfinite(v)) {
                flag(c, CellFault::kNonFinite, v);
                continue;
            }
            if (!range.contains(v)) {
                flag(c, CellFault::kOutOfRange, v);
                continue;
            }
            if (sigma[c] <= 0.0) continue;
            const double z = std::abs(v - med[c]) / sigma[c];
            z_sq_sum += z * z;
            ++z_count;
            if (z > policy_.robust_z_threshold) flag(c, CellFault::kOutlier, v);
        }
        if (z_count > 0 &&
            std::sqrt(z_sq_sum / static_cast<double>(z_count)) >
                policy_.device_rms_z_threshold) {
            res.row_rejected[r] = 1;
        }
    }
    return res;
}

IngestResult MeasurementValidator::finalize(silicon::DuttDataset ds,
                                            QuarantineSummary summary) const {
    const std::size_t n = ds.size();
    if (n == 0 || ds.pcms.rows() != n || ds.fingerprints.rows() != n) {
        throw DataQualityError("ingest: dataset is empty or inconsistently sized");
    }
    const ScreenResult ps = screen(ds.pcms, policy_.pcm_range);
    const ScreenResult fs = screen(ds.fingerprints, policy_.fingerprint_range);
    summary.devices_total = n;
    summary.nonfinite_cells = ps.nonfinite + fs.nonfinite;
    summary.range_violation_cells = ps.out_of_range + fs.out_of_range;
    summary.outlier_cells = ps.outliers + fs.outliers;

    // Healthy-cell column medians of the fingerprints, for imputation. A
    // column with no healthy cell at all cannot be imputed (sigma < 0 marks
    // it via the screen's disabled z cut; recompute explicitly here).
    const std::size_t nm = ds.fingerprints.cols();
    std::vector<double> fp_median(nm, 0.0);
    std::vector<bool> fp_median_valid(nm, false);
    {
        std::vector<double> buf;
        for (std::size_t c = 0; c < nm; ++c) {
            buf.clear();
            for (std::size_t r = 0; r < n; ++r) {
                const double v = ds.fingerprints(r, c);
                if (std::isfinite(v) && policy_.fingerprint_range.contains(v)) {
                    buf.push_back(v);
                }
            }
            if (!buf.empty()) {
                fp_median[c] = stats::median(buf);
                fp_median_valid[c] = true;
            }
        }
    }

    std::vector<std::vector<std::size_t>> fp_bad_cols(n);
    for (const CellIssue& issue : fs.issues) {
        fp_bad_cols[issue.row].push_back(issue.col);
    }
    const auto impute_cap = static_cast<std::size_t>(
        policy_.max_imputed_fraction * static_cast<double>(nm));

    std::vector<std::size_t> kept;
    std::vector<std::size_t> dropped;
    for (std::size_t r = 0; r < n; ++r) {
        // np is 1-2 channels: a PCM that is still bad after retries cannot
        // be meaningfully imputed, so the device is quarantined.
        const bool pcm_bad = ps.row_flagged[r] != 0 || ps.row_rejected[r] != 0;
        if (pcm_bad || fs.row_rejected[r] != 0) {
            dropped.push_back(r);
            continue;
        }
        const std::vector<std::size_t>& bad = fp_bad_cols[r];
        if (bad.empty()) {
            kept.push_back(r);
            continue;
        }
        const bool imputable =
            bad.size() <= impute_cap &&
            std::all_of(bad.begin(), bad.end(),
                        [&](std::size_t c) { return fp_median_valid[c]; });
        if (!imputable) {
            dropped.push_back(r);
            continue;
        }
        for (const std::size_t c : bad) {
            ds.fingerprints(r, c) = fp_median[c];
            ++summary.channels_imputed;
        }
        kept.push_back(r);
    }

    summary.devices_kept = kept.size();
    summary.devices_dropped = dropped.size();
    if (kept.size() < policy_.min_devices) {
        throw DataQualityError(
            "ingest: only " + std::to_string(kept.size()) + " of " +
            std::to_string(n) + " devices survived quarantine (floor " +
            std::to_string(policy_.min_devices) + ")");
    }

    IngestResult result;
    result.dataset.fingerprints = linalg::Matrix(kept.size(), nm);
    result.dataset.pcms = linalg::Matrix(kept.size(), ds.pcms.cols());
    result.dataset.variants.reserve(kept.size());
    for (std::size_t k = 0; k < kept.size(); ++k) {
        result.dataset.fingerprints.set_row(k, ds.fingerprints.row(kept[k]));
        result.dataset.pcms.set_row(k, ds.pcms.row(kept[k]));
        result.dataset.variants.push_back(ds.variants[kept[k]]);
    }
    result.kept_indices = std::move(kept);
    result.dropped_indices = std::move(dropped);
    result.summary = summary;

    // Every quarantined device is a per-chip decision the journal records:
    // a dropped chip never reaches a boundary, so without this event its
    // forensic trail would simply end.
    obs::EventJournal& journal = obs::EventJournal::global();
    if (journal.enabled()) {
        for (const std::size_t dropped_index : result.dropped_indices) {
            obs::Event ev("quarantine");
            ev.chip = std::to_string(dropped_index);
            ev.detail =
                "device dropped by measurement quarantine (unscreenable or "
                "non-imputable channels)";
            ev.value("devices_total",
                     static_cast<double>(result.summary.devices_total))
                .value("devices_dropped",
                       static_cast<double>(result.summary.devices_dropped));
            journal.append(std::move(ev));
        }
    }
    return result;
}

IngestResult MeasurementValidator::sanitize(const silicon::DuttDataset& raw) const {
    return finalize(raw, QuarantineSummary{});
}

IngestResult MeasurementValidator::ingest(const silicon::FabricatedLot& lot,
                                          const silicon::MeasurementSource& source,
                                          rng::Rng& rng) const {
    obs::ScopedSpan span("ingest.lot");
    span.attr("devices", static_cast<double>(lot.devices.size()));

    silicon::DuttDataset ds = source.measure_lot(lot, rng);
    if (ds.size() != lot.devices.size()) {
        throw DataQualityError("ingest: source measured " +
                               std::to_string(ds.size()) + " devices, lot has " +
                               std::to_string(lot.devices.size()));
    }

    QuarantineSummary summary;
    std::vector<std::size_t> retries(ds.size(), 0);
    for (std::size_t pass = 0; pass <= policy_.max_retries_per_device; ++pass) {
        const ScreenResult ps = screen(ds.pcms, policy_.pcm_range);
        const ScreenResult fs = screen(ds.fingerprints, policy_.fingerprint_range);
        bool remeasured = false;
        for (std::size_t i = 0; i < ds.size(); ++i) {
            const bool bad = ps.row_flagged[i] != 0 || ps.row_rejected[i] != 0 ||
                             fs.row_flagged[i] != 0 || fs.row_rejected[i] != 0;
            if (!bad || retries[i] >= policy_.max_retries_per_device) continue;
            if (summary.retries_used >= policy_.max_total_retries) break;
            ds.fingerprints.set_row(
                i, source.measure_fingerprint(lot.devices[i], rng));
            ds.pcms.set_row(i, source.measure_pcm(lot.devices[i], rng));
            if (retries[i] == 0) ++summary.devices_retried;
            ++retries[i];
            ++summary.retries_used;
            remeasured = true;
        }
        if (!remeasured) break;
    }

    IngestResult result = finalize(std::move(ds), summary);

    obs::Registry& reg = obs::Registry::global();
    reg.counter_add("ingest.devices_measured",
                    static_cast<double>(result.summary.devices_total));
    reg.counter_add("ingest.devices_dropped",
                    static_cast<double>(result.summary.devices_dropped));
    reg.counter_add("ingest.retries", static_cast<double>(result.summary.retries_used));
    reg.counter_add("ingest.channels_imputed",
                    static_cast<double>(result.summary.channels_imputed));
    reg.counter_add("ingest.nonfinite_cells",
                    static_cast<double>(result.summary.nonfinite_cells));
    reg.gauge_set("ingest.kept_fraction",
                  static_cast<double>(result.summary.devices_kept) /
                      static_cast<double>(result.summary.devices_total));
    span.attr("kept", static_cast<double>(result.summary.devices_kept));
    span.attr("dropped", static_cast<double>(result.summary.devices_dropped));
    span.attr("retries", static_cast<double>(result.summary.retries_used));
    return result;
}

}  // namespace htd::core
