#pragma once
/// \file ingest.hpp
/// Hardened ingestion of raw tester measurements. Stage 2 of the pipeline
/// consumes PCM e-tests and side-channel fingerprints measured on physical
/// hardware, where probe-contact dropouts, stuck ADC channels, and gross
/// outliers are routine. `MeasurementValidator` screens incoming DUTT
/// matrices for
///
///  - non-finite values (NaN / +/-Inf readings),
///  - physical-range violations (negative delays, absurd power levels),
///  - robust multivariate outliers (per-channel median/MAD z-scores plus a
///    device-level RMS cut across channels),
///
/// drives a bounded re-measure/retry policy against a `MeasurementSource`,
/// median-imputes isolated bad fingerprint channels, quarantines devices
/// that stay unusable, and reports everything it did as a
/// `QuarantineSummary` (JSON-ready for the `htd::obs` RunReport, with
/// counters mirrored into the global obs registry).

#include <cstdint>
#include <vector>

#include "core/errors.hpp"
#include "io/json.hpp"
#include "linalg/matrix.hpp"
#include "rng/rng.hpp"
#include "silicon/bench_measure.hpp"
#include "silicon/fab.hpp"

namespace htd::core {

/// Inclusive physical bounds of one measurement value.
struct PhysicalRange {
    double lo = -1e30;
    double hi = 1e30;

    [[nodiscard]] bool contains(double v) const noexcept { return v >= lo && v <= hi; }
};

/// Screening thresholds and retry budget of the ingestion path.
struct IngestPolicy {
    /// Physical range of a PCM entry. Delays [ns] and ring-oscillator
    /// frequencies [MHz] are strictly positive and far below 1e9.
    PhysicalRange pcm_range{1e-9, 1e9};

    /// Physical range of a fingerprint entry (dBm for transmit power, ns for
    /// the path-delay modality — kept wide enough for both).
    PhysicalRange fingerprint_range{-200.0, 1e9};

    /// Robust z cut: |x - median| / (1.4826 MAD) above this flags a cell.
    double robust_z_threshold = 8.0;

    /// Device-level cut on the RMS robust z across a row's channels.
    double device_rms_z_threshold = 6.0;

    /// Re-measure attempts per faulty device before imputing/dropping.
    std::size_t max_retries_per_device = 2;

    /// Total re-measure budget over the whole lot (bounds tester time).
    std::size_t max_total_retries = 120;

    /// Fingerprint channels of one device that may be median-imputed, as a
    /// fraction of nm, before the device is quarantined instead.
    double max_imputed_fraction = 0.34;

    /// Minimum devices the cleaned dataset must keep; below this the lot is
    /// rejected with DataQualityError.
    std::size_t min_devices = 8;

    /// Throws ConfigError on out-of-range thresholds.
    void validate() const;
};

/// Why a cell was flagged.
enum class CellFault {
    kNonFinite,   ///< NaN or +/-Inf
    kOutOfRange,  ///< outside the physical range
    kOutlier,     ///< robust z above the threshold
};

/// "non_finite" / "out_of_range" / "outlier".
[[nodiscard]] std::string cell_fault_name(CellFault fault);

/// One flagged cell.
struct CellIssue {
    std::size_t row = 0;
    std::size_t col = 0;
    CellFault fault = CellFault::kNonFinite;
    double value = 0.0;
};

/// Screening outcome for one matrix.
struct ScreenResult {
    std::vector<CellIssue> issues;           ///< every flagged cell
    std::vector<std::uint8_t> row_flagged;   ///< 1 = row has any flagged cell
    std::vector<std::uint8_t> row_rejected;  ///< 1 = device-level RMS outlier
    std::size_t nonfinite = 0;
    std::size_t out_of_range = 0;
    std::size_t outliers = 0;

    [[nodiscard]] bool clean() const noexcept { return issues.empty(); }
    [[nodiscard]] std::size_t flagged_rows() const noexcept;
};

/// What ingestion did to a lot.
struct QuarantineSummary {
    std::size_t devices_total = 0;
    std::size_t devices_kept = 0;
    std::size_t devices_dropped = 0;
    std::size_t devices_retried = 0;
    std::size_t retries_used = 0;
    std::size_t channels_imputed = 0;
    std::size_t nonfinite_cells = 0;
    std::size_t range_violation_cells = 0;
    std::size_t outlier_cells = 0;

    /// JSON object for a RunReport "quarantine" section.
    [[nodiscard]] io::Json to_json() const;
};

/// Cleaned dataset plus the bookkeeping of how it was cleaned.
struct IngestResult {
    silicon::DuttDataset dataset;           ///< quarantined-out, imputed
    std::vector<std::size_t> kept_indices;  ///< raw-lot rows kept, in order
    std::vector<std::size_t> dropped_indices;
    QuarantineSummary summary;
};

/// Screens, retries, imputes and quarantines raw measurements.
class MeasurementValidator {
public:
    MeasurementValidator() = default;

    /// Throws ConfigError on an invalid policy.
    explicit MeasurementValidator(IngestPolicy policy);

    /// Screen one matrix (rows = devices) against a physical range; the
    /// median/MAD statistics are computed per column over the cells that
    /// pass the finite + range checks.
    [[nodiscard]] ScreenResult screen(const linalg::Matrix& data,
                                      const PhysicalRange& range) const;

    /// Clean an already-measured dataset without a bench to retry against:
    /// impute what the policy allows, drop the rest. Throws
    /// DataQualityError when fewer than `min_devices` rows survive.
    [[nodiscard]] IngestResult sanitize(const silicon::DuttDataset& raw) const;

    /// Measure `lot` through `source`, re-measure faulty devices within the
    /// retry budget, then impute/drop what remains. Emits `ingest.*`
    /// counters and gauges into the global obs registry. Throws
    /// DataQualityError when fewer than `min_devices` devices survive.
    [[nodiscard]] IngestResult ingest(const silicon::FabricatedLot& lot,
                                      const silicon::MeasurementSource& source,
                                      rng::Rng& rng) const;

    [[nodiscard]] const IngestPolicy& policy() const noexcept { return policy_; }

private:
    /// Impute/drop pass shared by sanitize() and ingest().
    [[nodiscard]] IngestResult finalize(silicon::DuttDataset ds,
                                        QuarantineSummary summary) const;

    IngestPolicy policy_{};
};

}  // namespace htd::core
