#include "pipeline/pipeline.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/journal.hpp"
#include "obs/span.hpp"

namespace htd::core {

namespace {

std::size_t index_of(Boundary b) { return static_cast<std::size_t>(b); }

/// Reject NaN / +/-Inf matrices before they poison a trained model.
void require_finite(const linalg::Matrix& m, const char* context) {
    for (std::size_t r = 0; r < m.rows(); ++r) {
        for (std::size_t c = 0; c < m.cols(); ++c) {
            if (!std::isfinite(m(r, c))) {
                throw DataQualityError(std::string(context) +
                                       ": non-finite value at row " +
                                       std::to_string(r) + ", column " +
                                       std::to_string(c));
            }
        }
    }
}

}  // namespace

std::string boundary_name(Boundary b) {
    switch (b) {
        case Boundary::kB1: return "B1";
        case Boundary::kB2: return "B2";
        case Boundary::kB3: return "B3";
        case Boundary::kB4: return "B4";
        case Boundary::kB5: return "B5";
    }
    throw std::invalid_argument("boundary_name: unknown boundary");
}

std::string dataset_name(Boundary b) {
    std::string n = boundary_name(b);
    n[0] = 'S';
    return n;
}

std::string boundary_health_name(BoundaryHealth health) {
    switch (health) {
        case BoundaryHealth::kUntrained: return "untrained";
        case BoundaryHealth::kHealthy: return "healthy";
        case BoundaryHealth::kDegraded: return "degraded";
        case BoundaryHealth::kFailed: return "failed";
    }
    return "unknown";
}

GoldenFreePipeline::GoldenFreePipeline(PipelineConfig config,
                                       silicon::SpiceSimulator simulator)
    : config_(config), simulator_(std::move(simulator)), regressions_(config.mars),
      health_(config.health) {
    if (config_.monte_carlo_samples < 2) {
        throw ConfigError("GoldenFreePipeline: need >= 2 Monte Carlo samples");
    }
    if (config_.synthetic_samples == 0) {
        throw ConfigError("GoldenFreePipeline: zero synthetic samples");
    }
    if (!(config_.kmm_min_effective_sample_size >= 0.0)) {
        throw ConfigError(
            "GoldenFreePipeline: negative KMM effective-sample-size floor");
    }
    obs::Registry::global().configure(config_.obs);
}

linalg::Matrix GoldenFreePipeline::transform_pcms(const linalg::Matrix& pcms) const {
    if (!config_.log_transform_pcm) return pcms;
    linalg::Matrix out = pcms;
    for (std::size_t r = 0; r < out.rows(); ++r) {
        auto row = out.row_span(r);
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (row[c] <= 0.0) {
                throw DataQualityError(
                    "GoldenFreePipeline: log transform requires positive PCM "
                    "values; got " +
                    std::to_string(row[c]) + " at row " + std::to_string(r) +
                    ", column " + std::to_string(c));
            }
            row[c] = std::log(row[c]);
        }
    }
    return out;
}

ml::OneClassSvm GoldenFreePipeline::train_boundary(const linalg::Matrix& dataset) const {
    ml::OneClassSvm svm(config_.svm);
    svm.fit(dataset);
    return svm;
}

linalg::Matrix GoldenFreePipeline::kde_enhance(Boundary b,
                                               const linalg::Matrix& source,
                                               rng::Rng& rng,
                                               std::string_view probe_name) {
    switch (config_.tail_model) {
        case TailModel::kAdaptiveKde: {
            stats::AdaptiveKde kde(source, config_.kde_alpha,
                                   config_.kde_bandwidth, config_.kde_kernel,
                                   config_.kde_max_lambda);
            linalg::Matrix synthetic = kde.sample_n(rng, config_.synthetic_samples);
            health_.record(
                health_.probe_kde(probe_name, source, synthetic, kde.bandwidth()));
            kdes_[index_of(b)] = std::move(kde);
            return synthetic;
        }
        case TailModel::kEvtPot: {
            const stats::EvtTailEnhancer evt(source, config_.evt_tail_fraction);
            linalg::Matrix synthetic = evt.sample_n(rng, config_.synthetic_samples);
            // No bandwidth under the EVT tail model; the probe carries the
            // tail fraction in its place (always positive, so no false WARN).
            health_.record(health_.probe_kde(probe_name, source, synthetic,
                                             config_.evt_tail_fraction));
            return synthetic;
        }
    }
    throw ConfigError("GoldenFreePipeline: unknown tail model");
}

void GoldenFreePipeline::record_svm_probe(Boundary b) const {
    const std::size_t i = index_of(b);
    const linalg::Matrix& dataset = datasets_[i];
    const ml::OneClassSvm& svm = boundaries_[i];
    if (!svm.fitted() || dataset.rows() == 0) return;

    // Decision values over a strided sample of the training set: large
    // synthetic populations (S2/S5) would make the full pass quadratic in
    // the support-vector count for no diagnostic gain.
    constexpr std::size_t kMaxProbeRows = 512;
    const std::size_t stride = dataset.rows() / kMaxProbeRows + 1;
    const std::size_t sampled = (dataset.rows() + stride - 1) / stride;
    linalg::Matrix sample(sampled, dataset.cols());
    for (std::size_t r = 0, out = 0; r < dataset.rows(); r += stride, ++out) {
        for (std::size_t c = 0; c < dataset.cols(); ++c) sample(out, c) = dataset(r, c);
    }
    const linalg::Vector decisions = svm.decision_values(sample);
    const std::size_t trained =
        std::min(dataset.rows(), config_.svm.max_training_samples);
    health_.record(health_.probe_svm_margins("svm." + boundary_name(b),
                                             decisions.span(), config_.svm.nu,
                                             svm.support_vector_count(), trained));
}

void GoldenFreePipeline::record_boundary_probe() const {
    obs::ProbeResult probe;
    probe.name = "boundaries";
    double healthy = 0.0;
    double degraded = 0.0;
    double failed = 0.0;
    std::string bad;
    for (const Boundary b : kAllBoundaries) {
        const BoundaryStatus& st = status_[index_of(b)];
        switch (st.health) {
            case BoundaryHealth::kHealthy: healthy += 1.0; break;
            case BoundaryHealth::kDegraded:
                degraded += 1.0;
                if (!bad.empty()) bad += ", ";
                bad += boundary_name(b) + " degraded";
                break;
            case BoundaryHealth::kFailed:
                failed += 1.0;
                if (!bad.empty()) bad += ", ";
                bad += boundary_name(b) + " failed";
                break;
            case BoundaryHealth::kUntrained: break;
        }
    }
    probe.value("healthy", healthy).value("degraded", degraded).value("failed", failed);
    if (failed > 0.0) {
        probe.escalate(obs::HealthLevel::kCritical, bad);
    } else if (degraded > 0.0) {
        probe.escalate(obs::HealthLevel::kDegraded, bad);
    }
    health_.record(std::move(probe));
}

template <typename BuildDataset>
void GoldenFreePipeline::build_boundary(Boundary b, BuildDataset&& build) {
    const std::size_t i = index_of(b);
    try {
        datasets_[i] = build();
        boundaries_[i] = train_boundary(datasets_[i]);
        if (status_[i].health != BoundaryHealth::kDegraded) {
            status_[i] = {BoundaryHealth::kHealthy, {}};
        }
        record_svm_probe(b);
    } catch (const std::exception& e) {
        datasets_[i] = linalg::Matrix{};
        boundaries_[i] = ml::OneClassSvm(config_.svm);
        kdes_[i].reset();
        status_[i] = {BoundaryHealth::kFailed, e.what()};
        obs::Registry::global().counter_add("pipeline.boundary_failures");
    }
}

void GoldenFreePipeline::run_premanufacturing(rng::Rng& rng) {
    obs::ScopedSpan stage("pipeline.stage1_premanufacturing");
    stage.attr("monte_carlo_samples", static_cast<double>(config_.monte_carlo_samples));

    // A re-run rebuilds every boundary from scratch.
    premanufacturing_done_ = false;
    silicon_done_ = false;
    status_ = {};
    for (auto& kde : kdes_) kde.reset();
    kmm_fallback_applied_ = false;
    kmm_ess_ = std::numeric_limits<double>::quiet_NaN();
    calibration_.reset();
    health_.clear();

    linalg::Matrix golden_fingerprints;
    {
        obs::ScopedSpan span("pipeline.monte_carlo");
        const silicon::SpiceSimulator::GoldenData golden =
            simulator_.simulate_golden(rng, config_.monte_carlo_samples);
        mc_pcms_ = transform_pcms(golden.pcms);
        golden_fingerprints = golden.fingerprints;
        span.attr("pcm_dim", static_cast<double>(mc_pcms_.cols()));
        span.attr("fingerprint_dim", static_cast<double>(golden_fingerprints.cols()));
    }
    obs::Registry::global().counter_add("pipeline.monte_carlo_devices",
                                        static_cast<double>(mc_pcms_.rows()));
    obs::Registry::global().work_add("work.mc.samples",
                                     static_cast<double>(mc_pcms_.rows()));

    // Regression bank g_j : m_p -> m_j on the simulated devices. A failure
    // here kills the whole stage: nothing downstream can work without g.
    regressions_ = ml::MarsBank(config_.mars);
    regressions_.fit(mc_pcms_, golden_fingerprints);

    // Training fit health: per-output R^2 plus the training |residual|
    // distribution (the reference for the incoming-device residual probe).
    {
        std::vector<double> r2(regressions_.output_dim());
        for (std::size_t j = 0; j < r2.size(); ++j) {
            r2[j] = regressions_.model(j).r_squared();
        }
        const linalg::Matrix predicted = regressions_.predict_batch(mc_pcms_);
        train_abs_residuals_ = linalg::Matrix(golden_fingerprints.rows(),
                                              golden_fingerprints.cols());
        for (std::size_t r = 0; r < train_abs_residuals_.rows(); ++r) {
            for (std::size_t c = 0; c < train_abs_residuals_.cols(); ++c) {
                train_abs_residuals_(r, c) =
                    std::abs(golden_fingerprints(r, c) - predicted(r, c));
            }
        }
        health_.record(health_.probe_mars_fit(r2, train_abs_residuals_));
    }

    // S1 / B1: raw simulated fingerprints.
    build_boundary(Boundary::kB1, [&] { return golden_fingerprints; });

    // S2 / B2: tail-enhanced synthetic population.
    build_boundary(Boundary::kB2, [&] {
        return kde_enhance(Boundary::kB2, golden_fingerprints, rng, "kde.s2");
    });

    premanufacturing_done_ = true;
    obs::EventJournal& journal = obs::EventJournal::global();
    if (journal.enabled()) {
        obs::Event ev(premanufacturing_runs_ == 0
                          ? std::string("calibration")
                          : std::string("recalibration"));
        ev.detail = "stage1 premanufacturing: B1/B2 trained";
        ev.value("monte_carlo_samples", static_cast<double>(mc_pcms_.rows()));
        journal.append(std::move(ev));
    }
    ++premanufacturing_runs_;
}

void GoldenFreePipeline::run_silicon_stage(const linalg::Matrix& dutt_pcms,
                                           rng::Rng& rng) {
    if (!premanufacturing_done_) {
        throw StageOrderError("run_silicon_stage: pre-manufacturing stage has not run");
    }
    if (dutt_pcms.rows() == 0) {
        throw DataQualityError("run_silicon_stage: no DUTT PCM measurements");
    }
    if (dutt_pcms.cols() != mc_pcms_.cols()) {
        throw DimensionError("run_silicon_stage: PCM dimension mismatch (got " +
                             std::to_string(dutt_pcms.cols()) +
                             " columns, expected " +
                             std::to_string(mc_pcms_.cols()) + ")");
    }
    require_finite(dutt_pcms, "run_silicon_stage: DUTT PCMs");

    obs::ScopedSpan stage("pipeline.stage2_silicon");
    stage.attr("dutt_devices", static_cast<double>(dutt_pcms.rows()));
    obs::Registry::global().counter_add("pipeline.dutt_devices",
                                        static_cast<double>(dutt_pcms.rows()));

    silicon_done_ = false;
    // Journal the stage completion at every exit that leaves the pipeline
    // scoreable (healthy, fallback, or degraded-partial alike): the second
    // completed run onward is a `recalibration`.
    const auto journal_stage_done = [&](const std::string& outcome) {
        obs::EventJournal& journal = obs::EventJournal::global();
        if (journal.enabled()) {
            obs::Event ev(silicon_runs_ == 0 ? std::string("calibration")
                                             : std::string("recalibration"));
            ev.detail = "stage2 silicon: " + outcome;
            ev.value("dutt_devices", static_cast<double>(dutt_pcms.rows()));
            if (std::isfinite(kmm_ess_)) {
                ev.value("kmm_effective_sample_size", kmm_ess_);
            }
            ev.value("kmm_fallback", kmm_fallback_applied_ ? 1.0 : 0.0);
            journal.append(std::move(ev));
        }
        ++silicon_runs_;
    };
    for (const Boundary b : {Boundary::kB3, Boundary::kB4, Boundary::kB5}) {
        status_[index_of(b)] = {};
        kdes_[index_of(b)].reset();
    }
    kmm_fallback_applied_ = false;
    kmm_ess_ = std::numeric_limits<double>::quiet_NaN();
    calibration_.reset();

    const linalg::Matrix silicon_pcms = transform_pcms(dutt_pcms);

    // S3 / B3: golden fingerprints predicted from the measured silicon PCMs.
    build_boundary(Boundary::kB3,
                   [&] { return regressions_.predict_batch(silicon_pcms); });

    // S4 / B4: simulated PCMs calibrated to the silicon operating point by
    // kernel mean shift; the KMM importance weights then resample the
    // calibrated cloud onto the silicon distribution (m''_p), and the
    // regression bank maps it to fingerprints. The Kish effective sample
    // size of the weights is the calibration's health metric: below the
    // configured floor the resampled cloud is a handful of repeated points
    // and B4/B5 fall back to S3 (or the stage throws, keeping B3 usable).
    bool fallback = false;
    try {
        const ml::KernelMeanShiftCalibrator calibrator(config_.calibration);
        calibration_ = calibrator.calibrate(mc_pcms_, silicon_pcms);
        kmm_ess_ = ml::effective_sample_size(calibration_->weights);
        obs::Registry::global().gauge_set("pipeline.kmm_effective_sample_size",
                                          kmm_ess_);
        if (kmm_ess_ < config_.kmm_min_effective_sample_size) {
            if (!config_.kmm_fallback_to_b3) {
                silicon_done_ = true;  // B3 (if healthy) stays usable
                obs::ProbeResult collapse =
                    health_.probe_kmm_weights(calibration_->weights.span());
                collapse.escalate(obs::HealthLevel::kCritical,
                                  "KMM calibration collapsed and the B4->B3 "
                                  "fallback is disabled");
                health_.record(std::move(collapse));
                record_boundary_probe();
                throw CalibrationCollapseError(
                    "run_silicon_stage: KMM calibration collapsed (effective "
                    "sample size " +
                        std::to_string(kmm_ess_) + " below floor " +
                        std::to_string(config_.kmm_min_effective_sample_size) +
                        ") and the B4->B3 fallback is disabled",
                    kmm_ess_, config_.kmm_min_effective_sample_size);
            }
            fallback = true;
        }
    } catch (const CalibrationCollapseError&) {
        throw;
    } catch (const std::exception& e) {
        const std::string detail = std::string("KMM calibration failed: ") + e.what();
        status_[index_of(Boundary::kB4)] = {BoundaryHealth::kFailed, detail};
        status_[index_of(Boundary::kB5)] = {BoundaryHealth::kFailed, detail};
        obs::Registry::global().counter_add("pipeline.boundary_failures", 2.0);
        obs::ProbeResult kmm_probe;
        kmm_probe.name = "kmm_weights";
        kmm_probe.escalate(obs::HealthLevel::kCritical, detail);
        health_.record(std::move(kmm_probe));
        // No calibrated reference exists; measure drift against the raw
        // simulated PCM cloud instead.
        health_.record(health_.probe_drift("drift.pcm", mc_pcms_, silicon_pcms));
        record_boundary_probe();
        silicon_done_ = true;
        journal_stage_done("KMM calibration failed, B4/B5 unavailable");
        return;
    }

    {
        obs::ProbeResult kmm_probe =
            health_.probe_kmm_weights(calibration_->weights.span());
        if (fallback) {
            kmm_probe.escalate(obs::HealthLevel::kDegraded,
                               "KMM collapse: B4/B5 fall back to S3");
        }
        health_.record(std::move(kmm_probe));

        // Calibration staleness: how far (relative to the reference cloud's
        // RMS per-column spread) the kernel mean shift had to move the
        // simulated PCMs to reach the silicon operating point.
        obs::ProbeResult cal_probe;
        cal_probe.name = "calibration";
        double variance_sum = 0.0;
        for (std::size_t c = 0; c < mc_pcms_.cols(); ++c) {
            double mean = 0.0;
            for (std::size_t r = 0; r < mc_pcms_.rows(); ++r) mean += mc_pcms_(r, c);
            mean /= static_cast<double>(mc_pcms_.rows());
            double var = 0.0;
            for (std::size_t r = 0; r < mc_pcms_.rows(); ++r) {
                const double d = mc_pcms_(r, c) - mean;
                var += d * d;
            }
            variance_sum += var / static_cast<double>(mc_pcms_.rows() - 1);
        }
        const double rms_spread =
            std::sqrt(variance_sum / static_cast<double>(mc_pcms_.cols()));
        const double shift_norm = calibration_->total_shift.norm();
        const double shift_sigma = shift_norm / std::max(rms_spread, 1e-300);
        cal_probe.value("shift_norm", shift_norm)
            .value("reference_rms_spread", rms_spread)
            .value("shift_sigma", shift_sigma)
            .value("iterations", static_cast<double>(calibration_->iterations));
        const obs::HealthThresholds& ht = health_.thresholds();
        if (shift_sigma > ht.calibration_shift_critical) {
            cal_probe.escalate(obs::HealthLevel::kCritical,
                               "calibration shift " + std::to_string(shift_sigma) +
                                   " reference sigmas (above " +
                                   std::to_string(ht.calibration_shift_critical) +
                                   ")");
        } else if (shift_sigma > ht.calibration_shift_warn) {
            cal_probe.escalate(obs::HealthLevel::kWarn,
                               "calibration shift " + std::to_string(shift_sigma) +
                                   " reference sigmas (above " +
                                   std::to_string(ht.calibration_shift_warn) + ")");
        }
        health_.record(std::move(cal_probe));

        // The drift detector proper: does the incoming silicon PCM batch
        // still look like the KMM-calibrated reference distribution? The
        // reference is the *weighted* calibrated cloud materialized by
        // importance resampling — the unweighted cloud keeps the simulator's
        // shape and would false-alarm on a healthy calibration. On a
        // fallback the weights are collapsed, so the unweighted cloud is
        // used (the verdict is already degraded through kmm_weights).
        constexpr std::size_t kDriftReferenceSamples = 512;
        const linalg::Matrix drift_reference =
            fallback ? calibration_->calibrated
                     : ml::weighted_resample(calibration_->calibrated,
                                             calibration_->weights,
                                             kDriftReferenceSamples, rng);
        health_.record(health_.probe_drift("drift.pcm", drift_reference,
                                           silicon_pcms));
    }

    if (fallback) {
        kmm_fallback_applied_ = true;
        obs::Registry::global().counter_add("pipeline.kmm_fallback_to_b3");
        const std::string detail =
            "KMM collapse (effective sample size " + std::to_string(kmm_ess_) +
            " < floor " + std::to_string(config_.kmm_min_effective_sample_size) +
            "): trained on S3";
        {
            obs::EventJournal& journal = obs::EventJournal::global();
            if (journal.enabled()) {
                obs::Event ev("boundary_fallback");
                ev.boundary = boundary_name(Boundary::kB4);
                ev.detail = detail;
                ev.value("effective_sample_size", kmm_ess_)
                    .value("floor", config_.kmm_min_effective_sample_size);
                journal.append(std::move(ev));
            }
        }
        if (!status_[index_of(Boundary::kB3)].usable()) {
            const std::string no_fb =
                detail + ", but B3 is unavailable: " +
                status_[index_of(Boundary::kB3)].detail;
            status_[index_of(Boundary::kB4)] = {BoundaryHealth::kFailed, no_fb};
            status_[index_of(Boundary::kB5)] = {BoundaryHealth::kFailed, no_fb};
            record_boundary_probe();
            silicon_done_ = true;
            journal_stage_done("KMM collapse with B3 unavailable");
            return;
        }
        status_[index_of(Boundary::kB4)] = {BoundaryHealth::kDegraded, detail};
        build_boundary(Boundary::kB4,
                       [&] { return datasets_[index_of(Boundary::kB3)]; });
    } else {
        build_boundary(Boundary::kB4, [&] {
            const linalg::Matrix calibrated_pcms = ml::weighted_resample(
                calibration_->calibrated, calibration_->weights,
                config_.monte_carlo_samples, rng);
            return regressions_.predict_batch(calibrated_pcms);
        });
    }

    // S5 / B5: tail-enhanced version of S4 (inherits B4's degradation).
    if (status_[index_of(Boundary::kB4)].usable()) {
        status_[index_of(Boundary::kB5)] = status_[index_of(Boundary::kB4)];
        build_boundary(Boundary::kB5, [&] {
            return kde_enhance(Boundary::kB5, datasets_[index_of(Boundary::kB4)],
                               rng, "kde.s5");
        });
    } else {
        status_[index_of(Boundary::kB5)] = {
            BoundaryHealth::kFailed,
            "B4 unavailable: " + status_[index_of(Boundary::kB4)].detail};
    }

    record_boundary_probe();
    silicon_done_ = true;
    journal_stage_done(kmm_fallback_applied_ ? "B4/B5 fell back to S3"
                                             : "B3/B4/B5 trained");
}

void GoldenFreePipeline::probe_incoming(const silicon::DuttDataset& dutts) const {
    if (!premanufacturing_done_) {
        throw StageOrderError("probe_incoming: pre-manufacturing stage has not run");
    }
    if (dutts.pcms.cols() != mc_pcms_.cols()) {
        throw DimensionError("probe_incoming: PCM dimension mismatch (got " +
                             std::to_string(dutts.pcms.cols()) + " columns, expected " +
                             std::to_string(mc_pcms_.cols()) + ")");
    }
    if (dutts.fingerprints.cols() != train_abs_residuals_.cols()) {
        throw DimensionError(
            "probe_incoming: fingerprint dimension mismatch (got " +
            std::to_string(dutts.fingerprints.cols()) + " columns, expected " +
            std::to_string(train_abs_residuals_.cols()) + ")");
    }
    const linalg::Matrix predicted =
        regressions_.predict_batch(transform_pcms(dutts.pcms));
    linalg::Matrix incoming(dutts.fingerprints.rows(), dutts.fingerprints.cols());
    for (std::size_t r = 0; r < incoming.rows(); ++r) {
        for (std::size_t c = 0; c < incoming.cols(); ++c) {
            incoming(r, c) = std::abs(dutts.fingerprints(r, c) - predicted(r, c));
        }
    }
    health_.record(
        health_.probe_regression_residuals(train_abs_residuals_, incoming));
}

bool GoldenFreePipeline::boundary_ready(Boundary b) const noexcept {
    return status_[index_of(b)].usable();
}

io::Json GoldenFreePipeline::degradation_report() const {
    io::Json boundaries = io::Json::array();
    for (const Boundary b : kAllBoundaries) {
        const BoundaryStatus& st = status_[index_of(b)];
        io::Json entry = io::Json::object();
        entry.set("boundary", boundary_name(b));
        entry.set("health", boundary_health_name(st.health));
        entry.set("detail", st.detail);
        boundaries.push_back(std::move(entry));
    }
    io::Json out = io::Json::object();
    out.set("boundaries", std::move(boundaries));
    out.set("kmm_fallback_to_b3", kmm_fallback_applied_);
    out.set("kmm_effective_sample_size",
            std::isfinite(kmm_ess_) ? io::Json(kmm_ess_) : io::Json());
    return out;
}

const ml::OneClassSvm& GoldenFreePipeline::svm_for(Boundary b) const {
    const BoundaryStatus& st = status_[index_of(b)];
    if (!st.usable()) {
        std::string msg = "GoldenFreePipeline: boundary " + boundary_name(b);
        if (st.health == BoundaryHealth::kFailed) {
            msg += " failed: " + st.detail;
        } else {
            msg += " has not been trained yet";
        }
        throw BoundaryUnavailableError(msg);
    }
    return boundaries_[index_of(b)];
}

std::vector<bool> GoldenFreePipeline::classify(Boundary b,
                                               const linalg::Matrix& fingerprints) const {
    const ml::OneClassSvm& svm = svm_for(b);
    if (fingerprints.cols() != datasets_[index_of(b)].cols()) {
        throw DimensionError("classify: fingerprint dimension mismatch (got " +
                             std::to_string(fingerprints.cols()) +
                             " columns, boundary " + boundary_name(b) +
                             " was trained on " +
                             std::to_string(datasets_[index_of(b)].cols()) + ")");
    }
    require_finite(fingerprints, "classify: fingerprints");
    obs::ScopedSpan span("pipeline.stage3_classify");
    span.attr("boundary", static_cast<double>(index_of(b)) + 1.0);  // 1 = B1
    span.attr("devices", static_cast<double>(fingerprints.rows()));
    std::vector<bool> inside(fingerprints.rows());
    std::size_t accepted = 0;
    obs::EventJournal& journal = obs::EventJournal::global();
    const bool forensics = journal.enabled();
    for (std::size_t r = 0; r < fingerprints.rows(); ++r) {
        if (forensics) {
            // contains() is decision_value >= 0, so journaling the decision
            // costs one evaluation, not two, and verdicts stay bitwise
            // identical to the silent path.
            const double decision = svm.decision_value(fingerprints.row(r));
            inside[r] = decision >= 0.0;
            obs::Event ev("chip_scored");
            ev.chip = std::to_string(r);
            ev.boundary = boundary_name(b);
            ev.value("decision", decision)
                .value("inside", inside[r] ? 1.0 : 0.0);
            journal.append(std::move(ev));
        } else {
            inside[r] = svm.contains(fingerprints.row(r));
        }
        accepted += inside[r] ? 1 : 0;
    }
    span.attr("accepted", static_cast<double>(accepted));
    obs::Registry::global().counter_add("pipeline.devices_classified",
                                        static_cast<double>(fingerprints.rows()));
    return inside;
}

linalg::Vector GoldenFreePipeline::decision_values(
    Boundary b, const linalg::Matrix& fingerprints) const {
    const ml::OneClassSvm& svm = svm_for(b);
    if (fingerprints.cols() != datasets_[index_of(b)].cols()) {
        throw DimensionError(
            "decision_values: fingerprint dimension mismatch (got " +
            std::to_string(fingerprints.cols()) + " columns, boundary " +
            boundary_name(b) + " was trained on " +
            std::to_string(datasets_[index_of(b)].cols()) + ")");
    }
    require_finite(fingerprints, "decision_values: fingerprints");
    return svm.decision_values(fingerprints);
}

ml::DetectionMetrics GoldenFreePipeline::evaluate(
    Boundary b, const silicon::DuttDataset& dutts) const {
    const std::vector<bool> inside = classify(b, dutts.fingerprints);
    const std::vector<ml::DeviceLabel> labels = dutts.labels();
    return ml::evaluate_detection(inside, labels);
}

const linalg::Matrix& GoldenFreePipeline::dataset(Boundary b) const {
    const BoundaryStatus& st = status_[index_of(b)];
    if (!st.usable()) {
        std::string msg = "GoldenFreePipeline: dataset " + dataset_name(b);
        if (st.health == BoundaryHealth::kFailed) {
            msg += " is unavailable, boundary failed: " + st.detail;
        } else {
            msg += " has not been built yet";
        }
        throw BoundaryUnavailableError(msg);
    }
    return datasets_[index_of(b)];
}

const ml::MarsBank& GoldenFreePipeline::regressions() const {
    if (!premanufacturing_done_) {
        throw StageOrderError("GoldenFreePipeline: regressions not trained yet");
    }
    return regressions_;
}

const linalg::Matrix& GoldenFreePipeline::simulated_pcms() const {
    if (!premanufacturing_done_) {
        throw StageOrderError(
            "GoldenFreePipeline: pre-manufacturing stage has not run");
    }
    return mc_pcms_;
}

// --- GoldenChipBaseline -----------------------------------------------------------

GoldenChipBaseline::GoldenChipBaseline(ml::OneClassSvm::Options svm_opts)
    : svm_(svm_opts) {}

void GoldenChipBaseline::fit(const linalg::Matrix& golden_fingerprints) {
    obs::ScopedSpan span("baseline.fit");
    span.attr("golden_devices", static_cast<double>(golden_fingerprints.rows()));
    svm_.fit(golden_fingerprints);
}

std::vector<bool> GoldenChipBaseline::classify(const linalg::Matrix& fingerprints) const {
    obs::ScopedSpan span("baseline.classify");
    span.attr("devices", static_cast<double>(fingerprints.rows()));
    std::vector<bool> inside(fingerprints.rows());
    for (std::size_t r = 0; r < fingerprints.rows(); ++r) {
        inside[r] = svm_.contains(fingerprints.row(r));
    }
    return inside;
}

ml::DetectionMetrics GoldenChipBaseline::evaluate(
    const silicon::DuttDataset& dutts) const {
    const std::vector<bool> inside = classify(dutts.fingerprints);
    const std::vector<ml::DeviceLabel> labels = dutts.labels();
    return ml::evaluate_detection(inside, labels);
}

}  // namespace htd::core
