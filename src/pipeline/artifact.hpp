#pragma once
/// \file artifact.hpp
/// The persisted calibration artifact behind the calibrate/score split:
/// everything a trained `GoldenFreePipeline` learned — per-boundary SVM
/// support vectors and coefficients, the MARS regression bank, the adaptive
/// KDE tail estimators, the KMM calibration weights — serialized once at
/// calibration time and reloaded by `pipeline::BoundaryScorer` to classify
/// production batches with zero retraining.
///
/// Format (`htd.boundary.v1`): a JSON envelope
///     { "schema": "htd.boundary.v1", "version": 1, "sections": { ... } }
/// where every section carries its own CRC32 next to its payload, computed
/// over `name + '\0' + payload` so that a section swapped into another slot
/// is detected, not just a flipped bit. The provenance section records the
/// calibration seed and a FNV-1a fingerprint of the canonical pipeline
/// configuration; a loader refuses to score against a config it was not
/// calibrated for.
///
/// Robustness contract: `save` is atomic (write temp, fsync, rename) so a
/// crash mid-write leaves either the old artifact or none; `load` validates
/// before trusting and degrades per-boundary — a corrupt `boundary.Bk`
/// section marks Bk failed and scoring continues on the survivors, while
/// envelope-level damage (schema/version/config-hash/required-section) is a
/// hard, typed rejection. Never a silently wrong score.

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/errors.hpp"
#include "io/json.hpp"
#include "ml/mars.hpp"
#include "ml/one_class_svm.hpp"
#include "pipeline/pipeline.hpp"
#include "stats/kde.hpp"

namespace htd::core {

/// The single definition point of the artifact schema identifier. Every
/// other occurrence of the literal in src/ or tools/ is a lint diagnostic
/// (htd_lint rule `artifact-schema-version`).
inline constexpr std::string_view kBoundaryArtifactSchema = "htd.boundary.v1";

/// Format version within the schema; bumped on any incompatible layout
/// change. Loaders reject a mismatch instead of guessing.
inline constexpr int kBoundaryArtifactVersion = 1;

/// What, specifically, is wrong with an artifact.
enum class ArtifactErrorCode {
    kIo,              ///< file unreadable / unwritable
    kParse,           ///< not valid JSON (truncation, bit flips in structure)
    kSchema,          ///< schema identifier is not htd.boundary.v1
    kVersionSkew,     ///< schema version differs from this build's
    kConfigHash,      ///< config fingerprint disagrees with provenance
    kSectionCrc,      ///< a section's CRC32 does not match its payload
    kMissingSection,  ///< a required section is absent
    kMalformed,       ///< structurally valid JSON with the wrong shape
};

/// Stable short name of a code ("io", "parse", "section_crc", ...).
[[nodiscard]] std::string artifact_error_code_name(ArtifactErrorCode code);

/// A persisted boundary artifact was rejected. Carries the offending
/// section name (empty when the problem is envelope-level) and, for parse
/// failures, the byte offset of the first malformed character.
class ArtifactError : public PipelineError {
public:
    /// Sentinel for "no byte offset applies".
    static constexpr std::size_t kNoOffset = static_cast<std::size_t>(-1);

    ArtifactError(ArtifactErrorCode code, const std::string& message,
                  std::string section = {}, std::size_t offset = kNoOffset)
        : PipelineError(PipelineErrorCode::kArtifact,
                        format(code, message, section, offset)),
          artifact_code_(code),
          section_(std::move(section)),
          offset_(offset) {}

    [[nodiscard]] ArtifactErrorCode artifact_code() const noexcept {
        return artifact_code_;
    }

    /// Name of the offending section ("boundary.B4", "kde", ...); empty for
    /// envelope-level problems.
    [[nodiscard]] const std::string& section() const noexcept { return section_; }

    /// Byte offset of the first malformed character (kNoOffset when not
    /// applicable).
    [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

private:
    static std::string format(ArtifactErrorCode code, const std::string& message,
                              const std::string& section, std::size_t offset);

    ArtifactErrorCode artifact_code_;
    std::string section_;
    std::size_t offset_;
};

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) of a byte string.
[[nodiscard]] std::uint32_t crc32(std::string_view bytes) noexcept;

/// The canonical pipeline-config JSON the artifact stores and fingerprints.
/// Observability and health-threshold knobs are excluded: they change what
/// gets reported, never what gets scored.
[[nodiscard]] io::Json canonical_config_json(const PipelineConfig& config);

/// FNV-1a 64-bit fingerprint (16 hex digits) of the canonical config JSON.
[[nodiscard]] std::string config_fingerprint(const PipelineConfig& config);

/// FNV-1a 64-bit fingerprint of an already-canonical config document.
[[nodiscard]] std::string config_fingerprint(const io::Json& canonical_config);

/// Who made the artifact, from what, and under which configuration.
struct ArtifactProvenance {
    std::uint64_t seed = 0;   ///< experiment seed of the calibration run
    std::string config_hash;  ///< config_fingerprint of the stored config
    std::string tool;         ///< creator tag, e.g. "htd_score"
};

/// Knobs for `BoundaryArtifact::load` / `from_json`.
struct ArtifactLoadOptions {
    /// Strict mode turns every tolerated degradation (corrupt auxiliary or
    /// per-boundary section) into a hard ArtifactError.
    bool strict = false;
};

/// What a tolerant load repaired around.
struct ArtifactLoadReport {
    std::vector<std::string> notes;            ///< degradations applied
    std::vector<std::string> failed_sections;  ///< sections rejected
};

/// KMM calibration record carried for provenance/audit (the scorer itself
/// only needs the SVMs).
struct ArtifactKmmRecord {
    bool present = false;  ///< stage-2 calibration produced a result
    linalg::Vector weights;
    linalg::Vector total_shift;
    std::size_t iterations = 0;
    double effective_sample_size = 0.0;  ///< NaN when calibration never ran
    bool fallback_applied = false;
};

/// In-memory form of one htd.boundary.v1 artifact.
class BoundaryArtifact {
public:
    BoundaryArtifact() = default;

    /// Capture a calibrated pipeline. Requires stage 1 to have run (throws
    /// StageOrderError otherwise via the pipeline accessors); boundaries
    /// that are not usable are stored with a null model and their recorded
    /// status.
    [[nodiscard]] static BoundaryArtifact from_pipeline(
        const GoldenFreePipeline& pipeline, std::uint64_t seed,
        std::string tool = "htd_score");

    /// Serialize to the htd.boundary.v1 envelope.
    [[nodiscard]] io::Json to_json() const;

    /// Decode and validate an envelope. Envelope-level damage (schema,
    /// version, required-section, config-hash) throws ArtifactError; damage
    /// confined to an auxiliary or per-boundary section is repaired around
    /// in tolerant mode (boundary marked kFailed, note recorded in
    /// `report`) or thrown in strict mode.
    [[nodiscard]] static BoundaryArtifact from_json(
        const io::Json& doc, const ArtifactLoadOptions& opts = {},
        ArtifactLoadReport* report = nullptr);

    /// Atomic save: write `path`.tmp, fsync, rename over `path`, fsync the
    /// directory. A crash at any point leaves the previous artifact (or no
    /// file), never a torn one. Throws ArtifactError(kIo) on IO failure.
    void save(const std::string& path) const;

    /// Read, parse and validate an artifact file. Throws ArtifactError:
    /// kIo when unreadable, kParse (with byte offset) when not JSON, and
    /// the from_json taxonomy beyond that.
    [[nodiscard]] static BoundaryArtifact load(
        const std::string& path, const ArtifactLoadOptions& opts = {},
        ArtifactLoadReport* report = nullptr);

    /// The canonical config document the calibration ran under.
    [[nodiscard]] const io::Json& config_json() const noexcept {
        return config_json_;
    }

    [[nodiscard]] const ArtifactProvenance& provenance() const noexcept {
        return provenance_;
    }

    [[nodiscard]] const BoundaryStatus& boundary_status(Boundary b) const noexcept {
        return status_[static_cast<std::size_t>(b)];
    }

    /// True when the boundary survived calibration *and* loading.
    [[nodiscard]] bool boundary_ready(Boundary b) const noexcept {
        return status_[static_cast<std::size_t>(b)].usable() &&
               svms_[static_cast<std::size_t>(b)].has_value();
    }

    /// The reconstructed 1-class SVM of a boundary (empty when the boundary
    /// is not usable or its section was rejected).
    [[nodiscard]] const std::optional<ml::OneClassSvm>& svm(Boundary b) const noexcept {
        return svms_[static_cast<std::size_t>(b)];
    }

    /// Fingerprint width the boundary was trained on (0 when unavailable).
    [[nodiscard]] std::size_t fingerprint_dim(Boundary b) const noexcept {
        return fingerprint_dims_[static_cast<std::size_t>(b)];
    }

    /// The MARS regression bank (empty if its section was rejected).
    [[nodiscard]] const std::optional<ml::MarsBank>& regressions() const noexcept {
        return mars_;
    }

    /// Tail-estimator states for S2/S5 (empty under the EVT tail model or
    /// when the section was rejected).
    [[nodiscard]] const std::optional<stats::AdaptiveKde::State>& kde_s2() const noexcept {
        return kde_s2_;
    }
    [[nodiscard]] const std::optional<stats::AdaptiveKde::State>& kde_s5() const noexcept {
        return kde_s5_;
    }

    [[nodiscard]] const ArtifactKmmRecord& kmm() const noexcept { return kmm_; }

private:
    io::Json config_json_ = io::Json::object();
    ArtifactProvenance provenance_;
    std::array<BoundaryStatus, 5> status_{};
    std::array<std::optional<ml::OneClassSvm>, 5> svms_{};
    std::array<std::size_t, 5> fingerprint_dims_{};
    std::optional<ml::MarsBank> mars_;
    std::optional<stats::AdaptiveKde::State> kde_s2_;
    std::optional<stats::AdaptiveKde::State> kde_s5_;
    ArtifactKmmRecord kmm_;
};

}  // namespace htd::core
