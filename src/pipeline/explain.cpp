#include "pipeline/explain.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "pipeline/scorer.hpp"
#include "stats/kde.hpp"

namespace htd::core {

namespace {

void require_finite(const linalg::Vector& x, const char* context) {
    for (std::size_t c = 0; c < x.size(); ++c) {
        if (!std::isfinite(x[c])) {
            throw DataQualityError(std::string(context) +
                                   ": non-finite value at channel " +
                                   std::to_string(c));
        }
    }
}

/// Tail mass of `x` under a persisted adaptive estimator: the density at x
/// and the fraction of calibration observations whose own density is at
/// most x's. Observations are reconstructed from the standardized pilot
/// representation (obs = std * scale + mean) — the exact state the artifact
/// round-trips, so the numbers match in-process and loaded scorers bitwise.
KdeTailMass tail_mass(const std::optional<stats::AdaptiveKde::State>& state,
                      const linalg::Vector& x) {
    KdeTailMass out;
    if (!state.has_value() || state->pilot.std_data.cols() != x.size()) {
        return out;
    }
    const stats::AdaptiveKde kde = stats::AdaptiveKde::from_state(*state);
    out.present = true;
    out.density = kde.density(x);
    const linalg::Matrix& std_data = state->pilot.std_data;
    std::size_t at_most = 0;
    linalg::Vector obs(std_data.cols());
    for (std::size_t i = 0; i < std_data.rows(); ++i) {
        for (std::size_t c = 0; c < std_data.cols(); ++c) {
            obs[c] = std_data(i, c) * state->pilot.col_scale[c] +
                     state->pilot.col_mean[c];
        }
        if (kde.density(obs) <= out.density) ++at_most;
    }
    out.tail_percentile =
        static_cast<double>(at_most) / static_cast<double>(std_data.rows());
    return out;
}

io::Json tail_mass_json(const KdeTailMass& t) {
    io::Json doc = io::Json::object();
    doc.set("present", t.present);
    if (t.present) {
        doc.set("density", t.density);
        doc.set("tail_percentile", t.tail_percentile);
    }
    return doc;
}

}  // namespace

io::Json ExplainRecord::to_json() const {
    io::Json bs = io::Json::array();
    for (const BoundaryExplanation& be : boundaries) {
        io::Json entry = io::Json::object();
        entry.set("boundary", boundary_name(be.boundary));
        entry.set("health", be.health);
        entry.set("detail", be.detail);
        entry.set("usable", be.usable);
        if (be.usable) {
            entry.set("decision", be.decision);
            entry.set("margin", be.margin);
            entry.set("inside", be.inside);
            io::Json channels = io::Json::array();
            for (const ChannelAttribution& ca : be.channels) {
                io::Json c = io::Json::object();
                c.set("channel", ca.channel);
                c.set("z", ca.z);
                c.set("loco_delta", ca.loco_delta);
                channels.push_back(std::move(c));
            }
            entry.set("channels", std::move(channels));
            io::Json neighbors = io::Json::array();
            for (const NeighborRef& nb : be.neighbors) {
                io::Json n = io::Json::object();
                n.set("index", nb.index);
                n.set("distance", nb.distance);
                n.set("alpha", nb.alpha);
                neighbors.push_back(std::move(n));
            }
            entry.set("neighbors", std::move(neighbors));
        }
        bs.push_back(std::move(entry));
    }
    io::Json kde = io::Json::object();
    kde.set("s2", tail_mass_json(kde_s2));
    kde.set("s5", tail_mass_json(kde_s5));

    io::Json doc = io::Json::object();
    doc.set("schema", std::string(kExplainSchema));
    doc.set("chip", chip);
    doc.set("flagged", flagged);
    doc.set("verdict_boundary", verdict_boundary);
    doc.set("boundaries", std::move(bs));
    doc.set("kde", std::move(kde));
    return doc;
}

std::optional<Boundary> BoundaryScorer::verdict_boundary() const noexcept {
    // The paper's boundary ladder improves monotonically B1 -> B5, so the
    // verdict comes from the highest boundary that survived calibration
    // and loading.
    for (auto it = kAllBoundaries.rbegin(); it != kAllBoundaries.rend(); ++it) {
        if (artifact_.boundary_ready(*it)) return *it;
    }
    return std::nullopt;
}

ExplainRecord BoundaryScorer::explain(const linalg::Vector& fingerprint,
                                      std::string chip,
                                      const ExplainOptions& opts) const {
    require_finite(fingerprint, "explain: fingerprint");
    ExplainRecord rec;
    rec.chip = std::move(chip);

    for (const Boundary b : kAllBoundaries) {
        BoundaryExplanation be;
        be.boundary = b;
        const BoundaryStatus& st = artifact_.boundary_status(b);
        be.health = boundary_health_name(st.health);
        be.detail = st.detail;
        if (!artifact_.boundary_ready(b)) {
            rec.boundaries.push_back(std::move(be));
            continue;
        }
        if (fingerprint.size() != artifact_.fingerprint_dim(b)) {
            throw DimensionError(
                "explain: fingerprint dimension mismatch (got " +
                std::to_string(fingerprint.size()) + " channels, boundary " +
                boundary_name(b) + " was calibrated on " +
                std::to_string(artifact_.fingerprint_dim(b)) + ")");
        }
        const ml::OneClassSvm& svm = *artifact_.svm(b);
        be.usable = true;
        be.decision = svm.decision_value(fingerprint);
        be.margin = be.decision;
        be.inside = be.decision >= 0.0;

        const ml::OneClassSvm::State state = svm.export_state();
        const std::size_t dim = fingerprint.size();

        // Standardized coordinates against the calibration cloud the SVM
        // preprocessing was fit on: z = W (x - mean).
        linalg::Vector z(dim);
        for (std::size_t r = 0; r < dim; ++r) {
            double acc = 0.0;
            for (std::size_t c = 0; c < dim; ++c) {
                acc += state.input_transform(r, c) *
                       (fingerprint[c] - state.input_mean[c]);
            }
            z[r] = acc;
        }

        // Leave-one-channel-out: replace one channel with the training
        // mean and re-evaluate. The delta is that channel's contribution.
        be.channels.reserve(dim);
        linalg::Vector probe = fingerprint;
        for (std::size_t c = 0; c < dim; ++c) {
            const double kept = probe[c];
            probe[c] = state.input_mean[c];
            const double without = svm.decision_value(probe);
            probe[c] = kept;
            be.channels.push_back({c, z[c], be.decision - without});
        }
        std::sort(be.channels.begin(), be.channels.end(),
                  [](const ChannelAttribution& a, const ChannelAttribution& bch) {
                      const double ma = std::abs(a.loco_delta);
                      const double mb = std::abs(bch.loco_delta);
                      if (ma != mb) return ma > mb;
                      return a.channel < bch.channel;
                  });
        if (opts.top_channels > 0 && be.channels.size() > opts.top_channels) {
            be.channels.resize(opts.top_channels);
        }

        // k nearest calibration neighbours in the preprocessed space the
        // kernel actually measures distance in.
        const linalg::Matrix& sv = state.support_vectors;
        be.neighbors.reserve(sv.rows());
        for (std::size_t i = 0; i < sv.rows(); ++i) {
            double d2 = 0.0;
            for (std::size_t c = 0; c < sv.cols(); ++c) {
                const double d = z[c] - sv(i, c);
                d2 += d * d;
            }
            be.neighbors.push_back({i, std::sqrt(d2), state.alpha[i]});
        }
        std::sort(be.neighbors.begin(), be.neighbors.end(),
                  [](const NeighborRef& a, const NeighborRef& bn) {
                      if (a.distance != bn.distance) {
                          return a.distance < bn.distance;
                      }
                      return a.index < bn.index;
                  });
        if (be.neighbors.size() > opts.neighbors) {
            be.neighbors.resize(opts.neighbors);
        }
        rec.boundaries.push_back(std::move(be));
    }

    if (const std::optional<Boundary> vb = verdict_boundary(); vb.has_value()) {
        rec.verdict_boundary = boundary_name(*vb);
        const BoundaryExplanation& vbe =
            rec.boundaries[static_cast<std::size_t>(*vb)];
        rec.flagged = vbe.usable && !vbe.inside;
    }

    rec.kde_s2 = tail_mass(artifact_.kde_s2(), fingerprint);
    rec.kde_s5 = tail_mass(artifact_.kde_s5(), fingerprint);
    return rec;
}

}  // namespace htd::core
