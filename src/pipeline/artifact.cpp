#include "pipeline/artifact.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "obs/journal.hpp"
#include "obs/obs.hpp"

namespace htd::core {

namespace {

std::size_t index_of(Boundary b) { return static_cast<std::size_t>(b); }

// --- small JSON (de)serialization helpers ----------------------------------
//
// Decoders throw std::invalid_argument with a local message; the section
// dispatcher wraps them into ArtifactError with the section name attached.

io::Json json_from_vector(const linalg::Vector& v) { return io::Json::from(v); }

io::Json json_from_matrix(const linalg::Matrix& m) { return io::Json::from(m); }

double expect_number(const io::Json& j, const char* what) {
    if (!j.is_number()) {
        throw std::invalid_argument(std::string(what) + ": expected a number");
    }
    return j.number();
}

bool expect_bool(const io::Json& j, const char* what) {
    if (!j.is_bool()) {
        throw std::invalid_argument(std::string(what) + ": expected a boolean");
    }
    return j.boolean();
}

const std::string& expect_string(const io::Json& j, const char* what) {
    if (!j.is_string()) {
        throw std::invalid_argument(std::string(what) + ": expected a string");
    }
    return j.str();
}

const io::Json& expect_member(const io::Json& j, const std::string& key,
                              const char* what) {
    if (!j.is_object() || !j.contains(key)) {
        throw std::invalid_argument(std::string(what) + ": missing member '" +
                                    key + "'");
    }
    return j.at(key);
}

std::size_t expect_size(const io::Json& j, const char* what) {
    const double v = expect_number(j, what);
    if (!(v >= 0.0) || v != std::floor(v)) {
        throw std::invalid_argument(std::string(what) +
                                    ": expected a non-negative integer");
    }
    return static_cast<std::size_t>(v);
}

linalg::Vector vector_from_json(const io::Json& j, const char* what) {
    if (!j.is_array()) {
        throw std::invalid_argument(std::string(what) + ": expected an array");
    }
    linalg::Vector v(j.size());
    for (std::size_t i = 0; i < j.size(); ++i) {
        v[i] = expect_number(j.at(i), what);
    }
    return v;
}

linalg::Matrix matrix_from_json(const io::Json& j, const char* what) {
    if (!j.is_array()) {
        throw std::invalid_argument(std::string(what) +
                                    ": expected an array of rows");
    }
    const std::size_t rows = j.size();
    if (rows == 0) return linalg::Matrix{};
    const io::Json& first = j.at(std::size_t{0});
    if (!first.is_array()) {
        throw std::invalid_argument(std::string(what) +
                                    ": expected an array of rows");
    }
    const std::size_t cols = first.size();
    linalg::Matrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
        const io::Json& row = j.at(r);
        if (!row.is_array() || row.size() != cols) {
            throw std::invalid_argument(std::string(what) + ": ragged row " +
                                        std::to_string(r));
        }
        for (std::size_t c = 0; c < cols; ++c) {
            m(r, c) = expect_number(row.at(c), what);
        }
    }
    return m;
}

std::string hex_u64(std::uint64_t v) {
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[v & 0xF];
        v >>= 4;
    }
    return out;
}

std::uint64_t parse_hex_u64(const std::string& s, const char* what) {
    if (s.empty() || s.size() > 16) {
        throw std::invalid_argument(std::string(what) +
                                    ": expected up to 16 hex digits");
    }
    std::uint64_t v = 0;
    for (const char c : s) {
        v <<= 4;
        if (c >= '0' && c <= '9') {
            v |= static_cast<std::uint64_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
            v |= static_cast<std::uint64_t>(c - 'a' + 10);
        } else {
            throw std::invalid_argument(std::string(what) +
                                        ": invalid hex digit");
        }
    }
    return v;
}

std::string kernel_name(stats::KernelType k) {
    switch (k) {
        case stats::KernelType::kEpanechnikov: return "epanechnikov";
        case stats::KernelType::kGaussian: return "gaussian";
    }
    throw std::invalid_argument("kernel_name: unknown kernel type");
}

stats::KernelType kernel_from_name(const std::string& name) {
    if (name == "epanechnikov") return stats::KernelType::kEpanechnikov;
    if (name == "gaussian") return stats::KernelType::kGaussian;
    throw std::invalid_argument("unknown kernel type '" + name + "'");
}

std::string tail_model_name(TailModel m) {
    switch (m) {
        case TailModel::kAdaptiveKde: return "adaptive_kde";
        case TailModel::kEvtPot: return "evt_pot";
    }
    throw std::invalid_argument("tail_model_name: unknown tail model");
}

BoundaryHealth health_from_name(const std::string& name) {
    if (name == "untrained") return BoundaryHealth::kUntrained;
    if (name == "healthy") return BoundaryHealth::kHealthy;
    if (name == "degraded") return BoundaryHealth::kDegraded;
    if (name == "failed") return BoundaryHealth::kFailed;
    throw std::invalid_argument("unknown boundary health '" + name + "'");
}

// --- model-state codecs -----------------------------------------------------

io::Json svm_state_to_json(const ml::OneClassSvm::State& s) {
    io::Json opts = io::Json::object();
    opts.set("nu", s.opts.nu);
    opts.set("gamma", s.opts.gamma);
    opts.set("gamma_scale", s.opts.gamma_scale);
    opts.set("tolerance", s.opts.tolerance);
    opts.set("max_iterations", s.opts.max_iterations);
    opts.set("max_training_samples", s.opts.max_training_samples);
    opts.set("subsample_seed", hex_u64(s.opts.subsample_seed));
    opts.set("whiten", s.opts.whiten);
    opts.set("whiten_floor", s.opts.whiten_floor);

    io::Json j = io::Json::object();
    j.set("opts", std::move(opts));
    j.set("fitted", s.fitted);
    j.set("input_mean", json_from_vector(s.input_mean));
    j.set("input_transform", json_from_matrix(s.input_transform));
    j.set("support_vectors", json_from_matrix(s.support_vectors));
    io::Json alpha = io::Json::array();
    for (const double a : s.alpha) alpha.push_back(a);
    j.set("alpha", std::move(alpha));
    j.set("rho", s.rho);
    j.set("gamma", s.gamma);
    j.set("iterations", s.iterations);
    return j;
}

ml::OneClassSvm::State svm_state_from_json(const io::Json& j) {
    ml::OneClassSvm::State s;
    const io::Json& opts = expect_member(j, "opts", "svm");
    s.opts.nu = expect_number(expect_member(opts, "nu", "svm.opts"), "svm.opts.nu");
    s.opts.gamma =
        expect_number(expect_member(opts, "gamma", "svm.opts"), "svm.opts.gamma");
    s.opts.gamma_scale = expect_number(expect_member(opts, "gamma_scale", "svm.opts"),
                                       "svm.opts.gamma_scale");
    s.opts.tolerance = expect_number(expect_member(opts, "tolerance", "svm.opts"),
                                     "svm.opts.tolerance");
    s.opts.max_iterations = expect_size(
        expect_member(opts, "max_iterations", "svm.opts"), "svm.opts.max_iterations");
    s.opts.max_training_samples =
        expect_size(expect_member(opts, "max_training_samples", "svm.opts"),
                    "svm.opts.max_training_samples");
    s.opts.subsample_seed = parse_hex_u64(
        expect_string(expect_member(opts, "subsample_seed", "svm.opts"),
                      "svm.opts.subsample_seed"),
        "svm.opts.subsample_seed");
    s.opts.whiten =
        expect_bool(expect_member(opts, "whiten", "svm.opts"), "svm.opts.whiten");
    s.opts.whiten_floor = expect_number(
        expect_member(opts, "whiten_floor", "svm.opts"), "svm.opts.whiten_floor");

    s.fitted = expect_bool(expect_member(j, "fitted", "svm"), "svm.fitted");
    s.input_mean =
        vector_from_json(expect_member(j, "input_mean", "svm"), "svm.input_mean");
    s.input_transform = matrix_from_json(expect_member(j, "input_transform", "svm"),
                                         "svm.input_transform");
    s.support_vectors = matrix_from_json(expect_member(j, "support_vectors", "svm"),
                                         "svm.support_vectors");
    const io::Json& alpha = expect_member(j, "alpha", "svm");
    if (!alpha.is_array()) {
        throw std::invalid_argument("svm.alpha: expected an array");
    }
    s.alpha.resize(alpha.size());
    for (std::size_t i = 0; i < alpha.size(); ++i) {
        s.alpha[i] = expect_number(alpha.at(i), "svm.alpha");
    }
    s.rho = expect_number(expect_member(j, "rho", "svm"), "svm.rho");
    s.gamma = expect_number(expect_member(j, "gamma", "svm"), "svm.gamma");
    s.iterations =
        expect_size(expect_member(j, "iterations", "svm"), "svm.iterations");
    return s;
}

io::Json mars_opts_to_json(const ml::Mars::Options& o) {
    io::Json opts = io::Json::object();
    opts.set("max_terms", o.max_terms);
    opts.set("max_degree", o.max_degree);
    opts.set("penalty", o.penalty);
    opts.set("prune", o.prune);
    opts.set("max_knots_per_variable", o.max_knots_per_variable);
    opts.set("min_relative_improvement", o.min_relative_improvement);
    return opts;
}

ml::Mars::Options mars_opts_from_json(const io::Json& opts) {
    ml::Mars::Options o;
    o.max_terms = expect_size(expect_member(opts, "max_terms", "mars.opts"),
                              "mars.opts.max_terms");
    o.max_degree = expect_size(expect_member(opts, "max_degree", "mars.opts"),
                               "mars.opts.max_degree");
    o.penalty = expect_number(expect_member(opts, "penalty", "mars.opts"),
                              "mars.opts.penalty");
    o.prune =
        expect_bool(expect_member(opts, "prune", "mars.opts"), "mars.opts.prune");
    o.max_knots_per_variable =
        expect_size(expect_member(opts, "max_knots_per_variable", "mars.opts"),
                    "mars.opts.max_knots_per_variable");
    o.min_relative_improvement = expect_number(
        expect_member(opts, "min_relative_improvement", "mars.opts"),
        "mars.opts.min_relative_improvement");
    return o;
}

io::Json mars_state_to_json(const ml::Mars::State& s) {
    io::Json terms = io::Json::array();
    for (const ml::BasisTerm& term : s.terms) {
        io::Json factors = io::Json::array();
        for (const ml::HingeFactor& f : term.factors) {
            io::Json factor = io::Json::object();
            factor.set("variable", f.variable);
            factor.set("knot", f.knot);
            factor.set("positive", f.positive);
            factors.push_back(std::move(factor));
        }
        terms.push_back(std::move(factors));
    }
    io::Json coef = io::Json::array();
    for (const double c : s.coef) coef.push_back(c);

    io::Json j = io::Json::object();
    j.set("opts", mars_opts_to_json(s.opts));
    j.set("fitted", s.fitted);
    j.set("input_dim", s.input_dim);
    j.set("terms", std::move(terms));
    j.set("coef", std::move(coef));
    j.set("gcv", s.gcv);
    j.set("r2", s.r2);
    return j;
}

ml::Mars::State mars_state_from_json(const io::Json& j) {
    ml::Mars::State s;
    s.opts = mars_opts_from_json(expect_member(j, "opts", "mars"));
    s.fitted = expect_bool(expect_member(j, "fitted", "mars"), "mars.fitted");
    s.input_dim =
        expect_size(expect_member(j, "input_dim", "mars"), "mars.input_dim");
    const io::Json& terms = expect_member(j, "terms", "mars");
    if (!terms.is_array()) {
        throw std::invalid_argument("mars.terms: expected an array");
    }
    s.terms.resize(terms.size());
    for (std::size_t t = 0; t < terms.size(); ++t) {
        const io::Json& factors = terms.at(t);
        if (!factors.is_array()) {
            throw std::invalid_argument("mars.terms: expected factor arrays");
        }
        s.terms[t].factors.resize(factors.size());
        for (std::size_t f = 0; f < factors.size(); ++f) {
            const io::Json& factor = factors.at(f);
            s.terms[t].factors[f].variable = expect_size(
                expect_member(factor, "variable", "mars.factor"), "mars.factor");
            s.terms[t].factors[f].knot = expect_number(
                expect_member(factor, "knot", "mars.factor"), "mars.factor");
            s.terms[t].factors[f].positive = expect_bool(
                expect_member(factor, "positive", "mars.factor"), "mars.factor");
        }
    }
    const io::Json& coef = expect_member(j, "coef", "mars");
    if (!coef.is_array()) {
        throw std::invalid_argument("mars.coef: expected an array");
    }
    s.coef.resize(coef.size());
    for (std::size_t i = 0; i < coef.size(); ++i) {
        s.coef[i] = expect_number(coef.at(i), "mars.coef");
    }
    s.gcv = expect_number(expect_member(j, "gcv", "mars"), "mars.gcv");
    s.r2 = expect_number(expect_member(j, "r2", "mars"), "mars.r2");
    return s;
}

io::Json kde_state_to_json(const stats::AdaptiveKde::State& s) {
    io::Json pilot = io::Json::object();
    pilot.set("std_data", json_from_matrix(s.pilot.std_data));
    pilot.set("col_mean", json_from_vector(s.pilot.col_mean));
    pilot.set("col_scale", json_from_vector(s.pilot.col_scale));
    pilot.set("h", s.pilot.h);
    pilot.set("jacobian", s.pilot.jacobian);
    pilot.set("kernel", kernel_name(s.pilot.kernel));

    io::Json lambda = io::Json::array();
    for (const double l : s.lambda) lambda.push_back(l);

    io::Json j = io::Json::object();
    j.set("pilot", std::move(pilot));
    j.set("alpha", s.alpha);
    j.set("g", s.g);
    j.set("lambda", std::move(lambda));
    return j;
}

io::Json mars_bank_to_json(const ml::MarsBank& bank) {
    const ml::MarsBank::State s = bank.export_state();
    io::Json models = io::Json::array();
    for (const ml::Mars::State& ms : s.models) {
        models.push_back(mars_state_to_json(ms));
    }
    io::Json j = io::Json::object();
    j.set("opts", mars_opts_to_json(s.opts));
    j.set("models", std::move(models));
    return j;
}

stats::AdaptiveKde::State kde_state_from_json(const io::Json& j) {
    stats::AdaptiveKde::State s;
    const io::Json& pilot = expect_member(j, "pilot", "kde");
    s.pilot.std_data = matrix_from_json(expect_member(pilot, "std_data", "kde.pilot"),
                                        "kde.pilot.std_data");
    s.pilot.col_mean = vector_from_json(expect_member(pilot, "col_mean", "kde.pilot"),
                                        "kde.pilot.col_mean");
    s.pilot.col_scale = vector_from_json(
        expect_member(pilot, "col_scale", "kde.pilot"), "kde.pilot.col_scale");
    s.pilot.h = expect_number(expect_member(pilot, "h", "kde.pilot"), "kde.pilot.h");
    s.pilot.jacobian = expect_number(expect_member(pilot, "jacobian", "kde.pilot"),
                                     "kde.pilot.jacobian");
    s.pilot.kernel = kernel_from_name(expect_string(
        expect_member(pilot, "kernel", "kde.pilot"), "kde.pilot.kernel"));
    s.alpha = expect_number(expect_member(j, "alpha", "kde"), "kde.alpha");
    s.g = expect_number(expect_member(j, "g", "kde"), "kde.g");
    const io::Json& lambda = expect_member(j, "lambda", "kde");
    if (!lambda.is_array()) {
        throw std::invalid_argument("kde.lambda: expected an array");
    }
    s.lambda.resize(lambda.size());
    for (std::size_t i = 0; i < lambda.size(); ++i) {
        s.lambda[i] = expect_number(lambda.at(i), "kde.lambda");
    }
    // Round-trip validation: from_state enforces the full invariant set.
    return stats::AdaptiveKde::from_state(std::move(s)).export_state();
}

// --- envelope helpers -------------------------------------------------------

/// CRC input: section name, NUL, compact payload text. Binding the name
/// into the digest means a payload moved to a different section slot fails
/// its CRC even though the bytes themselves are intact.
std::uint32_t section_crc(const std::string& name, const io::Json& payload) {
    std::string bytes = name;
    bytes.push_back('\0');
    bytes += payload.dump(0);
    return crc32(bytes);
}

void add_section(io::Json& sections, const std::string& name, io::Json payload) {
    io::Json entry = io::Json::object();
    entry.set("crc32", static_cast<double>(section_crc(name, payload)));
    entry.set("payload", std::move(payload));
    sections.set(name, std::move(entry));
}

/// Fetch a section payload, verifying presence, shape and CRC. Throws
/// ArtifactError for all three failure modes.
const io::Json& checked_section(const io::Json& sections, const std::string& name) {
    if (!sections.contains(name)) {
        throw ArtifactError(ArtifactErrorCode::kMissingSection,
                            "section is absent", name);
    }
    const io::Json& entry = sections.at(name);
    if (!entry.is_object() || !entry.contains("crc32") ||
        !entry.contains("payload") || !entry.at("crc32").is_number()) {
        throw ArtifactError(ArtifactErrorCode::kMalformed,
                            "section entry must be {crc32, payload}", name);
    }
    const double stored_raw = entry.at("crc32").number();
    if (stored_raw < 0.0 || stored_raw > 4294967295.0 ||
        stored_raw != std::floor(stored_raw)) {
        throw ArtifactError(ArtifactErrorCode::kMalformed,
                            "section CRC is not a 32-bit integer", name);
    }
    const auto stored = static_cast<std::uint32_t>(stored_raw);
    const std::uint32_t actual = section_crc(name, entry.at("payload"));
    if (stored != actual) {
        throw ArtifactError(ArtifactErrorCode::kSectionCrc,
                            "stored CRC " + std::to_string(stored) +
                                " != computed " + std::to_string(actual),
                            name);
    }
    return entry.at("payload");
}

std::string fnv1a64_hex(std::string_view bytes) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return hex_u64(h);
}

}  // namespace

std::string artifact_error_code_name(ArtifactErrorCode code) {
    switch (code) {
        case ArtifactErrorCode::kIo: return "io";
        case ArtifactErrorCode::kParse: return "parse";
        case ArtifactErrorCode::kSchema: return "schema";
        case ArtifactErrorCode::kVersionSkew: return "version_skew";
        case ArtifactErrorCode::kConfigHash: return "config_hash";
        case ArtifactErrorCode::kSectionCrc: return "section_crc";
        case ArtifactErrorCode::kMissingSection: return "missing_section";
        case ArtifactErrorCode::kMalformed: return "malformed";
    }
    return "unknown";
}

std::string ArtifactError::format(ArtifactErrorCode code,
                                  const std::string& message,
                                  const std::string& section,
                                  std::size_t offset) {
    std::string out = "artifact ";
    out += artifact_error_code_name(code);
    if (!section.empty()) {
        out += " [section ";
        out += section;
        out += "]";
    }
    if (offset != kNoOffset) {
        out += " [offset ";
        out += std::to_string(offset);
        out += "]";
    }
    out += ": ";
    out += message;
    return out;
}

std::uint32_t crc32(std::string_view bytes) noexcept {
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k) {
                c = (c & 1U) != 0U ? 0xEDB88320U ^ (c >> 1) : c >> 1;
            }
            t[i] = c;
        }
        return t;
    }();
    std::uint32_t crc = 0xFFFFFFFFU;
    for (const char ch : bytes) {
        crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFU] ^ (crc >> 8);
    }
    return crc ^ 0xFFFFFFFFU;
}

io::Json canonical_config_json(const PipelineConfig& config) {
    io::Json mars = io::Json::object();
    mars.set("max_terms", config.mars.max_terms);
    mars.set("max_degree", config.mars.max_degree);
    mars.set("penalty", config.mars.penalty);
    mars.set("prune", config.mars.prune);
    mars.set("max_knots_per_variable", config.mars.max_knots_per_variable);
    mars.set("min_relative_improvement", config.mars.min_relative_improvement);

    io::Json svm = io::Json::object();
    svm.set("nu", config.svm.nu);
    svm.set("gamma", config.svm.gamma);
    svm.set("gamma_scale", config.svm.gamma_scale);
    svm.set("tolerance", config.svm.tolerance);
    svm.set("max_iterations", config.svm.max_iterations);
    svm.set("max_training_samples", config.svm.max_training_samples);
    svm.set("subsample_seed", hex_u64(config.svm.subsample_seed));
    svm.set("whiten", config.svm.whiten);
    svm.set("whiten_floor", config.svm.whiten_floor);

    io::Json kmm = io::Json::object();
    kmm.set("weight_bound", config.calibration.kmm.weight_bound);
    kmm.set("epsilon", config.calibration.kmm.epsilon);
    kmm.set("gamma", config.calibration.kmm.gamma);
    kmm.set("max_iterations", config.calibration.kmm.max_iterations);
    kmm.set("tolerance", config.calibration.kmm.tolerance);
    io::Json calibration = io::Json::object();
    calibration.set("kmm", std::move(kmm));
    calibration.set("max_shift_iterations", config.calibration.max_shift_iterations);
    calibration.set("shift_tolerance", config.calibration.shift_tolerance);

    io::Json j = io::Json::object();
    j.set("monte_carlo_samples", config.monte_carlo_samples);
    j.set("synthetic_samples", config.synthetic_samples);
    j.set("kde_alpha", config.kde_alpha);
    j.set("kde_bandwidth", config.kde_bandwidth);
    j.set("kde_max_lambda", config.kde_max_lambda);
    j.set("kde_kernel", kernel_name(config.kde_kernel));
    j.set("tail_model", tail_model_name(config.tail_model));
    j.set("evt_tail_fraction", config.evt_tail_fraction);
    j.set("log_transform_pcm", config.log_transform_pcm);
    j.set("mars", std::move(mars));
    j.set("svm", std::move(svm));
    j.set("calibration", std::move(calibration));
    j.set("kmm_min_effective_sample_size", config.kmm_min_effective_sample_size);
    j.set("kmm_fallback_to_b3", config.kmm_fallback_to_b3);
    return j;
}

std::string config_fingerprint(const io::Json& canonical_config) {
    return fnv1a64_hex(canonical_config.dump(0));
}

std::string config_fingerprint(const PipelineConfig& config) {
    return config_fingerprint(canonical_config_json(config));
}

BoundaryArtifact BoundaryArtifact::from_pipeline(const GoldenFreePipeline& pipeline,
                                                 std::uint64_t seed,
                                                 std::string tool) {
    BoundaryArtifact artifact;
    artifact.config_json_ = canonical_config_json(pipeline.config());
    artifact.provenance_.seed = seed;
    artifact.provenance_.config_hash = config_fingerprint(artifact.config_json_);
    artifact.provenance_.tool = std::move(tool);

    for (const Boundary b : kAllBoundaries) {
        const std::size_t i = index_of(b);
        artifact.status_[i] = pipeline.boundary_status(b);
        if (artifact.status_[i].usable()) {
            artifact.svms_[i] = pipeline.boundary_svm(b);
            artifact.fingerprint_dims_[i] = pipeline.dataset(b).cols();
        }
    }

    // regressions() throws StageOrderError before stage 1 — a pipeline that
    // never calibrated has nothing worth persisting.
    artifact.mars_ = pipeline.regressions();

    if (pipeline.kde_estimator(Boundary::kB2).has_value()) {
        artifact.kde_s2_ = pipeline.kde_estimator(Boundary::kB2)->export_state();
    }
    if (pipeline.kde_estimator(Boundary::kB5).has_value()) {
        artifact.kde_s5_ = pipeline.kde_estimator(Boundary::kB5)->export_state();
    }

    const auto& calibration = pipeline.calibration_result();
    artifact.kmm_.present = calibration.has_value();
    if (calibration.has_value()) {
        artifact.kmm_.weights = calibration->weights;
        artifact.kmm_.total_shift = calibration->total_shift;
        artifact.kmm_.iterations = calibration->iterations;
    }
    artifact.kmm_.effective_sample_size = pipeline.kmm_effective_sample_size();
    artifact.kmm_.fallback_applied = pipeline.kmm_fallback_applied();
    return artifact;
}

io::Json BoundaryArtifact::to_json() const {
    io::Json sections = io::Json::object();

    add_section(sections, "config", config_json_);

    io::Json provenance = io::Json::object();
    provenance.set("seed", hex_u64(provenance_.seed));
    provenance.set("config_hash", provenance_.config_hash);
    provenance.set("tool", provenance_.tool);
    add_section(sections, "provenance", std::move(provenance));

    io::Json status = io::Json::array();
    for (const Boundary b : kAllBoundaries) {
        const BoundaryStatus& st = status_[index_of(b)];
        io::Json entry = io::Json::object();
        entry.set("boundary", boundary_name(b));
        entry.set("health", boundary_health_name(st.health));
        entry.set("detail", st.detail);
        status.push_back(std::move(entry));
    }
    add_section(sections, "status", std::move(status));

    add_section(sections, "mars",
                mars_.has_value() && mars_->fitted() ? mars_bank_to_json(*mars_)
                                                     : io::Json());

    io::Json kde = io::Json::object();
    kde.set("s2", kde_s2_.has_value() ? kde_state_to_json(*kde_s2_) : io::Json());
    kde.set("s5", kde_s5_.has_value() ? kde_state_to_json(*kde_s5_) : io::Json());
    add_section(sections, "kde", std::move(kde));

    io::Json kmm = io::Json::object();
    kmm.set("present", kmm_.present);
    kmm.set("weights",
            kmm_.present ? json_from_vector(kmm_.weights) : io::Json());
    kmm.set("total_shift",
            kmm_.present ? json_from_vector(kmm_.total_shift) : io::Json());
    kmm.set("iterations", kmm_.iterations);
    kmm.set("effective_sample_size",
            std::isfinite(kmm_.effective_sample_size)
                ? io::Json(kmm_.effective_sample_size)
                : io::Json());
    kmm.set("fallback_applied", kmm_.fallback_applied);
    add_section(sections, "kmm", std::move(kmm));

    for (const Boundary b : kAllBoundaries) {
        const std::size_t i = index_of(b);
        io::Json entry = io::Json::object();
        entry.set("fingerprint_dim", fingerprint_dims_[i]);
        entry.set("svm", svms_[i].has_value()
                             ? svm_state_to_json(svms_[i]->export_state())
                             : io::Json());
        add_section(sections, "boundary." + boundary_name(b), std::move(entry));
    }

    io::Json doc = io::Json::object();
    doc.set("schema", std::string(kBoundaryArtifactSchema));
    doc.set("version", kBoundaryArtifactVersion);
    doc.set("sections", std::move(sections));
    return doc;
}

BoundaryArtifact BoundaryArtifact::from_json(const io::Json& doc,
                                             const ArtifactLoadOptions& opts,
                                             ArtifactLoadReport* report) {
    ArtifactLoadReport local_report;
    ArtifactLoadReport& rep = report != nullptr ? *report : local_report;
    // A caller may reuse a report object; only this load's degradations are
    // journaled below.
    const std::size_t first_new_note = rep.failed_sections.size();

    if (!doc.is_object()) {
        throw ArtifactError(ArtifactErrorCode::kMalformed,
                            "artifact root must be a JSON object");
    }
    if (!doc.contains("schema") || !doc.at("schema").is_string()) {
        throw ArtifactError(ArtifactErrorCode::kSchema,
                            "missing schema identifier");
    }
    if (doc.at("schema").str() != kBoundaryArtifactSchema) {
        throw ArtifactError(ArtifactErrorCode::kSchema,
                            "schema '" + doc.at("schema").str() +
                                "' is not '" + std::string(kBoundaryArtifactSchema) +
                                "'");
    }
    if (!doc.contains("version") || !doc.at("version").is_number()) {
        throw ArtifactError(ArtifactErrorCode::kVersionSkew,
                            "missing schema version");
    }
    const double version = doc.at("version").number();
    if (version != static_cast<double>(kBoundaryArtifactVersion)) {
        throw ArtifactError(ArtifactErrorCode::kVersionSkew,
                            "artifact version " + std::to_string(version) +
                                " != supported version " +
                                std::to_string(kBoundaryArtifactVersion));
    }
    if (!doc.contains("sections") || !doc.at("sections").is_object()) {
        throw ArtifactError(ArtifactErrorCode::kMalformed,
                            "missing sections object");
    }
    const io::Json& sections = doc.at("sections");

    BoundaryArtifact artifact;

    // Required sections: any problem here is a hard rejection regardless of
    // strictness — without config, provenance and status nothing below can
    // be trusted.
    const io::Json& config = checked_section(sections, "config");
    if (!config.is_object()) {
        throw ArtifactError(ArtifactErrorCode::kMalformed,
                            "config payload must be an object", "config");
    }
    artifact.config_json_ = config;

    const io::Json& provenance = checked_section(sections, "provenance");
    try {
        artifact.provenance_.seed = parse_hex_u64(
            expect_string(expect_member(provenance, "seed", "provenance"),
                          "provenance.seed"),
            "provenance.seed");
        artifact.provenance_.config_hash = expect_string(
            expect_member(provenance, "config_hash", "provenance"),
            "provenance.config_hash");
        artifact.provenance_.tool = expect_string(
            expect_member(provenance, "tool", "provenance"), "provenance.tool");
    } catch (const std::invalid_argument& e) {
        throw ArtifactError(ArtifactErrorCode::kMalformed, e.what(), "provenance");
    }

    const std::string recomputed = config_fingerprint(artifact.config_json_);
    if (recomputed != artifact.provenance_.config_hash) {
        throw ArtifactError(ArtifactErrorCode::kConfigHash,
                            "config fingerprint " + recomputed +
                                " != recorded " + artifact.provenance_.config_hash,
                            "provenance");
    }

    const io::Json& status = checked_section(sections, "status");
    try {
        if (!status.is_array() || status.size() != kAllBoundaries.size()) {
            throw std::invalid_argument("status payload must list all 5 boundaries");
        }
        for (const Boundary b : kAllBoundaries) {
            const std::size_t i = index_of(b);
            const io::Json& entry = status.at(i);
            const std::string& name = expect_string(
                expect_member(entry, "boundary", "status"), "status.boundary");
            if (name != boundary_name(b)) {
                throw std::invalid_argument("status entry " + std::to_string(i) +
                                            " names " + name + ", expected " +
                                            boundary_name(b));
            }
            artifact.status_[i].health = health_from_name(expect_string(
                expect_member(entry, "health", "status"), "status.health"));
            artifact.status_[i].detail = expect_string(
                expect_member(entry, "detail", "status"), "status.detail");
        }
    } catch (const std::invalid_argument& e) {
        throw ArtifactError(ArtifactErrorCode::kMalformed, e.what(), "status");
    }

    // A failure in one of the auxiliary sections (mars / kde / kmm) does not
    // change any score, so a tolerant load notes it and keeps going.
    const auto tolerate = [&](const std::string& section, const std::string& why) {
        if (opts.strict) {
            throw ArtifactError(ArtifactErrorCode::kMalformed, why, section);
        }
        rep.failed_sections.push_back(section);
        rep.notes.push_back("section " + section + " rejected: " + why);
    };

    try {
        const io::Json& mars = checked_section(sections, "mars");
        if (!mars.is_null()) {
            ml::MarsBank::State state;
            state.opts = mars_opts_from_json(expect_member(mars, "opts", "mars"));
            const io::Json& models = expect_member(mars, "models", "mars");
            if (!models.is_array()) {
                throw std::invalid_argument("mars.models: expected an array");
            }
            state.models.resize(models.size());
            for (std::size_t m = 0; m < models.size(); ++m) {
                state.models[m] = mars_state_from_json(models.at(m));
            }
            artifact.mars_ = ml::MarsBank::from_state(std::move(state));
        }
    } catch (const ArtifactError& e) {
        if (opts.strict) throw;
        rep.failed_sections.push_back("mars");
        rep.notes.push_back(std::string("section mars rejected: ") + e.what());
    } catch (const std::invalid_argument& e) {
        tolerate("mars", e.what());
    }

    try {
        const io::Json& kde = checked_section(sections, "kde");
        const io::Json& s2 = expect_member(kde, "s2", "kde");
        if (!s2.is_null()) artifact.kde_s2_ = kde_state_from_json(s2);
        const io::Json& s5 = expect_member(kde, "s5", "kde");
        if (!s5.is_null()) artifact.kde_s5_ = kde_state_from_json(s5);
    } catch (const ArtifactError& e) {
        if (opts.strict) throw;
        artifact.kde_s2_.reset();
        artifact.kde_s5_.reset();
        rep.failed_sections.push_back("kde");
        rep.notes.push_back(std::string("section kde rejected: ") + e.what());
    } catch (const std::invalid_argument& e) {
        artifact.kde_s2_.reset();
        artifact.kde_s5_.reset();
        tolerate("kde", e.what());
    }

    try {
        const io::Json& kmm = checked_section(sections, "kmm");
        artifact.kmm_.present =
            expect_bool(expect_member(kmm, "present", "kmm"), "kmm.present");
        if (artifact.kmm_.present) {
            artifact.kmm_.weights = vector_from_json(
                expect_member(kmm, "weights", "kmm"), "kmm.weights");
            artifact.kmm_.total_shift = vector_from_json(
                expect_member(kmm, "total_shift", "kmm"), "kmm.total_shift");
        }
        artifact.kmm_.iterations =
            expect_size(expect_member(kmm, "iterations", "kmm"), "kmm.iterations");
        const io::Json& ess = expect_member(kmm, "effective_sample_size", "kmm");
        artifact.kmm_.effective_sample_size =
            ess.is_null() ? std::numeric_limits<double>::quiet_NaN()
                          : expect_number(ess, "kmm.effective_sample_size");
        artifact.kmm_.fallback_applied = expect_bool(
            expect_member(kmm, "fallback_applied", "kmm"), "kmm.fallback_applied");
    } catch (const ArtifactError& e) {
        if (opts.strict) throw;
        artifact.kmm_ = {};
        rep.failed_sections.push_back("kmm");
        rep.notes.push_back(std::string("section kmm rejected: ") + e.what());
    } catch (const std::invalid_argument& e) {
        artifact.kmm_ = {};
        tolerate("kmm", e.what());
    }

    // Per-boundary sections: a rejected section takes down exactly that
    // boundary. Tolerant loads keep scoring on the survivors; strict loads
    // refuse the whole artifact.
    for (const Boundary b : kAllBoundaries) {
        const std::size_t i = index_of(b);
        const std::string name = "boundary." + boundary_name(b);
        const auto fail_boundary = [&](const std::string& why) {
            if (opts.strict) {
                throw ArtifactError(ArtifactErrorCode::kMalformed, why, name);
            }
            artifact.svms_[i].reset();
            artifact.fingerprint_dims_[i] = 0;
            artifact.status_[i] = {BoundaryHealth::kFailed,
                                   "artifact section rejected: " + why};
            rep.failed_sections.push_back(name);
            rep.notes.push_back("boundary " + boundary_name(b) +
                                " failed artifact validation: " + why);
        };
        try {
            const io::Json& entry = checked_section(sections, name);
            artifact.fingerprint_dims_[i] = expect_size(
                expect_member(entry, "fingerprint_dim", name.c_str()),
                "fingerprint_dim");
            const io::Json& svm = expect_member(entry, "svm", name.c_str());
            if (artifact.status_[i].usable()) {
                if (svm.is_null()) {
                    throw std::invalid_argument(
                        "status says usable but the model is null");
                }
                artifact.svms_[i] =
                    ml::OneClassSvm::from_state(svm_state_from_json(svm));
                if (!artifact.svms_[i]->fitted()) {
                    throw std::invalid_argument(
                        "status says usable but the model is unfitted");
                }
            }
        } catch (const ArtifactError& e) {
            if (opts.strict) throw;
            artifact.svms_[i].reset();
            artifact.fingerprint_dims_[i] = 0;
            artifact.status_[i] = {BoundaryHealth::kFailed,
                                   std::string("artifact section rejected: ") +
                                       e.what()};
            rep.failed_sections.push_back(name);
            rep.notes.push_back("boundary " + boundary_name(b) +
                                " failed artifact validation: " + e.what());
        } catch (const std::invalid_argument& e) {
            fail_boundary(e.what());
        }
    }

    // Every tolerant repair above is an auditable decision: a degraded
    // section changes (or at least narrows) what the scorer can do, so it
    // lands in the event journal alongside the load-report note.
    obs::EventJournal& journal = obs::EventJournal::global();
    if (journal.enabled()) {
        for (std::size_t i = first_new_note; i < rep.failed_sections.size();
             ++i) {
            obs::Event ev("artifact_degraded");
            const std::string& section = rep.failed_sections[i];
            constexpr std::string_view prefix = "boundary.";
            if (section.rfind(prefix, 0) == 0) {
                ev.boundary = section.substr(prefix.size());
            }
            ev.detail = i < rep.notes.size() ? rep.notes[i] : section;
            journal.append(std::move(ev));
        }
    }

    return artifact;
}

void BoundaryArtifact::save(const std::string& path) const {
    const std::string text = to_json().dump(2) + "\n";
    const std::string tmp = path + ".tmp";

#if defined(__unix__) || defined(__APPLE__)
    // POSIX path: write + fsync the temp file, rename over the target, then
    // fsync the directory so the rename itself is durable. A crash at any
    // point leaves either the previous artifact or a stray .tmp — never a
    // torn htd.boundary.v1 file.
    // strerror below: mt-unsafe (static buffer) but copied into the
    // exception string before any other call can clobber it, and artifact
    // saves happen on one thread — scoring workers never write artifacts.
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        throw ArtifactError(ArtifactErrorCode::kIo,
                            "cannot open " + tmp + ": " +
                                std::strerror(errno));  // NOLINT(concurrency-mt-unsafe)
    }
    std::size_t written = 0;
    while (written < text.size()) {
        const ssize_t n = ::write(fd, text.data() + written, text.size() - written);
        if (n < 0) {
            const std::string why = std::strerror(errno);  // NOLINT(concurrency-mt-unsafe)
            ::close(fd);
            ::unlink(tmp.c_str());
            throw ArtifactError(ArtifactErrorCode::kIo,
                                "short write to " + tmp + ": " + why);
        }
        written += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0 || ::close(fd) != 0) {
        ::unlink(tmp.c_str());
        throw ArtifactError(ArtifactErrorCode::kIo,
                            "cannot fsync " + tmp + ": " +
                                std::strerror(errno));  // NOLINT(concurrency-mt-unsafe)
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        throw ArtifactError(ArtifactErrorCode::kIo,
                            "cannot rename " + tmp + " -> " + path + ": " +
                                std::strerror(errno));  // NOLINT(concurrency-mt-unsafe)
    }
    const std::string::size_type slash = path.find_last_of('/');
    const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
    const int dirfd = ::open(dir.c_str(), O_RDONLY);
    if (dirfd >= 0) {
        ::fsync(dirfd);  // best effort: the data itself is already durable
        ::close(dirfd);
    }
#else
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
        throw ArtifactError(ArtifactErrorCode::kIo, "cannot open " + tmp);
    }
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out.close();
    if (!out) {
        throw ArtifactError(ArtifactErrorCode::kIo, "short write to " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        throw ArtifactError(ArtifactErrorCode::kIo,
                            "cannot rename " + tmp + " -> " + path);
    }
#endif
}

BoundaryArtifact BoundaryArtifact::load(const std::string& path,
                                        const ArtifactLoadOptions& opts,
                                        ArtifactLoadReport* report) {
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
        throw ArtifactError(ArtifactErrorCode::kIo, "cannot open " + path);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) {
        throw ArtifactError(ArtifactErrorCode::kIo, "cannot read " + path);
    }
    const std::string text = buffer.str();

    io::Json doc;
    try {
        doc = io::Json::parse(text);
    } catch (const std::invalid_argument& e) {
        // Json::parse reports "... at offset N"; surface N as a typed field.
        std::size_t offset = ArtifactError::kNoOffset;
        const std::string what = e.what();
        const std::string marker = " at offset ";
        const std::string::size_type pos = what.rfind(marker);
        if (pos != std::string::npos) {
            try {
                offset = static_cast<std::size_t>(
                    std::stoull(what.substr(pos + marker.size())));
            } catch (const std::exception&) {
                offset = ArtifactError::kNoOffset;
            }
        }
        throw ArtifactError(ArtifactErrorCode::kParse, what, {}, offset);
    }

    BoundaryArtifact artifact = from_json(doc, opts, report);
    obs::Registry::global().counter_add("pipeline.artifacts_loaded");
    return artifact;
}

}  // namespace htd::core
