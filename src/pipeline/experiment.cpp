#include "pipeline/experiment.hpp"

#include "obs/span.hpp"

namespace htd::core {

ProcessPair make_process_pair(double process_shift_sigma) {
    process::ProcessVariationModel silicon = process::ProcessVariationModel::default_350nm();
    // The foundry has drifted to the fast corner since the Spice model was
    // extracted; equivalently the stale Spice model sits at the slow side of
    // the silicon's current operating point (lower drive, lower transmit
    // power). Both Trojans increase the measured in-band power, so the drift
    // direction puts the Trojan-infested populations even further from the
    // simulated golden cloud — matching the paper's Fig. 4(b)/(c), where S1
    // and S2 are cleanly separated from every fabricated device.
    process::ProcessVariationModel spice =
        silicon.shifted(process::ProcessShift::slow_corner(process_shift_sigma));
    return {std::move(silicon), std::move(spice)};
}

silicon::DuttDataset fabricate_and_measure(const ExperimentConfig& config,
                                           rng::Rng& rng) {
    obs::ScopedSpan span("experiment.fabricate_measure");
    span.attr("n_chips", static_cast<double>(config.n_chips));
    silicon::Fab::Options fab_opts = config.fab;
    fab_opts.within_die_fraction = config.platform.within_die_fraction;
    const ProcessPair processes = make_process_pair(config.process_shift_sigma);
    const silicon::Fab fab(processes.silicon, fab_opts);
    const silicon::FabricatedLot lot = fab.fabricate_lot(rng, config.n_chips);
    const silicon::MeasurementBench bench(config.platform);
    return bench.measure_lot(lot, rng);
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
    obs::ScopedSpan span("experiment.run");
    span.attr("seed", static_cast<double>(config.seed));
    span.attr("n_chips", static_cast<double>(config.n_chips));
    rng::Rng master(config.seed);
    rng::Rng fab_rng = master.split();
    rng::Rng sim_rng = master.split();
    rng::Rng pipeline_rng = master.split();

    ExperimentResult result;
    result.measured = fabricate_and_measure(config, fab_rng);

    const ProcessPair processes = make_process_pair(config.process_shift_sigma);
    silicon::SpiceSimulator simulator(config.platform, processes.spice);

    GoldenFreePipeline pipeline(config.pipeline, std::move(simulator));
    pipeline.run_premanufacturing(sim_rng);
    pipeline.run_silicon_stage(result.measured.pcms, pipeline_rng);

    {
        obs::ScopedSpan score_span("experiment.score_boundaries");
        for (std::size_t i = 0; i < kAllBoundaries.size(); ++i) {
            const Boundary b = kAllBoundaries[i];
            result.table1[i] = pipeline.evaluate(b, result.measured);
            result.datasets[i] = pipeline.dataset(b);
        }
    }

    const ml::MarsBank& bank = pipeline.regressions();
    double r2 = 0.0;
    for (std::size_t j = 0; j < bank.output_dim(); ++j) {
        r2 += bank.model(j).r_squared();
    }
    result.mars_mean_r2 = bank.output_dim() > 0
                              ? r2 / static_cast<double>(bank.output_dim())
                              : 0.0;
    if (pipeline.calibration_result()) {
        result.calibration_iterations = pipeline.calibration_result()->iterations;
    }

    // Golden-chip baseline (Fig. 1 / [12]): boundary from the measured
    // Trojan-free fingerprints themselves. Whitening lets the classifier
    // exploit the small off-axis structure the Trojan modulation leaves in
    // the measured cloud (the [12] detector similarly worked in a
    // decorrelated feature space).
    ml::OneClassSvm::Options baseline_opts = config.pipeline.svm;
    baseline_opts.whiten = true;
    GoldenChipBaseline baseline(baseline_opts);
    baseline.fit(result.measured.fingerprints_at(result.measured.trojan_free_indices()));
    result.golden_baseline = baseline.evaluate(result.measured);

    return result;
}

}  // namespace htd::core
