#pragma once
/// \file rng.hpp
/// Deterministic, seedable random number generation.
///
/// Every stochastic component in the library (Monte Carlo sampling, process
/// variation, measurement noise, KDE resampling, SVM shuffling) draws from a
/// `Rng` passed in by the caller, so that experiments are exactly
/// reproducible from a single seed. The generator is xoshiro256++, seeded via
/// SplitMix64 — high quality, tiny state, no global state anywhere.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace htd::rng {

/// SplitMix64: used to expand a 64-bit seed into generator state. Also handy
/// as a cheap standalone generator for hashing-style use.
class SplitMix64 {
public:
    explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

    /// Next 64 pseudo-random bits.
    [[nodiscard]] std::uint64_t next() noexcept;

private:
    std::uint64_t state_;
};

/// xoshiro256++ pseudo-random generator with distribution helpers.
///
/// Satisfies std::uniform_random_bit_generator, so it can also drive
/// standard-library distributions when needed.
class Rng {
public:
    using result_type = std::uint64_t;

    /// Construct from a 64-bit seed (expanded through SplitMix64).
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

    [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
    [[nodiscard]] static constexpr result_type max() noexcept { return ~result_type{0}; }

    /// Next 64 pseudo-random bits.
    result_type operator()() noexcept { return next_u64(); }
    [[nodiscard]] result_type next_u64() noexcept;

    /// Uniform double in [0, 1).
    [[nodiscard]] double uniform() noexcept;

    /// Uniform double in [lo, hi); throws std::invalid_argument if hi < lo.
    [[nodiscard]] double uniform(double lo, double hi);

    /// Uniform integer in [0, n); throws std::invalid_argument when n == 0.
    [[nodiscard]] std::size_t uniform_index(std::size_t n);

    /// Standard normal draw (polar Box-Muller with caching).
    [[nodiscard]] double normal() noexcept;

    /// Normal draw with given mean and standard deviation (sigma >= 0).
    [[nodiscard]] double normal(double mean, double sigma);

    /// Exponential draw with the given rate; throws when rate <= 0.
    [[nodiscard]] double exponential(double rate);

    /// Bernoulli draw with probability p clamped into [0, 1].
    [[nodiscard]] bool bernoulli(double p) noexcept;

    /// Jump the generator far ahead; used to derive independent streams.
    void jump() noexcept;

    /// A new generator whose stream is independent of this one.
    [[nodiscard]] Rng split() noexcept;

    /// Fisher-Yates shuffle of an index vector [0, n).
    [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n);

    /// Draw an index in [0, weights.size()) with probability proportional to
    /// `weights[i]`. Throws std::invalid_argument for empty/negative/all-zero
    /// weights.
    [[nodiscard]] std::size_t weighted_index(std::span<const double> weights);

private:
    std::array<std::uint64_t, 4> s_{};
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

/// Sampler for a multivariate normal distribution N(mean, cov).
///
/// The covariance is factored once (Cholesky, with automatic ridge fallback
/// for semi-definite inputs) and each draw costs one matvec.
class MultivariateNormal {
public:
    /// Throws std::invalid_argument when shapes are inconsistent.
    MultivariateNormal(linalg::Vector mean, const linalg::Matrix& cov);

    /// One draw.
    [[nodiscard]] linalg::Vector sample(Rng& rng) const;

    /// `n` draws stacked as rows.
    [[nodiscard]] linalg::Matrix sample_n(Rng& rng, std::size_t n) const;

    [[nodiscard]] const linalg::Vector& mean() const noexcept { return mean_; }

    /// Dimensionality of the distribution.
    [[nodiscard]] std::size_t dim() const noexcept { return mean_.size(); }

private:
    linalg::Vector mean_;
    linalg::Matrix chol_lower_;
};

}  // namespace htd::rng
