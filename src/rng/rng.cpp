#include "rng/rng.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/decompositions.hpp"

namespace htd::rng {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

// --- SplitMix64 -------------------------------------------------------------

std::uint64_t SplitMix64::next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

// --- Rng ---------------------------------------------------------------------

Rng::Rng(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : s_) word = sm.next();
    // Guard against the all-zero state, which is a fixed point of xoshiro.
    if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

Rng::result_type Rng::next_u64() noexcept {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double Rng::uniform() noexcept {
    // 53 high bits -> double in [0, 1)
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
    if (hi < lo) throw std::invalid_argument("Rng::uniform: hi < lo");
    return lo + (hi - lo) * uniform();
}

std::size_t Rng::uniform_index(std::size_t n) {
    if (n == 0) throw std::invalid_argument("Rng::uniform_index: n == 0");
    // Rejection sampling for an unbiased bounded draw.
    const std::uint64_t bound = n;
    const std::uint64_t threshold = (~bound + 1) % bound;  // = 2^64 mod n
    for (;;) {
        const std::uint64_t r = next_u64();
        if (r >= threshold) return static_cast<std::size_t>(r % bound);
    }
}

double Rng::normal() noexcept {
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    // Polar (Marsaglia) method.
    double u, v, s;
    do {
        u = 2.0 * uniform() - 1.0;
        v = 2.0 * uniform() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_normal_ = v * factor;
    has_cached_normal_ = true;
    return u * factor;
}

double Rng::normal(double mean, double sigma) {
    if (sigma < 0.0) throw std::invalid_argument("Rng::normal: sigma < 0");
    return mean + sigma * normal();
}

double Rng::exponential(double rate) {
    if (rate <= 0.0) throw std::invalid_argument("Rng::exponential: rate <= 0");
    return -std::log(1.0 - uniform()) / rate;
}

bool Rng::bernoulli(double p) noexcept {
    return uniform() < std::clamp(p, 0.0, 1.0);
}

void Rng::jump() noexcept {
    static constexpr std::uint64_t kJump[] = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
        0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    std::array<std::uint64_t, 4> t{};
    for (std::uint64_t word : kJump) {
        for (int b = 0; b < 64; ++b) {
            if (word & (std::uint64_t{1} << b)) {
                t[0] ^= s_[0];
                t[1] ^= s_[1];
                t[2] ^= s_[2];
                t[3] ^= s_[3];
            }
            (void)next_u64();  // advance the stream; the draw itself is unused
        }
    }
    s_ = t;
}

Rng Rng::split() noexcept {
    Rng child = *this;
    child.jump();
    child.has_cached_normal_ = false;
    jump();  // also advance this stream past the child's block
    jump();
    return child;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
    std::vector<std::size_t> p(n);
    for (std::size_t i = 0; i < n; ++i) p[i] = i;
    for (std::size_t i = n; i-- > 1;) {
        const std::size_t j = uniform_index(i + 1);
        std::swap(p[i], p[j]);
    }
    return p;
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
    if (weights.empty()) throw std::invalid_argument("Rng::weighted_index: empty weights");
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0 || !std::isfinite(w)) {
            throw std::invalid_argument("Rng::weighted_index: negative or non-finite weight");
        }
        total += w;
    }
    if (total <= 0.0) throw std::invalid_argument("Rng::weighted_index: all-zero weights");
    double u = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        u -= weights[i];
        if (u < 0.0) return i;
    }
    return weights.size() - 1;  // numerical spill-over lands on the last bin
}

// --- MultivariateNormal ------------------------------------------------------

MultivariateNormal::MultivariateNormal(linalg::Vector mean, const linalg::Matrix& cov)
    : mean_(std::move(mean)) {
    if (cov.rows() != mean_.size() || cov.cols() != mean_.size()) {
        throw std::invalid_argument("MultivariateNormal: mean/cov shape mismatch");
    }
    // Factor with an escalating ridge so borderline semi-definite covariance
    // matrices (common after shrinkage or tiny sample sizes) remain usable.
    double lambda = 0.0;
    for (int attempt = 0;; ++attempt) {
        linalg::Matrix m = cov;
        if (lambda > 0.0)
            for (std::size_t i = 0; i < m.rows(); ++i) m(i, i) += lambda;
        try {
            chol_lower_ = linalg::Cholesky(m).l();
            break;
        } catch (const std::domain_error&) {
            if (attempt >= 12) throw;
            lambda = (lambda == 0.0) ? 1e-12 * (1.0 + cov.max_abs()) : lambda * 10.0;
        }
    }
}

linalg::Vector MultivariateNormal::sample(Rng& rng) const {
    const std::size_t d = dim();
    linalg::Vector z(d);
    for (std::size_t i = 0; i < d; ++i) z[i] = rng.normal();
    linalg::Vector x = mean_;
    for (std::size_t i = 0; i < d; ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j <= i; ++j) acc += chol_lower_(i, j) * z[j];
        x[i] += acc;
    }
    return x;
}

linalg::Matrix MultivariateNormal::sample_n(Rng& rng, std::size_t n) const {
    linalg::Matrix out(n, dim());
    for (std::size_t i = 0; i < n; ++i) out.set_row(i, sample(rng));
    return out;
}

}  // namespace htd::rng
