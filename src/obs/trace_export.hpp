#pragma once
/// \file trace_export.hpp
/// Chrome/Perfetto trace-event export of the recorded span tree. The
/// emitted document loads directly into `chrome://tracing` or
/// https://ui.perfetto.dev and follows the trace-event JSON object format:
///
///     {
///       "displayTimeUnit": "ns",
///       "otherData": {"schema": "htd.trace.v1", "normalized": false},
///       "traceEvents": [
///         {"ph": "M", "name": "process_name", ...},
///         {"ph": "M", "name": "thread_name", "tid": 1, ...},
///         {"ph": "X", "name": "pipeline.monte_carlo", "cat": "htd",
///          "pid": 1, "tid": 1, "ts": 12.5, "dur": 3401.2,
///          "args": {"id": 4, "parent": 1, "depth": 1, ...attrs}}
///       ]
///     }
///
/// Every span becomes one complete ("X") event with ts/dur in
/// microseconds; `tid` is the registry's stable 1-based thread index, so
/// worker-thread spans land on their own tracks and nest by timestamp.
/// Events are ordered deterministically (metadata by tid, then spans by
/// span id) regardless of completion order.
///
/// Two timestamp modes:
///  - raw (default): ts = span start relative to the earliest recorded
///    span, dur = measured wall time; args carry cpu_ns. What you want for
///    actual profiling.
///  - normalized (HTD_OBS_TRACE_NORMALIZE=1): timestamps are derived from
///    the span *structure* instead of the clock — a per-thread Euler-tour
///    tick counter assigns ts = enter tick and dur = exit - enter, and the
///    nondeterministic fields (cpu_ns, mem.* resource attrs) are dropped.
///    Two same-seed runs then produce byte-identical traces, which is what
///    lets CI diff trace artifacts and tests assert on exact bytes.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "io/json.hpp"
#include "obs/obs.hpp"

namespace htd::obs {

/// Schema tag stamped into otherData.schema.
inline constexpr const char* kTraceSchema = "htd.trace.v1";

/// Euler-tour tick assignment shared by every normalized export (traces
/// here, run-report spans in sink.cpp): span id -> {enter tick, exit
/// tick}. Per thread, the span tree is walked depth-first with siblings in
/// id order, so the ticks are a pure function of the recorded structure —
/// byte-identical across same-seed runs regardless of wall time.
[[nodiscard]] std::map<std::uint64_t, std::pair<std::int64_t, std::int64_t>>
span_euler_ticks(const std::vector<SpanRecord>& spans);

/// Build the trace-event document from the registry's recorded spans.
[[nodiscard]] io::Json trace_events_json(const Registry& registry,
                                         bool normalize = false);

/// Serialize trace_events_json() to `path` (pretty-printed, deterministic
/// key order). Throws std::runtime_error on IO failure.
void write_trace(const std::string& path, const Registry& registry,
                 bool normalize = false);

/// Write the trace to `registry.trace_path()` honouring
/// `registry.trace_normalize()`. Returns the path written, or an empty
/// string when no trace was requested (HTD_OBS_TRACE unset). Call sites:
/// quickstart and write_bench_report(), after the instrumented work.
[[nodiscard]] std::string write_trace_if_configured(
    const Registry& registry = Registry::global());

}  // namespace htd::obs
