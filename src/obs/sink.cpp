#include "obs/sink.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

#include "io/table.hpp"
#include "obs/trace_export.hpp"

namespace htd::obs {

namespace {

/// "12.3 ms" style rendering for nanosecond durations.
std::string fmt_duration_ns(std::int64_t ns) {
    char buf[32];
    const double v = static_cast<double>(ns);
    if (ns < 10'000) {
        std::snprintf(buf, sizeof buf, "%" PRId64 " ns", ns);
    } else if (ns < 10'000'000) {
        std::snprintf(buf, sizeof buf, "%.1f us", v / 1e3);
    } else if (ns < 10'000'000'000) {
        std::snprintf(buf, sizeof buf, "%.1f ms", v / 1e6);
    } else {
        std::snprintf(buf, sizeof buf, "%.2f s", v / 1e9);
    }
    return buf;
}

std::string fmt_compact(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", v);
    return buf;
}

}  // namespace

io::Json spans_json(const Registry& registry) {
    // Normalized mode (HTD_OBS_TRACE_NORMALIZE=1) replaces every
    // clock-derived field with structural Euler-tour ticks, exactly like
    // the trace export: two same-seed runs then serialize byte-identical
    // spans, which is what lets scripts/check.sh --determinism cmp whole
    // run reports. The shape is unchanged so every reader keeps parsing.
    const bool normalize = registry.trace_normalize();
    std::vector<SpanRecord> spans = registry.spans();
    std::map<std::uint64_t, std::pair<std::int64_t, std::int64_t>> ticks;
    if (normalize) {
        std::sort(spans.begin(), spans.end(),
                  [](const SpanRecord& a, const SpanRecord& b) {
                      return a.id < b.id;
                  });
        ticks = span_euler_ticks(spans);
    }
    io::Json out = io::Json::array();
    for (const SpanRecord& s : spans) {
        io::Json rec = io::Json::object();
        rec.set("id", static_cast<double>(s.id));
        rec.set("parent", static_cast<double>(s.parent));
        rec.set("depth", static_cast<double>(s.depth));
        rec.set("thread", static_cast<double>(s.thread));
        rec.set("name", s.name);
        if (normalize) {
            const auto& [enter, exit] = ticks.at(s.id);
            rec.set("start_wall_ns", static_cast<double>(enter));
            rec.set("wall_ns", static_cast<double>(exit - enter));
            rec.set("cpu_ns", 0.0);
        } else {
            rec.set("start_wall_ns", static_cast<double>(s.start_wall_ns));
            rec.set("wall_ns", static_cast<double>(s.wall_ns));
            rec.set("cpu_ns", static_cast<double>(s.cpu_ns));
        }
        bool any_attr = false;
        io::Json attrs = io::Json::object();
        for (const auto& [key, value] : s.attrs) {
            // mem.* resource samples are measurements, not structure.
            if (normalize && key.rfind("mem.", 0) == 0) continue;
            attrs.set(key, value);
            any_attr = true;
        }
        if (any_attr) rec.set("attrs", std::move(attrs));
        out.push_back(std::move(rec));
    }
    return out;
}

io::Json metrics_json(const Registry& registry) {
    io::Json out = io::Json::object();

    io::Json counters = io::Json::object();
    for (const auto& [name, value] : registry.counters()) counters.set(name, value);
    out.set("counters", std::move(counters));

    io::Json work = io::Json::object();
    for (const auto& [name, value] : registry.works()) work.set(name, value);
    out.set("work", std::move(work));

    io::Json gauges = io::Json::object();
    for (const auto& [name, value] : registry.gauges()) gauges.set(name, value);
    out.set("gauges", std::move(gauges));

    io::Json histograms = io::Json::object();
    const std::vector<double>& bounds = histogram_bucket_bounds();
    // Latency histograms are clock-derived; under normalized mode the
    // record *counts* stay (they are structural) but every timing-derived
    // statistic and bucket is zeroed, keeping the shape parseable while
    // making same-seed runs byte-identical.
    const bool normalize = registry.trace_normalize();
    for (const auto& [name, h] : registry.histograms()) {
        io::Json hist = io::Json::object();
        hist.set("unit", "us");
        hist.set("total", h.total);
        hist.set("sum", normalize ? 0.0 : h.sum);
        hist.set("mean", normalize ? 0.0 : h.mean());
        hist.set("min", normalize ? 0.0 : h.min);
        hist.set("max", normalize ? 0.0 : h.max);
        hist.set("p50", normalize ? 0.0 : h.quantile(0.50));
        hist.set("p90", normalize ? 0.0 : h.quantile(0.90));
        hist.set("p99", normalize ? 0.0 : h.quantile(0.99));
        io::Json buckets = io::Json::array();
        if (!normalize) {
            for (std::size_t i = 0; i < h.counts.size(); ++i) {
                if (h.counts[i] == 0) continue;  // sparse: only occupied buckets
                io::Json bucket = io::Json::object();
                bucket.set("le_us",
                           i < bounds.size() ? io::Json(bounds[i]) : io::Json());
                bucket.set("count", h.counts[i]);
                buckets.push_back(std::move(bucket));
            }
        }
        hist.set("buckets", std::move(buckets));
        histograms.set(name, std::move(hist));
    }
    out.set("histograms", std::move(histograms));
    return out;
}

io::Json observability_json(const Registry& registry) {
    io::Json out = io::Json::object();
    out.set("sink", sink_kind_name(registry.sink()));
    out.set("spans", spans_json(registry));
    out.set("spans_dropped", registry.spans_dropped());
    out.set("metrics", metrics_json(registry));
    return out;
}

std::string span_text_line(const SpanRecord& record) {
    std::string line = "[obs] ";
    line.append(static_cast<std::size_t>(record.depth) * 2, ' ');
    line += record.name;
    line += "  wall ";
    line += fmt_duration_ns(record.wall_ns);
    line += "  cpu ";
    line += fmt_duration_ns(record.cpu_ns);
    if (!record.attrs.empty()) {
        line += "  (";
        bool first = true;
        for (const auto& [key, value] : record.attrs) {
            if (!first) line += ", ";
            first = false;
            line += key;
            line += '=';
            line += fmt_compact(value);
        }
        line += ')';
    }
    return line;
}

std::string metrics_text(const Registry& registry) {
    std::string out;

    const auto counters = registry.counters();
    const auto works = registry.works();
    const auto gauges = registry.gauges();
    if (!counters.empty() || !works.empty() || !gauges.empty()) {
        io::Table table({"metric", "kind", "value"});
        for (const auto& [name, value] : counters) {
            table.add_row({name, "counter", fmt_compact(value)});
        }
        for (const auto& [name, value] : works) {
            table.add_row({name, "work", fmt_compact(value)});
        }
        for (const auto& [name, value] : gauges) {
            table.add_row({name, "gauge", fmt_compact(value)});
        }
        out += "[obs] metrics\n";
        out += table.str();
    }

    const auto histograms = registry.histograms();
    if (!histograms.empty()) {
        io::Table table({"histogram", "count", "mean us", "p50 us", "p90 us",
                         "p99 us", "min us", "max us"});
        for (const auto& [name, h] : histograms) {
            table.add_row({name, fmt_compact(static_cast<double>(h.total)),
                           io::fmt(h.mean(), 2), io::fmt(h.quantile(0.50), 2),
                           io::fmt(h.quantile(0.90), 2), io::fmt(h.quantile(0.99), 2),
                           io::fmt(h.min, 2), io::fmt(h.max, 2)});
        }
        out += "[obs] latency histograms\n";
        out += table.str();
    }

    const double dropped = registry.spans_dropped();
    if (dropped > 0.0) {
        out += "[obs] spans dropped past the storage cap: ";
        out += fmt_compact(dropped);
        out += '\n';
    }
    return out;
}

}  // namespace htd::obs
