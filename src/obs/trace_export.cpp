#include "obs/trace_export.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

namespace htd::obs {

namespace {

bool is_resource_attr(const std::string& key) {
    return key.rfind("mem.", 0) == 0;
}

io::Json metadata_event(const char* name, std::uint32_t tid, std::string value) {
    io::Json event = io::Json::object();
    event.set("ph", "M");
    event.set("name", name);
    event.set("pid", 1.0);
    event.set("tid", static_cast<double>(tid));
    io::Json args = io::Json::object();
    args.set("name", std::move(value));
    event.set("args", std::move(args));
    return event;
}

}  // namespace

/// Euler-tour tick assignment for normalized mode: per thread, walk the
/// span tree depth-first (siblings in id order — ids are assigned at span
/// open, so this is execution order for single-threaded sections) and give
/// every span ts = its enter tick and dur = exit - enter. Purely
/// structural, hence byte-identical across same-seed runs.
std::map<std::uint64_t, std::pair<std::int64_t, std::int64_t>> span_euler_ticks(
    const std::vector<SpanRecord>& spans) {
    std::map<std::uint64_t, std::vector<std::uint64_t>> children;  // parent -> ids
    std::map<std::uint64_t, const SpanRecord*> by_id;
    for (const SpanRecord& s : spans) by_id.emplace(s.id, &s);

    std::map<std::uint32_t, std::vector<std::uint64_t>> roots;  // thread -> ids
    for (const SpanRecord& s : spans) {
        if (s.parent != 0 && by_id.count(s.parent) != 0) {
            children[s.parent].push_back(s.id);
        } else {
            // True roots, plus orphans whose parent fell past the storage
            // cap — promoted so they still appear on their thread's track.
            roots[s.thread].push_back(s.id);
        }
    }
    for (auto& [parent, ids] : children) std::sort(ids.begin(), ids.end());
    for (auto& [thread, ids] : roots) std::sort(ids.begin(), ids.end());

    std::map<std::uint64_t, std::pair<std::int64_t, std::int64_t>> ticks;
    for (auto& [thread, root_ids] : roots) {
        std::int64_t tick = 0;
        // Iterative DFS; a negative id marks the exit visit.
        std::vector<std::int64_t> stack(root_ids.rbegin(), root_ids.rend());
        while (!stack.empty()) {
            const std::int64_t top = stack.back();
            stack.pop_back();
            if (top < 0) {
                ticks[static_cast<std::uint64_t>(-top)].second = tick++;
                continue;
            }
            const auto id = static_cast<std::uint64_t>(top);
            ticks[id].first = tick++;
            stack.push_back(-top);
            const auto it = children.find(id);
            if (it != children.end()) {
                stack.insert(stack.end(), it->second.rbegin(), it->second.rend());
            }
        }
    }
    return ticks;
}

io::Json trace_events_json(const Registry& registry, bool normalize) {
    std::vector<SpanRecord> spans = registry.spans();
    std::sort(spans.begin(), spans.end(),
              [](const SpanRecord& a, const SpanRecord& b) { return a.id < b.id; });

    std::int64_t origin_ns = 0;
    for (std::size_t i = 0; i < spans.size(); ++i) {
        origin_ns = i == 0 ? spans[i].start_wall_ns
                           : std::min(origin_ns, spans[i].start_wall_ns);
    }

    std::map<std::uint64_t, std::pair<std::int64_t, std::int64_t>> ticks;
    if (normalize) ticks = span_euler_ticks(spans);

    std::vector<std::uint32_t> threads;
    for (const SpanRecord& s : spans) threads.push_back(s.thread);
    std::sort(threads.begin(), threads.end());
    threads.erase(std::unique(threads.begin(), threads.end()), threads.end());

    io::Json events = io::Json::array();
    events.push_back(metadata_event("process_name", 0, "htd"));
    for (const std::uint32_t tid : threads) {
        events.push_back(metadata_event(
            "thread_name", tid,
            tid == 1 ? std::string("main") : "worker " + std::to_string(tid)));
    }

    for (const SpanRecord& s : spans) {
        io::Json event = io::Json::object();
        event.set("ph", "X");
        event.set("cat", "htd");
        event.set("name", s.name);
        event.set("pid", 1.0);
        event.set("tid", static_cast<double>(s.thread));
        if (normalize) {
            const auto& [enter, exit] = ticks.at(s.id);
            event.set("ts", static_cast<double>(enter));
            event.set("dur", static_cast<double>(exit - enter));
        } else {
            event.set("ts", static_cast<double>(s.start_wall_ns - origin_ns) / 1e3);
            event.set("dur", static_cast<double>(s.wall_ns) / 1e3);
        }
        io::Json args = io::Json::object();
        args.set("id", static_cast<double>(s.id));
        args.set("parent", static_cast<double>(s.parent));
        args.set("depth", static_cast<double>(s.depth));
        if (!normalize) args.set("cpu_ns", static_cast<double>(s.cpu_ns));
        for (const auto& [key, value] : s.attrs) {
            if (normalize && is_resource_attr(key)) continue;
            args.set(key, value);
        }
        event.set("args", std::move(args));
        events.push_back(std::move(event));
    }

    io::Json other = io::Json::object();
    other.set("schema", kTraceSchema);
    other.set("normalized", normalize);
    other.set("span_count", static_cast<double>(spans.size()));
    other.set("spans_dropped", registry.spans_dropped());
    // Work counters ride along so a trace is self-contained for
    // htd_profile: wall time says where the run was slow, work says how
    // much algorithmic work each kernel did. Deterministic for same-seed
    // runs, so safe under the normalized byte-identity guarantee.
    io::Json work = io::Json::object();
    for (const auto& [name, value] : registry.works()) work.set(name, value);
    other.set("work", std::move(work));

    io::Json doc = io::Json::object();
    doc.set("displayTimeUnit", "ns");
    doc.set("otherData", std::move(other));
    doc.set("traceEvents", std::move(events));
    return doc;
}

void write_trace(const std::string& path, const Registry& registry, bool normalize) {
    trace_events_json(registry, normalize).dump_to_file(path, 1);
}

std::string write_trace_if_configured(const Registry& registry) {
    const std::string path = registry.trace_path();
    if (path.empty()) return {};
    write_trace(path, registry, registry.trace_normalize());
    return path;
}

}  // namespace htd::obs
