#pragma once
/// \file resource.hpp
/// Process resource sampling for per-span attribution. `ScopedSpan` samples
/// at open and close when `Registry::resource_attribution()` is enabled
/// (HTD_OBS_RESOURCES=1) and attaches the deltas as span attrs:
///
///     mem.peak_rss_delta_bytes   growth of the process peak-RSS high-water
///                                mark during the span (0 when the span did
///                                not push a new peak)
///     mem.allocs                 heap allocations observed during the span
///                                by the counting hook (0 unless the build
///                                enables HTD_OBS_COUNT_ALLOCS)
///
/// Sampling degrades gracefully: platforms without getrusage report zero
/// peak RSS, and builds without the allocation hook report zero counts, so
/// consumers never need platform branches — they just see zero deltas.

#include <cstdint>

namespace htd::obs {

/// One point-in-time resource sample.
struct ResourceSample {
    /// Process peak resident-set size in bytes (ru_maxrss; 0 where
    /// unavailable). Monotone high-water mark, so span deltas are >= 0.
    std::int64_t peak_rss_bytes = 0;

    /// Heap allocations observed so far by the counting hook; 0 in builds
    /// without HTD_OBS_COUNT_ALLOCS.
    std::int64_t alloc_count = 0;
};

/// Sample current process resource usage. noexcept and cheap (one
/// getrusage call + one relaxed atomic load), but still gated behind
/// Registry::resource_attribution() because "cheap" is relative to a
/// microsecond-scale span.
[[nodiscard]] ResourceSample sample_resources() noexcept;

/// True when this build counts heap allocations (HTD_OBS_COUNT_ALLOCS);
/// lets tests and reports distinguish "zero allocations" from "not
/// counting".
[[nodiscard]] bool alloc_counting_available() noexcept;

}  // namespace htd::obs
