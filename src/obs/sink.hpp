#pragma once
/// \file sink.hpp
/// Registry snapshot -> output conversions shared by the text and JSON
/// sinks: `io::Json` views of the recorded spans and metrics, and the
/// stderr rendering used by `Registry::flush()` under the text sink.

#include <string>

#include "io/json.hpp"
#include "obs/obs.hpp"

namespace htd::obs {

/// Flat array of the recorded spans in completion order. Each element
/// carries id / parent / depth / name / start_wall_ns / wall_ns / cpu_ns
/// and an "attrs" object. When the registry runs normalized
/// (HTD_OBS_TRACE_NORMALIZE=1) the spans are ordered by id and the
/// clock-derived fields switch to trace_export.hpp's structural Euler-tour
/// ticks (start_wall_ns = enter tick, wall_ns = exit - enter, cpu_ns = 0,
/// mem.* attrs dropped) — same key shape, byte-identical across same-seed
/// runs, which is what lets scripts/check.sh --determinism cmp whole run
/// reports.
[[nodiscard]] io::Json spans_json(const Registry& registry);

/// Object with "counters", "gauges" and "histograms" members. Histograms
/// serialize their bucket counts against the shared
/// `histogram_bucket_bounds()` ladder plus total/sum/mean/min/max.
/// Normalized mode keeps the structural fields (unit, total) and zeroes
/// every timing-derived statistic and bucket so the shape survives while
/// the bytes become deterministic.
[[nodiscard]] io::Json metrics_json(const Registry& registry);

/// Combined snapshot: {"spans": ..., "metrics": ...}. Inherits the
/// normalized behaviour of both pieces above.
[[nodiscard]] io::Json observability_json(const Registry& registry);

/// One-line text rendering of a completed span, e.g.
/// "[obs]   pipeline.mars_fit  wall 12.3 ms  cpu 12.1 ms  (outputs=6)".
/// Indented two spaces per nesting level.
[[nodiscard]] std::string span_text_line(const SpanRecord& record);

/// Metrics summary tables (io::Table format) used by flush() under the
/// text sink.
[[nodiscard]] std::string metrics_text(const Registry& registry);

}  // namespace htd::obs
