#pragma once
/// \file health.hpp
/// Statistical health monitoring for the detection pipeline (htd::obs v2).
///
/// PR 1 observes *mechanics* (latency, counters); this layer observes
/// whether the distributional machinery the paper's trust argument rests on
/// is actually healthy: are the KMM importance weights spread over the Monte
/// Carlo population or collapsed onto a handful of points, did the KDE tail
/// enhancement expand the population sanely, do the MARS regressions still
/// fit the incoming devices, is the 1-class SVM boundary hugging its
/// training cloud, and — the drift detector — does the incoming DUTT PCM
/// batch still look like the KMM-calibrated reference distribution.
///
/// Each check is a *probe*: a named bundle of scalar statistics plus a
/// WARN / DEGRADED / CRITICAL level derived from configurable thresholds.
/// Probes are recorded into a `HealthMonitor`, which mirrors every statistic
/// as a `health.<probe>.<stat>` gauge in the global `Registry`, keeps the
/// worst level as the run verdict, and serializes the whole set as the
/// "health" section of a `htd.run_report.v2` document.
///
/// The two-sample statistics (Kolmogorov–Smirnov, energy distance) are
/// implemented here rather than in htd::stats so that htd_obs keeps its
/// dependency footprint (io + linalg only) and the stats layer can keep
/// depending on obs for spans.

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/annotations.hpp"
#include "io/json.hpp"
#include "linalg/matrix.hpp"

namespace htd::obs {

/// Probe / run verdict severity, ordered: later values are worse.
enum class HealthLevel {
    kHealthy = 0,   ///< statistic inside its expected band
    kWarn = 1,      ///< drifting; detection quality not yet at risk
    kDegraded = 2,  ///< operating on a fallback / visibly shifted regime
    kCritical = 3,  ///< the statistical assumptions are broken
};

/// "healthy" / "warn" / "degraded" / "critical".
[[nodiscard]] std::string health_level_name(HealthLevel level);

/// Inverse of health_level_name; throws std::invalid_argument on an
/// unknown name (used when reading a run_report.v2 back).
[[nodiscard]] HealthLevel health_level_from_name(std::string_view name);

/// The worse (more severe) of two levels.
[[nodiscard]] constexpr HealthLevel worse(HealthLevel a, HealthLevel b) noexcept {
    return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

// --- two-sample statistics (exposed for tests and tooling) ------------------

/// Two-sample Kolmogorov–Smirnov statistic D = sup_x |F_a(x) - F_b(x)|.
/// Inputs are samples (copied and sorted internally). Throws
/// std::invalid_argument when either sample is empty.
[[nodiscard]] double ks_statistic(std::span<const double> a,
                                  std::span<const double> b);

/// Size-normalized KS statistic D / sqrt((n + m) / (n m)) — the quantity
/// compared against the Kolmogorov distribution. Under H0 values near or
/// below ~1.36 (p = 0.05) are unremarkable; 1.95 is p ~ 0.001.
[[nodiscard]] double scaled_ks_statistic(double d, std::size_t n, std::size_t m);

/// Energy distance E(A, B) = 2 E|X-Y| - E|X-X'| - E|Y-Y'| with Euclidean
/// norms over the rows of `a` and `b`. Nonnegative, zero iff the
/// distributions agree. Throws on empty input or column mismatch.
[[nodiscard]] double energy_distance(const linalg::Matrix& a,
                                     const linalg::Matrix& b);

/// Normalized energy coefficient E(A, B) / (2 E|X-Y|) in [0, 1]; a scale
/// free companion to energy_distance. 0 when either term degenerates.
[[nodiscard]] double energy_coefficient(const linalg::Matrix& a,
                                        const linalg::Matrix& b);

/// Kish effective sample size (sum w)^2 / sum w^2 of a nonnegative weight
/// vector; 0 for empty / all-zero input.
[[nodiscard]] double kish_ess(std::span<const double> weights) noexcept;

/// Shannon entropy of the normalized weights divided by log(n): 1 for
/// uniform weights, -> 0 as one weight dominates. 0 for n < 2 or an
/// all-zero vector.
[[nodiscard]] double weight_entropy_ratio(std::span<const double> weights) noexcept;

// --- probes -----------------------------------------------------------------

/// Thresholds behind every probe level. Defaults are calibrated against the
/// paper-default pipeline (quickstart / bench_table1 stay all-healthy) with
/// headroom; tighten them per deployment through
/// `core::PipelineConfig::health`.
struct HealthThresholds {
    // KMM importance weights (probe "kmm_weights").
    double kmm_ess_fraction_warn = 0.15;      ///< Kish ESS / n below -> WARN
    double kmm_ess_fraction_critical = 0.05;  ///< below -> CRITICAL
    double kmm_max_weight_share_warn = 0.30;  ///< max w / sum w above -> WARN
    double kmm_max_weight_share_critical = 0.60;
    double kmm_entropy_ratio_warn = 0.50;     ///< entropy ratio below -> WARN

    // Two-sample drift (probe "drift.*"): levels keyed on the
    // size-normalized KS statistic per channel and the energy coefficient.
    double drift_scaled_ks_warn = 1.63;      ///< ~p = 0.01 under H0
    double drift_scaled_ks_degraded = 1.95;  ///< ~p = 0.001
    double drift_scaled_ks_critical = 2.80;
    double drift_energy_coefficient_warn = 0.15;
    double drift_energy_coefficient_critical = 0.35;

    // MARS regression fit (probes "mars_fit", "regression_residuals").
    double mars_r2_warn = 0.50;      ///< mean training R^2 below -> WARN
    double mars_r2_critical = 0.20;  ///< below -> CRITICAL
    /// Incoming |residual| q90 relative to the training q90. The incoming
    /// population legitimately contains Trojans and sits at the shifted
    /// foundry operating point, so the default band is generous.
    double residual_q90_ratio_warn = 8.0;
    double residual_q90_ratio_critical = 25.0;

    // 1-class SVM boundary (probes "svm.B1".."svm.B5").
    double svm_sv_fraction_warn = 0.75;  ///< SVs / trained samples above -> WARN
    double svm_sv_fraction_critical = 0.95;
    /// Fraction of training points outside the boundary relative to nu
    /// (SMO should leave ~nu outside; a large excess means it failed).
    double svm_outlier_excess_warn = 3.0;
    double svm_outlier_excess_critical = 6.0;

    // KDE tail enhancement (probes "kde.s2", "kde.s5").
    /// Mean per-axis fraction of synthetic samples outside the source
    /// population's [min, max] range. Tail *enhancement* is the point, so
    /// only runaway expansion alarms.
    double kde_tail_mass_warn = 0.25;
    double kde_tail_mass_critical = 0.50;
    /// Max per-axis (synthetic range / source range) above -> WARN.
    double kde_range_expansion_warn = 3.0;
    double kde_range_expansion_critical = 6.0;

    // Calibration staleness (probe "calibration"): how far, in units of
    // the reference population's RMS column spread, the kernel mean shift
    // had to translate the simulated cloud to reach the silicon operating
    // point. The paper-default 4.5 sigma foundry process shift lands near
    // 4.4 (measured on the E15 harness), so the band starts at roughly 2x
    // the designed operating point.
    double calibration_shift_warn = 8.0;
    double calibration_shift_critical = 16.0;
};

/// One recorded health probe: a named set of scalar statistics with the
/// level they imply and a human-readable reason when not healthy.
struct ProbeResult {
    std::string name;  ///< e.g. "kmm_weights", "drift.pcm", "svm.B4"
    HealthLevel level = HealthLevel::kHealthy;
    std::string detail;  ///< empty when healthy
    /// Scalar statistics in insertion order (serialized as an object).
    std::vector<std::pair<std::string, double>> values;

    /// Append one statistic.
    ProbeResult& value(std::string key, double v) {
        values.emplace_back(std::move(key), v);
        return *this;
    }

    /// Escalate to `at_least` (never lowers) and append the reason.
    void escalate(HealthLevel at_least, const std::string& reason);

    /// {"name", "level", "detail", "values": {...}}.
    [[nodiscard]] io::Json to_json() const;
};

/// Collects probes for one pipeline run, mirrors their statistics as
/// `health.*` gauges, and aggregates the run verdict (worst probe level).
/// Probe builders are const and pure; only record() / clear() mutate state.
///
/// Thread-safe: the recorded probe set is guarded by an annotated mutex
/// (core/annotations.hpp), so pipeline stages may record probes
/// concurrently — the requirement the sharded Monte Carlo / batched KMM
/// work depends on. Accessors therefore return snapshots by value, never
/// references into the guarded state.
class HealthMonitor {
public:
    explicit HealthMonitor(HealthThresholds thresholds = {});

    [[nodiscard]] const HealthThresholds& thresholds() const noexcept {
        return thresholds_;  // immutable after construction; no lock needed
    }

    /// Record a probe (a later probe with the same name replaces the
    /// earlier one — stages re-run). Publishes `health.<name>.<stat>` and
    /// `health.<name>.level` gauges plus the `health.verdict` gauge.
    /// Returns a copy of the stored probe.
    ProbeResult record(ProbeResult probe) HTD_EXCLUDES(mutex_);

    /// KMM importance-weight diagnostics: Kish ESS (absolute and as a
    /// fraction of n), max-weight share, entropy ratio.
    [[nodiscard]] ProbeResult probe_kmm_weights(std::span<const double> weights) const;

    /// Drift of an incoming batch against a reference population:
    /// per-channel KS statistic (raw and size-normalized), per-channel mean
    /// shift in reference-sigma units, energy distance / coefficient.
    [[nodiscard]] ProbeResult probe_drift(std::string_view name,
                                          const linalg::Matrix& reference,
                                          const linalg::Matrix& incoming) const;

    /// KDE tail-enhancement sanity: bandwidth, out-of-source-range tail
    /// mass and range expansion of the synthetic population.
    [[nodiscard]] ProbeResult probe_kde(std::string_view name,
                                        const linalg::Matrix& source,
                                        const linalg::Matrix& synthetic,
                                        double bandwidth) const;

    /// MARS training fit: mean R^2 across the bank plus |residual|
    /// quantiles (q50 / q90 / q99) pooled over outputs.
    [[nodiscard]] ProbeResult probe_mars_fit(
        std::span<const double> per_output_r2,
        const linalg::Matrix& abs_residuals) const;

    /// Incoming regression residuals against the training residuals:
    /// per-quantile ratios (the model-staleness signal of LASCA-style
    /// golden-free detectors).
    [[nodiscard]] ProbeResult probe_regression_residuals(
        const linalg::Matrix& train_abs_residuals,
        const linalg::Matrix& incoming_abs_residuals) const;

    /// 1-class SVM boundary shape: support-vector fraction, training
    /// decision-value quantiles, fraction of training points left outside
    /// relative to nu.
    [[nodiscard]] ProbeResult probe_svm_margins(
        std::string_view name, std::span<const double> train_decision_values,
        double nu, std::size_t support_vectors, std::size_t trained_samples) const;

    /// Worst level over the recorded probes (kHealthy when none).
    [[nodiscard]] HealthLevel verdict() const HTD_EXCLUDES(mutex_);

    /// Snapshot of the recorded probes in first-recorded order.
    [[nodiscard]] std::vector<ProbeResult> probes() const HTD_EXCLUDES(mutex_);

    /// The probe with that name, or std::nullopt.
    [[nodiscard]] std::optional<ProbeResult> find(std::string_view name) const
        HTD_EXCLUDES(mutex_);

    /// The run_report.v2 "health" section:
    /// {"verdict": ..., "probes": [...]}.
    [[nodiscard]] io::Json to_json() const HTD_EXCLUDES(mutex_);

    /// Drop all recorded probes (thresholds are kept).
    void clear() HTD_EXCLUDES(mutex_);

private:
    [[nodiscard]] HealthLevel verdict_locked() const HTD_REQUIRES(mutex_);

    HealthThresholds thresholds_{};
    mutable core::Mutex mutex_;
    std::vector<ProbeResult> probes_ HTD_GUARDED_BY(mutex_);
};

}  // namespace htd::obs
