#pragma once
/// \file obs.hpp
/// Pipeline-wide observability: a process-global registry of metrics
/// (counters, gauges, fixed-bucket latency histograms) and completed trace
/// spans, plus pluggable output sinks. Instrumented code talks to
/// `Registry::global()` through `ScopedSpan` (span.hpp) and the counter /
/// gauge / histogram calls below; reporting code snapshots the registry into
/// `io::Json` (sink.hpp) or a full `RunReport` (run_report.hpp).
///
/// The sink is selected programmatically (`Registry::configure`) or through
/// the `HTD_OBS` environment variable:
///
///     HTD_OBS=off    no-op (default) — every call is a single relaxed
///                    atomic load on the hot path
///     HTD_OBS=text   spans and flush() summaries stream to stderr
///     HTD_OBS=json   records accumulate in memory for a RunReport /
///                    BENCH_<name>.json artifact (HTD_OBS_PATH overrides
///                    the default report path of write_default_report())
///
/// All registry operations are thread-safe: the hot-path enabled check is
/// lock-free and the record/aggregate paths take one short mutex section.
/// The lock discipline is annotated for Clang's `-Wthread-safety` analysis
/// (core/annotations.hpp): every field behind `mutex_` is `HTD_GUARDED_BY`
/// it, so an unlocked access is a compile error on Clang and the `tsan`
/// preset (scripts/check.sh tsan) verifies the same discipline dynamically.

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/annotations.hpp"

namespace htd::obs {

/// Output sink selection.
enum class SinkKind {
    kInherit,  ///< keep whatever the registry is already configured with
    kOff,      ///< disabled: all instrumentation is a no-op
    kText,     ///< human-readable stream to stderr
    kJson,     ///< accumulate in memory for JSON export
};

/// "off" / "text" / "json" / "inherit".
[[nodiscard]] std::string sink_kind_name(SinkKind kind);

/// Parse an HTD_OBS environment value ("off" / "text" / "json"; empty means
/// "off"). Returns kInherit and fills `*error` with a warning naming the
/// valid values when the value is unrecognized — a misconfigured sink must
/// warn once on stderr instead of silently behaving as "off".
[[nodiscard]] SinkKind sink_kind_from_env(std::string_view value,
                                          std::string* error = nullptr);

/// Parse a boolean observability environment value ("1" = on, "0" or empty
/// = off). Any other value is off, and `*error` is filled with a warning
/// naming the valid values — the same loud-typo contract HTD_OBS gets from
/// sink_kind_from_env. Used for HTD_OBS_TRACE_NORMALIZE, HTD_OBS_RESOURCES
/// and HTD_OBS_JOURNAL_NORMALIZE.
[[nodiscard]] bool bool_env_value(std::string_view variable,
                                  std::string_view value,
                                  std::string* error = nullptr);

/// Observability options embeddable in a component config (for example
/// `core::PipelineConfig::obs`). `kInherit` leaves the global registry
/// untouched, so library code never overrides an explicit caller choice.
struct Config {
    SinkKind sink = SinkKind::kInherit;

    /// Default path used by Registry::write_default_report() under the JSON
    /// sink; empty keeps the current path ("htd_obs.json" unless
    /// HTD_OBS_PATH is set).
    std::string json_path;

    /// Chrome/Perfetto trace-event JSON destination used by
    /// `trace_export.hpp::write_trace_if_configured()`; empty keeps the
    /// current path (unset unless HTD_OBS_TRACE is set, in which case no
    /// trace is written).
    std::string trace_path;
};

/// One completed trace span.
struct SpanRecord {
    std::uint64_t id = 0;      ///< 1-based, unique per process
    std::uint64_t parent = 0;  ///< 0 = root span of its thread
    std::uint32_t depth = 0;   ///< nesting depth (root = 0)
    std::uint32_t thread = 0;  ///< 1-based registration-order thread index
    std::string name;
    std::int64_t start_wall_ns = 0;  ///< steady-clock start, ns since registry init
    std::int64_t wall_ns = 0;        ///< wall-clock duration
    std::int64_t cpu_ns = 0;         ///< thread CPU time consumed
    /// Numeric attributes attached via ScopedSpan::attr (insertion order).
    std::vector<std::pair<std::string, double>> attrs;
};

/// Aggregated state of one fixed-bucket latency histogram (microseconds).
struct HistogramSnapshot {
    std::vector<std::uint64_t> counts;  ///< one per bucket + final overflow
    std::uint64_t total = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    [[nodiscard]] double mean() const noexcept {
        return total == 0 ? 0.0 : sum / static_cast<double>(total);
    }

    /// Estimated quantile (µs) by linear interpolation inside the 1-2-5
    /// bucket ladder: the first bucket interpolates from 0, the overflow
    /// bucket towards `max`, and the estimate is clamped to [min, max].
    /// 0 for an empty histogram; `q` is clamped to [0, 1].
    [[nodiscard]] double quantile(double q) const noexcept;
};

/// Upper bucket bounds (µs) shared by every latency histogram: a 1-2-5
/// geometric ladder from 1 µs to 10 s. Values above the last bound land in
/// the overflow bucket, so `HistogramSnapshot::counts` has size() + 1
/// entries.
[[nodiscard]] const std::vector<double>& histogram_bucket_bounds();

/// Process-global observability registry.
class Registry {
public:
    /// The process-wide instance. First access applies the HTD_OBS /
    /// HTD_OBS_PATH environment variables.
    static Registry& global();

    /// Swap the sink; `SinkKind::kInherit` is a no-op. Not reset()-ing:
    /// already-recorded data survives a sink change.
    void configure(SinkKind sink, std::string json_path = {}) HTD_EXCLUDES(mutex_);
    void configure(const Config& config) {
        configure(config.sink, config.json_path);
        if (!config.trace_path.empty()) set_trace_path(config.trace_path);
    }

    /// True when any sink other than kOff is active.
    [[nodiscard]] bool enabled() const noexcept {
        return enabled_.load(std::memory_order_relaxed);
    }

    [[nodiscard]] SinkKind sink() const noexcept {
        return sink_.load(std::memory_order_relaxed);
    }

    /// Default path for write_default_report().
    [[nodiscard]] std::string json_path() const HTD_EXCLUDES(mutex_);

    /// Trace-event JSON destination (empty = no trace requested). First
    /// access applies the HTD_OBS_TRACE environment variable.
    [[nodiscard]] std::string trace_path() const HTD_EXCLUDES(mutex_);
    void set_trace_path(std::string path) HTD_EXCLUDES(mutex_);

    /// True when HTD_OBS_TRACE_NORMALIZE requested deterministic
    /// (structure-derived) trace timestamps; see trace_export.hpp.
    [[nodiscard]] bool trace_normalize() const noexcept {
        return trace_normalize_.load(std::memory_order_relaxed);
    }
    void set_trace_normalize(bool normalize) noexcept {
        trace_normalize_.store(normalize, std::memory_order_relaxed);
    }

    /// True when spans should attach per-span resource attribution (peak
    /// RSS delta, allocation-count delta). Off by default — the capture
    /// costs two getrusage calls per span — and enabled through
    /// HTD_OBS_RESOURCES=1 or set_resource_attribution().
    [[nodiscard]] bool resource_attribution() const noexcept {
        return resources_.load(std::memory_order_relaxed);
    }
    void set_resource_attribution(bool enabled) noexcept {
        resources_.store(enabled, std::memory_order_relaxed);
    }

    /// Small, stable, 1-based index of the calling thread, assigned in
    /// first-use order. SpanRecord::thread carries it so traces group
    /// spans per thread deterministically (no OS thread-id churn).
    [[nodiscard]] static std::uint32_t current_thread_index() noexcept;

    // --- metrics -----------------------------------------------------------

    /// Add `delta` to a monotonic counter (created on first use).
    void counter_add(std::string_view name, double delta = 1.0) HTD_EXCLUDES(mutex_);

    /// Add `delta` to a work counter. Work counters are a first-class
    /// metric kind counting *algorithmic* work (kernel evaluations, Gram
    /// cells, SMO iterations, Monte Carlo samples) so a perf diff can
    /// distinguish "ran faster" from "did less work". Names follow the
    /// `work.<stage>.<quantity>` convention (enforced by the htd_lint
    /// `work-counter-name` rule in src/).
    void work_add(std::string_view name, double delta) HTD_EXCLUDES(mutex_);

    /// Set a last-value-wins gauge.
    void gauge_set(std::string_view name, double value) HTD_EXCLUDES(mutex_);

    /// Record one latency observation (µs) into a fixed-bucket histogram.
    void histogram_record(std::string_view name, double value_us) HTD_EXCLUDES(mutex_);

    // --- spans (used by ScopedSpan; see span.hpp) --------------------------

    /// Store a completed span and feed its wall time into the
    /// "span.<name>" latency histogram. Spans beyond `kMaxStoredSpans` are
    /// counted in the `obs.spans_dropped` counter instead of stored,
    /// bounding memory under hot loops (the histogram keeps aggregating).
    void span_record(SpanRecord record) HTD_EXCLUDES(mutex_);

    /// Unique span id (1-based). Cheap; called even before timing starts.
    [[nodiscard]] std::uint64_t next_span_id() noexcept {
        return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    }

    // --- snapshots ---------------------------------------------------------

    [[nodiscard]] std::vector<SpanRecord> spans() const HTD_EXCLUDES(mutex_);
    [[nodiscard]] std::map<std::string, double> counters() const HTD_EXCLUDES(mutex_);
    [[nodiscard]] std::map<std::string, double> works() const HTD_EXCLUDES(mutex_);
    [[nodiscard]] std::map<std::string, double> gauges() const HTD_EXCLUDES(mutex_);
    [[nodiscard]] std::map<std::string, HistogramSnapshot> histograms() const
        HTD_EXCLUDES(mutex_);

    /// Current value of one counter (0 when absent).
    [[nodiscard]] double counter_value(std::string_view name) const HTD_EXCLUDES(mutex_);

    /// Current value of one work counter (0 when absent).
    [[nodiscard]] double work_value(std::string_view name) const HTD_EXCLUDES(mutex_);

    /// Number of spans currently stored.
    [[nodiscard]] std::size_t span_count() const HTD_EXCLUDES(mutex_);

    /// Spans rejected by the kMaxStoredSpans cap so far (the
    /// `obs.spans_dropped` counter; 0 when nothing was dropped).
    [[nodiscard]] double spans_dropped() const {
        return counter_value("obs.spans_dropped");
    }

    /// Under the text sink, print a metrics summary table to stderr.
    /// No-op otherwise.
    void flush() const;

    /// Under the JSON sink, write a generic RunReport snapshot to
    /// json_path(). No-op otherwise.
    void write_default_report() const;

    /// Drop all recorded spans and metrics (sink selection is kept).
    void reset() HTD_EXCLUDES(mutex_);

    /// Stored-span cap (per process, not per run).
    static constexpr std::size_t kMaxStoredSpans = 65536;

private:
    Registry();

    void apply_environment();
    void histogram_record_locked(std::string_view name, double value_us)
        HTD_REQUIRES(mutex_);
    void counter_add_locked(std::string_view name, double delta) HTD_REQUIRES(mutex_);

    std::atomic<bool> enabled_{false};
    std::atomic<SinkKind> sink_{SinkKind::kOff};
    std::atomic<bool> trace_normalize_{false};
    std::atomic<bool> resources_{false};
    std::atomic<std::uint64_t> next_id_{0};

    mutable core::Mutex mutex_;
    std::string json_path_ HTD_GUARDED_BY(mutex_);
    std::string trace_path_ HTD_GUARDED_BY(mutex_);
    std::vector<SpanRecord> spans_ HTD_GUARDED_BY(mutex_);
    std::map<std::string, double, std::less<>> counters_ HTD_GUARDED_BY(mutex_);
    std::map<std::string, double, std::less<>> works_ HTD_GUARDED_BY(mutex_);
    std::map<std::string, double, std::less<>> gauges_ HTD_GUARDED_BY(mutex_);
    std::map<std::string, HistogramSnapshot, std::less<>> histograms_
        HTD_GUARDED_BY(mutex_);
};

}  // namespace htd::obs
