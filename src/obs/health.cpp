#include "obs/health.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <stdexcept>

#include "obs/journal.hpp"
#include "obs/obs.hpp"

namespace htd::obs {

namespace {

constexpr double kTiny = 1e-300;

/// Linear-interpolation quantile of an already sorted sample.
double quantile_sorted(const std::vector<double>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    if (sorted.size() == 1) return sorted.front();
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

std::vector<double> sorted_copy(std::span<const double> xs) {
    std::vector<double> out(xs.begin(), xs.end());
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<double> column(const linalg::Matrix& m, std::size_t c) {
    std::vector<double> out(m.rows());
    for (std::size_t r = 0; r < m.rows(); ++r) out[r] = m(r, c);
    return out;
}

double mean_of(const std::vector<double>& xs) {
    double s = 0.0;
    for (const double x : xs) s += x;
    return xs.empty() ? 0.0 : s / static_cast<double>(xs.size());
}

double stddev_of(const std::vector<double>& xs, double mu) {
    if (xs.size() < 2) return 0.0;
    double s = 0.0;
    for (const double x : xs) s += (x - mu) * (x - mu);
    return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

/// Mean Euclidean distance between the rows of `a` and the rows of `b`
/// (a == b handled by the caller passing the same matrix; self-pairs are
/// excluded there through the divisor).
double mean_cross_distance(const linalg::Matrix& a, const linalg::Matrix& b) {
    double sum = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < b.rows(); ++j) {
            double d2 = 0.0;
            for (std::size_t c = 0; c < a.cols(); ++c) {
                const double d = a(i, c) - b(j, c);
                d2 += d * d;
            }
            sum += std::sqrt(d2);
        }
    }
    return sum / (static_cast<double>(a.rows()) * static_cast<double>(b.rows()));
}

/// Mean pairwise distance within one sample, V-statistic form (self pairs
/// included with distance 0, divisor n^2): keeps the energy-distance
/// estimate nonnegative, matching the characteristic-function identity.
double mean_within_distance(const linalg::Matrix& a) {
    if (a.rows() < 2) return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = i + 1; j < a.rows(); ++j) {
            double d2 = 0.0;
            for (std::size_t c = 0; c < a.cols(); ++c) {
                const double d = a(i, c) - a(j, c);
                d2 += d * d;
            }
            sum += std::sqrt(d2);
        }
    }
    const double n = static_cast<double>(a.rows());
    return 2.0 * sum / (n * n);
}

}  // namespace

std::string health_level_name(HealthLevel level) {
    switch (level) {
        case HealthLevel::kHealthy: return "healthy";
        case HealthLevel::kWarn: return "warn";
        case HealthLevel::kDegraded: return "degraded";
        case HealthLevel::kCritical: return "critical";
    }
    throw std::invalid_argument("health_level_name: unknown level");
}

HealthLevel health_level_from_name(std::string_view name) {
    if (name == "healthy") return HealthLevel::kHealthy;
    if (name == "warn") return HealthLevel::kWarn;
    if (name == "degraded") return HealthLevel::kDegraded;
    if (name == "critical") return HealthLevel::kCritical;
    throw std::invalid_argument("health_level_from_name: unknown level '" +
                                std::string(name) + "'");
}

// --- two-sample statistics ---------------------------------------------------

double ks_statistic(std::span<const double> a, std::span<const double> b) {
    if (a.empty() || b.empty()) {
        throw std::invalid_argument("ks_statistic: empty sample");
    }
    const std::vector<double> sa = sorted_copy(a);
    const std::vector<double> sb = sorted_copy(b);
    const double na = static_cast<double>(sa.size());
    const double nb = static_cast<double>(sb.size());
    std::size_t i = 0;
    std::size_t j = 0;
    double d = 0.0;
    while (i < sa.size() && j < sb.size()) {
        const double x = std::min(sa[i], sb[j]);
        while (i < sa.size() && sa[i] <= x) ++i;
        while (j < sb.size() && sb[j] <= x) ++j;
        d = std::max(d, std::abs(static_cast<double>(i) / na -
                                 static_cast<double>(j) / nb));
    }
    return d;
}

double scaled_ks_statistic(double d, std::size_t n, std::size_t m) {
    if (n == 0 || m == 0) {
        throw std::invalid_argument("scaled_ks_statistic: empty sample");
    }
    const double nn = static_cast<double>(n);
    const double mm = static_cast<double>(m);
    return d * std::sqrt(nn * mm / (nn + mm));
}

double energy_distance(const linalg::Matrix& a, const linalg::Matrix& b) {
    if (a.rows() == 0 || b.rows() == 0) {
        throw std::invalid_argument("energy_distance: empty sample");
    }
    if (a.cols() != b.cols()) {
        throw std::invalid_argument("energy_distance: column mismatch");
    }
    const double cross = mean_cross_distance(a, b);
    const double within_a = mean_within_distance(a);
    const double within_b = mean_within_distance(b);
    return std::max(0.0, 2.0 * cross - within_a - within_b);
}

double energy_coefficient(const linalg::Matrix& a, const linalg::Matrix& b) {
    if (a.rows() == 0 || b.rows() == 0 || a.cols() != b.cols()) return 0.0;
    const double cross = mean_cross_distance(a, b);
    if (cross <= kTiny) return 0.0;
    const double e =
        std::max(0.0, 2.0 * cross - mean_within_distance(a) - mean_within_distance(b));
    return e / (2.0 * cross);
}

double kish_ess(std::span<const double> weights) noexcept {
    double sum = 0.0;
    double sum_sq = 0.0;
    for (const double w : weights) {
        sum += w;
        sum_sq += w * w;
    }
    if (sum_sq <= 0.0) return 0.0;
    return sum * sum / sum_sq;
}

double weight_entropy_ratio(std::span<const double> weights) noexcept {
    if (weights.size() < 2) return 0.0;
    double sum = 0.0;
    for (const double w : weights) sum += std::max(0.0, w);
    if (sum <= 0.0) return 0.0;
    double h = 0.0;
    for (const double w : weights) {
        const double p = std::max(0.0, w) / sum;
        if (p > 0.0) h -= p * std::log(p);
    }
    return h / std::log(static_cast<double>(weights.size()));
}

// --- ProbeResult -------------------------------------------------------------

void ProbeResult::escalate(HealthLevel at_least, const std::string& reason) {
    level = worse(level, at_least);
    if (!reason.empty()) {
        if (!detail.empty()) detail += "; ";
        detail += reason;
    }
}

io::Json ProbeResult::to_json() const {
    io::Json out = io::Json::object();
    out.set("name", name);
    out.set("level", health_level_name(level));
    out.set("detail", detail);
    io::Json vals = io::Json::object();
    for (const auto& [key, v] : values) {
        vals.set(key, std::isfinite(v) ? io::Json(v) : io::Json());
    }
    out.set("values", std::move(vals));
    return out;
}

// --- HealthMonitor -----------------------------------------------------------

HealthMonitor::HealthMonitor(HealthThresholds thresholds)
    : thresholds_(thresholds) {}

ProbeResult HealthMonitor::record(ProbeResult probe) {
    ProbeResult stored;
    HealthLevel verdict_now = HealthLevel::kHealthy;
    {
        const core::MutexLock lock(mutex_);
        auto it = std::find_if(
            probes_.begin(), probes_.end(),
            [&](const ProbeResult& p) { return p.name == probe.name; });
        if (it == probes_.end()) {
            probes_.push_back(std::move(probe));
            it = probes_.end() - 1;
        } else {
            *it = std::move(probe);
        }
        stored = *it;
        verdict_now = verdict_locked();
    }
    // Gauge publication happens outside the probe lock: the Registry has
    // its own mutex and the Health -> Registry lock order must never be
    // entangled (a sink flushing while a stage records must not deadlock).
    // The journal append follows the same discipline (its own mutex, never
    // nested inside probe state).
    EventJournal& journal = EventJournal::global();
    if (journal.enabled() && stored.name.rfind("drift.", 0) == 0 &&
        stored.level >= HealthLevel::kDegraded) {
        Event ev("drift_trip");
        ev.detail = stored.name + ": " + stored.detail;
        for (const auto& [key, v] : stored.values) ev.value(key, v);
        journal.append(std::move(ev));
    }
    Registry& registry = Registry::global();
    registry.counter_add("health.probes_recorded");
    for (const auto& [key, v] : stored.values) {
        registry.gauge_set("health." + stored.name + "." + key, v);
    }
    registry.gauge_set("health." + stored.name + ".level",
                       static_cast<double>(stored.level));
    registry.gauge_set("health.verdict", static_cast<double>(verdict_now));
    return stored;
}

ProbeResult HealthMonitor::probe_kmm_weights(std::span<const double> weights) const {
    ProbeResult probe;
    probe.name = "kmm_weights";
    const double n = static_cast<double>(weights.size());
    const double ess = kish_ess(weights);
    const double ess_fraction = n > 0.0 ? ess / n : 0.0;
    double sum = 0.0;
    double max_w = 0.0;
    for (const double w : weights) {
        sum += std::max(0.0, w);
        max_w = std::max(max_w, w);
    }
    const double max_share = sum > 0.0 ? max_w / sum : 0.0;
    const double entropy = weight_entropy_ratio(weights);
    probe.value("weights", n)
        .value("effective_sample_size", ess)
        .value("ess_fraction", ess_fraction)
        .value("max_weight_share", max_share)
        .value("entropy_ratio", entropy);

    const HealthThresholds& t = thresholds_;
    if (weights.empty() || sum <= 0.0) {
        probe.escalate(HealthLevel::kCritical, "empty or all-zero weight vector");
        return probe;
    }
    if (ess_fraction < t.kmm_ess_fraction_critical) {
        probe.escalate(HealthLevel::kCritical,
                       "Kish ESS fraction " + std::to_string(ess_fraction) +
                           " below critical floor " +
                           std::to_string(t.kmm_ess_fraction_critical));
    } else if (ess_fraction < t.kmm_ess_fraction_warn) {
        probe.escalate(HealthLevel::kWarn,
                       "Kish ESS fraction " + std::to_string(ess_fraction) +
                           " below " + std::to_string(t.kmm_ess_fraction_warn));
    }
    if (max_share > t.kmm_max_weight_share_critical) {
        probe.escalate(HealthLevel::kCritical,
                       "one weight carries " + std::to_string(max_share) +
                           " of the total mass");
    } else if (max_share > t.kmm_max_weight_share_warn) {
        probe.escalate(HealthLevel::kWarn,
                       "max weight share " + std::to_string(max_share) + " above " +
                           std::to_string(t.kmm_max_weight_share_warn));
    }
    if (entropy < t.kmm_entropy_ratio_warn) {
        probe.escalate(HealthLevel::kWarn,
                       "weight entropy ratio " + std::to_string(entropy) +
                           " below " + std::to_string(t.kmm_entropy_ratio_warn));
    }
    return probe;
}

ProbeResult HealthMonitor::probe_drift(std::string_view name,
                                       const linalg::Matrix& reference,
                                       const linalg::Matrix& incoming) const {
    ProbeResult probe;
    probe.name = std::string(name);
    if (reference.rows() == 0 || incoming.rows() == 0 ||
        reference.cols() != incoming.cols()) {
        probe.escalate(HealthLevel::kCritical,
                       "degenerate drift inputs (empty batch or channel mismatch)");
        return probe;
    }

    double max_ks = 0.0;
    double max_scaled = 0.0;
    double max_shift_sigma = 0.0;
    probe.value("channels", static_cast<double>(reference.cols()));
    probe.value("reference_rows", static_cast<double>(reference.rows()));
    probe.value("incoming_rows", static_cast<double>(incoming.rows()));
    // Per-channel statistics are emitted for the first 16 channels (PCM
    // vectors are short); the maxima below always cover every channel.
    constexpr std::size_t kMaxChannelEmit = 16;
    for (std::size_t c = 0; c < reference.cols(); ++c) {
        const std::vector<double> ref = column(reference, c);
        const std::vector<double> inc = column(incoming, c);
        const double d = ks_statistic(ref, inc);
        const double scaled = scaled_ks_statistic(d, ref.size(), inc.size());
        const double mu_ref = mean_of(ref);
        const double sigma_ref = stddev_of(ref, mu_ref);
        const double shift_sigma =
            std::abs(mean_of(inc) - mu_ref) / std::max(sigma_ref, kTiny);
        max_ks = std::max(max_ks, d);
        max_scaled = std::max(max_scaled, scaled);
        max_shift_sigma = std::max(max_shift_sigma, shift_sigma);
        if (c < kMaxChannelEmit) {
            const std::string suffix = "_ch" + std::to_string(c);
            probe.value("ks" + suffix, d);
            probe.value("scaled_ks" + suffix, scaled);
            probe.value("mean_shift_sigma" + suffix, shift_sigma);
        }
    }
    const double energy = energy_distance(reference, incoming);
    const double coefficient = energy_coefficient(reference, incoming);
    probe.value("max_ks", max_ks)
        .value("max_scaled_ks", max_scaled)
        .value("max_mean_shift_sigma", max_shift_sigma)
        .value("energy_distance", energy)
        .value("energy_coefficient", coefficient);

    const HealthThresholds& t = thresholds_;
    if (max_scaled > t.drift_scaled_ks_critical) {
        probe.escalate(HealthLevel::kCritical,
                       "per-channel scaled KS " + std::to_string(max_scaled) +
                           " above " + std::to_string(t.drift_scaled_ks_critical));
    } else if (max_scaled > t.drift_scaled_ks_degraded) {
        probe.escalate(HealthLevel::kDegraded,
                       "per-channel scaled KS " + std::to_string(max_scaled) +
                           " above " + std::to_string(t.drift_scaled_ks_degraded));
    } else if (max_scaled > t.drift_scaled_ks_warn) {
        probe.escalate(HealthLevel::kWarn,
                       "per-channel scaled KS " + std::to_string(max_scaled) +
                           " above " + std::to_string(t.drift_scaled_ks_warn));
    }
    if (coefficient > t.drift_energy_coefficient_critical) {
        probe.escalate(HealthLevel::kCritical,
                       "energy coefficient " + std::to_string(coefficient) +
                           " above " +
                           std::to_string(t.drift_energy_coefficient_critical));
    } else if (coefficient > t.drift_energy_coefficient_warn) {
        probe.escalate(HealthLevel::kWarn,
                       "energy coefficient " + std::to_string(coefficient) +
                           " above " +
                           std::to_string(t.drift_energy_coefficient_warn));
    }
    return probe;
}

ProbeResult HealthMonitor::probe_kde(std::string_view name,
                                     const linalg::Matrix& source,
                                     const linalg::Matrix& synthetic,
                                     double bandwidth) const {
    ProbeResult probe;
    probe.name = std::string(name);
    probe.value("bandwidth", bandwidth)
        .value("observations", static_cast<double>(source.rows()))
        .value("synthetic_samples", static_cast<double>(synthetic.rows()));
    if (source.rows() == 0 || synthetic.rows() == 0 ||
        source.cols() != synthetic.cols()) {
        probe.escalate(HealthLevel::kCritical,
                       "degenerate KDE inputs (empty population or dim mismatch)");
        return probe;
    }
    if (!(bandwidth > 0.0)) {
        probe.escalate(HealthLevel::kWarn, "non-positive bandwidth");
    }

    double tail_mass_sum = 0.0;
    double max_expansion = 0.0;
    for (std::size_t c = 0; c < source.cols(); ++c) {
        double lo = source(0, c);
        double hi = source(0, c);
        for (std::size_t r = 1; r < source.rows(); ++r) {
            lo = std::min(lo, source(r, c));
            hi = std::max(hi, source(r, c));
        }
        double syn_lo = synthetic(0, c);
        double syn_hi = synthetic(0, c);
        std::size_t outside = 0;
        for (std::size_t r = 0; r < synthetic.rows(); ++r) {
            const double v = synthetic(r, c);
            syn_lo = std::min(syn_lo, v);
            syn_hi = std::max(syn_hi, v);
            if (v < lo || v > hi) ++outside;
        }
        tail_mass_sum +=
            static_cast<double>(outside) / static_cast<double>(synthetic.rows());
        const double src_range = std::max(hi - lo, kTiny);
        max_expansion = std::max(max_expansion, (syn_hi - syn_lo) / src_range);
    }
    const double tail_mass = tail_mass_sum / static_cast<double>(source.cols());
    probe.value("tail_mass", tail_mass).value("max_range_expansion", max_expansion);

    const HealthThresholds& t = thresholds_;
    if (tail_mass > t.kde_tail_mass_critical) {
        probe.escalate(HealthLevel::kCritical,
                       "mean per-axis tail mass " + std::to_string(tail_mass) +
                           " above " + std::to_string(t.kde_tail_mass_critical));
    } else if (tail_mass > t.kde_tail_mass_warn) {
        probe.escalate(HealthLevel::kWarn,
                       "mean per-axis tail mass " + std::to_string(tail_mass) +
                           " above " + std::to_string(t.kde_tail_mass_warn));
    }
    if (max_expansion > t.kde_range_expansion_critical) {
        probe.escalate(HealthLevel::kCritical,
                       "synthetic range expansion " + std::to_string(max_expansion) +
                           "x above " +
                           std::to_string(t.kde_range_expansion_critical) + "x");
    } else if (max_expansion > t.kde_range_expansion_warn) {
        probe.escalate(HealthLevel::kWarn,
                       "synthetic range expansion " + std::to_string(max_expansion) +
                           "x above " + std::to_string(t.kde_range_expansion_warn) +
                           "x");
    }
    return probe;
}

ProbeResult HealthMonitor::probe_mars_fit(std::span<const double> per_output_r2,
                                          const linalg::Matrix& abs_residuals) const {
    ProbeResult probe;
    probe.name = "mars_fit";
    if (per_output_r2.empty()) {
        probe.escalate(HealthLevel::kCritical, "no fitted regression outputs");
        return probe;
    }
    double mean_r2 = 0.0;
    double min_r2 = per_output_r2.front();
    for (const double r2 : per_output_r2) {
        mean_r2 += r2;
        min_r2 = std::min(min_r2, r2);
    }
    mean_r2 /= static_cast<double>(per_output_r2.size());

    std::vector<double> pooled;
    pooled.reserve(abs_residuals.rows() * abs_residuals.cols());
    for (std::size_t r = 0; r < abs_residuals.rows(); ++r) {
        for (std::size_t c = 0; c < abs_residuals.cols(); ++c) {
            pooled.push_back(std::abs(abs_residuals(r, c)));
        }
    }
    std::sort(pooled.begin(), pooled.end());
    probe.value("outputs", static_cast<double>(per_output_r2.size()))
        .value("mean_r2", mean_r2)
        .value("min_r2", min_r2)
        .value("residual_q50", quantile_sorted(pooled, 0.50))
        .value("residual_q90", quantile_sorted(pooled, 0.90))
        .value("residual_q99", quantile_sorted(pooled, 0.99));

    const HealthThresholds& t = thresholds_;
    if (mean_r2 < t.mars_r2_critical) {
        probe.escalate(HealthLevel::kCritical,
                       "mean training R^2 " + std::to_string(mean_r2) + " below " +
                           std::to_string(t.mars_r2_critical));
    } else if (mean_r2 < t.mars_r2_warn) {
        probe.escalate(HealthLevel::kWarn,
                       "mean training R^2 " + std::to_string(mean_r2) + " below " +
                           std::to_string(t.mars_r2_warn));
    }
    return probe;
}

ProbeResult HealthMonitor::probe_regression_residuals(
    const linalg::Matrix& train_abs_residuals,
    const linalg::Matrix& incoming_abs_residuals) const {
    ProbeResult probe;
    probe.name = "regression_residuals";
    if (train_abs_residuals.rows() == 0 || incoming_abs_residuals.rows() == 0 ||
        train_abs_residuals.cols() != incoming_abs_residuals.cols()) {
        probe.escalate(HealthLevel::kCritical,
                       "degenerate residual inputs (empty set or output mismatch)");
        return probe;
    }

    const auto pooled_quantiles = [](const linalg::Matrix& m) {
        std::vector<double> pooled;
        pooled.reserve(m.rows() * m.cols());
        for (std::size_t r = 0; r < m.rows(); ++r) {
            for (std::size_t c = 0; c < m.cols(); ++c) {
                pooled.push_back(std::abs(m(r, c)));
            }
        }
        std::sort(pooled.begin(), pooled.end());
        return std::array<double, 3>{quantile_sorted(pooled, 0.50),
                                     quantile_sorted(pooled, 0.90),
                                     quantile_sorted(pooled, 0.99)};
    };
    const auto train_q = pooled_quantiles(train_abs_residuals);
    const auto incoming_q = pooled_quantiles(incoming_abs_residuals);
    const auto ratio = [](double incoming, double train) {
        return incoming / std::max(train, kTiny);
    };

    // Worst per-output q90 ratio: one stale regression hides in the pool.
    double max_output_ratio = 0.0;
    for (std::size_t c = 0; c < train_abs_residuals.cols(); ++c) {
        std::vector<double> train_col = column(train_abs_residuals, c);
        std::vector<double> incoming_col = column(incoming_abs_residuals, c);
        for (double& v : train_col) v = std::abs(v);
        for (double& v : incoming_col) v = std::abs(v);
        std::sort(train_col.begin(), train_col.end());
        std::sort(incoming_col.begin(), incoming_col.end());
        max_output_ratio = std::max(
            max_output_ratio, ratio(quantile_sorted(incoming_col, 0.90),
                                    quantile_sorted(train_col, 0.90)));
    }

    probe.value("incoming_devices", static_cast<double>(incoming_abs_residuals.rows()))
        .value("train_q50", train_q[0])
        .value("train_q90", train_q[1])
        .value("train_q99", train_q[2])
        .value("incoming_q50", incoming_q[0])
        .value("incoming_q90", incoming_q[1])
        .value("incoming_q99", incoming_q[2])
        .value("q50_ratio", ratio(incoming_q[0], train_q[0]))
        .value("q90_ratio", ratio(incoming_q[1], train_q[1]))
        .value("q99_ratio", ratio(incoming_q[2], train_q[2]))
        .value("max_output_q90_ratio", max_output_ratio);

    const HealthThresholds& t = thresholds_;
    const double q90_ratio = ratio(incoming_q[1], train_q[1]);
    if (q90_ratio > t.residual_q90_ratio_critical) {
        probe.escalate(HealthLevel::kCritical,
                       "incoming residual q90 " + std::to_string(q90_ratio) +
                           "x the training q90 (above " +
                           std::to_string(t.residual_q90_ratio_critical) + "x)");
    } else if (q90_ratio > t.residual_q90_ratio_warn) {
        probe.escalate(HealthLevel::kWarn,
                       "incoming residual q90 " + std::to_string(q90_ratio) +
                           "x the training q90 (above " +
                           std::to_string(t.residual_q90_ratio_warn) + "x)");
    }
    return probe;
}

ProbeResult HealthMonitor::probe_svm_margins(std::string_view name,
                                             std::span<const double> train_decision_values,
                                             double nu, std::size_t support_vectors,
                                             std::size_t trained_samples) const {
    ProbeResult probe;
    probe.name = std::string(name);
    if (train_decision_values.empty() || trained_samples == 0) {
        probe.escalate(HealthLevel::kCritical, "no training decision values");
        return probe;
    }
    std::vector<double> sorted = sorted_copy(train_decision_values);
    std::size_t outside = 0;
    for (const double v : sorted) {
        if (v < 0.0) ++outside;
    }
    const double outside_fraction =
        static_cast<double>(outside) / static_cast<double>(sorted.size());
    const double sv_fraction =
        static_cast<double>(support_vectors) / static_cast<double>(trained_samples);
    const double outlier_excess = outside_fraction / std::max(nu, 1e-6);
    probe.value("trained_samples", static_cast<double>(trained_samples))
        .value("support_vectors", static_cast<double>(support_vectors))
        .value("sv_fraction", sv_fraction)
        .value("outside_fraction", outside_fraction)
        .value("outlier_excess", outlier_excess)
        .value("margin_q05", quantile_sorted(sorted, 0.05))
        .value("margin_q50", quantile_sorted(sorted, 0.50));

    const HealthThresholds& t = thresholds_;
    if (sv_fraction > t.svm_sv_fraction_critical) {
        probe.escalate(HealthLevel::kCritical,
                       "support-vector fraction " + std::to_string(sv_fraction) +
                           " above " + std::to_string(t.svm_sv_fraction_critical));
    } else if (sv_fraction > t.svm_sv_fraction_warn) {
        probe.escalate(HealthLevel::kWarn,
                       "support-vector fraction " + std::to_string(sv_fraction) +
                           " above " + std::to_string(t.svm_sv_fraction_warn));
    }
    if (outlier_excess > t.svm_outlier_excess_critical) {
        probe.escalate(HealthLevel::kCritical,
                       std::to_string(outside_fraction) +
                           " of training points left outside vs nu " +
                           std::to_string(nu));
    } else if (outlier_excess > t.svm_outlier_excess_warn) {
        probe.escalate(HealthLevel::kWarn,
                       std::to_string(outside_fraction) +
                           " of training points left outside vs nu " +
                           std::to_string(nu));
    }
    return probe;
}

HealthLevel HealthMonitor::verdict_locked() const {
    HealthLevel v = HealthLevel::kHealthy;
    for (const ProbeResult& p : probes_) v = worse(v, p.level);
    return v;
}

HealthLevel HealthMonitor::verdict() const {
    const core::MutexLock lock(mutex_);
    return verdict_locked();
}

std::vector<ProbeResult> HealthMonitor::probes() const {
    const core::MutexLock lock(mutex_);
    return probes_;
}

std::optional<ProbeResult> HealthMonitor::find(std::string_view name) const {
    const core::MutexLock lock(mutex_);
    for (const ProbeResult& p : probes_) {
        if (p.name == name) return p;
    }
    return std::nullopt;
}

void HealthMonitor::clear() {
    const core::MutexLock lock(mutex_);
    probes_.clear();
}

io::Json HealthMonitor::to_json() const {
    const core::MutexLock lock(mutex_);
    io::Json out = io::Json::object();
    out.set("verdict", health_level_name(verdict_locked()));
    io::Json probes = io::Json::array();
    for (const ProbeResult& p : probes_) probes.push_back(p.to_json());
    out.set("probes", std::move(probes));
    return out;
}

}  // namespace htd::obs
