#include "obs/resource.hpp"

#include <atomic>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#if defined(HTD_OBS_COUNT_ALLOCS)
#include <cstdlib>
#include <new>
#endif

namespace htd::obs {

namespace {

std::atomic<std::int64_t> g_alloc_count{0};

std::int64_t peak_rss_bytes() noexcept {
#if defined(__unix__) || defined(__APPLE__)
    rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
    // macOS reports ru_maxrss in bytes.
    return static_cast<std::int64_t>(usage.ru_maxrss);
#else
    // Linux reports ru_maxrss in KiB.
    return static_cast<std::int64_t>(usage.ru_maxrss) * 1024;
#endif
#else
    return 0;
#endif
}

}  // namespace

ResourceSample sample_resources() noexcept {
    ResourceSample sample;
    sample.peak_rss_bytes = peak_rss_bytes();
    sample.alloc_count = g_alloc_count.load(std::memory_order_relaxed);
    return sample;
}

bool alloc_counting_available() noexcept {
#if defined(HTD_OBS_COUNT_ALLOCS)
    return true;
#else
    return false;
#endif
}

}  // namespace htd::obs

#if defined(HTD_OBS_COUNT_ALLOCS)
// Process-wide allocation counting: replace the global allocation functions
// with thin counting wrappers over malloc/free. Opt-in at configure time
// (-DHTD_OBS_COUNT_ALLOCS=ON) because even a relaxed fetch_add per
// allocation is measurable in allocation-heavy micro benchmarks.

namespace {

void* counted_alloc(std::size_t size) {
    htd::obs::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size == 0 ? 1 : size);
}

}  // namespace

void* operator new(std::size_t size) {
    void* ptr = counted_alloc(size);
    if (ptr == nullptr) throw std::bad_alloc();
    return ptr;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
    return counted_alloc(size);
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept { std::free(ptr); }
void operator delete[](void* ptr, const std::nothrow_t&) noexcept { std::free(ptr); }
#endif  // HTD_OBS_COUNT_ALLOCS
