#include "obs/journal.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "obs/span.hpp"

namespace htd::obs {

const std::vector<std::string>& event_kinds() {
    static const std::vector<std::string> kinds = {
        "calibration",       "recalibration", "boundary_fallback",
        "artifact_degraded", "drift_trip",    "quarantine",
        "chip_scored"};
    return kinds;
}

bool event_kind_registered(std::string_view kind) {
    const std::vector<std::string>& kinds = event_kinds();
    return std::find(kinds.begin(), kinds.end(), kind) != kinds.end();
}

io::Json Event::to_json() const {
    io::Json doc = io::Json::object();
    doc.set("schema", std::string(kEventsSchema));
    doc.set("seq", static_cast<double>(seq));
    doc.set("ts_ns", static_cast<double>(ts_ns));
    doc.set("kind", kind);
    doc.set("span", static_cast<double>(span));
    doc.set("lot", lot);
    doc.set("chip", chip);
    doc.set("boundary", boundary);
    doc.set("detail", detail);
    io::Json vals = io::Json::object();
    for (const auto& [key, v] : values) vals.set(key, v);
    doc.set("values", std::move(vals));
    return doc;
}

namespace {

/// Recover the last sequence number of an existing journal so a resumed
/// stream stays strictly monotone. Tolerant: a torn final line (the one
/// crash-safe append can lose) is skipped, falling back to the line before.
std::uint64_t last_sequence_in(const std::string& path) {
    std::ifstream in(path);
    if (!in.is_open()) return 0;
    std::uint64_t last = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        try {
            const io::Json record = io::Json::parse(line);
            if (record.contains("seq")) {
                last = static_cast<std::uint64_t>(record.at("seq").number());
            }
        } catch (const std::invalid_argument&) {
            // Torn tail from an interrupted append; keep the previous seq.
        }
    }
    return last;
}

}  // namespace

EventJournal& EventJournal::global() {
    static EventJournal* instance HTD_SHARED_STATE_OK(
        "process-wide journal handle; written once by the thread-safe "
        "magic-static initializer, read-only afterwards") = [] {
        static EventJournal journal HTD_SHARED_STATE_OK(
            "singleton journal storage; every mutation after construction "
            "goes through the journal mutex");
        journal.apply_environment();
        return &journal;
    }();
    return *instance;
}

EventJournal::~EventJournal() = default;

void EventJournal::apply_environment() {
    // getenv reads below: journal construction runs once, before any worker
    // threads exist, and nothing in this process calls setenv.
    const char* normalize = std::getenv("HTD_OBS_JOURNAL_NORMALIZE");  // NOLINT(concurrency-mt-unsafe)
    if (normalize != nullptr) {
        std::string error;
        set_normalized(
            bool_env_value("HTD_OBS_JOURNAL_NORMALIZE", normalize, &error));
        // Like the Registry, the global journal is constructed once per
        // process, so a typo warns exactly once.
        if (!error.empty()) std::fprintf(stderr, "%s\n", error.c_str());
    }
    const char* path = std::getenv("HTD_OBS_JOURNAL");  // NOLINT(concurrency-mt-unsafe)
    if (path != nullptr && *path != '\0') open(path);
}

void EventJournal::reset_locked() {
    if (out_.is_open()) out_.close();
    path_.clear();
    seq_ = 0;
    rotate_bytes_ = 0;
    bytes_written_ = 0;
    ring_.clear();
    ring_head_ = 0;
}

void EventJournal::open(const std::string& path) {
    const core::MutexLock lock(mutex_);
    reset_locked();
    seq_ = last_sequence_in(path);
    out_.open(path, std::ios::binary | std::ios::app);
    if (!out_.is_open()) {
        enabled_.store(false, std::memory_order_relaxed);
        throw std::runtime_error("EventJournal: cannot open journal file " +
                                 path);
    }
    path_ = path;
    enabled_.store(true, std::memory_order_relaxed);
}

void EventJournal::enable_memory() {
    const core::MutexLock lock(mutex_);
    reset_locked();
    enabled_.store(true, std::memory_order_relaxed);
}

void EventJournal::close() {
    const core::MutexLock lock(mutex_);
    enabled_.store(false, std::memory_order_relaxed);
    reset_locked();
}

void EventJournal::set_rotate_bytes(std::uint64_t max_bytes) {
    const core::MutexLock lock(mutex_);
    rotate_bytes_ = max_bytes;
}

void EventJournal::append(Event event) {
    if (!enabled()) return;
    if (!event_kind_registered(event.kind)) {
        throw std::invalid_argument(
            "EventJournal: unregistered event kind '" + event.kind +
            "' — register it in obs::event_kinds() (src/obs/journal.hpp)");
    }
    event.span = current_span_id();
    const core::MutexLock lock(mutex_);
    if (!enabled()) return;  // closed between the fast check and the lock
    event.seq = ++seq_;
    event.ts_ns = normalized() ? static_cast<std::int64_t>(event.seq)
                               : wall_clock_ns();
    if (out_.is_open()) {
        const std::string line = event.to_json().dump() + "\n";
        if (rotate_bytes_ > 0 && bytes_written_ > 0 &&
            bytes_written_ + line.size() > rotate_bytes_) {
            // Atomic rotation: the closed stream is renamed aside in one
            // step, then a fresh stream continues the sequence. A crash
            // between the two loses no records — either the rename did not
            // happen (journal intact) or `<path>.1` holds everything.
            out_.close();
            const std::string aside = path_ + ".1";
            std::remove(aside.c_str());
            if (std::rename(path_.c_str(), aside.c_str()) != 0) {
                enabled_.store(false, std::memory_order_relaxed);
                throw std::runtime_error("EventJournal: cannot rotate " +
                                         path_ + " -> " + aside);
            }
            out_.open(path_, std::ios::binary | std::ios::app);
            if (!out_.is_open()) {
                enabled_.store(false, std::memory_order_relaxed);
                throw std::runtime_error(
                    "EventJournal: cannot reopen journal file " + path_ +
                    " after rotation");
            }
            bytes_written_ = 0;
        }
        out_.write(line.data(), static_cast<std::streamsize>(line.size()));
        out_.flush();
        if (!out_.good()) {
            enabled_.store(false, std::memory_order_relaxed);
            throw std::runtime_error("EventJournal: write to " + path_ +
                                     " failed");
        }
        bytes_written_ += line.size();
    }
    if (ring_.size() < kMaxRecentEvents) {
        ring_.push_back(std::move(event));
    } else {
        ring_[ring_head_] = std::move(event);
        ring_head_ = (ring_head_ + 1) % kMaxRecentEvents;
    }
}

std::vector<Event> EventJournal::recent() const {
    const core::MutexLock lock(mutex_);
    std::vector<Event> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
        out.push_back(ring_[(ring_head_ + i) % ring_.size()]);
    }
    return out;
}

std::uint64_t EventJournal::sequence() const {
    const core::MutexLock lock(mutex_);
    return seq_;
}

std::string EventJournal::path() const {
    const core::MutexLock lock(mutex_);
    return path_;
}

}  // namespace htd::obs
