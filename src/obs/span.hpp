#pragma once
/// \file span.hpp
/// RAII trace spans. A `ScopedSpan` measures the wall-clock and thread-CPU
/// time between its construction and destruction and records the result in
/// `Registry::global()`. Spans nest through a thread-local stack: a span
/// opened while another is alive on the same thread becomes its child
/// (SpanRecord::parent / depth), so stage timings decompose into their
/// sub-steps.
///
///     void run_stage() {
///         obs::ScopedSpan span("pipeline.stage1");
///         span.attr("samples", n);
///         ...  // child ScopedSpans opened here nest under stage1
///     }
///
/// When the registry is disabled the constructor is a single relaxed atomic
/// load and everything else is skipped — cheap enough to leave in hot paths.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/obs.hpp"

namespace htd::obs {

class ScopedSpan {
public:
    /// Opens the span (no-op when the registry is disabled).
    explicit ScopedSpan(std::string_view name);

    /// Closes the span and records it.
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;
    ScopedSpan(ScopedSpan&&) = delete;
    ScopedSpan& operator=(ScopedSpan&&) = delete;

    /// Attach a numeric attribute to the record (no-op when disabled).
    void attr(std::string_view key, double value);

    /// True when the span is actually recording.
    [[nodiscard]] bool active() const noexcept { return active_; }

private:
    bool active_ = false;
    bool resources_ = false;
    std::uint64_t id_ = 0;
    std::uint64_t parent_ = 0;
    std::uint32_t depth_ = 0;
    std::uint32_t thread_ = 0;
    std::int64_t start_wall_ns_ = 0;
    std::int64_t start_cpu_ns_ = 0;
    std::int64_t start_peak_rss_ = 0;
    std::int64_t start_allocs_ = 0;
    std::string name_;
    std::vector<std::pair<std::string, double>> attrs_;
};

/// Id of the innermost open ScopedSpan on the calling thread — 0 when no
/// span is open (or the registry is disabled, which leaves spans inactive).
/// Journal records (journal.hpp) carry this id so `htd.events.v1` lines
/// cross-reference the `htd.trace.v1` span they happened inside.
[[nodiscard]] std::uint64_t current_span_id() noexcept;

/// Monotonic wall clock, ns since an arbitrary process-local epoch.
[[nodiscard]] std::int64_t wall_clock_ns() noexcept;

/// CPU time consumed by the calling thread, ns (falls back to process CPU
/// time on platforms without a thread clock).
[[nodiscard]] std::int64_t thread_cpu_ns() noexcept;

}  // namespace htd::obs
