#include "obs/run_report.hpp"

#include <cstdio>

#include "obs/sink.hpp"
#include "obs/trace_export.hpp"

namespace htd::obs {

RunReport::RunReport(std::string name) : doc_(io::Json::object()) {
    doc_.set("run", std::move(name));
    // v2 adds the optional "health" section (and per-histogram quantiles in
    // "observability"); every v1 field is unchanged, so v1 readers that
    // ignore unknown keys still parse v2 documents.
    doc_.set("schema", "htd.run_report.v2");
}

RunReport& RunReport::set(const std::string& key, io::Json value) {
    doc_.set(key, std::move(value));
    return *this;
}

RunReport& RunReport::capture_observability(const Registry& registry) {
    doc_.set("observability", observability_json(registry));
    return *this;
}

void RunReport::write(const std::string& path, int indent) const {
    doc_.dump_to_file(path, indent);
}

std::string write_bench_report(const std::string& bench_name, io::Json payload,
                               const Registry& registry) {
    RunReport report("bench_" + bench_name);
    report.set("results", std::move(payload));
    report.capture_observability(registry);
    const std::string path = "BENCH_" + bench_name + ".json";
    report.write(path);
    const std::string trace = write_trace_if_configured(registry);
    if (!trace.empty()) {
        std::fprintf(stderr, "[obs] trace written to %s\n", trace.c_str());
    }
    return path;
}

}  // namespace htd::obs
