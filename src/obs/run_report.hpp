#pragma once
/// \file run_report.hpp
/// Structured, machine-readable record of one pipeline / bench execution.
/// A `RunReport` is a named JSON document that reporting code fills with
/// domain sections (config, datasets, per-boundary metrics, ...) and that
/// can capture the global observability state (spans + metrics) as its
/// "observability" section. Benches use `write_bench_report` to emit the
/// `BENCH_<name>.json` artifacts tracked by the perf trajectory.

#include <string>

#include "io/json.hpp"
#include "obs/obs.hpp"

namespace htd::obs {

class RunReport {
public:
    /// `name` identifies the run (e.g. "quickstart", "bench_roc").
    explicit RunReport(std::string name);

    /// Set a top-level section; later sets of the same key overwrite.
    RunReport& set(const std::string& key, io::Json value);

    /// Snapshot `registry` (spans + metrics) into the "observability"
    /// section. Call after the instrumented work has finished.
    RunReport& capture_observability(const Registry& registry = Registry::global());

    /// The document so far (name + sections, in a deterministic key order).
    [[nodiscard]] const io::Json& json() const noexcept { return doc_; }

    /// Serialize (pretty-printed) and write; throws std::runtime_error on
    /// IO failure.
    void write(const std::string& path, int indent = 2) const;

private:
    io::Json doc_;
};

/// Emit "BENCH_<bench_name>.json" in the working directory: `payload`
/// under "results" plus the registry's observability snapshot. Returns the
/// path written.
[[nodiscard]] std::string write_bench_report(const std::string& bench_name, io::Json payload,
                               const Registry& registry = Registry::global());

}  // namespace htd::obs
