#include "obs/obs.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "obs/run_report.hpp"
#include "obs/sink.hpp"

namespace htd::obs {

std::string sink_kind_name(SinkKind kind) {
    switch (kind) {
        case SinkKind::kInherit: return "inherit";
        case SinkKind::kOff: return "off";
        case SinkKind::kText: return "text";
        case SinkKind::kJson: return "json";
    }
    throw std::invalid_argument("sink_kind_name: unknown sink kind");
}

SinkKind sink_kind_from_env(std::string_view value, std::string* error) {
    if (value.empty() || value == "off") return SinkKind::kOff;
    if (value == "text") return SinkKind::kText;
    if (value == "json") return SinkKind::kJson;
    if (error != nullptr) {
        *error = "[obs] unrecognized HTD_OBS value '" + std::string(value) +
                 "' — valid values are: off, text, json (observability stays off)";
    }
    return SinkKind::kInherit;
}

bool bool_env_value(std::string_view variable, std::string_view value,
                    std::string* error) {
    if (value.empty() || value == "0") return false;
    if (value == "1") return true;
    if (error != nullptr) {
        *error = "[obs] unrecognized " + std::string(variable) + " value '" +
                 std::string(value) + "' — valid values are: 0, 1 (treated as 0)";
    }
    return false;
}

const std::vector<double>& histogram_bucket_bounds() {
    // 1-2-5 ladder, 1 µs .. 10 s; values above fall into the overflow bucket.
    static const std::vector<double> bounds = {
        1.0,     2.0,     5.0,     10.0,     20.0,     50.0,     100.0,
        200.0,   500.0,   1e3,     2e3,      5e3,      1e4,      2e4,
        5e4,     1e5,     2e5,     5e5,      1e6,      2e6,      5e6,
        1e7};
    return bounds;
}

double HistogramSnapshot::quantile(double q) const noexcept {
    if (total == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const std::vector<double>& bounds = histogram_bucket_bounds();
    const double target = q * static_cast<double>(total);
    double cumulative = 0.0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0) continue;
        const double next = cumulative + static_cast<double>(counts[i]);
        if (target <= next) {
            const double lo = i == 0 ? 0.0 : bounds[i - 1];
            const double hi = i < bounds.size() ? bounds[i] : std::max(max, lo);
            const double frac = (target - cumulative) / static_cast<double>(counts[i]);
            return std::clamp(lo + frac * (hi - lo), min, max);
        }
        cumulative = next;
    }
    return max;
}

Registry::Registry() { apply_environment(); }

Registry& Registry::global() {
    static Registry instance HTD_SHARED_STATE_OK(
        "process-wide metrics registry: every mutation goes through mutex_ "
        "or an atomic, and magic-static construction is thread-safe");
    return instance;
}

void Registry::apply_environment() {
    // getenv reads below: registry construction runs once, before any
    // worker threads exist, and nothing in this process calls setenv.
    const char* path = std::getenv("HTD_OBS_PATH");  // NOLINT(concurrency-mt-unsafe)
    json_path_ = (path != nullptr && *path != '\0') ? path : "htd_obs.json";

    const char* trace = std::getenv("HTD_OBS_TRACE");  // NOLINT(concurrency-mt-unsafe)
    if (trace != nullptr && *trace != '\0') trace_path_ = trace;

    // Boolean toggles share the HTD_OBS typo contract: an invalid value
    // warns once on stderr (registry construction runs once per process)
    // naming the valid values instead of silently acting as "on" or "off".
    const char* normalize = std::getenv("HTD_OBS_TRACE_NORMALIZE");  // NOLINT(concurrency-mt-unsafe)
    if (normalize != nullptr) {
        std::string error;
        if (bool_env_value("HTD_OBS_TRACE_NORMALIZE", normalize, &error)) {
            trace_normalize_.store(true, std::memory_order_relaxed);
        }
        if (!error.empty()) std::fprintf(stderr, "%s\n", error.c_str());
    }

    const char* resources = std::getenv("HTD_OBS_RESOURCES");  // NOLINT(concurrency-mt-unsafe)
    if (resources != nullptr) {
        std::string error;
        if (bool_env_value("HTD_OBS_RESOURCES", resources, &error)) {
            resources_.store(true, std::memory_order_relaxed);
        }
        if (!error.empty()) std::fprintf(stderr, "%s\n", error.c_str());
    }

    const char* mode = std::getenv("HTD_OBS");  // NOLINT(concurrency-mt-unsafe)
    if (mode == nullptr) {
        // A trace request implies recording even without an explicit sink.
        if (!trace_path_.empty()) configure(SinkKind::kJson);
        return;
    }
    std::string error;
    const SinkKind kind = sink_kind_from_env(mode, &error);
    if (kind == SinkKind::kInherit) {
        // Registry construction runs once per process, so this warning is
        // naturally one-time.
        std::fprintf(stderr, "%s\n", error.c_str());
        return;
    }
    configure(kind);
}

void Registry::configure(SinkKind sink, std::string json_path) {
    if (sink == SinkKind::kInherit && json_path.empty()) return;
    {
        const core::MutexLock lock(mutex_);
        if (!json_path.empty()) json_path_ = std::move(json_path);
    }
    if (sink == SinkKind::kInherit) return;
    sink_.store(sink, std::memory_order_relaxed);
    enabled_.store(sink != SinkKind::kOff, std::memory_order_relaxed);
}

std::string Registry::json_path() const {
    const core::MutexLock lock(mutex_);
    return json_path_;
}

std::string Registry::trace_path() const {
    const core::MutexLock lock(mutex_);
    return trace_path_;
}

void Registry::set_trace_path(std::string path) {
    const core::MutexLock lock(mutex_);
    trace_path_ = std::move(path);
}

std::uint32_t Registry::current_thread_index() noexcept {
    static std::atomic<std::uint32_t> next HTD_SHARED_STATE_OK(
        "monotonic thread-index source; the relaxed fetch_add is the only "
        "mutation and collisions are impossible"){0};
    thread_local const std::uint32_t index =
        next.fetch_add(1, std::memory_order_relaxed) + 1;
    return index;
}

void Registry::counter_add_locked(std::string_view name, double delta) {
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        counters_.emplace(std::string(name), delta);
    } else {
        it->second += delta;
    }
}

void Registry::counter_add(std::string_view name, double delta) {
    if (!enabled()) return;
    const core::MutexLock lock(mutex_);
    counter_add_locked(name, delta);
}

void Registry::work_add(std::string_view name, double delta) {
    if (!enabled()) return;
    const core::MutexLock lock(mutex_);
    auto it = works_.find(name);
    if (it == works_.end()) {
        works_.emplace(std::string(name), delta);
    } else {
        it->second += delta;
    }
}

void Registry::gauge_set(std::string_view name, double value) {
    if (!enabled()) return;
    const core::MutexLock lock(mutex_);
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
        gauges_.emplace(std::string(name), value);
    } else {
        it->second = value;
    }
}

void Registry::histogram_record_locked(std::string_view name, double value_us) {
    const std::vector<double>& bounds = histogram_bucket_bounds();
    const auto bucket = static_cast<std::size_t>(
        std::upper_bound(bounds.begin(), bounds.end(), value_us) - bounds.begin());
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_.emplace(std::string(name), HistogramSnapshot{}).first;
        it->second.counts.assign(bounds.size() + 1, 0);
    }
    HistogramSnapshot& h = it->second;
    h.counts[bucket] += 1;
    h.sum += value_us;
    h.min = h.total == 0 ? value_us : std::min(h.min, value_us);
    h.max = h.total == 0 ? value_us : std::max(h.max, value_us);
    h.total += 1;
}

void Registry::histogram_record(std::string_view name, double value_us) {
    if (!enabled()) return;
    const core::MutexLock lock(mutex_);
    histogram_record_locked(name, value_us);
}

void Registry::span_record(SpanRecord record) {
    if (!enabled()) return;
    if (sink() == SinkKind::kText) {
        const std::string line = span_text_line(record);
        std::fprintf(stderr, "%s\n", line.c_str());
    }
    const core::MutexLock lock(mutex_);
    // Every span also feeds a latency histogram, so repeated spans keep an
    // aggregate view even once the stored-span cap is hit.
    histogram_record_locked("span." + record.name,
                            static_cast<double>(record.wall_ns) / 1e3);
    if (spans_.size() >= kMaxStoredSpans) {
        counter_add_locked("obs.spans_dropped", 1.0);
        return;
    }
    spans_.push_back(std::move(record));
}

std::vector<SpanRecord> Registry::spans() const {
    const core::MutexLock lock(mutex_);
    return spans_;
}

std::map<std::string, double> Registry::counters() const {
    const core::MutexLock lock(mutex_);
    return {counters_.begin(), counters_.end()};
}

std::map<std::string, double> Registry::works() const {
    const core::MutexLock lock(mutex_);
    return {works_.begin(), works_.end()};
}

std::map<std::string, double> Registry::gauges() const {
    const core::MutexLock lock(mutex_);
    return {gauges_.begin(), gauges_.end()};
}

std::map<std::string, HistogramSnapshot> Registry::histograms() const {
    const core::MutexLock lock(mutex_);
    return {histograms_.begin(), histograms_.end()};
}

double Registry::counter_value(std::string_view name) const {
    const core::MutexLock lock(mutex_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0.0 : it->second;
}

double Registry::work_value(std::string_view name) const {
    const core::MutexLock lock(mutex_);
    const auto it = works_.find(name);
    return it == works_.end() ? 0.0 : it->second;
}

std::size_t Registry::span_count() const {
    const core::MutexLock lock(mutex_);
    return spans_.size();
}

void Registry::flush() const {
    if (sink() != SinkKind::kText) return;
    const std::string text = metrics_text(*this);
    if (!text.empty()) std::fprintf(stderr, "%s", text.c_str());
}

void Registry::write_default_report() const {
    if (sink() != SinkKind::kJson) return;
    RunReport report("htd_obs");
    report.capture_observability(*this);
    report.write(json_path());
}

void Registry::reset() {
    const core::MutexLock lock(mutex_);
    spans_.clear();
    counters_.clear();
    works_.clear();
    gauges_.clear();
    histograms_.clear();
    // Restart span ids so a reset registry reproduces the exact same
    // trace (the normalized byte-identity guarantee holds within one
    // process, not just across runs). Spans still open across a reset
    // already dangle — their parent links point at cleared records — so
    // restarting the counter does not lose anything that was coherent.
    next_id_.store(0, std::memory_order_relaxed);
}

}  // namespace htd::obs
