#include "obs/obs.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "obs/run_report.hpp"
#include "obs/sink.hpp"

namespace htd::obs {

std::string sink_kind_name(SinkKind kind) {
    switch (kind) {
        case SinkKind::kInherit: return "inherit";
        case SinkKind::kOff: return "off";
        case SinkKind::kText: return "text";
        case SinkKind::kJson: return "json";
    }
    throw std::invalid_argument("sink_kind_name: unknown sink kind");
}

const std::vector<double>& histogram_bucket_bounds() {
    // 1-2-5 ladder, 1 µs .. 10 s; values above fall into the overflow bucket.
    static const std::vector<double> bounds = {
        1.0,     2.0,     5.0,     10.0,     20.0,     50.0,     100.0,
        200.0,   500.0,   1e3,     2e3,      5e3,      1e4,      2e4,
        5e4,     1e5,     2e5,     5e5,      1e6,      2e6,      5e6,
        1e7};
    return bounds;
}

double HistogramSnapshot::quantile(double q) const noexcept {
    if (total == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const std::vector<double>& bounds = histogram_bucket_bounds();
    const double target = q * static_cast<double>(total);
    double cumulative = 0.0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0) continue;
        const double next = cumulative + static_cast<double>(counts[i]);
        if (target <= next) {
            const double lo = i == 0 ? 0.0 : bounds[i - 1];
            const double hi = i < bounds.size() ? bounds[i] : std::max(max, lo);
            const double frac = (target - cumulative) / static_cast<double>(counts[i]);
            return std::clamp(lo + frac * (hi - lo), min, max);
        }
        cumulative = next;
    }
    return max;
}

Registry::Registry() { apply_environment(); }

Registry& Registry::global() {
    static Registry instance;
    return instance;
}

void Registry::apply_environment() {
    const char* path = std::getenv("HTD_OBS_PATH");
    json_path_ = (path != nullptr && *path != '\0') ? path : "htd_obs.json";

    const char* mode = std::getenv("HTD_OBS");
    if (mode == nullptr) return;
    const std::string m(mode);
    if (m == "text") {
        configure(SinkKind::kText);
    } else if (m == "json") {
        configure(SinkKind::kJson);
    } else if (m == "off" || m.empty()) {
        configure(SinkKind::kOff);
    } else {
        std::fprintf(stderr, "[obs] ignoring unknown HTD_OBS value '%s'\n", m.c_str());
    }
}

void Registry::configure(SinkKind sink, std::string json_path) {
    if (sink == SinkKind::kInherit && json_path.empty()) return;
    {
        const core::MutexLock lock(mutex_);
        if (!json_path.empty()) json_path_ = std::move(json_path);
    }
    if (sink == SinkKind::kInherit) return;
    sink_.store(sink, std::memory_order_relaxed);
    enabled_.store(sink != SinkKind::kOff, std::memory_order_relaxed);
}

std::string Registry::json_path() const {
    const core::MutexLock lock(mutex_);
    return json_path_;
}

void Registry::counter_add_locked(std::string_view name, double delta) {
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        counters_.emplace(std::string(name), delta);
    } else {
        it->second += delta;
    }
}

void Registry::counter_add(std::string_view name, double delta) {
    if (!enabled()) return;
    const core::MutexLock lock(mutex_);
    counter_add_locked(name, delta);
}

void Registry::gauge_set(std::string_view name, double value) {
    if (!enabled()) return;
    const core::MutexLock lock(mutex_);
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
        gauges_.emplace(std::string(name), value);
    } else {
        it->second = value;
    }
}

void Registry::histogram_record_locked(std::string_view name, double value_us) {
    const std::vector<double>& bounds = histogram_bucket_bounds();
    const auto bucket = static_cast<std::size_t>(
        std::upper_bound(bounds.begin(), bounds.end(), value_us) - bounds.begin());
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_.emplace(std::string(name), HistogramSnapshot{}).first;
        it->second.counts.assign(bounds.size() + 1, 0);
    }
    HistogramSnapshot& h = it->second;
    h.counts[bucket] += 1;
    h.sum += value_us;
    h.min = h.total == 0 ? value_us : std::min(h.min, value_us);
    h.max = h.total == 0 ? value_us : std::max(h.max, value_us);
    h.total += 1;
}

void Registry::histogram_record(std::string_view name, double value_us) {
    if (!enabled()) return;
    const core::MutexLock lock(mutex_);
    histogram_record_locked(name, value_us);
}

void Registry::span_record(SpanRecord record) {
    if (!enabled()) return;
    if (sink() == SinkKind::kText) {
        const std::string line = span_text_line(record);
        std::fprintf(stderr, "%s\n", line.c_str());
    }
    const core::MutexLock lock(mutex_);
    // Every span also feeds a latency histogram, so repeated spans keep an
    // aggregate view even once the stored-span cap is hit.
    histogram_record_locked("span." + record.name,
                            static_cast<double>(record.wall_ns) / 1e3);
    if (spans_.size() >= kMaxStoredSpans) {
        counter_add_locked("obs.spans_dropped", 1.0);
        return;
    }
    spans_.push_back(std::move(record));
}

std::vector<SpanRecord> Registry::spans() const {
    const core::MutexLock lock(mutex_);
    return spans_;
}

std::map<std::string, double> Registry::counters() const {
    const core::MutexLock lock(mutex_);
    return {counters_.begin(), counters_.end()};
}

std::map<std::string, double> Registry::gauges() const {
    const core::MutexLock lock(mutex_);
    return {gauges_.begin(), gauges_.end()};
}

std::map<std::string, HistogramSnapshot> Registry::histograms() const {
    const core::MutexLock lock(mutex_);
    return {histograms_.begin(), histograms_.end()};
}

double Registry::counter_value(std::string_view name) const {
    const core::MutexLock lock(mutex_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0.0 : it->second;
}

std::size_t Registry::span_count() const {
    const core::MutexLock lock(mutex_);
    return spans_.size();
}

void Registry::flush() const {
    if (sink() != SinkKind::kText) return;
    const std::string text = metrics_text(*this);
    if (!text.empty()) std::fprintf(stderr, "%s", text.c_str());
}

void Registry::write_default_report() const {
    if (sink() != SinkKind::kJson) return;
    RunReport report("htd_obs");
    report.capture_observability(*this);
    report.write(json_path());
}

void Registry::reset() {
    const core::MutexLock lock(mutex_);
    spans_.clear();
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

}  // namespace htd::obs
