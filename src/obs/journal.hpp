#pragma once
/// \file journal.hpp
/// Decision forensics: an append-only JSONL event journal (schema
/// `htd.events.v1`). Where spans answer "where did the time go" and health
/// probes answer "is the statistics sound", the journal answers "*why* was
/// this chip flagged, and what happened to the calibration along the way" —
/// one typed, monotonically-sequenced record per decision-relevant event:
///
///     calibration        a pipeline calibration stage completed
///     recalibration      a stage re-ran after a previous completion
///     boundary_fallback  B4/B5 fell back to S3 on a KMM collapse
///     artifact_degraded  a tolerant artifact load rejected a section
///     drift_trip         a drift.* health probe reached >= degraded
///     quarantine         the measurement validator dropped a device
///     chip_scored        a device received a boundary verdict
///
/// Every record carries the enclosing trace-span id so journal lines
/// cross-reference `htd.trace.v1` traces, and lot/chip/boundary ids where
/// they apply. The kind list above is the registry: `EventJournal::append`
/// rejects unregistered kinds, and htd_lint's `event-kind-name` rule holds
/// literal kinds in src// tools/ to `event_kinds()`.
///
/// Crash-safety contract: each record is serialized as one compact JSON
/// line, written and flushed before append() returns, so a crash loses at
/// most the record being written — never a previously appended one. Rotation
/// is atomic: when the stream exceeds the configured byte budget the file is
/// closed and renamed to `<path>.1` (POSIX rename, all-or-nothing) before a
/// fresh stream opens; sequence numbers keep counting across the boundary.
/// Re-opening an existing journal resumes after its last sequence number, so
/// a journal appended to by several processes in turn stays monotone.
///
/// Normalized mode (`set_normalized(true)` or HTD_OBS_JOURNAL_NORMALIZE=1)
/// replaces wall-clock timestamps with the sequence number, making same-seed
/// journals byte-identical — the analogue of HTD_OBS_TRACE_NORMALIZE for
/// traces (DESIGN.md §13). HTD_OBS_JOURNAL=<file> enables the journal from
/// the environment without touching caller code.

#include <atomic>
#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/annotations.hpp"
#include "io/json.hpp"

namespace htd::obs {

/// Schema tag stamped on every journal record.
inline constexpr std::string_view kEventsSchema = "htd.events.v1";

/// The registered event kinds — the single spelling point the lint rule
/// enforces against. Order is the documentation order above.
[[nodiscard]] const std::vector<std::string>& event_kinds();

/// True when `kind` is one of the registered `htd.events.v1` kinds.
[[nodiscard]] bool event_kind_registered(std::string_view kind);

/// One journal event. Construct with the kind, fill in the ids that apply,
/// and hand it to `EventJournal::append`, which assigns seq/ts_ns/span:
///
///     obs::Event ev("boundary_fallback");
///     ev.boundary = "B4";
///     ev.detail = status.detail;
///     ev.value("ess", ess).value("floor", floor);
///     obs::EventJournal::global().append(std::move(ev));
struct Event {
    Event() = default;
    explicit Event(std::string kind_name) : kind(std::move(kind_name)) {}

    std::string kind;      ///< one of event_kinds()
    std::string lot;       ///< lot id, empty when not applicable
    std::string chip;      ///< chip / device id, empty when not applicable
    std::string boundary;  ///< "B1".."B5", empty when not applicable
    std::string detail;    ///< free-form human-readable context

    /// Named scalar payload (decision values, sample sizes, ...).
    std::vector<std::pair<std::string, double>> values;

    // Assigned by EventJournal::append:
    std::uint64_t seq = 0;   ///< 1-based, strictly increasing per journal
    std::uint64_t span = 0;  ///< enclosing htd.trace.v1 span id (0 = none)
    std::int64_t ts_ns = 0;  ///< wall clock, or seq in normalized mode

    /// Chainable payload helper.
    Event& value(std::string key, double v) {
        values.emplace_back(std::move(key), v);
        return *this;
    }

    /// The htd.events.v1 record (sorted keys, compact-dumpable).
    [[nodiscard]] io::Json to_json() const;
};

/// Append-only JSONL event stream. Disabled by default: `append` on a
/// disabled journal is a single relaxed atomic load, cheap enough for the
/// per-device scoring loop. All mutation is mutex-guarded; see the file
/// comment for the crash-safety and normalization contracts.
class EventJournal {
public:
    /// Process-global journal. First use applies HTD_OBS_JOURNAL (opens the
    /// named file) and HTD_OBS_JOURNAL_NORMALIZE (0/1).
    [[nodiscard]] static EventJournal& global();

    EventJournal() = default;
    ~EventJournal();
    EventJournal(const EventJournal&) = delete;
    EventJournal& operator=(const EventJournal&) = delete;

    /// Open (or resume) a journal file and enable appends. An existing
    /// file is appended to, resuming after its last sequence number; a
    /// fresh file starts at seq 1. Also records events in the in-memory
    /// ring. Throws std::runtime_error when the file cannot be opened.
    void open(const std::string& path) HTD_EXCLUDES(mutex_);

    /// Enable the in-memory ring only (tests): events get sequenced and
    /// retained in `recent()` without touching the filesystem.
    void enable_memory() HTD_EXCLUDES(mutex_);

    /// Flush, close, disable, and forget the in-memory ring + sequence.
    void close() HTD_EXCLUDES(mutex_);

    /// True when append() records (file or memory mode).
    [[nodiscard]] bool enabled() const noexcept {
        return enabled_.load(std::memory_order_relaxed);
    }

    /// Normalized mode: deterministic timestamps (ts_ns = seq).
    void set_normalized(bool normalized) noexcept {
        normalized_.store(normalized, std::memory_order_relaxed);
    }
    [[nodiscard]] bool normalized() const noexcept {
        return normalized_.load(std::memory_order_relaxed);
    }

    /// Rotate to `<path>.1` once the stream exceeds `max_bytes` (0 = never,
    /// the default). The record that crosses the budget opens the new file.
    void set_rotate_bytes(std::uint64_t max_bytes) HTD_EXCLUDES(mutex_);

    /// Sequence, stamp, serialize, write + flush. No-op when disabled.
    /// Throws std::invalid_argument on an unregistered kind and
    /// std::runtime_error when the stream write fails (a silent audit gap
    /// is worse than a loud crash).
    void append(Event event) HTD_EXCLUDES(mutex_);

    /// Snapshot of the most recent events (bounded by kMaxRecentEvents).
    [[nodiscard]] std::vector<Event> recent() const HTD_EXCLUDES(mutex_);

    /// Last assigned sequence number (0 before the first append).
    [[nodiscard]] std::uint64_t sequence() const HTD_EXCLUDES(mutex_);

    /// Current journal path (empty in memory-only mode).
    [[nodiscard]] std::string path() const HTD_EXCLUDES(mutex_);

    /// In-memory ring capacity.
    static constexpr std::size_t kMaxRecentEvents = 1024;

private:
    void apply_environment();
    void reset_locked() HTD_REQUIRES(mutex_);

    std::atomic<bool> enabled_{false};
    std::atomic<bool> normalized_{false};

    mutable core::Mutex mutex_;
    std::uint64_t seq_ HTD_GUARDED_BY(mutex_) = 0;
    std::uint64_t rotate_bytes_ HTD_GUARDED_BY(mutex_) = 0;
    std::uint64_t bytes_written_ HTD_GUARDED_BY(mutex_) = 0;
    std::string path_ HTD_GUARDED_BY(mutex_);
    std::ofstream out_ HTD_GUARDED_BY(mutex_);
    // Bounded ring of recent events: ring_[head_] is the oldest slot once
    // the ring has wrapped.
    std::vector<Event> ring_ HTD_GUARDED_BY(mutex_);
    std::size_t ring_head_ HTD_GUARDED_BY(mutex_) = 0;
};

}  // namespace htd::obs
