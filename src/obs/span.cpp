#include "obs/span.hpp"

#include <chrono>
#include <ctime>

#include "core/annotations.hpp"
#include "obs/resource.hpp"

namespace htd::obs {

namespace {

/// Per-thread stack of open span ids; the top is the parent of the next
/// span opened on this thread.
thread_local std::vector<std::uint64_t> open_spans HTD_SHARED_STATE_OK(
    "per-thread span stack: thread_local by design, never visible to "
    "another thread");

}  // namespace

std::uint64_t current_span_id() noexcept {
    return open_spans.empty() ? 0 : open_spans.back();
}

std::int64_t wall_clock_ns() noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::int64_t thread_cpu_ns() noexcept {
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
        return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
    }
#endif
    // Fallback: process CPU time (coarse, but monotone).
    return static_cast<std::int64_t>(std::clock()) * 1'000'000'000 / CLOCKS_PER_SEC;
}

ScopedSpan::ScopedSpan(std::string_view name) {
    Registry& registry = Registry::global();
    if (!registry.enabled()) return;
    active_ = true;
    name_ = std::string(name);
    id_ = registry.next_span_id();
    parent_ = open_spans.empty() ? 0 : open_spans.back();
    depth_ = static_cast<std::uint32_t>(open_spans.size());
    thread_ = Registry::current_thread_index();
    open_spans.push_back(id_);
    resources_ = registry.resource_attribution();
    if (resources_) {
        const ResourceSample sample = sample_resources();
        start_peak_rss_ = sample.peak_rss_bytes;
        start_allocs_ = sample.alloc_count;
    }
    // Clocks read last so setup cost is not attributed to the span.
    start_cpu_ns_ = thread_cpu_ns();
    start_wall_ns_ = wall_clock_ns();
}

ScopedSpan::~ScopedSpan() {
    if (!active_) return;
    SpanRecord record;
    record.wall_ns = wall_clock_ns() - start_wall_ns_;
    record.cpu_ns = thread_cpu_ns() - start_cpu_ns_;
    record.id = id_;
    record.parent = parent_;
    record.depth = depth_;
    record.thread = thread_;
    record.name = std::move(name_);
    record.start_wall_ns = start_wall_ns_;
    record.attrs = std::move(attrs_);
    if (resources_) {
        const ResourceSample sample = sample_resources();
        record.attrs.emplace_back(
            "mem.peak_rss_delta_bytes",
            static_cast<double>(sample.peak_rss_bytes - start_peak_rss_));
        record.attrs.emplace_back(
            "mem.allocs", static_cast<double>(sample.alloc_count - start_allocs_));
    }
    if (!open_spans.empty() && open_spans.back() == id_) open_spans.pop_back();
    Registry::global().span_record(std::move(record));
}

void ScopedSpan::attr(std::string_view key, double value) {
    if (!active_) return;
    attrs_.emplace_back(std::string(key), value);
}

}  // namespace htd::obs
