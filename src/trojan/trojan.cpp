#include "trojan/trojan.hpp"

#include <stdexcept>

namespace htd::trojan {

AmplitudeLeakTrojan::AmplitudeLeakTrojan(double epsilon) : epsilon_(epsilon) {
    if (epsilon <= 0.0 || epsilon > 0.5) {
        throw std::invalid_argument("AmplitudeLeakTrojan: epsilon outside (0, 0.5]");
    }
}

BitModulation AmplitudeLeakTrojan::modulate(std::size_t bit_index,
                                            const std::array<bool, 128>& key_bits) const {
    BitModulation mod;
    if (!key_bits[bit_index % 128]) mod.amplitude_scale = 1.0 + epsilon_;
    return mod;
}

FrequencyLeakTrojan::FrequencyLeakTrojan(double delta_ghz) : delta_ghz_(delta_ghz) {
    if (delta_ghz <= 0.0 || delta_ghz > 1.0) {
        throw std::invalid_argument("FrequencyLeakTrojan: delta outside (0, 1] GHz");
    }
}

BitModulation FrequencyLeakTrojan::modulate(std::size_t bit_index,
                                            const std::array<bool, 128>& key_bits) const {
    BitModulation mod;
    if (!key_bits[bit_index % 128]) mod.frequency_offset_ghz = delta_ghz_;
    return mod;
}

std::string variant_name(DesignVariant v) {
    switch (v) {
        case DesignVariant::kTrojanFree: return "trojan-free";
        case DesignVariant::kTrojanAmplitude: return "trojan-amplitude";
        case DesignVariant::kTrojanFrequency: return "trojan-frequency";
    }
    throw std::invalid_argument("variant_name: unknown variant");
}

std::unique_ptr<TrojanEffect> make_trojan(DesignVariant v, double amplitude_epsilon,
                                          double frequency_delta_ghz) {
    switch (v) {
        case DesignVariant::kTrojanFree: return nullptr;
        case DesignVariant::kTrojanAmplitude:
            return std::make_unique<AmplitudeLeakTrojan>(amplitude_epsilon);
        case DesignVariant::kTrojanFrequency:
            return std::make_unique<FrequencyLeakTrojan>(frequency_delta_ghz);
    }
    throw std::invalid_argument("make_trojan: unknown variant");
}

}  // namespace htd::trojan
