#pragma once
/// \file trojan.hpp
/// Hardware Trojan models for the wireless cryptographic IC platform.
///
/// The silicon Trojans of the paper (and of Liu/Jin/Makris, ICCAD'13) leak
/// the on-chip AES key through the wireless channel: along with every
/// 128-bit ciphertext block, the 128 key bits are exfiltrated by modulating
/// the amplitude (Trojan I) or the carrier frequency (Trojan II) of each
/// ciphertext-bit transmission. When the leaked key bit is '1' the pulse is
/// left unaltered; when it is '0' the amplitude/frequency is slightly
/// increased — by less than the margin allowed for process variation, so
/// the device still meets every functional specification and passes every
/// traditional manufacturing test.

#include <array>
#include <memory>
#include <string>

namespace htd::trojan {

/// Per-bit modulation applied by a Trojan to one pulse transmission.
struct BitModulation {
    double amplitude_scale = 1.0;      ///< multiplies the pulse amplitude
    double frequency_offset_ghz = 0.0; ///< added to the pulse center frequency
};

/// Interface for a Trojan's effect on the transmission of one ciphertext bit.
class TrojanEffect {
public:
    virtual ~TrojanEffect() = default;

    /// Modulation for transmitting ciphertext bit `bit_index` of a block,
    /// given the secret key bits the Trojan is leaking.
    [[nodiscard]] virtual BitModulation modulate(
        std::size_t bit_index, const std::array<bool, 128>& key_bits) const = 0;

    /// Human-readable Trojan name.
    [[nodiscard]] virtual std::string name() const = 0;
};

/// Trojan I: leaks key bits in the pulse-amplitude margin. A leaked '0'
/// scales the amplitude by (1 + epsilon).
class AmplitudeLeakTrojan final : public TrojanEffect {
public:
    /// Throws std::invalid_argument for epsilon outside (0, 0.5].
    explicit AmplitudeLeakTrojan(double epsilon);

    [[nodiscard]] BitModulation modulate(
        std::size_t bit_index, const std::array<bool, 128>& key_bits) const override;
    [[nodiscard]] std::string name() const override { return "amplitude-leak"; }

    [[nodiscard]] double epsilon() const noexcept { return epsilon_; }

private:
    double epsilon_;
};

/// Trojan II: leaks key bits in the carrier-frequency margin. A leaked '0'
/// shifts the center frequency up by `delta_ghz`.
class FrequencyLeakTrojan final : public TrojanEffect {
public:
    /// Throws std::invalid_argument for delta outside (0, 1] GHz.
    explicit FrequencyLeakTrojan(double delta_ghz);

    [[nodiscard]] BitModulation modulate(
        std::size_t bit_index, const std::array<bool, 128>& key_bits) const override;
    [[nodiscard]] std::string name() const override { return "frequency-leak"; }

    [[nodiscard]] double delta_ghz() const noexcept { return delta_ghz_; }

private:
    double delta_ghz_;
};

/// What an observer on the public channel sees for one bit slot of a block:
/// whether a pulse was transmitted (OOK) and, if so, its amplitude and
/// center frequency after any Trojan modulation. Produced by the UWB
/// transmitter model and consumed by both the measurement bench and the
/// attacker's key-recovery receiver.
struct PulseObservation {
    bool transmitted = false;
    double amplitude_v = 0.0;
    double frequency_ghz = 0.0;
    double tau_ns = 0.0;  ///< Gaussian envelope width of the pulse
};

/// Which design version a device instantiates.
enum class DesignVariant {
    kTrojanFree,
    kTrojanAmplitude,
    kTrojanFrequency,
};

/// Short label ("trojan-free", "trojan-amplitude", "trojan-frequency").
[[nodiscard]] std::string variant_name(DesignVariant v);

/// Factory: the TrojanEffect for a variant, or nullptr for the Trojan-free
/// design. Throws std::invalid_argument on an unknown variant.
[[nodiscard]] std::unique_ptr<TrojanEffect> make_trojan(DesignVariant v,
                                                        double amplitude_epsilon,
                                                        double frequency_delta_ghz);

}  // namespace htd::trojan
