#include "trojan/attacker.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace htd::trojan {

std::size_t KeyRecoveryResult::bit_errors(
    const std::array<bool, 128>& truth) const noexcept {
    std::size_t errors = 0;
    for (std::size_t i = 0; i < 128; ++i) {
        if (key_bits[i] != truth[i]) ++errors;
    }
    return errors;
}

KeyRecoveryAttacker::KeyRecoveryAttacker(Options opts) : opts_(opts) {
    if (opts.amplitude_noise_rel < 0.0 || opts.frequency_noise_ghz < 0.0) {
        throw std::invalid_argument("KeyRecoveryAttacker: negative noise");
    }
    if (opts.min_separation <= 0.0) {
        throw std::invalid_argument("KeyRecoveryAttacker: non-positive min_separation");
    }
}

KeyRecoveryResult KeyRecoveryAttacker::recover_key(
    const std::vector<std::vector<PulseObservation>>& blocks, LeakChannel channel,
    rng::Rng& rng) const {
    if (blocks.empty()) {
        throw std::invalid_argument("KeyRecoveryAttacker: no blocks");
    }
    for (const auto& b : blocks) {
        if (b.size() != 128) {
            throw std::invalid_argument("KeyRecoveryAttacker: block must have 128 slots");
        }
    }

    // Per-position average of the demodulated property over every pulse the
    // receiver captured at that position.
    std::array<double, 128> sums{};
    std::array<std::size_t, 128> counts{};
    for (const auto& block : blocks) {
        for (std::size_t i = 0; i < 128; ++i) {
            const PulseObservation& obs = block[i];
            if (!obs.transmitted) continue;
            double value;
            if (channel == LeakChannel::kAmplitude) {
                value = obs.amplitude_v *
                        (1.0 + rng.normal(0.0, opts_.amplitude_noise_rel));
            } else {
                value = obs.frequency_ghz + rng.normal(0.0, opts_.frequency_noise_ghz);
            }
            sums[i] += value;
            ++counts[i];
        }
    }

    KeyRecoveryResult result;
    result.key_bits.fill(true);  // unmodulated default = leaked '1'

    std::vector<double> means;
    std::vector<std::size_t> positions;
    for (std::size_t i = 0; i < 128; ++i) {
        if (counts[i] == 0) continue;
        means.push_back(sums[i] / static_cast<double>(counts[i]));
        positions.push_back(i);
    }
    result.observed_positions = positions.size();
    if (means.size() < 2) return result;

    // 1-D two-means clustering: try every split of the sorted means and pick
    // the one minimizing within-cluster variance.
    std::vector<double> sorted = means;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    std::vector<double> prefix(n + 1, 0.0), prefix_sq(n + 1, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        prefix[i + 1] = prefix[i] + sorted[i];
        prefix_sq[i + 1] = prefix_sq[i] + sorted[i] * sorted[i];
    }
    double best_cost = std::numeric_limits<double>::infinity();
    std::size_t best_split = 1;
    for (std::size_t split = 1; split < n; ++split) {
        const double n1 = static_cast<double>(split);
        const double n2 = static_cast<double>(n - split);
        const double s1 = prefix[split], s2 = prefix[n] - prefix[split];
        const double q1 = prefix_sq[split], q2 = prefix_sq[n] - prefix_sq[split];
        const double cost = (q1 - s1 * s1 / n1) + (q2 - s2 * s2 / n2);
        if (cost < best_cost) {
            best_cost = cost;
            best_split = split;
        }
    }

    const double n1 = static_cast<double>(best_split);
    const double n2 = static_cast<double>(n - best_split);
    const double mu_lo = prefix[best_split] / n1;
    const double mu_hi = (prefix[n] - prefix[best_split]) / n2;
    const double pooled_var = best_cost / static_cast<double>(n);
    const double pooled_sigma = std::sqrt(std::max(pooled_var, 1e-30));
    result.separation = (mu_hi - mu_lo) / pooled_sigma;

    if (result.separation < opts_.min_separation) {
        return result;  // no credible two-level structure: keep all-ones
    }

    const double threshold = 0.5 * (mu_lo + mu_hi);
    for (std::size_t k = 0; k < positions.size(); ++k) {
        // Upper cluster = modulated = leaked key bit '0'.
        result.key_bits[positions[k]] = means[k] < threshold;
    }
    return result;
}

}  // namespace htd::trojan
