#pragma once
/// \file attacker.hpp
/// The adversary's side of the threat model: a receiver that knows what to
/// listen for on the public channel and recovers the AES key from the
/// Trojan's amplitude/frequency modulation. Used by the threat-model bench
/// (E8) to demonstrate that the implemented Trojans really leak the key —
/// while remaining invisible to functional testing.

#include <array>
#include <cstddef>
#include <vector>

#include "rng/rng.hpp"
#include "trojan/trojan.hpp"

namespace htd::trojan {

/// Which pulse property the attacker demodulates.
enum class LeakChannel {
    kAmplitude,
    kFrequency,
};

/// Result of a key-recovery attempt.
struct KeyRecoveryResult {
    std::array<bool, 128> key_bits{};  ///< recovered key (best effort)
    double separation = 0.0;           ///< cluster separation in noise sigmas
    std::size_t observed_positions = 0; ///< bit positions with >= 1 pulse

    /// Number of bit errors against a reference key.
    [[nodiscard]] std::size_t bit_errors(const std::array<bool, 128>& truth) const noexcept;
};

/// Passive receiver for the key-leak Trojans.
class KeyRecoveryAttacker {
public:
    struct Options {
        /// Receiver noise added to each observed pulse: relative (fractional)
        /// for amplitude, absolute GHz for frequency.
        double amplitude_noise_rel = 0.005;
        double frequency_noise_ghz = 0.01;

        /// Minimum cluster separation (in pooled sigmas) to call the capture
        /// a real two-level modulation rather than noise.
        double min_separation = 3.0;
    };

    KeyRecoveryAttacker() : KeyRecoveryAttacker(Options{}) {}
    explicit KeyRecoveryAttacker(Options opts);

    /// Recover the key from the observations of several transmitted blocks.
    /// Each inner vector must have exactly 128 slots. A leaked '0' raises
    /// the modulated property, so positions falling in the upper cluster are
    /// decoded as key bit 0. When the two clusters are not separable (e.g. a
    /// Trojan-free device), every bit defaults to '1' and `separation`
    /// reports the (small) gap found. Throws std::invalid_argument on empty
    /// input or malformed blocks.
    [[nodiscard]] KeyRecoveryResult recover_key(
        const std::vector<std::vector<PulseObservation>>& blocks, LeakChannel channel,
        rng::Rng& rng) const;

    [[nodiscard]] const Options& options() const noexcept { return opts_; }

private:
    Options opts_;
};

}  // namespace htd::trojan
