#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "linalg/decompositions.hpp"

namespace htd::stats {

double mean(std::span<const double> xs) {
    if (xs.empty()) throw std::invalid_argument("mean: empty sample");
    double acc = 0.0;
    for (double x : xs) acc += x;
    return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
    if (xs.size() < 2) throw std::invalid_argument("variance: need >= 2 samples");
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs) acc += (x - m) * (x - m);
    return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double quantile(std::span<const double> xs, double q) {
    if (xs.empty()) throw std::invalid_argument("quantile: empty sample");
    if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double pearson_correlation(std::span<const double> xs, std::span<const double> ys) {
    if (xs.size() != ys.size()) {
        throw std::invalid_argument("pearson_correlation: size mismatch");
    }
    if (xs.size() < 2) throw std::invalid_argument("pearson_correlation: need >= 2 samples");
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0) {
        throw std::invalid_argument("pearson_correlation: zero variance");
    }
    return sxy / std::sqrt(sxx * syy);
}

linalg::Vector column_means(const linalg::Matrix& data) {
    if (data.rows() == 0) throw std::invalid_argument("column_means: empty dataset");
    linalg::Vector m(data.cols());
    for (std::size_t r = 0; r < data.rows(); ++r) {
        const auto row = data.row_span(r);
        for (std::size_t c = 0; c < data.cols(); ++c) m[c] += row[c];
    }
    m /= static_cast<double>(data.rows());
    return m;
}

linalg::Vector column_stddevs(const linalg::Matrix& data) {
    if (data.rows() < 2) throw std::invalid_argument("column_stddevs: need >= 2 rows");
    const linalg::Vector m = column_means(data);
    linalg::Vector s(data.cols());
    for (std::size_t r = 0; r < data.rows(); ++r) {
        const auto row = data.row_span(r);
        for (std::size_t c = 0; c < data.cols(); ++c) {
            const double d = row[c] - m[c];
            s[c] += d * d;
        }
    }
    for (std::size_t c = 0; c < data.cols(); ++c) {
        s[c] = std::sqrt(s[c] / static_cast<double>(data.rows() - 1));
    }
    return s;
}

linalg::Matrix covariance_matrix(const linalg::Matrix& data) {
    if (data.rows() < 2) throw std::invalid_argument("covariance_matrix: need >= 2 rows");
    const linalg::Vector m = column_means(data);
    const std::size_t d = data.cols();
    linalg::Matrix cov(d, d);
    for (std::size_t r = 0; r < data.rows(); ++r) {
        const auto row = data.row_span(r);
        for (std::size_t i = 0; i < d; ++i) {
            const double di = row[i] - m[i];
            for (std::size_t j = i; j < d; ++j) {
                cov(i, j) += di * (row[j] - m[j]);
            }
        }
    }
    const double denom = static_cast<double>(data.rows() - 1);
    for (std::size_t i = 0; i < d; ++i)
        for (std::size_t j = i; j < d; ++j) {
            cov(i, j) /= denom;
            cov(j, i) = cov(i, j);
        }
    return cov;
}

linalg::Matrix centered(const linalg::Matrix& data) {
    const linalg::Vector m = column_means(data);
    linalg::Matrix out = data;
    for (std::size_t r = 0; r < out.rows(); ++r) {
        auto row = out.row_span(r);
        for (std::size_t c = 0; c < out.cols(); ++c) row[c] -= m[c];
    }
    return out;
}

double mahalanobis(const linalg::Vector& x, const linalg::Vector& mean,
                   const linalg::Matrix& cov) {
    if (x.size() != mean.size()) {
        throw std::invalid_argument("mahalanobis: dimension mismatch");
    }
    const linalg::Vector diff = x - mean;
    const linalg::Vector solved = linalg::solve_spd_ridge(cov, diff);
    return std::sqrt(std::max(0.0, linalg::dot(diff, solved)));
}

// --- Histogram -----------------------------------------------------------------

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
    if (bins == 0) throw std::invalid_argument("Histogram: bins == 0");
    if (!(hi > lo)) throw std::invalid_argument("Histogram: hi <= lo");
}

void Histogram::add(double x) noexcept {
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        // The right edge belongs to the last bin.
        if (x == hi_) {
            ++counts_.back();
        } else {
            ++overflow_;
        }
        return;
    }
    const auto bin = static_cast<std::size_t>((x - lo_) / width_);
    ++counts_[std::min(bin, counts_.size() - 1)];
}

void Histogram::add_all(std::span<const double> xs) noexcept {
    for (double x : xs) add(x);
}

double Histogram::bin_center(std::size_t bin) const {
    if (bin >= counts_.size()) throw std::out_of_range("Histogram::bin_center");
    return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::density(std::size_t bin) const {
    if (bin >= counts_.size()) throw std::out_of_range("Histogram::density");
    if (total_ == 0) return 0.0;
    return static_cast<double>(counts_[bin]) /
           (static_cast<double>(total_) * width_);
}

// --- RunningStats ----------------------------------------------------------------

void RunningStats::add(double x) noexcept {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
    if (n_ < 2) throw std::logic_error("RunningStats::variance: need >= 2 observations");
    return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace htd::stats
