#include "stats/evt.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace htd::stats {

// --- GeneralizedPareto --------------------------------------------------------

GeneralizedPareto::GeneralizedPareto(double shape, double scale)
    : shape_(shape), scale_(scale) {
    if (scale <= 0.0) throw std::invalid_argument("GeneralizedPareto: scale <= 0");
    if (std::abs(shape) >= 1.0) {
        throw std::invalid_argument("GeneralizedPareto: |shape| >= 1 unsupported");
    }
}

double GeneralizedPareto::pdf(double y) const noexcept {
    if (y < 0.0) return 0.0;
    if (std::abs(shape_) < 1e-12) {
        return std::exp(-y / scale_) / scale_;
    }
    const double t = 1.0 + shape_ * y / scale_;
    if (t <= 0.0) return 0.0;  // beyond the finite endpoint for xi < 0
    return std::pow(t, -1.0 / shape_ - 1.0) / scale_;
}

double GeneralizedPareto::cdf(double y) const noexcept {
    if (y <= 0.0) return 0.0;
    if (std::abs(shape_) < 1e-12) {
        return 1.0 - std::exp(-y / scale_);
    }
    const double t = 1.0 + shape_ * y / scale_;
    if (t <= 0.0) return 1.0;
    return 1.0 - std::pow(t, -1.0 / shape_);
}

double GeneralizedPareto::quantile(double p) const {
    if (p < 0.0 || p >= 1.0) {
        throw std::invalid_argument("GeneralizedPareto::quantile: p outside [0, 1)");
    }
    if (std::abs(shape_) < 1e-12) {
        return -scale_ * std::log1p(-p);
    }
    return scale_ / shape_ * (std::pow(1.0 - p, -shape_) - 1.0);
}

double GeneralizedPareto::sample(rng::Rng& rng) const {
    return quantile(rng.uniform());
}

GeneralizedPareto GeneralizedPareto::fit_pwm(std::span<const double> excesses) {
    const std::size_t n = excesses.size();
    if (n < 3) throw std::invalid_argument("GeneralizedPareto::fit_pwm: need >= 3 excesses");
    std::vector<double> y(excesses.begin(), excesses.end());
    std::sort(y.begin(), y.end());
    if (y.front() < 0.0) {
        throw std::invalid_argument("GeneralizedPareto::fit_pwm: negative excess");
    }

    // a0 = mean, a1 = E[Y (1 - F(Y))] estimated with plotting positions
    // (n - i) / (n - 1) for the ascending order statistic y_(i), i = 1..n.
    double a0 = 0.0;
    double a1 = 0.0;
    for (std::size_t i = 1; i <= n; ++i) {
        const double yi = y[i - 1];
        a0 += yi;
        a1 += yi * static_cast<double>(n - i) / static_cast<double>(n - 1);
    }
    a0 /= static_cast<double>(n);
    a1 /= static_cast<double>(n);

    const double denom = a0 - 2.0 * a1;
    if (denom <= 0.0 || a0 <= 0.0) {
        throw std::invalid_argument("GeneralizedPareto::fit_pwm: degenerate sample");
    }
    double shape = 2.0 - a0 / denom;
    double scale = 2.0 * a0 * a1 / denom;
    shape = std::clamp(shape, -0.45, 0.45);
    scale = std::max(scale, 1e-12);
    return {shape, scale};
}

// --- PotTailModel ----------------------------------------------------------------

PotTailModel::PotTailModel(std::span<const double> sample, double tail_fraction,
                           bool upper)
    : sorted_(sample.begin(), sample.end()),
      tail_fraction_(tail_fraction),
      upper_(upper) {
    if (tail_fraction <= 0.0 || tail_fraction > 0.5) {
        throw std::invalid_argument("PotTailModel: tail_fraction outside (0, 0.5]");
    }
    std::sort(sorted_.begin(), sorted_.end());
    const auto n_tail =
        static_cast<std::size_t>(tail_fraction * static_cast<double>(sorted_.size()));
    if (n_tail < 3) {
        throw std::invalid_argument("PotTailModel: tail would have < 3 points");
    }

    std::vector<double> excesses(n_tail);
    if (upper) {
        threshold_ = sorted_[sorted_.size() - n_tail];
        for (std::size_t i = 0; i < n_tail; ++i) {
            excesses[i] = sorted_[sorted_.size() - n_tail + i] - threshold_;
        }
    } else {
        threshold_ = sorted_[n_tail - 1];
        for (std::size_t i = 0; i < n_tail; ++i) {
            excesses[i] = threshold_ - sorted_[i];
        }
    }
    gpd_ = GeneralizedPareto::fit_pwm(excesses);
}

double PotTailModel::sample_tail(rng::Rng& rng) const {
    const double excess = gpd_.sample(rng);
    return upper_ ? threshold_ + excess : threshold_ - excess;
}

double PotTailModel::quantile(double p) const {
    if (p <= 0.0 || p >= 1.0) {
        throw std::invalid_argument("PotTailModel::quantile: p outside (0, 1)");
    }
    const double n = static_cast<double>(sorted_.size());
    const bool in_tail = upper_ ? p > 1.0 - tail_fraction_ : p < tail_fraction_;
    if (!in_tail) {
        // Empirical body with linear interpolation.
        const double pos = p * (n - 1.0);
        const auto lo = static_cast<std::size_t>(pos);
        const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
        const double frac = pos - static_cast<double>(lo);
        return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
    }
    if (upper_) {
        const double p_excess = (p - (1.0 - tail_fraction_)) / tail_fraction_;
        return threshold_ + gpd_.quantile(p_excess);
    }
    const double p_excess = (tail_fraction_ - p) / tail_fraction_;
    return threshold_ - gpd_.quantile(p_excess);
}

// --- EvtTailEnhancer -----------------------------------------------------------------

EvtTailEnhancer::EvtTailEnhancer(const linalg::Matrix& data, double tail_fraction)
    : tail_fraction_(tail_fraction) {
    if (data.rows() < 10) {
        throw std::invalid_argument("EvtTailEnhancer: need >= 10 rows");
    }
    mean_ = column_means(data);
    const linalg::EigenResult eig = linalg::symmetric_eigen(covariance_matrix(data));
    basis_ = eig.vectors;  // columns = principal directions, descending

    // Data expressed in the eigenbasis.
    const std::size_t d = data.cols();
    linalg::Matrix scores(data.rows(), d);
    for (std::size_t r = 0; r < data.rows(); ++r) {
        const auto row = data.row_span(r);
        for (std::size_t axis = 0; axis < d; ++axis) {
            double acc = 0.0;
            for (std::size_t c = 0; c < d; ++c) {
                acc += basis_(c, axis) * (row[c] - mean_[c]);
            }
            scores(r, axis) = acc;
        }
    }

    upper_.reserve(d);
    lower_.reserve(d);
    for (std::size_t axis = 0; axis < d; ++axis) {
        const linalg::Vector column = scores.col(axis);
        const std::span<const double> span(column.data(), column.size());
        upper_.emplace_back(span, tail_fraction_, /*upper=*/true);
        lower_.emplace_back(span, tail_fraction_, /*upper=*/false);
    }
}

const PotTailModel& EvtTailEnhancer::upper_tail(std::size_t axis) const {
    if (axis >= upper_.size()) throw std::out_of_range("EvtTailEnhancer::upper_tail");
    return upper_[axis];
}

const PotTailModel& EvtTailEnhancer::lower_tail(std::size_t axis) const {
    if (axis >= lower_.size()) throw std::out_of_range("EvtTailEnhancer::lower_tail");
    return lower_[axis];
}

linalg::Vector EvtTailEnhancer::sample(rng::Rng& rng) const {
    const std::size_t d = dim();
    linalg::Vector scores(d);
    for (std::size_t axis = 0; axis < d; ++axis) {
        // Uniform probability through the semiparametric marginal: empirical
        // body, GPD tails — drawn independently in the decorrelated basis.
        const double p = std::clamp(rng.uniform(), 1e-9, 1.0 - 1e-9);
        const bool in_upper = p > 1.0 - tail_fraction_;
        const bool in_lower = p < tail_fraction_;
        if (in_upper) {
            scores[axis] = upper_[axis].quantile(p);
        } else if (in_lower) {
            scores[axis] = lower_[axis].quantile(p);
        } else {
            scores[axis] = upper_[axis].quantile(p);  // body: same empirical part
        }
    }
    // Rotate back: x = mean + basis * scores.
    linalg::Vector x = mean_;
    for (std::size_t c = 0; c < d; ++c) {
        for (std::size_t axis = 0; axis < d; ++axis) {
            x[c] += basis_(c, axis) * scores[axis];
        }
    }
    return x;
}

linalg::Matrix EvtTailEnhancer::sample_n(rng::Rng& rng, std::size_t n) const {
    if (n == 0) throw std::invalid_argument("EvtTailEnhancer::sample_n: n == 0");
    linalg::Matrix out(n, mean_.size());
    for (std::size_t i = 0; i < n; ++i) out.set_row(i, sample(rng));
    return out;
}

}  // namespace htd::stats
