#include "stats/kde.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/annotations.hpp"
#include "core/stable_sum.hpp"
#include "obs/span.hpp"
#include "stats/descriptive.hpp"

namespace htd::stats {

namespace {

std::unique_ptr<SmoothingKernel> make_kernel(KernelType type, std::size_t dim) {
    switch (type) {
        case KernelType::kEpanechnikov:
            return std::make_unique<EpanechnikovKernel>(dim);
        case KernelType::kGaussian:
            return std::make_unique<GaussianKernel>(dim);
    }
    throw std::invalid_argument("make_kernel: unknown kernel type");
}

}  // namespace

double silverman_bandwidth(std::size_t n_samples, std::size_t dim, KernelType kernel) {
    if (n_samples == 0) throw std::invalid_argument("silverman_bandwidth: n_samples == 0");
    if (dim == 0) throw std::invalid_argument("silverman_bandwidth: dim == 0");
    const double d = static_cast<double>(dim);
    const double n = static_cast<double>(n_samples);
    double a = 1.0;
    switch (kernel) {
        case KernelType::kEpanechnikov: {
            // Silverman (1986), Eq. 4.15 adapted: A(K) for the multivariate
            // Epanechnikov kernel.
            const double cd = unit_ball_volume(dim);
            a = std::pow(8.0 / cd * (d + 4.0) *
                             std::pow(2.0 * std::sqrt(std::numbers::pi), d),
                         1.0 / (d + 4.0));
            break;
        }
        case KernelType::kGaussian:
            a = std::pow(4.0 / (d + 2.0), 1.0 / (d + 4.0));
            break;
    }
    return a * std::pow(n, -1.0 / (d + 4.0));
}

// --- Kde -------------------------------------------------------------------

Kde::Kde(const linalg::Matrix& data, double bandwidth, KernelType kernel) {
    if (data.rows() == 0 || data.cols() == 0) {
        throw std::invalid_argument("Kde: empty dataset");
    }
    const std::size_t d = data.cols();
    col_mean_ = column_means(data);
    if (data.rows() >= 2) {
        col_scale_ = column_stddevs(data);
    } else {
        col_scale_ = linalg::Vector(d, 1.0);
    }
    jacobian_ = 1.0;
    for (std::size_t c = 0; c < d; ++c) {
        // Floor the scale so constant columns do not produce divide-by-zero;
        // they simply stay (almost) constant in the synthetic population.
        if (col_scale_[c] < 1e-12) col_scale_[c] = 1e-12;
        jacobian_ *= col_scale_[c];
    }

    std_data_ = data;
    for (std::size_t r = 0; r < std_data_.rows(); ++r) {
        auto row = std_data_.row_span(r);
        for (std::size_t c = 0; c < d; ++c) row[c] = (row[c] - col_mean_[c]) / col_scale_[c];
    }

    h_ = bandwidth > 0.0 ? bandwidth : silverman_bandwidth(data.rows(), d, kernel);
    kernel_type_ = kernel;
    kernel_ = make_kernel(kernel, d);
}

Kde::State Kde::export_state() const {
    State state;
    state.std_data = std_data_;
    state.col_mean = col_mean_;
    state.col_scale = col_scale_;
    state.h = h_;
    state.jacobian = jacobian_;
    state.kernel = kernel_type_;
    return state;
}

Kde Kde::from_state(State state) {
    const std::size_t d = state.std_data.cols();
    if (state.std_data.rows() == 0 || d == 0) {
        throw std::invalid_argument("Kde::from_state: empty observations");
    }
    if (state.col_mean.size() != d || state.col_scale.size() != d) {
        throw std::invalid_argument(
            "Kde::from_state: column mean/scale size disagrees with the "
            "observation width");
    }
    if (!(state.h > 0.0) || !std::isfinite(state.h) || !(state.jacobian > 0.0) ||
        !std::isfinite(state.jacobian)) {
        throw std::invalid_argument(
            "Kde::from_state: non-positive or non-finite bandwidth/jacobian");
    }
    for (std::size_t c = 0; c < d; ++c) {
        if (!std::isfinite(state.col_mean[c]) || !(state.col_scale[c] > 0.0) ||
            !std::isfinite(state.col_scale[c])) {
            throw std::invalid_argument(
                "Kde::from_state: non-finite column statistics");
        }
    }
    Kde kde;
    kde.kernel_ = make_kernel(state.kernel, d);  // throws on an unknown kernel
    kde.kernel_type_ = state.kernel;
    kde.std_data_ = std::move(state.std_data);
    kde.col_mean_ = std::move(state.col_mean);
    kde.col_scale_ = std::move(state.col_scale);
    kde.h_ = state.h;
    kde.jacobian_ = state.jacobian;
    return kde;
}

double Kde::standardized_density(std::span<const double> z) const {
    const std::size_t m = std_data_.rows();
    const std::size_t d = std_data_.cols();
    const double inv_h = 1.0 / h_;
    std::vector<double> t(d);
    core::StableAccumulator acc;
    HTD_PARALLEL_READY;
    for (std::size_t i = 0; i < m; ++i) {
        const auto row = std_data_.row_span(i);
        for (std::size_t c = 0; c < d; ++c) t[c] = (z[c] - row[c]) * inv_h;
        acc.add(kernel_->density(t));
    }
    return acc.value() /
           (static_cast<double>(m) * std::pow(h_, static_cast<double>(d)));
}

double Kde::density(const linalg::Vector& x) const {
    if (x.size() != dim()) throw std::invalid_argument("Kde::density: dimension mismatch");
    std::vector<double> z(dim());
    for (std::size_t c = 0; c < dim(); ++c) z[c] = (x[c] - col_mean_[c]) / col_scale_[c];
    return standardized_density(z) / jacobian_;
}

linalg::Vector Kde::sample(rng::Rng& rng) const {
    const std::size_t d = dim();
    const std::size_t i = rng.uniform_index(observation_count());
    std::vector<double> disp(d);
    kernel_->sample(rng, disp);
    const auto row = std_data_.row_span(i);
    linalg::Vector out(d);
    for (std::size_t c = 0; c < d; ++c) {
        out[c] = (row[c] + h_ * disp[c]) * col_scale_[c] + col_mean_[c];
    }
    return out;
}

linalg::Matrix Kde::sample_n(rng::Rng& rng, std::size_t n) const {
    obs::ScopedSpan span("kde.sample_n");
    span.attr("samples", static_cast<double>(n));
    span.attr("dim", static_cast<double>(dim()));
    linalg::Matrix out(n, dim());
    for (std::size_t i = 0; i < n; ++i) out.set_row(i, sample(rng));
    obs::Registry::global().counter_add("kde.samples_drawn", static_cast<double>(n));
    obs::Registry::global().work_add("work.kde.samples_drawn", static_cast<double>(n));
    return out;
}

// --- AdaptiveKde -------------------------------------------------------------

AdaptiveKde::AdaptiveKde(const linalg::Matrix& data, double alpha, double bandwidth,
                         KernelType kernel, double max_lambda)
    : pilot_(data, bandwidth, kernel), alpha_(alpha) {
    if (alpha < 0.0 || alpha > 1.0) {
        throw std::invalid_argument("AdaptiveKde: alpha outside [0, 1]");
    }
    if (max_lambda < 1.0) {
        throw std::invalid_argument("AdaptiveKde: max_lambda < 1");
    }
    const std::size_t m = pilot_.observation_count();
    const std::size_t d = pilot_.dim();

    obs::ScopedSpan span("kde.adaptive_build");
    span.attr("observations", static_cast<double>(m));
    span.attr("dim", static_cast<double>(d));
    // The pilot-density pass evaluates the kernel once per (i, j) pair —
    // the m² term that makes AdaptiveKde construction quadratic.
    obs::Registry::global().work_add("work.kde.kernel_evals",
                                     static_cast<double>(m) * static_cast<double>(m));

    // Pilot density at each observation (standardized space; the Jacobian is
    // a constant and cancels inside lambda_i).
    std::vector<double> pilot_density(m);
    core::StableAccumulator log_sum;
    HTD_PARALLEL_READY;
    for (std::size_t i = 0; i < m; ++i) {
        const auto row = pilot_.std_data_.row_span(i);
        std::vector<double> z(row.begin(), row.end());
        double f = pilot_.standardized_density(z);
        // The kernel always covers its own center, so f > 0; clamp anyway to
        // keep the log finite under extreme bandwidths.
        f = std::max(f, 1e-300);
        pilot_density[i] = f;
        log_sum.add(std::log(f));
    }
    g_ = std::exp(log_sum.value() / static_cast<double>(m));  // Eq. (9)

    lambda_.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
        lambda_[i] = std::min(std::pow(pilot_density[i] / g_, -alpha_),
                              max_lambda);  // Eq. (8), clamped
    }
    (void)d;
}

AdaptiveKde::State AdaptiveKde::export_state() const {
    State state;
    state.pilot = pilot_.export_state();
    state.alpha = alpha_;
    state.g = g_;
    state.lambda = lambda_;
    return state;
}

AdaptiveKde AdaptiveKde::from_state(State state) {
    if (state.alpha < 0.0 || state.alpha > 1.0) {
        throw std::invalid_argument("AdaptiveKde::from_state: alpha outside [0, 1]");
    }
    if (!(state.g > 0.0) || !std::isfinite(state.g)) {
        throw std::invalid_argument(
            "AdaptiveKde::from_state: non-positive pilot geometric mean");
    }
    if (state.lambda.size() != state.pilot.std_data.rows()) {
        throw std::invalid_argument(
            "AdaptiveKde::from_state: " + std::to_string(state.lambda.size()) +
            " bandwidth factors for " +
            std::to_string(state.pilot.std_data.rows()) + " observations");
    }
    for (const double l : state.lambda) {
        if (!std::isfinite(l) || l < 1e-12) {
            throw std::invalid_argument(
                "AdaptiveKde::from_state: non-finite or degenerate local "
                "bandwidth factor");
        }
    }
    AdaptiveKde kde;
    kde.pilot_ = Kde::from_state(std::move(state.pilot));
    kde.alpha_ = state.alpha;
    kde.g_ = state.g;
    kde.lambda_ = std::move(state.lambda);
    return kde;
}

double AdaptiveKde::local_bandwidth_factor(std::size_t i) const {
    if (i >= lambda_.size()) throw std::out_of_range("AdaptiveKde::local_bandwidth_factor");
    return lambda_[i];
}

double AdaptiveKde::density(const linalg::Vector& x) const {
    const std::size_t d = dim();
    if (x.size() != d) throw std::invalid_argument("AdaptiveKde::density: dimension mismatch");
    std::vector<double> z(d);
    for (std::size_t c = 0; c < d; ++c) {
        z[c] = (x[c] - pilot_.col_mean_[c]) / pilot_.col_scale_[c];
    }

    const std::size_t m = observation_count();
    const double h = pilot_.bandwidth();
    std::vector<double> t(d);
    core::StableAccumulator acc;
    HTD_PARALLEL_READY;
    for (std::size_t i = 0; i < m; ++i) {
        const auto row = pilot_.std_data_.row_span(i);
        const double hi = h * lambda_[i];
        for (std::size_t c = 0; c < d; ++c) t[c] = (z[c] - row[c]) / hi;
        acc.add(pilot_.kernel_->density(t) / std::pow(hi, static_cast<double>(d)));
    }
    return acc.value() / static_cast<double>(m) / pilot_.jacobian_;  // Eq. (7)
}

linalg::Vector AdaptiveKde::sample(rng::Rng& rng) const {
    const std::size_t d = dim();
    const std::size_t i = rng.uniform_index(observation_count());
    std::vector<double> disp(d);
    pilot_.kernel_->sample(rng, disp);
    const double hi = pilot_.bandwidth() * lambda_[i];
    const auto row = pilot_.std_data_.row_span(i);
    linalg::Vector out(d);
    for (std::size_t c = 0; c < d; ++c) {
        out[c] = (row[c] + hi * disp[c]) * pilot_.col_scale_[c] + pilot_.col_mean_[c];
    }
    return out;
}

linalg::Matrix AdaptiveKde::sample_n(rng::Rng& rng, std::size_t n) const {
    obs::ScopedSpan span("kde.adaptive_sample_n");
    span.attr("samples", static_cast<double>(n));
    span.attr("dim", static_cast<double>(dim()));
    span.attr("observations", static_cast<double>(observation_count()));
    linalg::Matrix out(n, dim());
    for (std::size_t i = 0; i < n; ++i) out.set_row(i, sample(rng));
    obs::Registry::global().counter_add("kde.samples_drawn", static_cast<double>(n));
    obs::Registry::global().work_add("work.kde.samples_drawn", static_cast<double>(n));
    return out;
}

}  // namespace htd::stats
