#pragma once
/// \file descriptive.hpp
/// Descriptive statistics over samples stored one-per-row in a Matrix, plus
/// scalar helpers. These are the building blocks for standardization, PCA,
/// bandwidth selection and the experiment reports.

#include <span>

#include "linalg/matrix.hpp"

namespace htd::stats {

/// Arithmetic mean of a scalar sample; throws std::invalid_argument if empty.
[[nodiscard]] double mean(std::span<const double> xs);

/// Unbiased (n-1) sample variance; throws if fewer than 2 samples.
[[nodiscard]] double variance(std::span<const double> xs);

/// Square root of variance().
[[nodiscard]] double stddev(std::span<const double> xs);

/// Median (average of the middle pair for even n); throws if empty.
[[nodiscard]] double median(std::span<const double> xs);

/// Linear-interpolation quantile for q in [0, 1]; throws on empty input or
/// q outside [0, 1].
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Pearson correlation of two equally sized samples; throws on mismatch,
/// fewer than 2 samples, or zero variance.
[[nodiscard]] double pearson_correlation(std::span<const double> xs,
                                         std::span<const double> ys);

/// Column means of a dataset (rows are samples).
[[nodiscard]] linalg::Vector column_means(const linalg::Matrix& data);

/// Column standard deviations (unbiased); requires >= 2 rows.
[[nodiscard]] linalg::Vector column_stddevs(const linalg::Matrix& data);

/// Unbiased sample covariance matrix of a dataset; requires >= 2 rows.
[[nodiscard]] linalg::Matrix covariance_matrix(const linalg::Matrix& data);

/// Center the dataset by subtracting column means; returns centered copy.
[[nodiscard]] linalg::Matrix centered(const linalg::Matrix& data);

/// Mahalanobis distance of `x` from `mean` under covariance `cov` (solved
/// via Cholesky with ridge fallback).
[[nodiscard]] double mahalanobis(const linalg::Vector& x,
                                 const linalg::Vector& mean,
                                 const linalg::Matrix& cov);

/// A fixed-width histogram over [lo, hi] with `bins` equal bins.
/// Values outside the range are counted in `underflow` / `overflow`.
class Histogram {
public:
    /// Throws std::invalid_argument when bins == 0 or hi <= lo.
    Histogram(double lo, double hi, std::size_t bins);

    /// Add one observation.
    void add(double x) noexcept;

    /// Add every element of a sample.
    void add_all(std::span<const double> xs) noexcept;

    [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
    [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
    [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
    [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
    [[nodiscard]] std::size_t total() const noexcept { return total_; }

    /// Center of the given bin.
    [[nodiscard]] double bin_center(std::size_t bin) const;

    /// Empirical density (count / (total * bin_width)) of the given bin.
    [[nodiscard]] double density(std::size_t bin) const;

private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::size_t> counts_;
    std::size_t underflow_ = 0;
    std::size_t overflow_ = 0;
    std::size_t total_ = 0;
};

/// Streaming mean/variance accumulator (Welford). Numerically stable and
/// usable where a full sample buffer is unnecessary.
class RunningStats {
public:
    /// Add one observation.
    void add(double x) noexcept;

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return mean_; }

    /// Unbiased variance; throws std::logic_error with < 2 observations.
    [[nodiscard]] double variance() const;
    [[nodiscard]] double stddev() const;

    [[nodiscard]] double min() const noexcept { return min_; }
    [[nodiscard]] double max() const noexcept { return max_; }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

}  // namespace htd::stats
