#include "stats/kernels.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace htd::stats {

double unit_ball_volume(std::size_t dim) {
    if (dim == 0) throw std::invalid_argument("unit_ball_volume: dim == 0");
    const double d = static_cast<double>(dim);
    return 2.0 * std::pow(std::numbers::pi, d / 2.0) / (d * std::tgamma(d / 2.0));
}

// --- Epanechnikov ----------------------------------------------------------

EpanechnikovKernel::EpanechnikovKernel(std::size_t dim) : dim_(dim) {
    if (dim == 0) throw std::invalid_argument("EpanechnikovKernel: dim == 0");
    norm_ = 0.5 * (static_cast<double>(dim) + 2.0) / unit_ball_volume(dim);
}

double EpanechnikovKernel::density(std::span<const double> t) const {
    if (t.size() != dim_) throw std::invalid_argument("EpanechnikovKernel::density: dim mismatch");
    double tt = 0.0;
    for (double v : t) tt += v * v;
    if (tt >= 1.0) return 0.0;
    return norm_ * (1.0 - tt);
}

void EpanechnikovKernel::sample(rng::Rng& rng, std::span<double> out) const {
    if (out.size() != dim_) throw std::invalid_argument("EpanechnikovKernel::sample: dim mismatch");
    for (;;) {
        // Uniform direction on the sphere from normalized Gaussians.
        double nrm2 = 0.0;
        for (double& v : out) {
            v = rng.normal();
            nrm2 += v * v;
        }
        if (nrm2 == 0.0) continue;
        const double nrm = std::sqrt(nrm2);

        // Radius of a uniform-ball draw, thinned to the Epanechnikov radial
        // law r^{d-1}(1-r^2) by accepting with probability (1 - r^2).
        const double r = std::pow(rng.uniform(), 1.0 / static_cast<double>(dim_));
        if (rng.uniform() < 1.0 - r * r) {
            for (double& v : out) v *= r / nrm;
            return;
        }
    }
}

// --- Gaussian ----------------------------------------------------------------

GaussianKernel::GaussianKernel(std::size_t dim) : dim_(dim) {
    if (dim == 0) throw std::invalid_argument("GaussianKernel: dim == 0");
    log_norm_ = -0.5 * static_cast<double>(dim) * std::log(2.0 * std::numbers::pi);
}

double GaussianKernel::density(std::span<const double> t) const {
    if (t.size() != dim_) throw std::invalid_argument("GaussianKernel::density: dim mismatch");
    double tt = 0.0;
    for (double v : t) tt += v * v;
    return std::exp(log_norm_ - 0.5 * tt);
}

void GaussianKernel::sample(rng::Rng& rng, std::span<double> out) const {
    if (out.size() != dim_) throw std::invalid_argument("GaussianKernel::sample: dim mismatch");
    for (double& v : out) v = rng.normal();
}

}  // namespace htd::stats
