#pragma once
/// \file kernels.hpp
/// Smoothing kernels for density estimation. The paper (Section 2.5, Eq. 6)
/// uses the radially symmetric multivariate Epanechnikov kernel
///
///   Ke(t) = 1/2 c_d^{-1} (d+2) (1 - t^T t)   for  t^T t < 1,   0 otherwise
///
/// where c_d = 2 pi^{d/2} / (d Gamma(d/2)) is the volume of the unit
/// d-dimensional sphere. A Gaussian kernel is provided for comparison and
/// ablation studies.

#include <span>

#include "rng/rng.hpp"

namespace htd::stats {

/// Volume of the unit ball in `dim` dimensions, c_d = 2 pi^{d/2}/(d Gamma(d/2)).
/// Throws std::invalid_argument when dim == 0.
[[nodiscard]] double unit_ball_volume(std::size_t dim);

/// Smoothing kernel interface: a normalized density on R^dim evaluated at a
/// displacement `t` (already divided by the bandwidth), plus exact sampling.
class SmoothingKernel {
public:
    virtual ~SmoothingKernel() = default;

    /// Kernel density at displacement t (must have size dim()).
    [[nodiscard]] virtual double density(std::span<const double> t) const = 0;

    /// Draw a displacement from the kernel into `out` (size dim()).
    virtual void sample(rng::Rng& rng, std::span<double> out) const = 0;

    /// Dimensionality the kernel was constructed for.
    [[nodiscard]] virtual std::size_t dim() const noexcept = 0;
};

/// Multivariate Epanechnikov kernel, Eq. (6) of the paper.
///
/// Sampling uses the exact radial decomposition: direction uniform on the
/// sphere; radius via rejection from the uniform-ball radial law with
/// acceptance probability (1 - r^2) (overall acceptance 2/(d+2)).
class EpanechnikovKernel final : public SmoothingKernel {
public:
    /// Throws std::invalid_argument when dim == 0.
    explicit EpanechnikovKernel(std::size_t dim);

    [[nodiscard]] double density(std::span<const double> t) const override;
    void sample(rng::Rng& rng, std::span<double> out) const override;
    [[nodiscard]] std::size_t dim() const noexcept override { return dim_; }

    /// The normalizing constant 1/2 c_d^{-1} (d+2).
    [[nodiscard]] double normalizer() const noexcept { return norm_; }

private:
    std::size_t dim_;
    double norm_;
};

/// Isotropic standard multivariate Gaussian kernel (for ablations).
class GaussianKernel final : public SmoothingKernel {
public:
    explicit GaussianKernel(std::size_t dim);

    [[nodiscard]] double density(std::span<const double> t) const override;
    void sample(rng::Rng& rng, std::span<double> out) const override;
    [[nodiscard]] std::size_t dim() const noexcept override { return dim_; }

private:
    std::size_t dim_;
    double log_norm_;
};

}  // namespace htd::stats
