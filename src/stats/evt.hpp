#pragma once
/// \file evt.hpp
/// Extreme-value-theory tail modeling: the generalized Pareto distribution
/// (GPD), peaks-over-threshold (POT) tail models, and a semiparametric
/// tail-enhanced population generator.
///
/// The paper's Section 2.5 uses adaptive KDE as its "advanced statistical
/// tail modeling technique"; EVT is the classical alternative for the same
/// job (modeling where Monte Carlo produces few samples). The library
/// offers both: `core::PipelineConfig::tail_model` selects which one builds
/// the synthetic populations S2/S5, and bench_ablation_kde compares them.

#include <span>

#include "linalg/decompositions.hpp"
#include "linalg/matrix.hpp"
#include "rng/rng.hpp"

namespace htd::stats {

/// Generalized Pareto distribution GPD(shape xi, scale sigma) over excesses
/// y >= 0:  F(y) = 1 - (1 + xi y / sigma)^(-1/xi)   (xi -> 0: 1 - e^(-y/sigma)).
class GeneralizedPareto {
public:
    /// Throws std::invalid_argument for non-positive scale or |shape| >= 1.
    GeneralizedPareto(double shape, double scale);

    /// Density at excess y (0 for y < 0 or beyond the finite endpoint).
    [[nodiscard]] double pdf(double y) const noexcept;

    /// Distribution function at excess y.
    [[nodiscard]] double cdf(double y) const noexcept;

    /// Quantile (inverse CDF) for p in [0, 1); throws std::invalid_argument
    /// outside that range.
    [[nodiscard]] double quantile(double p) const;

    /// One excess draw.
    [[nodiscard]] double sample(rng::Rng& rng) const;

    [[nodiscard]] double shape() const noexcept { return shape_; }
    [[nodiscard]] double scale() const noexcept { return scale_; }

    /// Probability-weighted-moments fit (Hosking & Wallis, 1987) to a sample
    /// of excesses; robust for the small tail samples POT produces. The
    /// fitted shape is clamped into (-0.45, 0.45) for stability. Throws
    /// std::invalid_argument with fewer than 3 excesses or non-positive data
    /// spread.
    [[nodiscard]] static GeneralizedPareto fit_pwm(std::span<const double> excesses);

private:
    double shape_;
    double scale_;
};

/// Peaks-over-threshold model of one tail of a scalar sample: the empirical
/// distribution below the threshold, a fitted GPD above it.
class PotTailModel {
public:
    /// Model the upper (or lower) `tail_fraction` of `sample`. Throws
    /// std::invalid_argument when the tail would have fewer than 3 points or
    /// tail_fraction is outside (0, 0.5].
    PotTailModel(std::span<const double> sample, double tail_fraction, bool upper);

    /// Threshold u marking the start of the modeled tail.
    [[nodiscard]] double threshold() const noexcept { return threshold_; }

    /// Fraction of probability mass in the modeled tail.
    [[nodiscard]] double tail_fraction() const noexcept { return tail_fraction_; }

    [[nodiscard]] const GeneralizedPareto& gpd() const noexcept { return gpd_; }

    /// A draw from the modeled tail (beyond the threshold, in the tail's
    /// direction).
    [[nodiscard]] double sample_tail(rng::Rng& rng) const;

    /// Overall quantile of the semiparametric distribution for p in (0, 1):
    /// empirical interpolation in the body, GPD in the modeled tail.
    [[nodiscard]] double quantile(double p) const;

private:
    std::vector<double> sorted_;
    double tail_fraction_;
    bool upper_;
    double threshold_ = 0.0;
    GeneralizedPareto gpd_{0.0, 1.0};
};

/// Semiparametric tail-enhanced population generator for multivariate data:
/// the data is rotated into its covariance eigenbasis (principal axes), each
/// axis gets an empirical body plus GPD tails (both sides), synthetic
/// samples draw the axes independently in that decorrelated basis and
/// rotate back.
///
/// This is the EVT counterpart of stats::AdaptiveKde for building S2/S5.
class EvtTailEnhancer {
public:
    /// Throws std::invalid_argument for fewer than 10 rows or a tail
    /// fraction outside (0, 0.5].
    explicit EvtTailEnhancer(const linalg::Matrix& data, double tail_fraction = 0.1);

    /// One synthetic sample in the original space.
    [[nodiscard]] linalg::Vector sample(rng::Rng& rng) const;

    /// `n` synthetic samples stacked as rows.
    [[nodiscard]] linalg::Matrix sample_n(rng::Rng& rng, std::size_t n) const;

    /// Fitted tail models per principal axis (index 0 = dominant axis).
    [[nodiscard]] const PotTailModel& upper_tail(std::size_t axis) const;
    [[nodiscard]] const PotTailModel& lower_tail(std::size_t axis) const;

    [[nodiscard]] std::size_t dim() const noexcept { return upper_.size(); }

private:
    double tail_fraction_;
    linalg::Vector mean_;
    linalg::Matrix basis_;   // principal directions as columns
    std::vector<PotTailModel> upper_;
    std::vector<PotTailModel> lower_;
};

}  // namespace htd::stats
