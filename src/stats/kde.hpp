#pragma once
/// \file kde.hpp
/// Non-parametric kernel density estimation and synthetic-data generation —
/// the paper's tail-modeling engine (Section 2.5).
///
/// Two estimators are provided:
///  - `Kde`: the fixed-bandwidth estimate of Eq. (5),
///        f(m) = 1/(M h^d) sum_i Ke((m - m_i)/h)
///  - `AdaptiveKde`: the adaptive estimate of Eq. (7),
///        f_a(m) = 1/M sum_i (h lambda_i)^{-d} Ke((m - m_i)/(h lambda_i))
///    with local bandwidth factors lambda_i = (f(m_i)/g)^{-alpha} (Eq. 8),
///    where g is the geometric mean of the pilot density over the
///    observations (Eq. 9). Observations in low-density tails receive larger
///    bandwidths, which is exactly what lets the synthetic population S2/S5
///    "fill out" the distribution tails.
///
/// Both estimators standardize each coordinate internally (zero mean, unit
/// variance) so a single scalar bandwidth is meaningful for anisotropic
/// fingerprint data; densities and samples are reported in the original
/// space with the correct Jacobian factor.

#include <memory>

#include "linalg/matrix.hpp"
#include "rng/rng.hpp"
#include "stats/kernels.hpp"

namespace htd::stats {

/// Which smoothing kernel a KDE uses.
enum class KernelType {
    kEpanechnikov,  ///< the paper's kernel (Eq. 6)
    kGaussian,      ///< for ablation studies
};

/// Silverman-style rule-of-thumb bandwidth for standardized data:
/// h = A(K) M^{-1/(d+4)} with A(K) the kernel's canonical constant
/// (Epanechnikov: [8 c_d^{-1} (d+4) (2 sqrt(pi))^d]^{1/(d+4)}; Gaussian:
/// (4/(d+2))^{1/(d+4)}). Throws on M == 0 or d == 0.
[[nodiscard]] double silverman_bandwidth(std::size_t n_samples, std::size_t dim,
                                         KernelType kernel = KernelType::kEpanechnikov);

/// Fixed-bandwidth kernel density estimate, Eq. (5).
class Kde {
public:
    /// The complete estimator state in the internal (standardized)
    /// representation. Persisting this exact representation — rather than
    /// the original observations — makes a re-imported estimator evaluate
    /// densities and draw samples bitwise-identically (re-standardizing
    /// would re-round the division).
    struct State {
        linalg::Matrix std_data;    ///< standardized observations
        linalg::Vector col_mean;
        linalg::Vector col_scale;   ///< per-column std (>= tiny floor)
        double h = 0.0;             ///< bandwidth in the standardized space
        double jacobian = 1.0;
        KernelType kernel = KernelType::kEpanechnikov;
    };

    /// Build from observations (rows of `data`). `bandwidth <= 0` selects the
    /// Silverman rule-of-thumb. Throws std::invalid_argument on an empty
    /// dataset or unknown kernel.
    explicit Kde(const linalg::Matrix& data, double bandwidth = 0.0,
                 KernelType kernel = KernelType::kEpanechnikov);

    /// Snapshot of the estimator state.
    [[nodiscard]] State export_state() const;

    /// Rebuild an estimator from exported state; throws
    /// std::invalid_argument on empty observations, shape mismatches, a
    /// non-positive bandwidth/jacobian, or non-finite stored values.
    [[nodiscard]] static Kde from_state(State state);

    Kde(const Kde&) = delete;
    Kde& operator=(const Kde&) = delete;
    Kde(Kde&&) = default;
    Kde& operator=(Kde&&) = default;

    /// Density estimate at `x` in the original data space.
    [[nodiscard]] double density(const linalg::Vector& x) const;

    /// Draw one synthetic sample: pick an observation uniformly, then add a
    /// kernel-distributed displacement scaled by the bandwidth.
    [[nodiscard]] linalg::Vector sample(rng::Rng& rng) const;

    /// Draw `n` synthetic samples stacked as rows. This is the
    /// "enhanced synthetic data generation" step of the paper (M' >> M).
    [[nodiscard]] linalg::Matrix sample_n(rng::Rng& rng, std::size_t n) const;

    /// Bandwidth in the standardized space.
    [[nodiscard]] double bandwidth() const noexcept { return h_; }

    /// Number of observations M.
    [[nodiscard]] std::size_t observation_count() const noexcept { return std_data_.rows(); }

    /// Dimensionality d.
    [[nodiscard]] std::size_t dim() const noexcept { return std_data_.cols(); }

private:
    friend class AdaptiveKde;

    /// Uninitialized shell for from_state / AdaptiveKde::from_state.
    Kde() = default;

    /// Density in the standardized space (no Jacobian factor).
    [[nodiscard]] double standardized_density(std::span<const double> z) const;

    linalg::Matrix std_data_;         // standardized observations
    linalg::Vector col_mean_;
    linalg::Vector col_scale_;        // per-column std (>= tiny floor)
    double h_ = 0.0;
    double jacobian_ = 1.0;           // prod(col_scale_) for original-space density
    KernelType kernel_type_ = KernelType::kEpanechnikov;
    std::unique_ptr<SmoothingKernel> kernel_;
};

/// Adaptive kernel density estimate, Eqs. (7)-(9) of the paper.
class AdaptiveKde {
public:
    /// Build from observations. `alpha` in [0, 1] controls local bandwidth
    /// spread (0 degenerates to the fixed KDE; the paper notes larger alpha
    /// widens the nonzero-density region). `bandwidth <= 0` selects the
    /// Silverman rule for the pilot and the adaptive stage. `max_lambda`
    /// clamps the local factors of Eq. (8): in >= 6 dimensions the pilot
    /// density spans many orders of magnitude and unclamped tail factors
    /// would scatter synthetic samples arbitrarily far from the data.
    /// Throws std::invalid_argument for alpha outside [0, 1], empty data, or
    /// max_lambda < 1.
    explicit AdaptiveKde(const linalg::Matrix& data, double alpha = 0.5,
                         double bandwidth = 0.0,
                         KernelType kernel = KernelType::kEpanechnikov,
                         double max_lambda = 2.5);

    /// Complete adaptive-estimator state: the pilot KDE plus the resolved
    /// local bandwidth factors of Eq. (8). Re-importing skips the quadratic
    /// pilot-density pass entirely and reproduces densities and samples
    /// bitwise.
    struct State {
        Kde::State pilot;
        double alpha = 0.5;
        double g = 1.0;               ///< Eq. (9) pilot geometric mean
        std::vector<double> lambda;   ///< Eq. (8) factors, one per observation
    };

    /// Snapshot of the estimator state.
    [[nodiscard]] State export_state() const;

    /// Rebuild from exported state; throws std::invalid_argument when the
    /// lambda count disagrees with the pilot observations, alpha is outside
    /// [0, 1], g is non-positive, or any factor is non-finite or < 1e-12.
    [[nodiscard]] static AdaptiveKde from_state(State state);

    AdaptiveKde(const AdaptiveKde&) = delete;
    AdaptiveKde& operator=(const AdaptiveKde&) = delete;
    AdaptiveKde(AdaptiveKde&&) = default;
    AdaptiveKde& operator=(AdaptiveKde&&) = default;

    /// Adaptive density estimate at `x` in the original data space.
    [[nodiscard]] double density(const linalg::Vector& x) const;

    /// One synthetic draw: observation i uniform, displacement scaled by
    /// h * lambda_i.
    [[nodiscard]] linalg::Vector sample(rng::Rng& rng) const;

    /// `n` synthetic draws stacked as rows.
    [[nodiscard]] linalg::Matrix sample_n(rng::Rng& rng, std::size_t n) const;

    /// Local bandwidth factor lambda_i for observation i (Eq. 8).
    [[nodiscard]] double local_bandwidth_factor(std::size_t i) const;

    /// Geometric mean g of the pilot densities (Eq. 9).
    [[nodiscard]] double pilot_geometric_mean() const noexcept { return g_; }

    [[nodiscard]] double alpha() const noexcept { return alpha_; }
    [[nodiscard]] double bandwidth() const noexcept { return pilot_.bandwidth(); }
    [[nodiscard]] std::size_t observation_count() const noexcept {
        return pilot_.observation_count();
    }
    [[nodiscard]] std::size_t dim() const noexcept { return pilot_.dim(); }

private:
    /// Uninitialized shell for from_state.
    AdaptiveKde() : alpha_(0.5) {}

    Kde pilot_;
    double alpha_;
    double g_ = 1.0;
    std::vector<double> lambda_;
};

}  // namespace htd::stats
