#pragma once
/// \file json.hpp
/// Minimal JSON value model, serializer and parser for experiment reports
/// and observability artifacts. Strings are escaped per RFC 8259, doubles
/// are emitted with round-trip precision, and `Json::parse` accepts exactly
/// the RFC 8259 value grammar (used to read back RunReport / BENCH_*.json
/// files in tests and tooling).

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "linalg/matrix.hpp"

namespace htd::io {

/// A JSON value: null, bool, number, string, array or object.
class Json {
public:
    /// null
    Json() = default;

    // NOLINTBEGIN(google-explicit-constructor): implicit conversions are the
    // ergonomic point of a JSON value type.
    Json(bool b) : kind_(Kind::kBool), bool_(b) {}
    Json(double v) : kind_(Kind::kNumber), number_(v) {}
    Json(int v) : kind_(Kind::kNumber), number_(v) {}
    Json(std::size_t v) : kind_(Kind::kNumber), number_(static_cast<double>(v)) {}
    Json(const char* s) : kind_(Kind::kString), string_(s) {}
    Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
    // NOLINTEND(google-explicit-constructor)

    /// An empty array / object.
    [[nodiscard]] static Json array();
    [[nodiscard]] static Json object();

    /// Array of numbers from a vector; object-free convenience.
    [[nodiscard]] static Json from(const linalg::Vector& v);

    /// Nested arrays from a matrix (row-major).
    [[nodiscard]] static Json from(const linalg::Matrix& m);

    /// Parse one JSON document (with optional surrounding whitespace);
    /// throws std::invalid_argument on malformed input or trailing content.
    [[nodiscard]] static Json parse(std::string_view text);

    /// Read and parse a file; throws std::runtime_error on IO failure and
    /// std::invalid_argument on malformed content.
    [[nodiscard]] static Json parse_file(const std::string& path);

    /// Append to an array; throws std::logic_error when not an array.
    Json& push_back(Json value);

    /// Set an object member; throws std::logic_error when not an object.
    Json& set(const std::string& key, Json value);

    /// Number of elements (array) or members (object); throws otherwise.
    [[nodiscard]] std::size_t size() const;

    [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
    [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
    [[nodiscard]] bool is_number() const noexcept { return kind_ == Kind::kNumber; }
    [[nodiscard]] bool is_string() const noexcept { return kind_ == Kind::kString; }
    [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
    [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::kObject; }

    /// Typed accessors; each throws std::logic_error on a kind mismatch.
    [[nodiscard]] bool boolean() const;
    [[nodiscard]] double number() const;
    [[nodiscard]] const std::string& str() const;

    /// Array element access; throws std::logic_error when not an array and
    /// std::out_of_range on a bad index.
    [[nodiscard]] const Json& at(std::size_t index) const;

    /// Object member access; throws std::logic_error when not an object and
    /// std::out_of_range on a missing key.
    [[nodiscard]] const Json& at(const std::string& key) const;

    /// True when an object has the member (false for non-objects).
    [[nodiscard]] bool contains(const std::string& key) const noexcept;

    /// Object members (sorted by key); throws when not an object.
    [[nodiscard]] const std::map<std::string, Json>& members() const;

    /// Array elements; throws when not an array.
    [[nodiscard]] const std::vector<Json>& elements() const;

    /// Serialize; `indent` > 0 pretty-prints with that many spaces per level.
    [[nodiscard]] std::string dump(int indent = 0) const;

    /// Serialize to a file; throws std::runtime_error on IO failure.
    void dump_to_file(const std::string& path, int indent = 2) const;

private:
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

    void dump_impl(std::string& out, int indent, int depth) const;

    Kind kind_ = Kind::kNull;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Json> array_;
    std::map<std::string, Json> object_;  // sorted keys: deterministic output
};

/// Escape a string per RFC 8259 (quotes included).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace htd::io
