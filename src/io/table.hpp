#pragma once
/// \file table.hpp
/// Fixed-width text tables for the experiment harness output (Table 1 and
/// the ablation tables are printed in this format).

#include <string>
#include <vector>

namespace htd::io {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class Table {
public:
    /// Construct with column headers; throws std::invalid_argument when
    /// empty.
    explicit Table(std::vector<std::string> header);

    /// Append a row; throws std::invalid_argument on width mismatch.
    void add_row(std::vector<std::string> row);

    /// Number of data rows.
    [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

    /// Render with a header separator and 2-space column gaps.
    [[nodiscard]] std::string str() const;

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Format a double with the given precision (std::fixed).
[[nodiscard]] std::string fmt(double value, int precision = 3);

/// Format "k/n" counts.
[[nodiscard]] std::string fmt_ratio(std::size_t k, std::size_t n);

}  // namespace htd::io
