#pragma once
/// \file csv.hpp
/// Minimal CSV reading/writing for datasets and experiment outputs (the
/// Fig. 4 series are exported as CSV so they can be plotted externally).

#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace htd::io {

/// Write a matrix (with optional column header) to `path`. Throws
/// std::runtime_error when the file cannot be opened and
/// std::invalid_argument when the header width mismatches the data.
void write_csv(const std::string& path, const linalg::Matrix& data,
               const std::vector<std::string>& header = {});

/// Read a CSV of doubles. `has_header` skips the first line; CRLF line
/// endings and trailing cell whitespace are tolerated. Throws
/// std::runtime_error on open failure, on unparsable or non-finite cells
/// (naming the 1-based line and column), and on ragged rows (naming the
/// line and the expected width).
[[nodiscard]] linalg::Matrix read_csv(const std::string& path, bool has_header = false);

/// Render one CSV line from string fields (quotes fields containing commas).
[[nodiscard]] std::string csv_line(const std::vector<std::string>& fields);

}  // namespace htd::io
