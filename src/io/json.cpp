#include "io/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace htd::io {

namespace {

/// Recursive-descent parser over the RFC 8259 value grammar.
class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    Json parse_document() {
        Json value = parse_value();
        skip_whitespace();
        if (pos_ != text_.size()) fail("trailing content after JSON value");
        return value;
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        throw std::invalid_argument("Json::parse: " + what + " at offset " +
                                    std::to_string(pos_));
    }

    void skip_whitespace() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(std::string_view literal) {
        if (text_.substr(pos_, literal.size()) != literal) return false;
        pos_ += literal.size();
        return true;
    }

    Json parse_value() {
        skip_whitespace();
        switch (peek()) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': return Json(parse_string());
            case 't':
                if (!consume_literal("true")) fail("invalid literal");
                return Json(true);
            case 'f':
                if (!consume_literal("false")) fail("invalid literal");
                return Json(false);
            case 'n':
                if (!consume_literal("null")) fail("invalid literal");
                return Json();
            default: return parse_number();
        }
    }

    Json parse_object() {
        expect('{');
        Json obj = Json::object();
        skip_whitespace();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        while (true) {
            skip_whitespace();
            std::string key = parse_string();
            skip_whitespace();
            expect(':');
            obj.set(key, parse_value());
            skip_whitespace();
            const char c = peek();
            ++pos_;
            if (c == '}') return obj;
            if (c != ',') fail("expected ',' or '}' in object");
        }
    }

    Json parse_array() {
        expect('[');
        Json arr = Json::array();
        skip_whitespace();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        while (true) {
            arr.push_back(parse_value());
            skip_whitespace();
            const char c = peek();
            ++pos_;
            if (c == ']') return arr;
            if (c != ',') fail("expected ',' or ']' in array");
        }
    }

    /// Append a code point as UTF-8.
    static void append_utf8(std::string& out, unsigned cp) {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    unsigned parse_hex4() {
        if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
        unsigned value = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            value <<= 4;
            if (c >= '0' && c <= '9') {
                value |= static_cast<unsigned>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                value |= static_cast<unsigned>(c - 'a' + 10);
            } else if (c >= 'A' && c <= 'F') {
                value |= static_cast<unsigned>(c - 'A' + 10);
            } else {
                fail("invalid hex digit in \\u escape");
            }
        }
        return value;
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) fail("truncated escape");
            const char e = text_[pos_++];
            switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    unsigned cp = parse_hex4();
                    if (cp >= 0xD800 && cp <= 0xDBFF) {
                        // High surrogate: a low surrogate must follow.
                        if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                            text_[pos_ + 1] == 'u') {
                            pos_ += 2;
                            const unsigned lo = parse_hex4();
                            if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
                            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                        } else {
                            fail("unpaired surrogate");
                        }
                    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                        fail("unpaired surrogate");
                    }
                    append_utf8(out, cp);
                    break;
                }
                default: fail("unknown escape");
            }
        }
    }

    Json parse_number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                text_[pos_] == '+' || text_[pos_] == '-')) {
            ++pos_;
        }
        const std::string token(text_.substr(start, pos_ - start));
        if (token.empty() || token == "-") fail("invalid number");
        char* end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size()) fail("invalid number");
        return Json(value);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

std::string json_escape(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
    return out;
}

Json Json::array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
}

Json Json::object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
}

Json Json::from(const linalg::Vector& v) {
    Json j = array();
    for (std::size_t i = 0; i < v.size(); ++i) j.push_back(v[i]);
    return j;
}

Json Json::from(const linalg::Matrix& m) {
    Json j = array();
    for (std::size_t r = 0; r < m.rows(); ++r) j.push_back(from(m.row(r)));
    return j;
}

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

Json Json::parse_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("Json::parse_file: cannot open " + path);
    std::ostringstream content;
    content << in.rdbuf();
    return parse(content.str());
}

bool Json::boolean() const {
    if (kind_ != Kind::kBool) throw std::logic_error("Json::boolean: not a bool");
    return bool_;
}

double Json::number() const {
    if (kind_ != Kind::kNumber) throw std::logic_error("Json::number: not a number");
    return number_;
}

const std::string& Json::str() const {
    if (kind_ != Kind::kString) throw std::logic_error("Json::str: not a string");
    return string_;
}

const Json& Json::at(std::size_t index) const {
    if (kind_ != Kind::kArray) throw std::logic_error("Json::at: not an array");
    if (index >= array_.size()) throw std::out_of_range("Json::at: index out of range");
    return array_[index];
}

const Json& Json::at(const std::string& key) const {
    if (kind_ != Kind::kObject) throw std::logic_error("Json::at: not an object");
    const auto it = object_.find(key);
    if (it == object_.end()) throw std::out_of_range("Json::at: no member '" + key + "'");
    return it->second;
}

bool Json::contains(const std::string& key) const noexcept {
    return kind_ == Kind::kObject && object_.count(key) > 0;
}

const std::map<std::string, Json>& Json::members() const {
    if (kind_ != Kind::kObject) throw std::logic_error("Json::members: not an object");
    return object_;
}

const std::vector<Json>& Json::elements() const {
    if (kind_ != Kind::kArray) throw std::logic_error("Json::elements: not an array");
    return array_;
}

Json& Json::push_back(Json value) {
    if (kind_ != Kind::kArray) throw std::logic_error("Json::push_back: not an array");
    array_.push_back(std::move(value));
    return *this;
}

Json& Json::set(const std::string& key, Json value) {
    if (kind_ != Kind::kObject) throw std::logic_error("Json::set: not an object");
    object_[key] = std::move(value);
    return *this;
}

std::size_t Json::size() const {
    if (kind_ == Kind::kArray) return array_.size();
    if (kind_ == Kind::kObject) return object_.size();
    throw std::logic_error("Json::size: not a container");
}

void Json::dump_impl(std::string& out, int indent, int depth) const {
    const auto newline = [&](int d) {
        if (indent > 0) {
            out += '\n';
            out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(d),
                       ' ');
        }
    };
    switch (kind_) {
        case Kind::kNull: out += "null"; break;
        case Kind::kBool: out += bool_ ? "true" : "false"; break;
        case Kind::kNumber: {
            if (!std::isfinite(number_)) {
                out += "null";  // JSON has no NaN/inf
                break;
            }
            // Shortest round-trip form: the emitted digits parse back to
            // the identical bit pattern (denormals, negative zero, 1e308
            // magnitudes included), which the htd.boundary.v1 artifact
            // byte-identity contract relies on. %.17g over-prints digits
            // and is locale-sensitive.
            char buf[32];
            const std::to_chars_result res =
                std::to_chars(buf, buf + sizeof buf, number_);
            out.append(buf, res.ptr);
            break;
        }
        case Kind::kString: out += json_escape(string_); break;
        case Kind::kArray: {
            out += '[';
            bool first = true;
            for (const Json& v : array_) {
                if (!first) out += ',';
                first = false;
                newline(depth + 1);
                v.dump_impl(out, indent, depth + 1);
            }
            if (!array_.empty()) newline(depth);
            out += ']';
            break;
        }
        case Kind::kObject: {
            out += '{';
            bool first = true;
            for (const auto& [key, value] : object_) {
                if (!first) out += ',';
                first = false;
                newline(depth + 1);
                out += json_escape(key);
                out += indent > 0 ? ": " : ":";
                value.dump_impl(out, indent, depth + 1);
            }
            if (!object_.empty()) newline(depth);
            out += '}';
            break;
        }
    }
}

std::string Json::dump(int indent) const {
    std::string out;
    dump_impl(out, indent, 0);
    return out;
}

void Json::dump_to_file(const std::string& path, int indent) const {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("Json::dump_to_file: cannot open " + path);
    out << dump(indent) << '\n';
    if (!out) throw std::runtime_error("Json::dump_to_file: write failure " + path);
}

}  // namespace htd::io
