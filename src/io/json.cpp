#include "io/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace htd::io {

std::string json_escape(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
    return out;
}

Json Json::array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
}

Json Json::object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
}

Json Json::from(const linalg::Vector& v) {
    Json j = array();
    for (std::size_t i = 0; i < v.size(); ++i) j.push_back(v[i]);
    return j;
}

Json Json::from(const linalg::Matrix& m) {
    Json j = array();
    for (std::size_t r = 0; r < m.rows(); ++r) j.push_back(from(m.row(r)));
    return j;
}

Json& Json::push_back(Json value) {
    if (kind_ != Kind::kArray) throw std::logic_error("Json::push_back: not an array");
    array_.push_back(std::move(value));
    return *this;
}

Json& Json::set(const std::string& key, Json value) {
    if (kind_ != Kind::kObject) throw std::logic_error("Json::set: not an object");
    object_[key] = std::move(value);
    return *this;
}

std::size_t Json::size() const {
    if (kind_ == Kind::kArray) return array_.size();
    if (kind_ == Kind::kObject) return object_.size();
    throw std::logic_error("Json::size: not a container");
}

void Json::dump_impl(std::string& out, int indent, int depth) const {
    const auto newline = [&](int d) {
        if (indent > 0) {
            out += '\n';
            out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(d),
                       ' ');
        }
    };
    switch (kind_) {
        case Kind::kNull: out += "null"; break;
        case Kind::kBool: out += bool_ ? "true" : "false"; break;
        case Kind::kNumber: {
            if (!std::isfinite(number_)) {
                out += "null";  // JSON has no NaN/inf
                break;
            }
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.17g", number_);
            out += buf;
            break;
        }
        case Kind::kString: out += json_escape(string_); break;
        case Kind::kArray: {
            out += '[';
            bool first = true;
            for (const Json& v : array_) {
                if (!first) out += ',';
                first = false;
                newline(depth + 1);
                v.dump_impl(out, indent, depth + 1);
            }
            if (!array_.empty()) newline(depth);
            out += ']';
            break;
        }
        case Kind::kObject: {
            out += '{';
            bool first = true;
            for (const auto& [key, value] : object_) {
                if (!first) out += ',';
                first = false;
                newline(depth + 1);
                out += json_escape(key);
                out += indent > 0 ? ": " : ":";
                value.dump_impl(out, indent, depth + 1);
            }
            if (!object_.empty()) newline(depth);
            out += '}';
            break;
        }
    }
}

std::string Json::dump(int indent) const {
    std::string out;
    dump_impl(out, indent, 0);
    return out;
}

void Json::dump_to_file(const std::string& path, int indent) const {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("Json::dump_to_file: cannot open " + path);
    out << dump(indent) << '\n';
    if (!out) throw std::runtime_error("Json::dump_to_file: write failure " + path);
}

}  // namespace htd::io
