#include "io/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace htd::io {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
    if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
    if (row.size() != header_.size()) {
        throw std::invalid_argument("Table::add_row: width mismatch");
    }
    rows_.push_back(std::move(row));
}

std::string Table::str() const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            width[c] = std::max(width[c], row[c].size());
        }
    }

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c > 0) os << "  ";
            os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
        }
        os << '\n';
    };
    emit_row(header_);
    for (std::size_t c = 0; c < header_.size(); ++c) {
        if (c > 0) os << "  ";
        os << std::string(width[c], '-');
    }
    os << '\n';
    for (const auto& row : rows_) emit_row(row);
    return os.str();
}

std::string fmt(double value, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string fmt_ratio(std::size_t k, std::size_t n) {
    std::ostringstream os;
    os << k << '/' << n;
    return os.str();
}

}  // namespace htd::io
