#include "io/csv.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace htd::io {

std::string csv_line(const std::vector<std::string>& fields) {
    std::ostringstream os;
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) os << ',';
        const std::string& f = fields[i];
        if (f.find(',') != std::string::npos || f.find('"') != std::string::npos) {
            os << '"';
            for (char c : f) {
                if (c == '"') os << '"';
                os << c;
            }
            os << '"';
        } else {
            os << f;
        }
    }
    return os.str();
}

void write_csv(const std::string& path, const linalg::Matrix& data,
               const std::vector<std::string>& header) {
    if (!header.empty() && header.size() != data.cols()) {
        throw std::invalid_argument("write_csv: header width mismatch");
    }
    std::ofstream out(path);
    if (!out) throw std::runtime_error("write_csv: cannot open " + path);
    if (!header.empty()) out << csv_line(header) << '\n';
    // Shortest round-trip formatting: a written cell reads back to the
    // identical double, so a fingerprint batch exported here and re-read by
    // read_csv scores bitwise the same as the in-memory matrix (the
    // htd_score calibrate/score parity contract).
    char buf[32];
    for (std::size_t r = 0; r < data.rows(); ++r) {
        for (std::size_t c = 0; c < data.cols(); ++c) {
            if (c > 0) out << ',';
            const std::to_chars_result res =
                std::to_chars(buf, buf + sizeof buf, data(r, c));
            out.write(buf, res.ptr - buf);
        }
        out << '\n';
    }
    if (!out) throw std::runtime_error("write_csv: write failure on " + path);
}

namespace {

/// Parse one numeric cell; rejects trailing garbage ("1.5x"), empty cells
/// and non-finite values ("nan", "inf", or an overflowing literal), naming
/// the 1-based line and column on failure.
double parse_cell(const std::string& cell, const std::string& path,
                  std::size_t line_no, std::size_t col_no) {
    const auto fail = [&](const std::string& why) -> double {
        throw std::runtime_error("read_csv: " + why + " '" + cell + "' at line " +
                                 std::to_string(line_no) + ", column " +
                                 std::to_string(col_no) + " of " + path);
    };
    double value = 0.0;
    std::size_t consumed = 0;
    try {
        value = std::stod(cell, &consumed);
    } catch (const std::exception&) {
        return fail("unparsable cell");
    }
    // Tolerate trailing spaces (and the \r of a CRLF file), nothing else.
    for (std::size_t i = consumed; i < cell.size(); ++i) {
        if (cell[i] != ' ' && cell[i] != '\t' && cell[i] != '\r') {
            return fail("unparsable cell");
        }
    }
    if (!std::isfinite(value)) return fail("non-finite value");
    return value;
}

}  // namespace

linalg::Matrix read_csv(const std::string& path, bool has_header) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("read_csv: cannot open " + path);
    linalg::Matrix out;
    std::string line;
    std::size_t line_no = 0;
    bool first = true;
    while (std::getline(in, line)) {
        ++line_no;
        if (first && has_header) {
            first = false;
            continue;
        }
        first = false;
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        linalg::Vector row;
        std::stringstream ss(line);
        std::string cell;
        while (std::getline(ss, cell, ',')) {
            row.push_back(parse_cell(cell, path, line_no, row.size() + 1));
        }
        if (out.rows() > 0 && row.size() != out.cols()) {
            throw std::runtime_error(
                "read_csv: ragged row at line " + std::to_string(line_no) + " of " +
                path + " (" + std::to_string(row.size()) + " columns, expected " +
                std::to_string(out.cols()) + ")");
        }
        out.append_row(row);
    }
    return out;
}

}  // namespace htd::io
