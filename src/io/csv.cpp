#include "io/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace htd::io {

std::string csv_line(const std::vector<std::string>& fields) {
    std::ostringstream os;
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) os << ',';
        const std::string& f = fields[i];
        if (f.find(',') != std::string::npos || f.find('"') != std::string::npos) {
            os << '"';
            for (char c : f) {
                if (c == '"') os << '"';
                os << c;
            }
            os << '"';
        } else {
            os << f;
        }
    }
    return os.str();
}

void write_csv(const std::string& path, const linalg::Matrix& data,
               const std::vector<std::string>& header) {
    if (!header.empty() && header.size() != data.cols()) {
        throw std::invalid_argument("write_csv: header width mismatch");
    }
    std::ofstream out(path);
    if (!out) throw std::runtime_error("write_csv: cannot open " + path);
    out.precision(12);
    if (!header.empty()) out << csv_line(header) << '\n';
    for (std::size_t r = 0; r < data.rows(); ++r) {
        for (std::size_t c = 0; c < data.cols(); ++c) {
            if (c > 0) out << ',';
            out << data(r, c);
        }
        out << '\n';
    }
    if (!out) throw std::runtime_error("write_csv: write failure on " + path);
}

linalg::Matrix read_csv(const std::string& path, bool has_header) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("read_csv: cannot open " + path);
    linalg::Matrix out;
    std::string line;
    bool first = true;
    while (std::getline(in, line)) {
        if (first && has_header) {
            first = false;
            continue;
        }
        first = false;
        if (line.empty()) continue;
        linalg::Vector row;
        std::stringstream ss(line);
        std::string cell;
        while (std::getline(ss, cell, ',')) {
            try {
                row.push_back(std::stod(cell));
            } catch (const std::exception&) {
                throw std::runtime_error("read_csv: unparsable cell '" + cell + "' in " +
                                         path);
            }
        }
        try {
            out.append_row(row);
        } catch (const std::invalid_argument&) {
            throw std::runtime_error("read_csv: ragged rows in " + path);
        }
    }
    return out;
}

}  // namespace htd::io
