#include "circuit/netlist.hpp"

#include <stdexcept>

namespace htd::circuit {

// --- Pwl ---------------------------------------------------------------------

Pwl::Pwl(double constant) : points_{{0.0, constant}} {}

Pwl::Pwl(std::vector<std::pair<double, double>> points) : points_(std::move(points)) {
    if (points_.empty()) throw std::invalid_argument("Pwl: empty breakpoint list");
    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (points_[i].first <= points_[i - 1].first) {
            throw std::invalid_argument("Pwl: times must be strictly increasing");
        }
    }
}

Pwl Pwl::step(double low, double high, double t_step, double rise_time) {
    if (rise_time <= 0.0) throw std::invalid_argument("Pwl::step: rise_time <= 0");
    if (t_step <= 0.0) {
        return Pwl(std::vector<std::pair<double, double>>{{0.0, high}});
    }
    return Pwl(std::vector<std::pair<double, double>>{
        {0.0, low}, {t_step, low}, {t_step + rise_time, high}});
}

double Pwl::at(double t) const noexcept {
    if (t <= points_.front().first) return points_.front().second;
    if (t >= points_.back().first) return points_.back().second;
    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (t <= points_[i].first) {
            const auto& [t0, v0] = points_[i - 1];
            const auto& [t1, v1] = points_[i];
            return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
        }
    }
    return points_.back().second;
}

// --- Netlist -------------------------------------------------------------------

Netlist::Netlist() { names_.push_back("0"); }

std::size_t Netlist::node(const std::string& name) {
    if (name == "0" || name == "gnd") return 0;
    for (std::size_t i = 1; i < names_.size(); ++i) {
        if (names_[i] == name) return i;
    }
    names_.push_back(name);
    return names_.size() - 1;
}

const std::string& Netlist::node_name(std::size_t index) const {
    if (index >= names_.size()) throw std::out_of_range("Netlist::node_name");
    return names_[index];
}

void Netlist::add_resistor(const std::string& name, const std::string& n1,
                           const std::string& n2, double ohms,
                           bool scale_with_rsheet) {
    if (ohms <= 0.0) throw std::invalid_argument("Netlist: non-positive resistance");
    resistors_.push_back({name, node(n1), node(n2), ohms, scale_with_rsheet});
}

void Netlist::add_capacitor(const std::string& name, const std::string& n1,
                            const std::string& n2, double farads,
                            bool scale_with_cj) {
    if (farads <= 0.0) throw std::invalid_argument("Netlist: non-positive capacitance");
    capacitors_.push_back({name, node(n1), node(n2), farads, scale_with_cj});
}

void Netlist::add_vsource(const std::string& name, const std::string& np,
                          const std::string& nn, Pwl waveform) {
    vsources_.push_back({name, node(np), node(nn), std::move(waveform)});
}

void Netlist::add_isource(const std::string& name, const std::string& np,
                          const std::string& nn, Pwl waveform) {
    isources_.push_back({name, node(np), node(nn), std::move(waveform)});
}

void Netlist::add_mosfet(const std::string& name, const std::string& drain,
                         const std::string& gate, const std::string& source,
                         MosType type, MosfetGeometry geometry) {
    if (geometry.width_um <= 0.0 || geometry.length_um <= 0.0) {
        throw std::invalid_argument("Netlist: non-positive MOSFET geometry");
    }
    mosfets_.push_back({name, node(drain), node(gate), node(source), type, geometry});
}

void Netlist::add_inverter(const std::string& name, const std::string& input,
                           const std::string& output, const std::string& vdd_node,
                           double nmos_width_um, double length_um) {
    add_mosfet(name + ".mp", output, input, vdd_node, MosType::kPmos,
               {2.0 * nmos_width_um, length_um});
    add_mosfet(name + ".mn", output, input, "0", MosType::kNmos,
               {nmos_width_um, length_um});
}

}  // namespace htd::circuit
