#pragma once
/// \file spice.hpp
/// A miniature SPICE: modified nodal analysis with Newton-Raphson for the
/// nonlinear MOSFETs (Sakurai-Newton alpha-power model in all regions) and
/// backward-Euler transient integration. This is the "Spice-level
/// simulation" engine behind the trusted design model — the analytic
/// delay/gain expressions used by the fast paths of the library are
/// validated against it (see tests/test_spice.cpp and the spice_pcm_demo
/// example).
///
/// Scope: DC operating point and fixed-step transient of circuits made of
/// resistors, capacitors, independent V/I sources and MOSFETs. All
/// quantities are SI (volts, amperes, ohms, farads, seconds).

#include <string>
#include <vector>

#include "circuit/delay.hpp"
#include "circuit/netlist.hpp"
#include "linalg/matrix.hpp"
#include "process/process_point.hpp"

namespace htd::circuit {

/// Solver controls.
struct SpiceOptions {
    double gmin = 1e-9;          ///< leak conductance per node [S]
    double reltol = 1e-6;        ///< Newton voltage tolerance [V]
    std::size_t max_newton = 200;
    double max_step_v = 0.5;     ///< Newton update damping [V]
};

/// DC operating point.
struct DcSolution {
    linalg::Vector node_voltages;  ///< indexed by netlist node index
    std::size_t newton_iterations = 0;
    bool converged = false;
};

/// Transient result: node voltages over time.
struct TransientSolution {
    std::vector<double> time;  ///< time points [s]
    linalg::Matrix voltages;   ///< rows = time points, cols = node indices

    /// First time the given node crosses `level` in the given direction
    /// (linearly interpolated); returns a negative value when it never does.
    [[nodiscard]] double crossing_time(std::size_t node, double level,
                                       bool rising) const;
};

/// The simulator. Construct once per netlist; each solve takes the process
/// point, so one engine serves a Monte Carlo population.
class SpiceEngine {
public:
    /// Throws std::invalid_argument when the netlist has no nodes beyond
    /// ground.
    explicit SpiceEngine(const Netlist& netlist, SpiceOptions options = {});

    /// DC operating point with sources evaluated at t = 0.
    [[nodiscard]] DcSolution dc(const process::ProcessPoint& pp) const;

    /// Fixed-step backward-Euler transient from the DC operating point.
    /// Throws std::invalid_argument for non-positive t_stop/dt and
    /// std::runtime_error when Newton fails to converge at some step.
    [[nodiscard]] TransientSolution transient(const process::ProcessPoint& pp,
                                              double t_stop, double dt) const;

    [[nodiscard]] const Netlist& netlist() const noexcept { return netlist_; }
    [[nodiscard]] const SpiceOptions& options() const noexcept { return options_; }

private:
    /// One Newton solve of the (possibly companion-augmented) system.
    [[nodiscard]] linalg::Vector solve_newton(const process::ProcessPoint& pp,
                                              double t, double dt,
                                              const linalg::Vector& v_prev,
                                              bool transient_mode,
                                              std::size_t* iterations_out) const;

    Netlist netlist_;
    SpiceOptions options_;
    std::size_t n_nodes_;     // including ground
    std::size_t n_vsrc_;
    std::size_t dim_;         // (n_nodes - 1) + n_vsrc
};

/// Sakurai-Newton all-region drain current [A] of an NMOS-referenced device
/// at terminal voltages (vgs, vds) for the given process point; PMOS uses
/// mirrored voltages internally. Exposed for device-level tests.
[[nodiscard]] double mosfet_current_a(const MosfetInstance& device,
                                      const process::ProcessPoint& pp, double vgs,
                                      double vds);

/// Build the PCM path (chain of inverters + wire RC, as PcmPath) as a
/// netlist driven by a rising step on node "in"; the measured output node is
/// "n<stages>".
[[nodiscard]] Netlist build_pcm_path_netlist(const PcmPath::Options& opts);

/// Path delay [ns] of the PCM structure measured by transient simulation:
/// 50% input crossing to 50% crossing of the final stage output. A
/// simulation-based counterpart of PcmPath::delay_ns for validation.
[[nodiscard]] double spice_pcm_delay_ns(const process::ProcessPoint& pp,
                                        const PcmPath::Options& opts = {},
                                        double dt_ps = 0.02);

}  // namespace htd::circuit
