#pragma once
/// \file netlist.hpp
/// Structural circuit netlist for the mini-SPICE engine (see spice.hpp).
/// The netlist is device-level: resistors, capacitors, independent sources
/// and MOSFETs referencing the library's alpha-power device model. Node 0
/// ("0" or "gnd") is ground. Process dependence enters at simulation time:
/// every solver call takes a ProcessPoint, so one netlist serves the whole
/// Monte Carlo population.

#include <cstddef>
#include <string>
#include <vector>

#include "circuit/mosfet.hpp"

namespace htd::circuit {

/// Piecewise-linear waveform for independent sources: value(t) interpolates
/// linearly between (time, value) breakpoints and holds the end values.
class Pwl {
public:
    /// Constant value.
    explicit Pwl(double constant = 0.0);

    /// Breakpoint list; times must be strictly increasing (throws
    /// std::invalid_argument otherwise).
    explicit Pwl(std::vector<std::pair<double, double>> points);

    /// A step from `low` to `high` at `t_step` with the given rise time.
    [[nodiscard]] static Pwl step(double low, double high, double t_step,
                                  double rise_time);

    /// Value at time t.
    [[nodiscard]] double at(double t) const noexcept;

private:
    std::vector<std::pair<double, double>> points_;
};

/// One device instance in the netlist.
struct Resistor {
    std::string name;
    std::size_t n1 = 0, n2 = 0;
    double ohms = 0.0;
    bool scale_with_rsheet = false;  ///< track the process sheet resistance
};

struct Capacitor {
    std::string name;
    std::size_t n1 = 0, n2 = 0;
    double farads = 0.0;
    bool scale_with_cj = false;  ///< track the process parasitic scale
};

struct VoltageSource {
    std::string name;
    std::size_t np = 0, nn = 0;
    Pwl waveform{0.0};
};

struct CurrentSource {
    std::string name;
    std::size_t np = 0, nn = 0;  ///< current flows np -> nn through the source
    Pwl waveform{0.0};
};

struct MosfetInstance {
    std::string name;
    std::size_t drain = 0, gate = 0, source = 0;
    MosType type = MosType::kNmos;
    MosfetGeometry geometry{};
};

/// A flat device-level netlist.
class Netlist {
public:
    Netlist();

    /// Node index for `name`, creating it if needed. "0" and "gnd" map to
    /// ground (index 0).
    [[nodiscard]] std::size_t node(const std::string& name);

    /// Number of nodes including ground.
    [[nodiscard]] std::size_t node_count() const noexcept { return names_.size(); }

    /// Name of a node index; throws std::out_of_range.
    [[nodiscard]] const std::string& node_name(std::size_t index) const;

    // --- device factories (names must be unique per type) -----------------

    void add_resistor(const std::string& name, const std::string& n1,
                      const std::string& n2, double ohms,
                      bool scale_with_rsheet = false);
    void add_capacitor(const std::string& name, const std::string& n1,
                       const std::string& n2, double farads,
                       bool scale_with_cj = false);
    void add_vsource(const std::string& name, const std::string& np,
                     const std::string& nn, Pwl waveform);
    void add_isource(const std::string& name, const std::string& np,
                     const std::string& nn, Pwl waveform);
    void add_mosfet(const std::string& name, const std::string& drain,
                    const std::string& gate, const std::string& source,
                    MosType type, MosfetGeometry geometry);

    /// Convenience: a CMOS inverter (PMOS to `vdd_node`, NMOS to ground)
    /// with the usual 2:1 sizing.
    void add_inverter(const std::string& name, const std::string& input,
                      const std::string& output, const std::string& vdd_node,
                      double nmos_width_um, double length_um = 0.35);

    [[nodiscard]] const std::vector<Resistor>& resistors() const noexcept {
        return resistors_;
    }
    [[nodiscard]] const std::vector<Capacitor>& capacitors() const noexcept {
        return capacitors_;
    }
    [[nodiscard]] const std::vector<VoltageSource>& vsources() const noexcept {
        return vsources_;
    }
    [[nodiscard]] const std::vector<CurrentSource>& isources() const noexcept {
        return isources_;
    }
    [[nodiscard]] const std::vector<MosfetInstance>& mosfets() const noexcept {
        return mosfets_;
    }

private:
    std::vector<std::string> names_;  // index -> node name
    std::vector<Resistor> resistors_;
    std::vector<Capacitor> capacitors_;
    std::vector<VoltageSource> vsources_;
    std::vector<CurrentSource> isources_;
    std::vector<MosfetInstance> mosfets_;
};

}  // namespace htd::circuit
