#pragma once
/// \file monitored_paths.hpp
/// A set of monitored timing paths for path-delay fingerprinting (Jin &
/// Makris, HOST'08 — reference [7] of the paper). Each path is an inverter
/// chain with its own stage count, drive strength and wire load, so the set
/// responds to process variation with diverse sensitivities; a hardware
/// Trojan tapping internal nets adds capacitive load to the paths that run
/// near it, leaving a pattern across the path-delay vector.

#include <cstddef>
#include <vector>

#include "circuit/delay.hpp"
#include "linalg/matrix.hpp"
#include "process/process_point.hpp"

namespace htd::circuit {

/// A diversified set of monitored paths.
class MonitoredPathSet {
public:
    /// Build `count` paths with deterministic, diversified geometries
    /// (stage counts 6..24, alternating drive strengths and wire lengths).
    /// Throws std::invalid_argument when count == 0.
    explicit MonitoredPathSet(std::size_t count = 8);

    /// Number of monitored paths.
    [[nodiscard]] std::size_t size() const noexcept { return paths_.size(); }

    /// Noise-free delay vector [ns] at a process point.
    [[nodiscard]] linalg::Vector delays_ns(const process::ProcessPoint& pp) const;

    /// Delay vector with extra per-path capacitive load [fF] (a Trojan's
    /// taps); `extra_load_ff` must have size() entries or be empty.
    [[nodiscard]] linalg::Vector delays_ns(const process::ProcessPoint& pp,
                                           const linalg::Vector& extra_load_ff) const;

    /// The path geometries (exposed for tests and reports).
    [[nodiscard]] const std::vector<PcmPath::Options>& geometries() const noexcept {
        return geometries_;
    }

private:
    std::vector<PcmPath::Options> geometries_;
    std::vector<PcmPath> paths_;
};

}  // namespace htd::circuit
