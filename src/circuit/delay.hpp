#pragma once
/// \file delay.hpp
/// CMOS gate-delay and interconnect models, composed into the two Process
/// Control Monitor structures the library offers:
///  - `PcmPath`: a chain of inverters with RC interconnect between stages —
///    the "simple digital path included on chip for silicon characterization"
///    the paper uses as its np = 1 PCM, and
///  - `RingOscillatorPcm`: the classic kerf ring oscillator, reported as a
///    frequency.
/// Both are deterministic functions of a ProcessPoint; the measurement
/// bench adds instrument noise on top.

#include <cstddef>
#include <vector>

#include "circuit/mosfet.hpp"
#include "process/process_point.hpp"

namespace htd::circuit {

/// A CMOS inverter with the usual 2:1 P:N sizing.
struct Inverter {
    Mosfet nmos;
    Mosfet pmos;

    /// Build with the given NMOS width (PMOS gets twice the width).
    explicit Inverter(double nmos_width_um = 4.0, double length_um = 0.35);

    /// Input capacitance [fF].
    [[nodiscard]] double input_capacitance_ff(const process::ProcessPoint& pp) const;

    /// Propagation delay [ps] driving `load_ff` femtofarads from supply
    /// `vdd`: average of rise and fall delays, each 0.69 R C.
    [[nodiscard]] double propagation_delay_ps(const process::ProcessPoint& pp,
                                              double load_ff, double vdd) const;
};

/// A uniform RC wire segment evaluated with the Elmore approximation.
struct WireSegment {
    double length_um = 50.0;           ///< wire length
    double res_per_um = 0.08;          ///< nominal resistance [ohm/um] at Rsheet = 75
    double cap_per_um_ff = 0.08;       ///< nominal capacitance [fF/um]

    /// Total wire resistance [kOhm], scaled by the process sheet resistance.
    [[nodiscard]] double resistance_kohm(const process::ProcessPoint& pp) const;

    /// Total wire capacitance [fF], scaled by the process cap scale.
    [[nodiscard]] double capacitance_ff(const process::ProcessPoint& pp) const;

    /// Elmore delay [ps] of the distributed wire itself: 0.5 R C.
    [[nodiscard]] double elmore_delay_ps(const process::ProcessPoint& pp) const;
};

/// Elmore delay [ps] of an RC ladder: resistances [kOhm] and node
/// capacitances [fF] along the path; throws std::invalid_argument when the
/// two lists differ in length.
[[nodiscard]] double elmore_ladder_delay_ps(const std::vector<double>& resistances_kohm,
                                            const std::vector<double>& caps_ff);

/// The on-die path-delay PCM: `stages` identical inverters connected by
/// identical wire segments, terminated by a load inverter.
class PcmPath {
public:
    struct Options {
        std::size_t stages = 16;
        double vdd = 3.3;
        double nmos_width_um = 4.0;
        double wire_length_um = 60.0;
    };

    PcmPath() : PcmPath(Options{}) {}
    explicit PcmPath(Options opts);

    /// Noise-free path delay [ns] at a process point.
    [[nodiscard]] double delay_ns(const process::ProcessPoint& pp) const;

    [[nodiscard]] const Options& options() const noexcept { return opts_; }

private:
    Options opts_;
    Inverter stage_;
    WireSegment wire_;
};

/// A kerf ring-oscillator PCM reported as an oscillation frequency [MHz].
class RingOscillatorPcm {
public:
    struct Options {
        std::size_t stages = 31;       ///< odd number of inverters
        double vdd = 3.3;
        double nmos_width_um = 2.0;
    };

    /// Throws std::invalid_argument when `stages` is even or zero.
    RingOscillatorPcm() : RingOscillatorPcm(Options{}) {}
    explicit RingOscillatorPcm(Options opts);

    /// Noise-free oscillation frequency [MHz] at a process point.
    [[nodiscard]] double frequency_mhz(const process::ProcessPoint& pp) const;

    [[nodiscard]] const Options& options() const noexcept { return opts_; }

private:
    Options opts_;
    Inverter stage_;
};

}  // namespace htd::circuit
