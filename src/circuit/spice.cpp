#include "circuit/spice.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/decompositions.hpp"

namespace htd::circuit {

namespace {

/// NMOS-referenced all-region current. vgs/vds already polarity-normalized.
double nmos_like_current(double isat_full, double vth, double alpha, double vgs,
                         double vds) {
    // Symmetric device: if vds < 0 the roles of drain and source swap.
    if (vds < 0.0) {
        return -nmos_like_current(isat_full, vth, alpha, vgs - vds, -vds);
    }
    const double vov = vgs - vth;
    if (vov <= 0.0) return 0.0;
    // isat_full is the saturation current at overdrive (vgs_ref - vth); the
    // caller passes the current for THIS vgs, so scale is already folded in.
    const double isat = isat_full;
    const double vdsat = 0.5 * vov;
    constexpr double kLambda = 0.05;  // channel-length modulation [1/V]
    if (vds >= vdsat) {
        return isat * (1.0 + kLambda * (vds - vdsat));
    }
    const double r = vds / vdsat;
    return isat * (2.0 - r) * r;
    (void)alpha;
}

}  // namespace

double mosfet_current_a(const MosfetInstance& device, const process::ProcessPoint& pp,
                        double vgs, double vds) {
    // Normalize polarity: PMOS conducts for negative vgs/vds; mirror into the
    // NMOS frame.
    const double sign = device.type == MosType::kNmos ? 1.0 : -1.0;
    const double vgs_n = sign * vgs;
    const double vds_n = sign * vds;

    const Mosfet model(device.type, device.geometry);
    const double vth = model.threshold_v(pp);

    // Current handed to the region equation: saturation current at this
    // specific gate drive (alpha-power law), in amperes. For a swapped-drain
    // evaluation the recursive call in nmos_like_current adjusts vgs itself,
    // so compute isat lazily via a small lambda.
    auto isat_at = [&](double vgs_eff) {
        return model.saturation_current_ma(pp, vgs_eff) * 1e-3;
    };
    double i;
    if (vds_n >= 0.0) {
        i = nmos_like_current(isat_at(vgs_n), vth, model.alpha(), vgs_n, vds_n);
    } else {
        // swap drain/source: effective gate drive is vgd = vgs - vds
        i = -nmos_like_current(isat_at(vgs_n - vds_n), vth, model.alpha(),
                               vgs_n - vds_n, -vds_n);
    }
    return sign * i;
}

// --- TransientSolution ---------------------------------------------------------

double TransientSolution::crossing_time(std::size_t node, double level,
                                        bool rising) const {
    for (std::size_t k = 1; k < time.size(); ++k) {
        const double v0 = voltages(k - 1, node);
        const double v1 = voltages(k, node);
        const bool crossed = rising ? (v0 < level && v1 >= level)
                                    : (v0 > level && v1 <= level);
        if (crossed) {
            const double frac = (level - v0) / (v1 - v0);
            return time[k - 1] + frac * (time[k] - time[k - 1]);
        }
    }
    return -1.0;
}

// --- SpiceEngine ----------------------------------------------------------------

SpiceEngine::SpiceEngine(const Netlist& netlist, SpiceOptions options)
    : netlist_(netlist),
      options_(options),
      n_nodes_(netlist.node_count()),
      n_vsrc_(netlist.vsources().size()),
      dim_(n_nodes_ - 1 + n_vsrc_) {
    if (n_nodes_ < 2) {
        throw std::invalid_argument("SpiceEngine: netlist has no nodes besides ground");
    }
    if (options_.gmin <= 0.0 || options_.max_newton == 0) {
        throw std::invalid_argument("SpiceEngine: invalid solver options");
    }
}

linalg::Vector SpiceEngine::solve_newton(const process::ProcessPoint& pp, double t,
                                         double dt, const linalg::Vector& v_prev,
                                         bool transient_mode,
                                         std::size_t* iterations_out) const {
    // Unknowns: node voltages 1..n-1 (row = node - 1), then vsource currents.
    linalg::Vector v = v_prev;  // full node-indexed voltages (size n_nodes_)
    const auto row_of = [](std::size_t node_index) { return node_index - 1; };

    std::size_t iteration = 0;
    for (; iteration < options_.max_newton; ++iteration) {
        linalg::Matrix g(dim_, dim_);
        linalg::Vector b(dim_);

        auto stamp_g = [&](std::size_t a, std::size_t c, double value) {
            if (a > 0) g(row_of(a), row_of(a)) += value;
            if (c > 0) g(row_of(c), row_of(c)) += value;
            if (a > 0 && c > 0) {
                g(row_of(a), row_of(c)) -= value;
                g(row_of(c), row_of(a)) -= value;
            }
        };
        auto inject = [&](std::size_t node, double current) {
            if (node > 0) b[row_of(node)] += current;
        };

        // gmin to ground keeps floating regions determinate.
        for (std::size_t node = 1; node < n_nodes_; ++node) {
            g(row_of(node), row_of(node)) += options_.gmin;
        }

        for (const Resistor& r : netlist_.resistors()) {
            double ohms = r.ohms;
            if (r.scale_with_rsheet) ohms *= pp.rsheet() / 75.0;
            stamp_g(r.n1, r.n2, 1.0 / ohms);
        }

        if (transient_mode) {
            for (const Capacitor& c : netlist_.capacitors()) {
                double farads = c.farads;
                if (c.scale_with_cj) farads *= pp.cj_scale();
                const double geq = farads / dt;
                stamp_g(c.n1, c.n2, geq);
                const double v_hist =
                    (c.n1 > 0 ? v_prev[c.n1] : 0.0) - (c.n2 > 0 ? v_prev[c.n2] : 0.0);
                inject(c.n1, geq * v_hist);
                inject(c.n2, -geq * v_hist);
            }
        }

        for (const CurrentSource& src : netlist_.isources()) {
            const double amps = src.waveform.at(t);
            inject(src.np, -amps);
            inject(src.nn, amps);
        }

        for (std::size_t j = 0; j < n_vsrc_; ++j) {
            const VoltageSource& src = netlist_.vsources()[j];
            const std::size_t krow = n_nodes_ - 1 + j;
            if (src.np > 0) {
                g(row_of(src.np), krow) += 1.0;
                g(krow, row_of(src.np)) += 1.0;
            }
            if (src.nn > 0) {
                g(row_of(src.nn), krow) -= 1.0;
                g(krow, row_of(src.nn)) -= 1.0;
            }
            b[krow] = src.waveform.at(t);
        }

        for (const MosfetInstance& m : netlist_.mosfets()) {
            const double vd = m.drain > 0 ? v[m.drain] : 0.0;
            const double vg = m.gate > 0 ? v[m.gate] : 0.0;
            const double vs = m.source > 0 ? v[m.source] : 0.0;
            const double vgs = vg - vs;
            const double vds = vd - vs;

            const double i0 = mosfet_current_a(m, pp, vgs, vds);
            constexpr double kEps = 1e-6;
            const double gm =
                (mosfet_current_a(m, pp, vgs + kEps, vds) - i0) / kEps;
            const double gds =
                (mosfet_current_a(m, pp, vgs, vds + kEps) - i0) / kEps;

            // Linearized drain current i = ieq + gm vgs + gds vds.
            const double ieq = i0 - gm * vgs - gds * vds;
            // Drain node equation (+i leaves the drain node):
            if (m.drain > 0) {
                const std::size_t dr = row_of(m.drain);
                if (m.gate > 0) g(dr, row_of(m.gate)) += gm;
                if (m.drain > 0) g(dr, row_of(m.drain)) += gds;
                if (m.source > 0) g(dr, row_of(m.source)) -= gm + gds;
                b[dr] -= ieq;
            }
            if (m.source > 0) {
                const std::size_t sr = row_of(m.source);
                if (m.gate > 0) g(sr, row_of(m.gate)) -= gm;
                if (m.drain > 0) g(sr, row_of(m.drain)) -= gds;
                if (m.source > 0) g(sr, row_of(m.source)) += gm + gds;
                b[sr] += ieq;
            }
        }

        const linalg::Vector x = linalg::Lu(g).solve(b);

        // Damped update of the node voltages; converged when the largest
        // voltage move is below tolerance.
        double max_delta = 0.0;
        for (std::size_t node = 1; node < n_nodes_; ++node) {
            double delta = x[row_of(node)] - v[node];
            delta = std::clamp(delta, -options_.max_step_v, options_.max_step_v);
            max_delta = std::max(max_delta, std::abs(delta));
            v[node] += delta;
        }
        if (max_delta < options_.reltol) {
            ++iteration;
            break;
        }
    }
    if (iterations_out != nullptr) *iterations_out = iteration;
    return v;
}

DcSolution SpiceEngine::dc(const process::ProcessPoint& pp) const {
    DcSolution out;
    out.node_voltages = linalg::Vector(n_nodes_);
    std::size_t iterations = 0;
    out.node_voltages =
        solve_newton(pp, 0.0, 0.0, linalg::Vector(n_nodes_), false, &iterations);
    out.newton_iterations = iterations;
    out.converged = iterations < options_.max_newton;
    return out;
}

TransientSolution SpiceEngine::transient(const process::ProcessPoint& pp,
                                         double t_stop, double dt) const {
    if (t_stop <= 0.0 || dt <= 0.0 || dt > t_stop) {
        throw std::invalid_argument("SpiceEngine::transient: bad time parameters");
    }
    const auto steps = static_cast<std::size_t>(std::ceil(t_stop / dt));

    TransientSolution out;
    out.time.reserve(steps + 1);
    out.voltages = linalg::Matrix(steps + 1, n_nodes_);

    linalg::Vector v = dc(pp).node_voltages;
    out.time.push_back(0.0);
    out.voltages.set_row(0, v);

    for (std::size_t k = 1; k <= steps; ++k) {
        const double t = static_cast<double>(k) * dt;
        std::size_t iterations = 0;
        v = solve_newton(pp, t, dt, v, true, &iterations);
        if (iterations >= options_.max_newton) {
            throw std::runtime_error("SpiceEngine::transient: Newton did not converge");
        }
        out.time.push_back(t);
        out.voltages.set_row(k, v);
    }
    return out;
}

// --- PCM path as a netlist ---------------------------------------------------------

namespace {

/// Append-built "<prefix><n>" element/node name. Not string operator+:
/// GCC 12 at -O2 emits a spurious -Wrestrict for the inlined operator+
/// insert path (PR 105329), which breaks warnings-as-errors builds.
std::string numbered(const char* prefix, std::size_t n) {
    std::string name = prefix;
    name += std::to_string(n);
    return name;
}

}  // namespace

Netlist build_pcm_path_netlist(const PcmPath::Options& opts) {
    if (opts.stages == 0) {
        throw std::invalid_argument("build_pcm_path_netlist: zero stages");
    }
    Netlist net;
    net.add_vsource("vdd", "vdd", "0", Pwl(opts.vdd));
    // Rising input step after 100 ps, 20 ps edge.
    net.add_vsource("vin", "in", "0", Pwl::step(0.0, opts.vdd, 100e-12, 20e-12));

    const WireSegment wire{opts.wire_length_um, 0.08, 0.08};
    std::string prev = "in";
    for (std::size_t s = 1; s <= opts.stages; ++s) {
        const std::string mid = numbered("m", s);
        const std::string out = numbered("n", s);
        net.add_inverter(numbered("x", s), prev, mid, "vdd",
                         opts.nmos_width_um);
        // Wire between stages: lumped pi model (R with half the capacitance
        // on each side), tracking the process sheet resistance / parasitics.
        const double r_ohm = wire.res_per_um * wire.length_um;
        const double c_f = wire.cap_per_um_ff * wire.length_um * 1e-15;
        net.add_resistor(numbered("rw", s), mid, out, r_ohm,
                         /*scale_with_rsheet=*/true);
        net.add_capacitor(numbered("cw1_", s), mid, "0", 0.5 * c_f,
                          /*scale_with_cj=*/true);
        net.add_capacitor(numbered("cw2_", s), out, "0", 0.5 * c_f,
                          /*scale_with_cj=*/true);
        prev = out;
    }
    // Terminating load: another inverter input's worth of capacitance.
    net.add_inverter("xload", prev, "nload", "vdd", opts.nmos_width_um);
    return net;
}

double spice_pcm_delay_ns(const process::ProcessPoint& pp,
                          const PcmPath::Options& opts, double dt_ps) {
    const Netlist net = build_pcm_path_netlist(opts);
    SpiceEngine engine(net);

    // Simulation window: comfortably beyond the analytic estimate.
    const double analytic_ns = PcmPath(opts).delay_ns(pp);
    const double t_stop = 0.1e-9 + 20e-12 + std::max(4.0 * analytic_ns, 1.0) * 1e-9;
    const auto result = engine.transient(pp, t_stop, dt_ps * 1e-12);

    Netlist mutable_net = net;  // node() is non-const; indices are stable
    const std::size_t in_node = mutable_net.node("in");
    const std::size_t out_node = mutable_net.node(numbered("n", opts.stages));
    const double half = 0.5 * opts.vdd;

    const double t_in = result.crossing_time(in_node, half, /*rising=*/true);
    // Inverter chain: the final output rises with the input for an even
    // number of stages and falls for an odd one.
    const bool out_rising = opts.stages % 2 == 0;
    const double t_out = result.crossing_time(out_node, half, out_rising);
    if (t_in < 0.0 || t_out < 0.0) {
        throw std::runtime_error("spice_pcm_delay_ns: output never crossed 50%");
    }
    return (t_out - t_in) * 1e9;
}

}  // namespace htd::circuit
