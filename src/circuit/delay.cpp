#include "circuit/delay.hpp"

#include <stdexcept>

namespace htd::circuit {

Inverter::Inverter(double nmos_width_um, double length_um)
    : nmos(MosType::kNmos, MosfetGeometry{nmos_width_um, length_um}),
      pmos(MosType::kPmos, MosfetGeometry{2.0 * nmos_width_um, length_um}) {}

double Inverter::input_capacitance_ff(const process::ProcessPoint& pp) const {
    return nmos.gate_capacitance_ff(pp) + pmos.gate_capacitance_ff(pp);
}

double Inverter::propagation_delay_ps(const process::ProcessPoint& pp, double load_ff,
                                      double vdd) const {
    if (load_ff < 0.0) throw std::invalid_argument("Inverter: negative load");
    const double r_fall = nmos.on_resistance_kohm(pp, vdd);   // kOhm
    const double r_rise = pmos.on_resistance_kohm(pp, vdd);
    // kOhm * fF = ps.
    const double t_fall = 0.69 * r_fall * load_ff;
    const double t_rise = 0.69 * r_rise * load_ff;
    return 0.5 * (t_rise + t_fall);
}

double WireSegment::resistance_kohm(const process::ProcessPoint& pp) const {
    const double scale = pp.rsheet() / 75.0;  // nominal sheet resistance
    return res_per_um * length_um * scale * 1e-3;  // ohm -> kOhm
}

double WireSegment::capacitance_ff(const process::ProcessPoint& pp) const {
    return cap_per_um_ff * length_um * pp.cj_scale();
}

double WireSegment::elmore_delay_ps(const process::ProcessPoint& pp) const {
    return 0.5 * resistance_kohm(pp) * capacitance_ff(pp);
}

double elmore_ladder_delay_ps(const std::vector<double>& resistances_kohm,
                              const std::vector<double>& caps_ff) {
    if (resistances_kohm.size() != caps_ff.size()) {
        throw std::invalid_argument("elmore_ladder_delay_ps: length mismatch");
    }
    // Elmore: sum over nodes of (upstream resistance) * (node capacitance).
    double delay = 0.0;
    double upstream_r = 0.0;
    for (std::size_t i = 0; i < caps_ff.size(); ++i) {
        upstream_r += resistances_kohm[i];
        delay += upstream_r * caps_ff[i];
    }
    return delay;
}

// --- PcmPath ------------------------------------------------------------------

PcmPath::PcmPath(Options opts)
    : opts_(opts),
      stage_(opts.nmos_width_um),
      wire_{opts.wire_length_um, 0.08, 0.08} {
    if (opts.stages == 0) throw std::invalid_argument("PcmPath: zero stages");
    if (opts.vdd <= 0.0) throw std::invalid_argument("PcmPath: non-positive vdd");
}

double PcmPath::delay_ns(const process::ProcessPoint& pp) const {
    // Per stage: the inverter drives its wire plus the next stage's gate.
    const double gate_load = stage_.input_capacitance_ff(pp);
    const double wire_cap = wire_.capacitance_ff(pp);
    const double stage_delay =
        stage_.propagation_delay_ps(pp, gate_load + wire_cap, opts_.vdd) +
        wire_.elmore_delay_ps(pp) +
        // The wire resistance also charges the downstream gate.
        0.69 * wire_.resistance_kohm(pp) * gate_load;
    return static_cast<double>(opts_.stages) * stage_delay * 1e-3;  // ps -> ns
}

// --- RingOscillatorPcm ---------------------------------------------------------

RingOscillatorPcm::RingOscillatorPcm(Options opts)
    : opts_(opts), stage_(opts.nmos_width_um) {
    if (opts.stages == 0 || opts.stages % 2 == 0) {
        throw std::invalid_argument("RingOscillatorPcm: stages must be odd");
    }
    if (opts.vdd <= 0.0) throw std::invalid_argument("RingOscillatorPcm: non-positive vdd");
}

double RingOscillatorPcm::frequency_mhz(const process::ProcessPoint& pp) const {
    const double load = stage_.input_capacitance_ff(pp);
    const double t_stage_ps = stage_.propagation_delay_ps(pp, load, opts_.vdd);
    // f = 1 / (2 N t_stage); ps -> MHz conversion: 1/(ps) = 1e6 MHz.
    return 1e6 / (2.0 * static_cast<double>(opts_.stages) * t_stage_ps);
}

}  // namespace htd::circuit
