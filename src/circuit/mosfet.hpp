#pragma once
/// \file mosfet.hpp
/// Alpha-power-law MOSFET model (Sakurai-Newton). Behavioural-level device
/// model good enough to translate process-parameter variation into drive
/// current, gate delay and amplifier gain — the quantities the PCM path and
/// the UWB power amplifier expose as measurements.

#include "process/process_point.hpp"

namespace htd::circuit {

/// Channel polarity.
enum class MosType {
    kNmos,
    kPmos,
};

/// Geometry and supply context for a transistor instance.
struct MosfetGeometry {
    double width_um = 10.0;    ///< drawn width [um]
    double length_um = 0.35;   ///< drawn length [um]; effective length comes
                               ///< from the process point's Leff ratio
};

/// Alpha-power-law MOSFET evaluated against a ProcessPoint.
class Mosfet {
public:
    /// Throws std::invalid_argument on non-positive geometry or alpha.
    Mosfet(MosType type, MosfetGeometry geometry, double alpha = 1.3);

    /// Saturation drain current [mA] at gate drive `vgs` (magnitude) and the
    /// given process point. Returns 0 below threshold.
    [[nodiscard]] double saturation_current_ma(const process::ProcessPoint& pp,
                                               double vgs) const;

    /// Transconductance gm [mA/V] at the bias point (numerical derivative of
    /// the saturation current).
    [[nodiscard]] double transconductance_ma_per_v(const process::ProcessPoint& pp,
                                                   double vgs) const;

    /// Effective switching resistance [kOhm] when driving from `vdd`:
    /// R = vdd / (2 Idsat(vdd)).
    [[nodiscard]] double on_resistance_kohm(const process::ProcessPoint& pp,
                                            double vdd) const;

    /// Gate capacitance [fF]: Cox(tox) * Weff * Leff.
    [[nodiscard]] double gate_capacitance_ff(const process::ProcessPoint& pp) const;

    /// Threshold voltage magnitude [V] for this polarity at the process point.
    [[nodiscard]] double threshold_v(const process::ProcessPoint& pp) const noexcept;

    [[nodiscard]] MosType type() const noexcept { return type_; }
    [[nodiscard]] const MosfetGeometry& geometry() const noexcept { return geom_; }
    [[nodiscard]] double alpha() const noexcept { return alpha_; }

private:
    MosType type_;
    MosfetGeometry geom_;
    double alpha_;
};

}  // namespace htd::circuit
