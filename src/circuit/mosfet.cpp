#include "circuit/mosfet.hpp"

#include <cmath>
#include <stdexcept>

namespace htd::circuit {

Mosfet::Mosfet(MosType type, MosfetGeometry geometry, double alpha)
    : type_(type), geom_(geometry), alpha_(alpha) {
    if (geometry.width_um <= 0.0 || geometry.length_um <= 0.0) {
        throw std::invalid_argument("Mosfet: non-positive geometry");
    }
    if (alpha <= 0.0) throw std::invalid_argument("Mosfet: non-positive alpha");
}

double Mosfet::threshold_v(const process::ProcessPoint& pp) const noexcept {
    return type_ == MosType::kNmos ? pp.vth_n() : pp.vth_p();
}

double Mosfet::saturation_current_ma(const process::ProcessPoint& pp, double vgs) const {
    const double vth = threshold_v(pp);
    const double overdrive = vgs - vth;
    if (overdrive <= 0.0) return 0.0;

    const double mu = type_ == MosType::kNmos ? pp.mu_n() : pp.mu_p();  // cm^2/Vs
    const double cox = process::cox_ff_per_um2(pp.tox_nm());            // fF/um^2
    // Effective length scales with the process Leff relative to the drawn
    // nominal of this node (0.35 um).
    const double leff_um = geom_.length_um * pp.leff_um() / 0.35;
    const double w_over_l = geom_.width_um / leff_um;

    // Unit bookkeeping: mu [cm^2/Vs] * Cox [fF/um^2] = 1e8 um^2/Vs * 1e-15 F/um^2
    // = 1e-7 F/(V s) => current = 0.5 k (W/L) Vov^alpha in units of 1e-7 A V^(1-alpha);
    // express as mA with the 1e-4 factor below.
    const double k = mu * cox * 1e-4;  // mA/V^2 per square
    return 0.5 * k * w_over_l * std::pow(overdrive, alpha_);
}

double Mosfet::transconductance_ma_per_v(const process::ProcessPoint& pp,
                                         double vgs) const {
    const double eps = 1e-4;
    const double hi = saturation_current_ma(pp, vgs + eps);
    const double lo = saturation_current_ma(pp, vgs - eps);
    return (hi - lo) / (2.0 * eps);
}

double Mosfet::on_resistance_kohm(const process::ProcessPoint& pp, double vdd) const {
    const double id = saturation_current_ma(pp, vdd);
    if (id <= 0.0) {
        throw std::domain_error("Mosfet::on_resistance_kohm: device is off at vdd");
    }
    return vdd / (2.0 * id);  // V / mA = kOhm
}

double Mosfet::gate_capacitance_ff(const process::ProcessPoint& pp) const {
    const double cox = process::cox_ff_per_um2(pp.tox_nm());
    const double leff_um = geom_.length_um * pp.leff_um() / 0.35;
    return cox * geom_.width_um * leff_um * pp.cj_scale();
}

}  // namespace htd::circuit
