#include "circuit/monitored_paths.hpp"

#include <stdexcept>

namespace htd::circuit {

MonitoredPathSet::MonitoredPathSet(std::size_t count) {
    if (count == 0) throw std::invalid_argument("MonitoredPathSet: count == 0");
    geometries_.reserve(count);
    paths_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        PcmPath::Options opts;
        opts.stages = 6 + 2 * i;                          // 6, 8, 10, ...
        opts.nmos_width_um = (i % 2 == 0) ? 3.0 : 5.0;    // alternating drive
        opts.wire_length_um = 40.0 + 15.0 * static_cast<double>(i % 4);
        geometries_.push_back(opts);
        paths_.emplace_back(opts);
    }
}

linalg::Vector MonitoredPathSet::delays_ns(const process::ProcessPoint& pp) const {
    return delays_ns(pp, linalg::Vector());
}

linalg::Vector MonitoredPathSet::delays_ns(const process::ProcessPoint& pp,
                                           const linalg::Vector& extra_load_ff) const {
    if (!extra_load_ff.empty() && extra_load_ff.size() != paths_.size()) {
        throw std::invalid_argument("MonitoredPathSet: extra load size mismatch");
    }
    linalg::Vector delays(paths_.size());
    for (std::size_t i = 0; i < paths_.size(); ++i) {
        delays[i] = paths_[i].delay_ns(pp);
        if (!extra_load_ff.empty() && extra_load_ff[i] > 0.0) {
            // The Trojan's tap loads one internal stage: one extra RC charge
            // through that stage's driver.
            const Inverter stage(geometries_[i].nmos_width_um);
            const double r_kohm =
                stage.nmos.on_resistance_kohm(pp, geometries_[i].vdd);
            delays[i] += 0.69 * r_kohm * extra_load_ff[i] * 1e-3;  // ps -> ns
        }
    }
    return delays;
}

}  // namespace htd::circuit
