#include "crypto/aes.hpp"

#include <stdexcept>

namespace htd::crypto {

namespace {

constexpr std::array<std::uint8_t, 256> kSbox = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr std::array<std::uint8_t, 256> make_inverse_sbox() {
    std::array<std::uint8_t, 256> inv{};
    for (std::size_t i = 0; i < 256; ++i) inv[kSbox[i]] = static_cast<std::uint8_t>(i);
    return inv;
}

constexpr std::array<std::uint8_t, 256> kInvSbox = make_inverse_sbox();

constexpr std::uint8_t xtime(std::uint8_t x) noexcept {
    return static_cast<std::uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0x00));
}

constexpr std::uint8_t gmul(std::uint8_t a, std::uint8_t b) noexcept {
    std::uint8_t p = 0;
    for (int i = 0; i < 8; ++i) {
        if (b & 1) p ^= a;
        a = xtime(a);
        b >>= 1;
    }
    return p;
}

constexpr std::uint32_t sub_word(std::uint32_t w) noexcept {
    return (static_cast<std::uint32_t>(kSbox[(w >> 24) & 0xff]) << 24) |
           (static_cast<std::uint32_t>(kSbox[(w >> 16) & 0xff]) << 16) |
           (static_cast<std::uint32_t>(kSbox[(w >> 8) & 0xff]) << 8) |
           static_cast<std::uint32_t>(kSbox[w & 0xff]);
}

constexpr std::uint32_t rot_word(std::uint32_t w) noexcept {
    return (w << 8) | (w >> 24);
}

using State = std::array<std::uint8_t, 16>;  // column-major as in FIPS-197

void add_round_key(State& s, const std::uint32_t* rk) noexcept {
    for (int c = 0; c < 4; ++c) {
        const std::uint32_t w = rk[c];
        s[4 * c + 0] ^= static_cast<std::uint8_t>(w >> 24);
        s[4 * c + 1] ^= static_cast<std::uint8_t>(w >> 16);
        s[4 * c + 2] ^= static_cast<std::uint8_t>(w >> 8);
        s[4 * c + 3] ^= static_cast<std::uint8_t>(w);
    }
}

void sub_bytes(State& s) noexcept {
    for (auto& b : s) b = kSbox[b];
}

void inv_sub_bytes(State& s) noexcept {
    for (auto& b : s) b = kInvSbox[b];
}

void shift_rows(State& s) noexcept {
    // Row r (elements s[4c + r]) rotates left by r.
    State t = s;
    for (int r = 1; r < 4; ++r) {
        for (int c = 0; c < 4; ++c) s[4 * c + r] = t[4 * ((c + r) % 4) + r];
    }
}

void inv_shift_rows(State& s) noexcept {
    State t = s;
    for (int r = 1; r < 4; ++r) {
        for (int c = 0; c < 4; ++c) s[4 * ((c + r) % 4) + r] = t[4 * c + r];
    }
}

void mix_columns(State& s) noexcept {
    for (int c = 0; c < 4; ++c) {
        std::uint8_t* col = &s[4 * c];
        const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = static_cast<std::uint8_t>(gmul(a0, 2) ^ gmul(a1, 3) ^ a2 ^ a3);
        col[1] = static_cast<std::uint8_t>(a0 ^ gmul(a1, 2) ^ gmul(a2, 3) ^ a3);
        col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ gmul(a2, 2) ^ gmul(a3, 3));
        col[3] = static_cast<std::uint8_t>(gmul(a0, 3) ^ a1 ^ a2 ^ gmul(a3, 2));
    }
}

void inv_mix_columns(State& s) noexcept {
    for (int c = 0; c < 4; ++c) {
        std::uint8_t* col = &s[4 * c];
        const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = static_cast<std::uint8_t>(gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^
                                           gmul(a3, 9));
        col[1] = static_cast<std::uint8_t>(gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^
                                           gmul(a3, 13));
        col[2] = static_cast<std::uint8_t>(gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^
                                           gmul(a3, 11));
        col[3] = static_cast<std::uint8_t>(gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^
                                           gmul(a3, 14));
    }
}

}  // namespace

Aes::Aes(std::span<const std::uint8_t> key, AesKeySize size) {
    const std::size_t nk = key_bytes(size) / 4;  // key words
    if (key.size() != key_bytes(size)) {
        throw std::invalid_argument("Aes: key length does not match key size");
    }
    rounds_ = nk + 6;
    const std::size_t total_words = 4 * (rounds_ + 1);
    round_keys_.resize(total_words);

    for (std::size_t i = 0; i < nk; ++i) {
        round_keys_[i] = (static_cast<std::uint32_t>(key[4 * i]) << 24) |
                         (static_cast<std::uint32_t>(key[4 * i + 1]) << 16) |
                         (static_cast<std::uint32_t>(key[4 * i + 2]) << 8) |
                         static_cast<std::uint32_t>(key[4 * i + 3]);
    }
    std::uint32_t rcon = 0x01000000;
    for (std::size_t i = nk; i < total_words; ++i) {
        std::uint32_t temp = round_keys_[i - 1];
        if (i % nk == 0) {
            temp = sub_word(rot_word(temp)) ^ rcon;
            rcon = static_cast<std::uint32_t>(gmul(static_cast<std::uint8_t>(rcon >> 24), 2))
                   << 24;
        } else if (nk > 6 && i % nk == 4) {
            temp = sub_word(temp);
        }
        round_keys_[i] = round_keys_[i - nk] ^ temp;
    }
}

Block Aes::encrypt(const Block& plaintext) const noexcept {
    State s = plaintext;
    add_round_key(s, &round_keys_[0]);
    for (std::size_t round = 1; round < rounds_; ++round) {
        sub_bytes(s);
        shift_rows(s);
        mix_columns(s);
        add_round_key(s, &round_keys_[4 * round]);
    }
    sub_bytes(s);
    shift_rows(s);
    add_round_key(s, &round_keys_[4 * rounds_]);
    return s;
}

Block Aes::decrypt(const Block& ciphertext) const noexcept {
    State s = ciphertext;
    add_round_key(s, &round_keys_[4 * rounds_]);
    for (std::size_t round = rounds_ - 1; round > 0; --round) {
        inv_shift_rows(s);
        inv_sub_bytes(s);
        add_round_key(s, &round_keys_[4 * round]);
        inv_mix_columns(s);
    }
    inv_shift_rows(s);
    inv_sub_bytes(s);
    add_round_key(s, &round_keys_[0]);
    return s;
}

std::vector<std::uint8_t> Aes::encrypt_ecb(std::span<const std::uint8_t> data) const {
    if (data.size() % 16 != 0) {
        throw std::invalid_argument("Aes::encrypt_ecb: data not a multiple of 16 bytes");
    }
    std::vector<std::uint8_t> out(data.size());
    for (std::size_t off = 0; off < data.size(); off += 16) {
        Block b;
        std::copy(data.begin() + static_cast<std::ptrdiff_t>(off),
                  data.begin() + static_cast<std::ptrdiff_t>(off + 16), b.begin());
        const Block c = encrypt(b);
        std::copy(c.begin(), c.end(), out.begin() + static_cast<std::ptrdiff_t>(off));
    }
    return out;
}

std::array<bool, 128> block_to_bits(const Block& block) noexcept {
    std::array<bool, 128> bits{};
    for (std::size_t byte = 0; byte < 16; ++byte) {
        for (std::size_t bit = 0; bit < 8; ++bit) {
            bits[byte * 8 + bit] = (block[byte] >> (7 - bit)) & 1;
        }
    }
    return bits;
}

Block bits_to_block(const std::array<bool, 128>& bits) noexcept {
    Block block{};
    for (std::size_t byte = 0; byte < 16; ++byte) {
        std::uint8_t v = 0;
        for (std::size_t bit = 0; bit < 8; ++bit) {
            v = static_cast<std::uint8_t>((v << 1) | (bits[byte * 8 + bit] ? 1 : 0));
        }
        block[byte] = v;
    }
    return block;
}

}  // namespace htd::crypto
