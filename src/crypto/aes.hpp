#pragma once
/// \file aes.hpp
/// FIPS-197 AES block cipher. This is the digital half of the paper's
/// experimentation platform: a wireless cryptographic IC whose AES core
/// encrypts plaintext with an on-chip key before the ciphertext is
/// serialized and transmitted over UWB. The side-channel fingerprints are
/// the transmit power of six randomly chosen 128-bit ciphertext blocks, so
/// the detection pipeline needs real ciphertext bits to modulate.
///
/// All three FIPS key sizes are supported; the platform uses AES-128.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace htd::crypto {

/// One 16-byte AES block.
using Block = std::array<std::uint8_t, 16>;

/// AES key length selector.
enum class AesKeySize {
    k128,
    k192,
    k256,
};

/// Number of key bytes for a key-size selector.
[[nodiscard]] constexpr std::size_t key_bytes(AesKeySize size) noexcept {
    switch (size) {
        case AesKeySize::k128: return 16;
        case AesKeySize::k192: return 24;
        case AesKeySize::k256: return 32;
    }
    return 16;
}

/// AES cipher with a fixed expanded key.
///
/// The class is immutable after construction; encrypt/decrypt are const and
/// thread-compatible.
class Aes {
public:
    /// Expand `key`; its length must match `size` (16/24/32 bytes) or
    /// std::invalid_argument is thrown.
    Aes(std::span<const std::uint8_t> key, AesKeySize size);

    /// Convenience AES-128 constructor from a 16-byte array.
    explicit Aes(const Block& key128) : Aes(key128, AesKeySize::k128) {}

    /// Encrypt a single block.
    [[nodiscard]] Block encrypt(const Block& plaintext) const noexcept;

    /// Decrypt a single block.
    [[nodiscard]] Block decrypt(const Block& ciphertext) const noexcept;

    /// Encrypt a sequence of whole blocks in ECB fashion (the platform
    /// streams independent 128-bit blocks). Throws std::invalid_argument if
    /// `data.size()` is not a multiple of 16.
    [[nodiscard]] std::vector<std::uint8_t> encrypt_ecb(
        std::span<const std::uint8_t> data) const;

    /// Number of rounds (10/12/14).
    [[nodiscard]] std::size_t rounds() const noexcept { return rounds_; }

private:
    std::size_t rounds_;
    std::vector<std::uint32_t> round_keys_;      // (rounds+1) * 4 words
};

/// Serialize a ciphertext block into the bit order the platform's
/// serialization buffer feeds the UWB transmitter (MSB first per byte).
[[nodiscard]] std::array<bool, 128> block_to_bits(const Block& block) noexcept;

/// Inverse of block_to_bits.
[[nodiscard]] Block bits_to_block(const std::array<bool, 128>& bits) noexcept;

}  // namespace htd::crypto
