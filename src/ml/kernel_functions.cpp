#include "ml/kernel_functions.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/descriptive.hpp"

namespace htd::ml {

namespace {

double squared_dist(std::span<const double> x, std::span<const double> y) {
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double d = x[i] - y[i];
        acc += d * d;
    }
    return acc;
}

}  // namespace

KernelFn rbf_kernel(double gamma) {
    if (gamma <= 0.0) throw std::invalid_argument("rbf_kernel: gamma <= 0");
    return [gamma](std::span<const double> x, std::span<const double> y) {
        if (x.size() != y.size()) throw std::invalid_argument("rbf_kernel: dim mismatch");
        return std::exp(-gamma * squared_dist(x, y));
    };
}

KernelFn linear_kernel() {
    return [](std::span<const double> x, std::span<const double> y) {
        if (x.size() != y.size()) throw std::invalid_argument("linear_kernel: dim mismatch");
        double acc = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
        return acc;
    };
}

KernelFn polynomial_kernel(unsigned degree, double scale, double offset) {
    if (degree == 0) throw std::invalid_argument("polynomial_kernel: degree == 0");
    return [degree, scale, offset](std::span<const double> x, std::span<const double> y) {
        if (x.size() != y.size()) {
            throw std::invalid_argument("polynomial_kernel: dim mismatch");
        }
        double acc = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
        return std::pow(scale * acc + offset, static_cast<double>(degree));
    };
}

double median_heuristic_gamma(const linalg::Matrix& data, std::size_t max_pairs) {
    const std::size_t n = data.rows();
    if (n < 2) throw std::invalid_argument("median_heuristic_gamma: need >= 2 rows");

    std::vector<double> dists;
    const std::size_t total_pairs = n * (n - 1) / 2;
    if (total_pairs <= max_pairs) {
        dists.reserve(total_pairs);
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = i + 1; j < n; ++j)
                dists.push_back(std::sqrt(squared_dist(data.row_span(i), data.row_span(j))));
    } else {
        // Deterministic stride subsample over the pair index space.
        dists.reserve(max_pairs);
        const std::size_t stride = std::max<std::size_t>(1, total_pairs / max_pairs);
        std::size_t flat = 0;
        for (std::size_t i = 0; i < n && dists.size() < max_pairs; ++i) {
            for (std::size_t j = i + 1; j < n && dists.size() < max_pairs; ++j, ++flat) {
                if (flat % stride == 0) {
                    dists.push_back(
                        std::sqrt(squared_dist(data.row_span(i), data.row_span(j))));
                }
            }
        }
    }
    const double med = stats::median(dists);
    if (med <= 0.0) return 1.0 / static_cast<double>(data.cols());
    return 1.0 / (2.0 * med * med);
}

linalg::Matrix gram_matrix(const KernelFn& kernel, const linalg::Matrix& a,
                           const linalg::Matrix& b) {
    if (a.cols() != b.cols()) throw std::invalid_argument("gram_matrix: dim mismatch");
    linalg::Matrix k(a.rows(), b.rows());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < b.rows(); ++j)
            k(i, j) = kernel(a.row_span(i), b.row_span(j));
    return k;
}

linalg::Matrix gram_matrix(const KernelFn& kernel, const linalg::Matrix& x) {
    linalg::Matrix k(x.rows(), x.rows());
    for (std::size_t i = 0; i < x.rows(); ++i) {
        for (std::size_t j = i; j < x.rows(); ++j) {
            const double v = kernel(x.row_span(i), x.row_span(j));
            k(i, j) = v;
            k(j, i) = v;
        }
    }
    return k;
}

}  // namespace htd::ml
