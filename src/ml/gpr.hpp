#pragma once
/// \file gpr.hpp
/// Gaussian-process regression with an RBF kernel — an alternative
/// "non-linear regression function" family for the PCM -> fingerprint map
/// (the paper used MARS "in this work"; bench_ablation_regression compares
/// the two). Exact inference: the training sets are the paper's n = 100
/// Monte Carlo devices, so the O(n^3) Cholesky is trivial.

#include <cstddef>

#include "linalg/matrix.hpp"

namespace htd::ml {

/// GP regressor for a single scalar response, with internally standardized
/// inputs and outputs.
class GaussianProcessRegressor {
public:
    struct Options {
        /// RBF length scale in standardized input units; <= 0 selects the
        /// median pairwise distance.
        double length_scale = 0.0;

        /// Observation noise variance as a fraction of the response
        /// variance (jitter floor applied regardless).
        double noise_fraction = 1e-4;
    };

    GaussianProcessRegressor() = default;
    explicit GaussianProcessRegressor(Options opts);

    /// Fit on inputs `x` (rows = samples) and responses `y`. Throws
    /// std::invalid_argument on shape mismatch or fewer than 2 samples.
    void fit(const linalg::Matrix& x, const linalg::Vector& y);

    [[nodiscard]] bool fitted() const noexcept { return fitted_; }

    /// Posterior mean at one input.
    [[nodiscard]] double predict(const linalg::Vector& x) const;

    /// Posterior mean and variance (in response units squared).
    struct Prediction {
        double mean = 0.0;
        double variance = 0.0;
    };
    [[nodiscard]] Prediction predict_with_variance(const linalg::Vector& x) const;

    /// Posterior means for every row of `x`.
    [[nodiscard]] linalg::Vector predict_batch(const linalg::Matrix& x) const;

    /// Training R^2 (fit quality diagnostic, like Mars::r_squared).
    [[nodiscard]] double r_squared() const noexcept { return r2_; }

    /// Resolved RBF length scale.
    [[nodiscard]] double effective_length_scale() const noexcept { return length_; }

    [[nodiscard]] const Options& options() const noexcept { return opts_; }

private:
    [[nodiscard]] double kernel(std::span<const double> a,
                                std::span<const double> b) const;
    [[nodiscard]] linalg::Vector standardize(const linalg::Vector& x) const;

    Options opts_{};
    bool fitted_ = false;
    linalg::Vector x_mean_, x_scale_;
    double y_mean_ = 0.0, y_scale_ = 1.0;
    linalg::Matrix train_;        // standardized inputs
    linalg::Vector alpha_;        // K^-1 y (standardized response)
    linalg::Matrix chol_lower_;   // Cholesky factor of K + noise I
    double length_ = 1.0;
    double r2_ = 0.0;
};

/// One GP per output column — the GPR counterpart of ml::MarsBank.
class GprBank {
public:
    GprBank() = default;
    explicit GprBank(GaussianProcessRegressor::Options opts) : opts_(opts) {}

    /// Fit one model per column of `y`; throws on shape mismatch.
    void fit(const linalg::Matrix& x, const linalg::Matrix& y);

    [[nodiscard]] bool fitted() const noexcept { return !models_.empty(); }

    /// Posterior means for one input across all outputs.
    [[nodiscard]] linalg::Vector predict(const linalg::Vector& x) const;

    /// Posterior means for every input row (rows(x) x output_dim).
    [[nodiscard]] linalg::Matrix predict_batch(const linalg::Matrix& x) const;

    [[nodiscard]] std::size_t output_dim() const noexcept { return models_.size(); }
    [[nodiscard]] const GaussianProcessRegressor& model(std::size_t j) const {
        return models_.at(j);
    }

private:
    GaussianProcessRegressor::Options opts_{};
    std::vector<GaussianProcessRegressor> models_;
};

}  // namespace htd::ml
