#include "ml/knn_detector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rng/rng.hpp"
#include "stats/descriptive.hpp"

namespace htd::ml {

namespace {

/// Distance to the k-th nearest row of `train` (self-exclusion by caller).
double kth_distance(const linalg::Matrix& train, std::span<const double> z,
                    std::size_t k, std::ptrdiff_t skip_row) {
    std::vector<double> dists;
    dists.reserve(train.rows());
    for (std::size_t r = 0; r < train.rows(); ++r) {
        if (static_cast<std::ptrdiff_t>(r) == skip_row) continue;
        const auto row = train.row_span(r);
        double d2 = 0.0;
        for (std::size_t c = 0; c < z.size(); ++c) {
            const double d = z[c] - row[c];
            d2 += d * d;
        }
        dists.push_back(d2);
    }
    std::nth_element(dists.begin(), dists.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     dists.end());
    return std::sqrt(dists[k - 1]);
}

}  // namespace

KnnDetector::KnnDetector(Options opts) : opts_(opts) {
    if (opts.k == 0) throw std::invalid_argument("KnnDetector: k == 0");
    if (!(opts.nu > 0.0 && opts.nu < 1.0)) {
        throw std::invalid_argument("KnnDetector: nu outside (0, 1)");
    }
    if (opts.max_training_samples == 0) {
        throw std::invalid_argument("KnnDetector: max_training_samples == 0");
    }
}

void KnnDetector::fit(const linalg::Matrix& data) {
    linalg::Matrix raw;
    if (data.rows() > opts_.max_training_samples) {
        rng::Rng rng(opts_.subsample_seed);
        const auto perm = rng.permutation(data.rows());
        raw = linalg::Matrix(opts_.max_training_samples, data.cols());
        for (std::size_t i = 0; i < opts_.max_training_samples; ++i) {
            raw.set_row(i, data.row(perm[i]));
        }
    } else {
        raw = data;
    }
    if (raw.rows() <= opts_.k) {
        throw std::invalid_argument("KnnDetector::fit: need more than k samples");
    }

    mean_ = stats::column_means(raw);
    scale_ = raw.rows() >= 2 ? stats::column_stddevs(raw)
                             : linalg::Vector(raw.cols(), 1.0);
    for (std::size_t c = 0; c < scale_.size(); ++c) {
        if (scale_[c] < 1e-12) scale_[c] = 1.0;
    }
    train_ = raw;
    for (std::size_t r = 0; r < train_.rows(); ++r) {
        auto row = train_.row_span(r);
        for (std::size_t c = 0; c < row.size(); ++c) {
            row[c] = (row[c] - mean_[c]) / scale_[c];
        }
    }

    // Leave-one-out self-scores calibrate the threshold at the (1 - nu)
    // quantile: the configured fraction of the training set scores outside.
    std::vector<double> self_scores(train_.rows());
    for (std::size_t r = 0; r < train_.rows(); ++r) {
        self_scores[r] = kth_distance(train_, train_.row_span(r), opts_.k,
                                      static_cast<std::ptrdiff_t>(r));
    }
    threshold_ = stats::quantile(self_scores, 1.0 - opts_.nu);
    fitted_ = true;
}

double KnnDetector::score(const linalg::Vector& x) const {
    if (!fitted_) throw std::logic_error("KnnDetector: not fitted");
    if (x.size() != mean_.size()) {
        throw std::invalid_argument("KnnDetector::score: dimension mismatch");
    }
    std::vector<double> z(x.size());
    for (std::size_t c = 0; c < x.size(); ++c) z[c] = (x[c] - mean_[c]) / scale_[c];
    return kth_distance(train_, z, opts_.k, -1);
}

}  // namespace htd::ml
