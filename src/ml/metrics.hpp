#pragma once
/// \file metrics.hpp
/// Trojan-detection metrics following the paper's conventions (Eqs. 1-2):
/// FP counts Trojan-infested devices predicted Trojan-free (missed Trojans);
/// FN counts Trojan-free devices predicted Trojan-infested (false alarms).

#include <span>
#include <string>
#include <vector>

namespace htd::ml {

/// Ground-truth label of a device under Trojan test.
enum class DeviceLabel {
    kTrojanFree,
    kTrojanInfested,
};

/// Confusion counts for a batch of Trojan-test verdicts.
struct DetectionMetrics {
    std::size_t false_positives = 0;   ///< infested predicted free (Eq. 1)
    std::size_t false_negatives = 0;   ///< free predicted infested (Eq. 2)
    std::size_t true_positives = 0;    ///< free predicted free
    std::size_t true_negatives = 0;    ///< infested predicted infested
    std::size_t trojan_free_total = 0;
    std::size_t trojan_infested_total = 0;

    /// Total number of devices scored.
    [[nodiscard]] std::size_t total() const noexcept {
        return trojan_free_total + trojan_infested_total;
    }

    /// FP rate over infested devices; 0 when there are none.
    [[nodiscard]] double false_positive_rate() const noexcept;

    /// FN rate over Trojan-free devices; 0 when there are none.
    [[nodiscard]] double false_negative_rate() const noexcept;

    /// Overall fraction of correct verdicts.
    [[nodiscard]] double accuracy() const noexcept;

    /// Table-1 style rendering: "FP a/b  FN c/d".
    [[nodiscard]] std::string str() const;
};

/// Score a batch: `predicted_free[i]` is the classifier verdict ("inside the
/// trusted region") and `labels[i]` the ground truth. Throws
/// std::invalid_argument on size mismatch.
[[nodiscard]] DetectionMetrics evaluate_detection(const std::vector<bool>& predicted_free,
                                                  std::span<const DeviceLabel> labels);

/// One operating point of a detector whose decision value is thresholded:
/// devices scoring >= threshold are declared Trojan-free.
struct RocPoint {
    double threshold = 0.0;
    double fp_rate = 0.0;  ///< infested accepted / infested total (Eq. 1 rate)
    double fn_rate = 0.0;  ///< free rejected / free total (Eq. 2 rate)
};

/// Full ROC sweep over every distinct decision value (plus sentinels at
/// the two trivial operating points). `decision_values[i]` scores device i;
/// higher means "more trusted". Throws std::invalid_argument on size
/// mismatch, empty input, or labels containing only one class.
[[nodiscard]] std::vector<RocPoint> roc_curve(std::span<const double> decision_values,
                                              std::span<const DeviceLabel> labels);

/// Area under the ROC curve (trapezoidal over (fp_rate, 1 - fn_rate)).
/// 1.0 = perfect separation, 0.5 = chance.
[[nodiscard]] double roc_auc(std::span<const RocPoint> curve);

}  // namespace htd::ml
