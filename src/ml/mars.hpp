#pragma once
/// \file mars.hpp
/// Multivariate Adaptive Regression Splines (Friedman, 1991) — the
/// non-linear regression family the paper uses to learn g_j : m_p -> m_j,
/// the map from PCM measurements to each side-channel fingerprint.
///
/// The model is a sum of products of hinge functions,
///     f(x) = c_0 + sum_m c_m prod_k max(0, s_k (x_{v_k} - t_k)),
/// grown greedily (forward pass adds the best mirrored hinge pair anchored
/// at a training knot) and pruned backward under the generalized
/// cross-validation (GCV) criterion.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace htd::ml {

/// One hinge factor max(0, sign * (x[variable] - knot)).
struct HingeFactor {
    std::size_t variable = 0;  ///< input coordinate index
    double knot = 0.0;         ///< hinge location t
    bool positive = true;      ///< true: max(0, x-t); false: max(0, t-x)

    /// Evaluate the factor on an input sample.
    [[nodiscard]] double evaluate(std::span<const double> x) const noexcept {
        const double d = x[variable] - knot;
        const double v = positive ? d : -d;
        return v > 0.0 ? v : 0.0;
    }

    friend bool operator==(const HingeFactor&, const HingeFactor&) = default;
};

/// A basis term: product of hinge factors. An empty factor list is the
/// intercept term (constant 1).
struct BasisTerm {
    std::vector<HingeFactor> factors;

    [[nodiscard]] double evaluate(std::span<const double> x) const noexcept {
        double v = 1.0;
        for (const HingeFactor& f : factors) {
            v *= f.evaluate(x);
            if (v == 0.0) return 0.0;
        }
        return v;
    }

    /// Interaction degree (number of hinge factors).
    [[nodiscard]] std::size_t degree() const noexcept { return factors.size(); }

    /// True when the term already uses input coordinate `v`.
    [[nodiscard]] bool uses_variable(std::size_t v) const noexcept;

    /// Human-readable rendering, e.g. "h(+(x0 - 1.25)) * h(-(x2 - 0.5))".
    [[nodiscard]] std::string str() const;

    friend bool operator==(const BasisTerm&, const BasisTerm&) = default;
};

/// MARS regressor for a single scalar response.
class Mars {
public:
    struct Options {
        /// Maximum number of basis terms including the intercept. The paper's
        /// pipeline uses the default; larger values fit sharper curvature.
        std::size_t max_terms = 21;

        /// Maximum interaction degree (1 = additive model).
        std::size_t max_degree = 2;

        /// GCV knot penalty d in C(M) = M + d (M - 1) / 2.
        double penalty = 3.0;

        /// Run the backward GCV pruning pass.
        bool prune = true;

        /// Cap on distinct candidate knots per variable; 0 = use every
        /// distinct training value (fine for n in the hundreds).
        std::size_t max_knots_per_variable = 0;

        /// Stop the forward pass when the relative SSE improvement of the
        /// best candidate falls below this threshold.
        double min_relative_improvement = 1e-9;
    };

    /// Complete fitted state for persistence: re-importing reproduces
    /// predictions bitwise (terms and coefficients are evaluated in stored
    /// order).
    struct State {
        Options opts{};
        bool fitted = false;
        std::size_t input_dim = 0;
        std::vector<BasisTerm> terms;
        std::vector<double> coef;
        double gcv = 0.0;
        double r2 = 0.0;
    };

    Mars() = default;
    explicit Mars(Options opts);

    /// Snapshot of the fitted state (valid on an unfitted model).
    [[nodiscard]] State export_state() const;

    /// Rebuild a model from exported state; throws std::invalid_argument on
    /// term/coefficient count mismatch, a fitted model without terms, a
    /// non-finite coefficient, or a hinge factor referencing a variable
    /// outside the input dimension.
    [[nodiscard]] static Mars from_state(State state);

    /// Fit on training inputs `x` (rows are samples) and responses `y`.
    /// Throws std::invalid_argument on shape mismatch or an empty dataset.
    void fit(const linalg::Matrix& x, const linalg::Vector& y);

    [[nodiscard]] bool fitted() const noexcept { return fitted_; }

    /// Predict the response for one sample; throws std::logic_error when not
    /// fitted and std::invalid_argument on dimension mismatch.
    [[nodiscard]] double predict(std::span<const double> x) const;
    [[nodiscard]] double predict(const linalg::Vector& x) const;

    /// Predict for every row of `x`.
    [[nodiscard]] linalg::Vector predict_batch(const linalg::Matrix& x) const;

    /// Final basis terms (index 0 is the intercept) and their coefficients.
    [[nodiscard]] const std::vector<BasisTerm>& terms() const noexcept { return terms_; }
    [[nodiscard]] const std::vector<double>& coefficients() const noexcept { return coef_; }

    /// GCV score of the final model.
    [[nodiscard]] double gcv() const noexcept { return gcv_; }

    /// Training R^2 of the final model.
    [[nodiscard]] double r_squared() const noexcept { return r2_; }

    [[nodiscard]] const Options& options() const noexcept { return opts_; }

private:
    Options opts_{};
    bool fitted_ = false;
    std::size_t input_dim_ = 0;
    std::vector<BasisTerm> terms_;
    std::vector<double> coef_;
    double gcv_ = 0.0;
    double r2_ = 0.0;
};

/// Convenience bundle: one MARS model per output dimension, fit on a shared
/// input matrix. This is exactly the paper's bank of regression functions
/// g_j : m_p -> m_j for j = 1..nm.
class MarsBank {
public:
    /// Persistable state: the shared options plus one Mars state per output.
    struct State {
        Mars::Options opts{};
        std::vector<Mars::State> models;
    };

    MarsBank() = default;
    explicit MarsBank(Mars::Options opts) : opts_(opts) {}

    /// Snapshot of the fitted bank.
    [[nodiscard]] State export_state() const;

    /// Rebuild a bank from exported state; throws std::invalid_argument
    /// when any per-output model state is inconsistent.
    [[nodiscard]] static MarsBank from_state(State state);

    /// Fit one model per column of `y`; throws on shape mismatch.
    void fit(const linalg::Matrix& x, const linalg::Matrix& y);

    [[nodiscard]] bool fitted() const noexcept { return !models_.empty(); }

    /// Predict the full output vector for one input sample.
    [[nodiscard]] linalg::Vector predict(const linalg::Vector& x) const;

    /// Predict outputs for every input row; result is rows(x) x output_dim.
    [[nodiscard]] linalg::Matrix predict_batch(const linalg::Matrix& x) const;

    [[nodiscard]] std::size_t output_dim() const noexcept { return models_.size(); }
    [[nodiscard]] const Mars& model(std::size_t j) const { return models_.at(j); }

private:
    Mars::Options opts_{};
    std::vector<Mars> models_;
};

}  // namespace htd::ml
