#pragma once
/// \file knn_detector.hpp
/// Distance-based one-class baseline: a device is inside the trusted region
/// when its distance to the k-th nearest training sample is below a
/// threshold calibrated on the training set itself (leave-one-out). Used as
/// an alternative trusted-region learner in the detector ablation — a
/// sanity check that the Table-1 shape is a property of the *pipeline*, not
/// of the specific SVM.

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace htd::ml {

/// k-nearest-neighbor one-class detector on internally standardized inputs.
class KnnDetector {
public:
    struct Options {
        std::size_t k = 5;          ///< neighbor rank used as the score
        double nu = 0.08;           ///< training fraction allowed outside
        std::size_t max_training_samples = 2000;  ///< uniform subsample cap
        std::uint64_t subsample_seed = 0x5eed'0c5fULL;
    };

    KnnDetector() = default;

    /// Throws std::invalid_argument for k == 0, nu outside (0, 1), or a zero
    /// sample cap.
    explicit KnnDetector(Options opts);

    /// Fit on the rows of `data`; throws std::invalid_argument when the
    /// (subsampled) training set has fewer than k + 1 rows.
    void fit(const linalg::Matrix& data);

    [[nodiscard]] bool fitted() const noexcept { return fitted_; }

    /// Anomaly score: distance to the k-th nearest training sample in the
    /// standardized space (smaller = more trusted).
    [[nodiscard]] double score(const linalg::Vector& x) const;

    /// Decision value with the SVM's sign convention: positive = inside.
    [[nodiscard]] double decision_value(const linalg::Vector& x) const {
        return threshold_ - score(x);
    }

    /// True when x is inside the trusted region.
    [[nodiscard]] bool contains(const linalg::Vector& x) const {
        return decision_value(x) >= 0.0;
    }

    /// Calibrated score threshold.
    [[nodiscard]] double threshold() const noexcept { return threshold_; }

    [[nodiscard]] const Options& options() const noexcept { return opts_; }

private:
    Options opts_{};
    bool fitted_ = false;
    linalg::Vector mean_;
    linalg::Vector scale_;
    linalg::Matrix train_;  // standardized
    double threshold_ = 0.0;
};

}  // namespace htd::ml
