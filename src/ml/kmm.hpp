#pragma once
/// \file kmm.hpp
/// Kernel Mean Matching (Gretton et al., 2009) — the paper's covariate-shift
/// correction (Section 2.4). Given training samples (simulated PCMs) and
/// test samples (silicon PCMs from the DUTTs), KMM finds importance weights
/// beta minimizing the RKHS distance between the weighted-training and test
/// means,
///
///     min_beta  1/2 beta^T K beta - kappa^T beta
///     s.t.      0 <= beta_i <= B,   | (1/n_tr) sum_i beta_i - 1 | <= eps,
///
/// where K_ij = k(x^tr_i, x^tr_j) and kappa_i = (n_tr/n_te) sum_j k(x^tr_i,
/// x^te_j). The QP is solved by projected gradient descent with an exact
/// Euclidean projection onto the box-plus-sum-band feasible set.
///
/// On top of the weights, `KernelMeanShiftCalibrator` implements the paper's
/// "kernel mean shift": it iteratively translates the simulated PCM cloud by
/// the gap between the test mean and the KMM-weighted training mean until
/// the two kernel means agree. The output is the calibrated sample set
/// m''_p — simulated samples relocated to the foundry operating point while
/// *keeping the wide Monte Carlo spread* (which is exactly why boundary B4
/// outperforms B3 in the paper).

#include "linalg/matrix.hpp"
#include "ml/kernel_functions.hpp"
#include "rng/rng.hpp"

namespace htd::ml {

/// Draw `n` rows of `data` with replacement, with probability proportional
/// to `weights`. This is how the calibrated PCM population m''_p is formed
/// from the KMM importance weights: the resampled set follows the silicon
/// operating point's distribution while inheriting the Monte Carlo
/// population's tail samples (the paper's point that n_MC >> n_DUTT gives
/// better coverage). Throws std::invalid_argument on size mismatch or
/// degenerate weights.
[[nodiscard]] linalg::Matrix weighted_resample(const linalg::Matrix& data,
                                               const linalg::Vector& weights,
                                               std::size_t n, rng::Rng& rng);

/// Kish effective sample size of an importance-weight vector,
/// (sum w)^2 / sum w^2 — how many equally-weighted samples the weighted
/// population is worth. Ranges from 1 (one weight dominates) to size()
/// (uniform weights); 0 for an empty or all-zero vector. This is the
/// health metric behind the small `weight_bound` default: a collapsed ESS
/// means boundary B4 trains on a handful of effective devices.
[[nodiscard]] double effective_sample_size(const linalg::Vector& weights) noexcept;

/// Kernel mean matching QP solver.
class KernelMeanMatching {
public:
    struct Options {
        /// Upper bound B on each weight.
        double weight_bound = 1000.0;

        /// Half-width eps of the mean-of-weights band around 1. <= 0 selects
        /// the common rule eps = (sqrt(n_tr) - 1)/sqrt(n_tr).
        double epsilon = 0.0;

        /// RBF width; <= 0 selects the median heuristic on the pooled data.
        double gamma = 0.0;

        /// Projected-gradient iterations.
        std::size_t max_iterations = 2000;

        /// Stop when the weight update's infinity norm falls below this.
        double tolerance = 1e-8;
    };

    KernelMeanMatching() = default;
    explicit KernelMeanMatching(Options opts);

    /// Solve for the importance weights of `train` against `test`. Rows are
    /// samples. Throws std::invalid_argument on empty inputs or a column
    /// mismatch.
    [[nodiscard]] linalg::Vector solve(const linalg::Matrix& train,
                                       const linalg::Matrix& test) const;

    /// The QP objective 1/2 b^T K b - kappa^T b for a given weight vector —
    /// exposed for tests and diagnostics.
    [[nodiscard]] static double objective(const linalg::Matrix& k,
                                          const linalg::Vector& kappa,
                                          const linalg::Vector& beta);

    [[nodiscard]] const Options& options() const noexcept { return opts_; }

private:
    Options opts_{};
};

/// Euclidean projection of `v` onto { 0 <= x <= hi, lo_sum <= sum(x) <= hi_sum }.
/// Exposed for unit testing; throws when the set is empty.
[[nodiscard]] linalg::Vector project_box_sum(const linalg::Vector& v, double hi,
                                             double lo_sum, double hi_sum);

/// Iterative kernel-mean-shift calibration of a simulated sample cloud onto
/// a measured one (see file comment).
class KernelMeanShiftCalibrator {
public:
    struct Options {
        KernelMeanMatching::Options kmm{};

        /// Maximum number of shift-and-rematch iterations.
        std::size_t max_shift_iterations = 30;

        /// Converged when the shift step's Euclidean norm falls below
        /// `shift_tolerance` times the test population's RMS column spread.
        double shift_tolerance = 1e-2;
    };

    KernelMeanShiftCalibrator() = default;
    explicit KernelMeanShiftCalibrator(Options opts) : opts_(opts) {}

    struct Result {
        linalg::Matrix calibrated;   ///< shifted training samples m''_p
        linalg::Vector total_shift;  ///< accumulated translation applied
        linalg::Vector weights;      ///< final KMM weights on the shifted set
        std::size_t iterations = 0;  ///< shift iterations performed
    };

    /// Calibrate `train` onto `test`; throws std::invalid_argument on empty
    /// inputs or dimension mismatch.
    [[nodiscard]] Result calibrate(const linalg::Matrix& train,
                                   const linalg::Matrix& test) const;

    [[nodiscard]] const Options& options() const noexcept { return opts_; }

private:
    Options opts_{};
};

}  // namespace htd::ml
