#include "ml/mars.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "linalg/decompositions.hpp"
#include "obs/span.hpp"

namespace htd::ml {

namespace {

/// Column-wise design matrix handled as a list of columns for cheap append.
struct Design {
    std::vector<std::vector<double>> cols;
    std::size_t n = 0;

    void add(std::vector<double> col) { cols.push_back(std::move(col)); }
};

/// Solve least squares via ridge-stabilized normal equations; returns the
/// coefficients and fills `rss_out`.
std::vector<double> least_squares(const Design& d, const linalg::Vector& y,
                                  double* rss_out) {
    const std::size_t m = d.cols.size();
    const std::size_t n = d.n;
    linalg::Matrix g(m, m);
    linalg::Vector b(m);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = i; j < m; ++j) {
            double acc = 0.0;
            for (std::size_t r = 0; r < n; ++r) acc += d.cols[i][r] * d.cols[j][r];
            g(i, j) = acc;
            g(j, i) = acc;
        }
        double acc = 0.0;
        for (std::size_t r = 0; r < n; ++r) acc += d.cols[i][r] * y[r];
        b[i] = acc;
    }
    const linalg::Vector c = linalg::solve_spd_ridge(g, b, 1e-10);
    if (rss_out != nullptr) {
        double rss = 0.0;
        for (std::size_t r = 0; r < n; ++r) {
            double pred = 0.0;
            for (std::size_t i = 0; i < m; ++i) pred += c[i] * d.cols[i][r];
            const double e = y[r] - pred;
            rss += e * e;
        }
        *rss_out = rss;
    }
    return {c.begin(), c.end()};
}

double gcv_score(double rss, std::size_t n, std::size_t m_terms, double penalty) {
    const double n_d = static_cast<double>(n);
    const double m_d = static_cast<double>(m_terms);
    const double c_m = m_d + penalty * (m_d - 1.0) / 2.0;
    const double denom = 1.0 - c_m / n_d;
    if (denom <= 0.0) return std::numeric_limits<double>::infinity();
    return rss / (n_d * denom * denom);
}

}  // namespace

bool BasisTerm::uses_variable(std::size_t v) const noexcept {
    for (const HingeFactor& f : factors) {
        if (f.variable == v) return true;
    }
    return false;
}

std::string BasisTerm::str() const {
    if (factors.empty()) return "1";
    std::ostringstream os;
    for (std::size_t i = 0; i < factors.size(); ++i) {
        if (i > 0) os << " * ";
        const HingeFactor& f = factors[i];
        os << "h(" << (f.positive ? '+' : '-') << "(x" << f.variable << " - "
           << f.knot << "))";
    }
    return os.str();
}

Mars::Mars(Options opts) : opts_(opts) {
    if (opts.max_terms < 1) throw std::invalid_argument("Mars: max_terms < 1");
    if (opts.max_degree < 1) throw std::invalid_argument("Mars: max_degree < 1");
    if (opts.penalty < 0.0) throw std::invalid_argument("Mars: negative penalty");
}

void Mars::fit(const linalg::Matrix& x, const linalg::Vector& y) {
    const std::size_t n = x.rows();
    const std::size_t p = x.cols();
    if (n == 0 || p == 0) throw std::invalid_argument("Mars::fit: empty dataset");
    if (y.size() != n) throw std::invalid_argument("Mars::fit: x/y size mismatch");
    obs::ScopedSpan span("mars.fit");
    span.attr("samples", static_cast<double>(n));
    span.attr("inputs", static_cast<double>(p));
    input_dim_ = p;

    // Candidate knots: sorted distinct values per variable, optionally thinned
    // to a quantile-spaced subset.
    std::vector<std::vector<double>> knots(p);
    for (std::size_t v = 0; v < p; ++v) {
        std::set<double> uniq;
        for (std::size_t r = 0; r < n; ++r) uniq.insert(x(r, v));
        std::vector<double> vals(uniq.begin(), uniq.end());
        if (opts_.max_knots_per_variable > 0 && vals.size() > opts_.max_knots_per_variable) {
            std::vector<double> thin;
            thin.reserve(opts_.max_knots_per_variable);
            const double step = static_cast<double>(vals.size() - 1) /
                                static_cast<double>(opts_.max_knots_per_variable - 1);
            for (std::size_t k = 0; k < opts_.max_knots_per_variable; ++k) {
                thin.push_back(vals[static_cast<std::size_t>(std::llround(
                    step * static_cast<double>(k)))]);
            }
            vals = std::move(thin);
        }
        knots[v] = std::move(vals);
    }

    // Forward pass.
    terms_ = {BasisTerm{}};  // intercept
    Design design;
    design.n = n;
    design.add(std::vector<double>(n, 1.0));

    double current_rss = 0.0;
    coef_ = least_squares(design, y, &current_rss);

    while (terms_.size() + 2 <= opts_.max_terms) {
        double best_rss = std::numeric_limits<double>::infinity();
        std::size_t best_parent = 0, best_var = 0;
        double best_knot = 0.0;
        bool found = false;

        for (std::size_t parent = 0; parent < terms_.size(); ++parent) {
            if (terms_[parent].degree() >= opts_.max_degree) continue;
            const std::vector<double>& parent_col = design.cols[parent];
            for (std::size_t v = 0; v < p; ++v) {
                if (terms_[parent].uses_variable(v)) continue;
                for (double t : knots[v]) {
                    // Build the mirrored hinge pair columns.
                    std::vector<double> c_pos(n), c_neg(n);
                    bool nonzero_pos = false, nonzero_neg = false;
                    for (std::size_t r = 0; r < n; ++r) {
                        const double base = parent_col[r];
                        const double d = x(r, v) - t;
                        const double hp = base * (d > 0.0 ? d : 0.0);
                        const double hn = base * (d < 0.0 ? -d : 0.0);
                        c_pos[r] = hp;
                        c_neg[r] = hn;
                        nonzero_pos |= hp != 0.0;
                        nonzero_neg |= hn != 0.0;
                    }
                    if (!nonzero_pos && !nonzero_neg) continue;

                    Design trial = design;
                    trial.add(std::move(c_pos));
                    trial.add(std::move(c_neg));
                    double rss = 0.0;
                    least_squares(trial, y, &rss);
                    // Strict-improvement tie-breaking: a candidate must beat
                    // the incumbent by a relative margin. Ties then resolve
                    // by enumeration order, which makes the selected basis
                    // identical across responses that differ only by an
                    // offset — important when several outputs share the same
                    // underlying dependency (the paper's six fingerprints).
                    if (rss < best_rss * (1.0 - 1e-9)) {
                        best_rss = rss;
                        best_parent = parent;
                        best_var = v;
                        best_knot = t;
                        found = true;
                    }
                }
            }
        }

        if (!found) break;
        const double improvement =
            (current_rss - best_rss) / std::max(current_rss, 1e-300);
        if (improvement < opts_.min_relative_improvement) break;

        BasisTerm pos = terms_[best_parent];
        pos.factors.push_back({best_var, best_knot, true});
        BasisTerm neg = terms_[best_parent];
        neg.factors.push_back({best_var, best_knot, false});
        // Recompute columns from the stored terms (cheap, and avoids moving
        // trial state out of the search loop).
        std::vector<double> col_pos(n), col_neg(n);
        for (std::size_t r = 0; r < n; ++r) {
            col_pos[r] = pos.evaluate(x.row_span(r));
            col_neg[r] = neg.evaluate(x.row_span(r));
        }
        terms_.push_back(std::move(pos));
        terms_.push_back(std::move(neg));
        design.add(std::move(col_pos));
        design.add(std::move(col_neg));
        coef_ = least_squares(design, y, &current_rss);
    }

    // Backward pruning under GCV: repeatedly drop the non-intercept term
    // whose removal yields the lowest RSS; keep the best subset seen.
    if (opts_.prune && terms_.size() > 1) {
        std::vector<std::size_t> active(terms_.size());
        for (std::size_t i = 0; i < active.size(); ++i) active[i] = i;

        auto subset_fit = [&](const std::vector<std::size_t>& subset, double* rss) {
            Design d;
            d.n = n;
            for (std::size_t idx : subset) d.add(design.cols[idx]);
            return least_squares(d, y, rss);
        };

        double rss_now = current_rss;
        std::vector<std::size_t> best_subset = active;
        double best_gcv = gcv_score(rss_now, n, active.size(), opts_.penalty);
        double best_subset_rss = rss_now;

        while (active.size() > 1) {
            double iter_best_rss = std::numeric_limits<double>::infinity();
            std::size_t iter_best_pos = 0;
            for (std::size_t drop = 1; drop < active.size(); ++drop) {
                std::vector<std::size_t> trial = active;
                trial.erase(trial.begin() + static_cast<std::ptrdiff_t>(drop));
                double rss = 0.0;
                subset_fit(trial, &rss);
                // Same deterministic tie-breaking as the forward pass.
                if (rss < iter_best_rss * (1.0 - 1e-9)) {
                    iter_best_rss = rss;
                    iter_best_pos = drop;
                }
            }
            active.erase(active.begin() + static_cast<std::ptrdiff_t>(iter_best_pos));
            const double g = gcv_score(iter_best_rss, n, active.size(), opts_.penalty);
            if (g <= best_gcv) {
                best_gcv = g;
                best_subset = active;
                best_subset_rss = iter_best_rss;
            }
        }

        std::vector<BasisTerm> pruned_terms;
        pruned_terms.reserve(best_subset.size());
        for (std::size_t idx : best_subset) pruned_terms.push_back(terms_[idx]);
        terms_ = std::move(pruned_terms);

        Design final_design;
        final_design.n = n;
        for (const BasisTerm& term : terms_) {
            std::vector<double> col(n);
            for (std::size_t r = 0; r < n; ++r) col[r] = term.evaluate(x.row_span(r));
            final_design.add(std::move(col));
        }
        coef_ = least_squares(final_design, y, &current_rss);
        current_rss = best_subset_rss;
        gcv_ = best_gcv;
    } else {
        gcv_ = gcv_score(current_rss, n, terms_.size(), opts_.penalty);
    }

    // Training R^2.
    double y_mean = 0.0;
    for (std::size_t r = 0; r < n; ++r) y_mean += y[r];
    y_mean /= static_cast<double>(n);
    double tss = 0.0;
    for (std::size_t r = 0; r < n; ++r) tss += (y[r] - y_mean) * (y[r] - y_mean);
    r2_ = tss > 0.0 ? 1.0 - current_rss / tss : 1.0;

    span.attr("terms", static_cast<double>(terms_.size()));
    span.attr("r_squared", r2_);
    obs::Registry::global().counter_add("mars.fits");
    obs::Registry::global().counter_add("mars.terms", static_cast<double>(terms_.size()));
    fitted_ = true;
}

double Mars::predict(std::span<const double> x) const {
    if (!fitted_) throw std::logic_error("Mars: not fitted");
    if (x.size() != input_dim_) throw std::invalid_argument("Mars::predict: dim mismatch");
    double acc = 0.0;
    for (std::size_t m = 0; m < terms_.size(); ++m) acc += coef_[m] * terms_[m].evaluate(x);
    return acc;
}

double Mars::predict(const linalg::Vector& x) const { return predict(x.span()); }

linalg::Vector Mars::predict_batch(const linalg::Matrix& x) const {
    linalg::Vector out(x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict(x.row_span(r));
    // One basis-function evaluation per (row, term) pair.
    obs::Registry::global().work_add(
        "work.mars.basis_evals",
        static_cast<double>(x.rows()) * static_cast<double>(terms_.size()));
    return out;
}

// --- MarsBank -----------------------------------------------------------------

void MarsBank::fit(const linalg::Matrix& x, const linalg::Matrix& y) {
    if (y.rows() != x.rows()) throw std::invalid_argument("MarsBank::fit: row mismatch");
    if (y.cols() == 0) throw std::invalid_argument("MarsBank::fit: no outputs");
    obs::ScopedSpan span("mars.bank_fit");
    span.attr("outputs", static_cast<double>(y.cols()));
    models_.clear();
    models_.reserve(y.cols());
    for (std::size_t j = 0; j < y.cols(); ++j) {
        Mars model(opts_);
        model.fit(x, y.col(j));
        models_.push_back(std::move(model));
    }
}

Mars::State Mars::export_state() const {
    State state;
    state.opts = opts_;
    state.fitted = fitted_;
    state.input_dim = input_dim_;
    state.terms = terms_;
    state.coef = coef_;
    state.gcv = gcv_;
    state.r2 = r2_;
    return state;
}

Mars Mars::from_state(State state) {
    if (state.fitted) {
        if (state.terms.empty()) {
            throw std::invalid_argument("Mars::from_state: fitted model without terms");
        }
        if (state.terms.size() != state.coef.size()) {
            throw std::invalid_argument(
                "Mars::from_state: " + std::to_string(state.terms.size()) +
                " terms vs " + std::to_string(state.coef.size()) + " coefficients");
        }
        for (const double c : state.coef) {
            if (!std::isfinite(c)) {
                throw std::invalid_argument(
                    "Mars::from_state: non-finite coefficient");
            }
        }
        for (const BasisTerm& term : state.terms) {
            for (const HingeFactor& f : term.factors) {
                if (f.variable >= state.input_dim || !std::isfinite(f.knot)) {
                    throw std::invalid_argument(
                        "Mars::from_state: hinge factor outside the input "
                        "dimension or with a non-finite knot");
                }
            }
        }
    }
    Mars model(state.opts);
    model.fitted_ = state.fitted;
    model.input_dim_ = state.input_dim;
    model.terms_ = std::move(state.terms);
    model.coef_ = std::move(state.coef);
    model.gcv_ = state.gcv;
    model.r2_ = state.r2;
    return model;
}

MarsBank::State MarsBank::export_state() const {
    State state;
    state.opts = opts_;
    state.models.reserve(models_.size());
    for (const Mars& m : models_) state.models.push_back(m.export_state());
    return state;
}

MarsBank MarsBank::from_state(State state) {
    MarsBank bank(state.opts);
    bank.models_.reserve(state.models.size());
    for (Mars::State& ms : state.models) {
        bank.models_.push_back(Mars::from_state(std::move(ms)));
    }
    return bank;
}

linalg::Vector MarsBank::predict(const linalg::Vector& x) const {
    if (models_.empty()) throw std::logic_error("MarsBank: not fitted");
    linalg::Vector out(models_.size());
    for (std::size_t j = 0; j < models_.size(); ++j) out[j] = models_[j].predict(x);
    return out;
}

linalg::Matrix MarsBank::predict_batch(const linalg::Matrix& x) const {
    if (models_.empty()) throw std::logic_error("MarsBank: not fitted");
    linalg::Matrix out(x.rows(), models_.size());
    for (std::size_t j = 0; j < models_.size(); ++j) {
        out.set_col(j, models_[j].predict_batch(x));
    }
    return out;
}

}  // namespace htd::ml
