#pragma once
/// \file kernel_functions.hpp
/// Positive-definite kernels for the kernel methods in this library (1-class
/// SVM, KMM). Kernels operate on raw row spans so the Gram-matrix loops stay
/// allocation-free.

#include <functional>
#include <span>

#include "linalg/matrix.hpp"

namespace htd::ml {

/// A positive-definite kernel function k(x, y) on equal-length spans.
using KernelFn = std::function<double(std::span<const double>, std::span<const double>)>;

/// Gaussian RBF kernel k(x, y) = exp(-gamma ||x - y||^2).
/// Throws std::invalid_argument when gamma <= 0.
[[nodiscard]] KernelFn rbf_kernel(double gamma);

/// Linear kernel k(x, y) = x . y.
[[nodiscard]] KernelFn linear_kernel();

/// Polynomial kernel k(x, y) = (scale * x.y + offset)^degree.
/// Throws std::invalid_argument when degree == 0.
[[nodiscard]] KernelFn polynomial_kernel(unsigned degree, double scale = 1.0,
                                         double offset = 1.0);

/// Median heuristic for the RBF width: gamma = 1 / (2 median^2) where the
/// median is over pairwise Euclidean distances of the rows of `data` (a
/// random subset of at most `max_pairs` pairs keeps it cheap). Returns a
/// fallback of 1/dim when the median distance is zero. Throws on datasets
/// with fewer than 2 rows.
[[nodiscard]] double median_heuristic_gamma(const linalg::Matrix& data,
                                            std::size_t max_pairs = 100000);

/// Dense Gram matrix K_ij = k(a_i, b_j) over the rows of `a` and `b`.
[[nodiscard]] linalg::Matrix gram_matrix(const KernelFn& kernel,
                                         const linalg::Matrix& a,
                                         const linalg::Matrix& b);

/// Symmetric Gram matrix K_ij = k(x_i, x_j) over the rows of `x` (computes
/// only the upper triangle and mirrors it).
[[nodiscard]] linalg::Matrix gram_matrix(const KernelFn& kernel,
                                         const linalg::Matrix& x);

}  // namespace htd::ml
