#include "ml/gpr.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/decompositions.hpp"
#include "ml/kernel_functions.hpp"
#include "stats/descriptive.hpp"

namespace htd::ml {

GaussianProcessRegressor::GaussianProcessRegressor(Options opts) : opts_(opts) {
    if (opts.noise_fraction < 0.0) {
        throw std::invalid_argument("GaussianProcessRegressor: negative noise");
    }
}

double GaussianProcessRegressor::kernel(std::span<const double> a,
                                        std::span<const double> b) const {
    double d2 = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        d2 += d * d;
    }
    return std::exp(-0.5 * d2 / (length_ * length_));
}

linalg::Vector GaussianProcessRegressor::standardize(const linalg::Vector& x) const {
    linalg::Vector z(x.size());
    for (std::size_t c = 0; c < x.size(); ++c) {
        z[c] = (x[c] - x_mean_[c]) / x_scale_[c];
    }
    return z;
}

void GaussianProcessRegressor::fit(const linalg::Matrix& x, const linalg::Vector& y) {
    const std::size_t n = x.rows();
    if (n < 2) throw std::invalid_argument("GaussianProcessRegressor::fit: need >= 2");
    if (y.size() != n) {
        throw std::invalid_argument("GaussianProcessRegressor::fit: x/y mismatch");
    }

    x_mean_ = stats::column_means(x);
    x_scale_ = stats::column_stddevs(x);
    for (std::size_t c = 0; c < x_scale_.size(); ++c) {
        if (x_scale_[c] < 1e-12) x_scale_[c] = 1.0;
    }
    const std::vector<double> ys(y.begin(), y.end());
    y_mean_ = stats::mean(ys);
    y_scale_ = stats::stddev(ys);
    if (y_scale_ < 1e-12) y_scale_ = 1.0;

    train_ = linalg::Matrix(n, x.cols());
    for (std::size_t r = 0; r < n; ++r) train_.set_row(r, standardize(x.row(r)));

    if (opts_.length_scale > 0.0) {
        length_ = opts_.length_scale;
    } else {
        const double gamma = median_heuristic_gamma(train_);
        length_ = 1.0 / std::sqrt(2.0 * gamma);
    }

    // K + noise I in the standardized response space (unit signal variance).
    linalg::Matrix k(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
            const double v = kernel(train_.row_span(i), train_.row_span(j));
            k(i, j) = v;
            k(j, i) = v;
        }
        k(i, i) += std::max(opts_.noise_fraction, 1e-10);
    }
    const linalg::Cholesky chol(k);
    chol_lower_ = chol.l();

    linalg::Vector y_std(n);
    for (std::size_t i = 0; i < n; ++i) y_std[i] = (y[i] - y_mean_) / y_scale_;
    alpha_ = chol.solve(y_std);

    // Training R^2 from the in-sample posterior mean.
    double rss = 0.0, tss = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        double mean_std = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            mean_std += kernel(train_.row_span(i), train_.row_span(j)) * alpha_[j];
        }
        const double pred = mean_std * y_scale_ + y_mean_;
        rss += (y[i] - pred) * (y[i] - pred);
        tss += (y[i] - y_mean_) * (y[i] - y_mean_);
    }
    r2_ = tss > 0.0 ? 1.0 - rss / tss : 1.0;
    fitted_ = true;
}

double GaussianProcessRegressor::predict(const linalg::Vector& x) const {
    return predict_with_variance(x).mean;
}

GaussianProcessRegressor::Prediction GaussianProcessRegressor::predict_with_variance(
    const linalg::Vector& x) const {
    if (!fitted_) throw std::logic_error("GaussianProcessRegressor: not fitted");
    if (x.size() != x_mean_.size()) {
        throw std::invalid_argument("GaussianProcessRegressor: dimension mismatch");
    }
    const linalg::Vector z = standardize(x);
    const std::size_t n = train_.rows();

    linalg::Vector k_star(n);
    double mean_std = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
        k_star[j] = kernel(z.span(), train_.row_span(j));
        mean_std += k_star[j] * alpha_[j];
    }

    // var = k(x,x) - k*^T K^-1 k* computed via the stored Cholesky factor.
    linalg::Vector v(n);
    for (std::size_t i = 0; i < n; ++i) {
        double acc = k_star[i];
        for (std::size_t j = 0; j < i; ++j) acc -= chol_lower_(i, j) * v[j];
        v[i] = acc / chol_lower_(i, i);
    }
    double quad = 0.0;
    for (std::size_t i = 0; i < n; ++i) quad += v[i] * v[i];
    const double var_std = std::max(0.0, 1.0 - quad);

    Prediction out;
    out.mean = mean_std * y_scale_ + y_mean_;
    out.variance = var_std * y_scale_ * y_scale_;
    return out;
}

linalg::Vector GaussianProcessRegressor::predict_batch(const linalg::Matrix& x) const {
    linalg::Vector out(x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict(x.row(r));
    return out;
}

// --- GprBank -----------------------------------------------------------------------

void GprBank::fit(const linalg::Matrix& x, const linalg::Matrix& y) {
    if (y.rows() != x.rows()) throw std::invalid_argument("GprBank::fit: row mismatch");
    if (y.cols() == 0) throw std::invalid_argument("GprBank::fit: no outputs");
    models_.clear();
    models_.reserve(y.cols());
    for (std::size_t j = 0; j < y.cols(); ++j) {
        GaussianProcessRegressor model(opts_);
        model.fit(x, y.col(j));
        models_.push_back(std::move(model));
    }
}

linalg::Vector GprBank::predict(const linalg::Vector& x) const {
    if (models_.empty()) throw std::logic_error("GprBank: not fitted");
    linalg::Vector out(models_.size());
    for (std::size_t j = 0; j < models_.size(); ++j) out[j] = models_[j].predict(x);
    return out;
}

linalg::Matrix GprBank::predict_batch(const linalg::Matrix& x) const {
    if (models_.empty()) throw std::logic_error("GprBank: not fitted");
    linalg::Matrix out(x.rows(), models_.size());
    for (std::size_t j = 0; j < models_.size(); ++j) {
        out.set_col(j, models_[j].predict_batch(x));
    }
    return out;
}

}  // namespace htd::ml
