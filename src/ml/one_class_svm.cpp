#include "ml/one_class_svm.hpp"

#include "linalg/decompositions.hpp"
#include "obs/span.hpp"
#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace htd::ml {

OneClassSvm::OneClassSvm(Options opts) : opts_(opts) {
    if (!(opts.nu > 0.0 && opts.nu < 1.0)) {
        throw std::invalid_argument("OneClassSvm: nu must lie in (0, 1)");
    }
    if (opts.max_training_samples == 0) {
        throw std::invalid_argument("OneClassSvm: max_training_samples == 0");
    }
    if (opts.tolerance <= 0.0) {
        throw std::invalid_argument("OneClassSvm: tolerance must be positive");
    }
    if (opts.gamma_scale <= 0.0) {
        throw std::invalid_argument("OneClassSvm: gamma_scale must be positive");
    }
}

void OneClassSvm::fit(const linalg::Matrix& data) {
    if (data.rows() == 0 || data.cols() == 0) {
        throw std::invalid_argument("OneClassSvm::fit: empty dataset");
    }
    obs::ScopedSpan span("svm.fit");
    span.attr("samples", static_cast<double>(data.rows()));
    span.attr("dim", static_cast<double>(data.cols()));

    // 1. Uniform subsample when the training set exceeds the cap.
    linalg::Matrix train;
    if (data.rows() > opts_.max_training_samples) {
        rng::Rng rng(opts_.subsample_seed);
        const auto perm = rng.permutation(data.rows());
        train = linalg::Matrix(opts_.max_training_samples, data.cols());
        for (std::size_t i = 0; i < opts_.max_training_samples; ++i) {
            train.set_row(i, data.row(perm[i]));
        }
    } else {
        train = data;
    }

    const std::size_t l = train.rows();
    const double c = 1.0 / (opts_.nu * static_cast<double>(l));
    if (c * static_cast<double>(l) < 1.0 - 1e-12) {
        throw std::invalid_argument("OneClassSvm::fit: nu * n < 1, dual infeasible");
    }

    // 2. Preprocess (standardize or whiten), resolve gamma.
    const std::size_t d = train.cols();
    input_mean_ = train.rows() >= 1 ? stats::column_means(train) : linalg::Vector(d);
    input_transform_ = linalg::Matrix(d, d);
    if (opts_.whiten && train.rows() >= 2) {
        const linalg::Matrix cov = stats::covariance_matrix(train);
        const linalg::EigenResult eig = linalg::symmetric_eigen(cov);
        const double floor_val =
            std::max(eig.values[0], 0.0) * opts_.whiten_floor + 1e-300;
        // W = diag(1/sqrt(max(lambda, floor))) V^T
        for (std::size_t k = 0; k < d; ++k) {
            const double scale = 1.0 / std::sqrt(std::max(eig.values[k], floor_val));
            for (std::size_t col = 0; col < d; ++col) {
                input_transform_(k, col) = scale * eig.vectors(col, k);
            }
        }
    } else {
        linalg::Vector scale(d, 1.0);
        if (train.rows() >= 2) scale = stats::column_stddevs(train);
        for (std::size_t k = 0; k < d; ++k) {
            input_transform_(k, k) = 1.0 / std::max(scale[k], 1e-12);
        }
    }
    linalg::Matrix x(train.rows(), d);
    for (std::size_t r = 0; r < train.rows(); ++r) {
        x.set_row(r, preprocess(train.row(r)));
    }
    gamma_ = opts_.gamma > 0.0 ? opts_.gamma
                               : median_heuristic_gamma(x) * opts_.gamma_scale;
    const KernelFn kernel = rbf_kernel(gamma_);

    // 3. Dense Gram matrix (bounded by the subsample cap).
    const linalg::Matrix q = gram_matrix(kernel, x);
    obs::Registry::global().work_add("work.svm.gram_cells",
                                     static_cast<double>(l) * static_cast<double>(l));

    // 4. Initialize alpha as in libsvm: the first floor(nu*l) points get the
    //    box maximum, the next point absorbs the remainder so sum == 1.
    std::vector<double> alpha(l, 0.0);
    const auto n_full = static_cast<std::size_t>(opts_.nu * static_cast<double>(l));
    for (std::size_t i = 0; i < std::min(n_full, l); ++i) alpha[i] = c;
    if (n_full < l) {
        alpha[n_full] = 1.0 - static_cast<double>(n_full) * c;
    }

    // Gradient g_i = (Q alpha)_i.
    std::vector<double> grad(l, 0.0);
    for (std::size_t i = 0; i < l; ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < l; ++j) {
            if (alpha[j] != 0.0) acc += q(i, j) * alpha[j];
        }
        grad[i] = acc;
    }

    // 5. SMO with maximal-violating-pair selection.
    iterations_ = 0;
    for (; iterations_ < opts_.max_iterations; ++iterations_) {
        // i: can increase (alpha_i < C) with the smallest gradient;
        // j: can decrease (alpha_j > 0) with the largest gradient.
        std::size_t bi = l, bj = l;
        double gi = std::numeric_limits<double>::infinity();
        double gj = -std::numeric_limits<double>::infinity();
        for (std::size_t t = 0; t < l; ++t) {
            if (alpha[t] < c - 1e-15 && grad[t] < gi) {
                gi = grad[t];
                bi = t;
            }
            if (alpha[t] > 1e-15 && grad[t] > gj) {
                gj = grad[t];
                bj = t;
            }
        }
        if (bi == l || bj == l || gj - gi < opts_.tolerance) break;

        // Analytic step along e_i - e_j, clipped to the box.
        double eta = q(bi, bi) + q(bj, bj) - 2.0 * q(bi, bj);
        if (eta <= 1e-15) eta = 1e-15;
        double step = (gj - gi) / eta;
        step = std::min(step, c - alpha[bi]);
        step = std::min(step, alpha[bj]);
        if (step <= 0.0) break;  // numerically stuck; KKT is within tolerance

        alpha[bi] += step;
        alpha[bj] -= step;
        for (std::size_t t = 0; t < l; ++t) {
            grad[t] += step * (q(t, bi) - q(t, bj));
        }
    }

    // 6. rho: average gradient over free support vectors, with a bound-based
    //    fallback when none are free.
    double free_sum = 0.0;
    std::size_t free_count = 0;
    double lower = -std::numeric_limits<double>::infinity();
    double upper = std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < l; ++t) {
        if (alpha[t] > 1e-12 && alpha[t] < c - 1e-12) {
            free_sum += grad[t];
            ++free_count;
        } else if (alpha[t] <= 1e-12) {
            upper = std::min(upper, grad[t]);
        } else {
            lower = std::max(lower, grad[t]);
        }
    }
    if (free_count > 0) {
        rho_ = free_sum / static_cast<double>(free_count);
    } else {
        if (!std::isfinite(lower)) lower = upper;
        if (!std::isfinite(upper)) upper = lower;
        rho_ = 0.5 * (lower + upper);
    }

    // 7. Keep only the support vectors.
    support_vectors_ = linalg::Matrix();
    alpha_.clear();
    for (std::size_t t = 0; t < l; ++t) {
        if (alpha[t] > 1e-12) {
            support_vectors_.append_row(x.row(t));
            alpha_.push_back(alpha[t]);
        }
    }

    span.attr("trained_samples", static_cast<double>(l));
    span.attr("support_vectors", static_cast<double>(support_vectors_.rows()));
    span.attr("smo_iterations", static_cast<double>(iterations_));
    obs::Registry& registry = obs::Registry::global();
    registry.counter_add("svm.fits");
    registry.counter_add("svm.smo_iterations", static_cast<double>(iterations_));
    registry.work_add("work.svm.smo_iterations", static_cast<double>(iterations_));
    registry.counter_add("svm.support_vectors",
                         static_cast<double>(support_vectors_.rows()));
    fitted_ = true;
}

linalg::Vector OneClassSvm::preprocess(const linalg::Vector& x) const {
    if (x.size() != input_mean_.size()) {
        throw std::invalid_argument("OneClassSvm: input dimension mismatch");
    }
    return input_transform_.matvec(x - input_mean_);
}

double OneClassSvm::decision_value(const linalg::Vector& x) const {
    if (!fitted_) throw std::logic_error("OneClassSvm: not fitted");
    const linalg::Vector z = preprocess(x);
    double acc = 0.0;
    for (std::size_t i = 0; i < support_vectors_.rows(); ++i) {
        const auto sv = support_vectors_.row_span(i);
        double d2 = 0.0;
        for (std::size_t c = 0; c < z.size(); ++c) {
            const double d = z[c] - sv[c];
            d2 += d * d;
        }
        acc += alpha_[i] * std::exp(-gamma_ * d2);
    }
    return acc - rho_;
}

bool OneClassSvm::contains(const linalg::Vector& x) const {
    return decision_value(x) >= 0.0;
}

OneClassSvm::State OneClassSvm::export_state() const {
    State state;
    state.opts = opts_;
    state.fitted = fitted_;
    state.input_mean = input_mean_;
    state.input_transform = input_transform_;
    state.support_vectors = support_vectors_;
    state.alpha = alpha_;
    state.rho = rho_;
    state.gamma = gamma_;
    state.iterations = iterations_;
    return state;
}

OneClassSvm OneClassSvm::from_state(State state) {
    OneClassSvm svm(state.opts);  // re-validates the options
    if (state.fitted) {
        if (state.support_vectors.rows() == 0) {
            throw std::invalid_argument(
                "OneClassSvm::from_state: fitted model without support vectors");
        }
        if (state.alpha.size() != state.support_vectors.rows()) {
            throw std::invalid_argument(
                "OneClassSvm::from_state: alpha count " +
                std::to_string(state.alpha.size()) +
                " != support vector count " +
                std::to_string(state.support_vectors.rows()));
        }
        if (state.input_transform.rows() != state.support_vectors.cols() ||
            state.input_transform.cols() != state.input_mean.size()) {
            throw std::invalid_argument(
                "OneClassSvm::from_state: input transform shape " +
                std::to_string(state.input_transform.rows()) + "x" +
                std::to_string(state.input_transform.cols()) +
                " disagrees with mean size " +
                std::to_string(state.input_mean.size()) +
                " / support vector width " +
                std::to_string(state.support_vectors.cols()));
        }
        if (!std::isfinite(state.rho) || !std::isfinite(state.gamma) ||
            state.gamma <= 0.0) {
            throw std::invalid_argument(
                "OneClassSvm::from_state: non-finite rho or non-positive gamma");
        }
        for (const double a : state.alpha) {
            if (!std::isfinite(a)) {
                throw std::invalid_argument(
                    "OneClassSvm::from_state: non-finite alpha coefficient");
            }
        }
    }
    svm.fitted_ = state.fitted;
    svm.input_mean_ = std::move(state.input_mean);
    svm.input_transform_ = std::move(state.input_transform);
    svm.support_vectors_ = std::move(state.support_vectors);
    svm.alpha_ = std::move(state.alpha);
    svm.rho_ = state.rho;
    svm.gamma_ = state.gamma;
    svm.iterations_ = state.iterations;
    return svm;
}

linalg::Vector OneClassSvm::decision_values(const linalg::Matrix& data) const {
    linalg::Vector out(data.rows());
    for (std::size_t r = 0; r < data.rows(); ++r) out[r] = decision_value(data.row(r));
    // One RBF evaluation per (row, support vector) pair.
    obs::Registry::global().work_add(
        "work.svm.kernel_evals", static_cast<double>(data.rows()) *
                                     static_cast<double>(support_vectors_.rows()));
    return out;
}

}  // namespace htd::ml
