#include "ml/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace htd::ml {

double DetectionMetrics::false_positive_rate() const noexcept {
    if (trojan_infested_total == 0) return 0.0;
    return static_cast<double>(false_positives) /
           static_cast<double>(trojan_infested_total);
}

double DetectionMetrics::false_negative_rate() const noexcept {
    if (trojan_free_total == 0) return 0.0;
    return static_cast<double>(false_negatives) / static_cast<double>(trojan_free_total);
}

double DetectionMetrics::accuracy() const noexcept {
    const std::size_t n = total();
    if (n == 0) return 0.0;
    return static_cast<double>(true_positives + true_negatives) / static_cast<double>(n);
}

std::string DetectionMetrics::str() const {
    std::ostringstream os;
    os << "FP " << false_positives << '/' << trojan_infested_total << "  FN "
       << false_negatives << '/' << trojan_free_total;
    return os.str();
}

DetectionMetrics evaluate_detection(const std::vector<bool>& predicted_free,
                                    std::span<const DeviceLabel> labels) {
    if (predicted_free.size() != labels.size()) {
        throw std::invalid_argument("evaluate_detection: size mismatch");
    }
    DetectionMetrics m;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (labels[i] == DeviceLabel::kTrojanFree) {
            ++m.trojan_free_total;
            if (predicted_free[i]) {
                ++m.true_positives;
            } else {
                ++m.false_negatives;
            }
        } else {
            ++m.trojan_infested_total;
            if (predicted_free[i]) {
                ++m.false_positives;
            } else {
                ++m.true_negatives;
            }
        }
    }
    return m;
}

std::vector<RocPoint> roc_curve(std::span<const double> decision_values,
                                std::span<const DeviceLabel> labels) {
    if (decision_values.size() != labels.size()) {
        throw std::invalid_argument("roc_curve: size mismatch");
    }
    if (decision_values.empty()) throw std::invalid_argument("roc_curve: empty input");

    std::size_t n_free = 0, n_infested = 0;
    for (const DeviceLabel label : labels) {
        (label == DeviceLabel::kTrojanFree ? n_free : n_infested) += 1;
    }
    if (n_free == 0 || n_infested == 0) {
        throw std::invalid_argument("roc_curve: need both classes");
    }

    // Sort devices by decision value descending; sweeping the threshold down
    // moves devices from "rejected" to "accepted" one by one.
    std::vector<std::size_t> order(labels.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return decision_values[a] > decision_values[b];
    });

    std::vector<RocPoint> curve;
    curve.reserve(labels.size() + 2);
    // Threshold above everything: nothing accepted -> FP 0, FN 1.
    curve.push_back({decision_values[order.front()] + 1.0, 0.0, 1.0});
    std::size_t accepted_free = 0, accepted_infested = 0;
    for (std::size_t k = 0; k < order.size(); ++k) {
        const std::size_t i = order[k];
        (labels[i] == DeviceLabel::kTrojanFree ? accepted_free : accepted_infested) += 1;
        // Emit a point only when the next value differs (ties share a point).
        const bool last = k + 1 == order.size();
        if (last ||
            decision_values[order[k + 1]] != decision_values[i]) {
            curve.push_back(
                {decision_values[i],
                 static_cast<double>(accepted_infested) / static_cast<double>(n_infested),
                 1.0 - static_cast<double>(accepted_free) / static_cast<double>(n_free)});
        }
    }
    return curve;
}

double roc_auc(std::span<const RocPoint> curve) {
    if (curve.size() < 2) throw std::invalid_argument("roc_auc: need >= 2 points");
    double auc = 0.0;
    for (std::size_t k = 1; k < curve.size(); ++k) {
        const double x0 = curve[k - 1].fp_rate;
        const double x1 = curve[k].fp_rate;
        const double y0 = 1.0 - curve[k - 1].fn_rate;
        const double y1 = 1.0 - curve[k].fn_rate;
        auc += 0.5 * (x1 - x0) * (y0 + y1);
    }
    return auc;
}

}  // namespace htd::ml
