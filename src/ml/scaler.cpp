#include "ml/scaler.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "stats/descriptive.hpp"

namespace htd::ml {

void StandardScaler::fit(const linalg::Matrix& data) {
    if (data.rows() == 0 || data.cols() == 0) {
        throw std::invalid_argument("StandardScaler::fit: empty dataset");
    }
    mean_ = stats::column_means(data);
    if (data.rows() >= 2) {
        scale_ = stats::column_stddevs(data);
    } else {
        scale_ = linalg::Vector(data.cols(), 1.0);
    }
    for (std::size_t c = 0; c < scale_.size(); ++c) {
        if (scale_[c] < 1e-12) scale_[c] = 1.0;  // constant column passthrough
    }
    fitted_ = true;
}

StandardScaler::State StandardScaler::export_state() const {
    State state;
    state.fitted = fitted_;
    state.mean = mean_;
    state.scale = scale_;
    return state;
}

StandardScaler StandardScaler::from_state(State state) {
    StandardScaler scaler;
    if (state.fitted) {
        if (state.mean.size() == 0 || state.mean.size() != state.scale.size()) {
            throw std::invalid_argument(
                "StandardScaler::from_state: mean/scale size mismatch");
        }
        for (std::size_t c = 0; c < state.scale.size(); ++c) {
            if (!(state.scale[c] > 0.0) || !std::isfinite(state.scale[c]) ||
                !std::isfinite(state.mean[c])) {
                throw std::invalid_argument(
                    "StandardScaler::from_state: non-finite mean or "
                    "non-positive scale at column " +
                    std::to_string(c));
            }
        }
    }
    scaler.fitted_ = state.fitted;
    scaler.mean_ = std::move(state.mean);
    scaler.scale_ = std::move(state.scale);
    return scaler;
}

void StandardScaler::require_fitted() const {
    if (!fitted_) throw std::logic_error("StandardScaler: not fitted");
}

linalg::Vector StandardScaler::transform(const linalg::Vector& x) const {
    require_fitted();
    if (x.size() != mean_.size()) {
        throw std::invalid_argument("StandardScaler::transform: dimension mismatch");
    }
    linalg::Vector z(x.size());
    for (std::size_t c = 0; c < x.size(); ++c) z[c] = (x[c] - mean_[c]) / scale_[c];
    return z;
}

linalg::Matrix StandardScaler::transform(const linalg::Matrix& data) const {
    require_fitted();
    if (data.cols() != mean_.size()) {
        throw std::invalid_argument("StandardScaler::transform: dimension mismatch");
    }
    linalg::Matrix out = data;
    for (std::size_t r = 0; r < out.rows(); ++r) {
        auto row = out.row_span(r);
        for (std::size_t c = 0; c < out.cols(); ++c) row[c] = (row[c] - mean_[c]) / scale_[c];
    }
    return out;
}

linalg::Vector StandardScaler::inverse_transform(const linalg::Vector& z) const {
    require_fitted();
    if (z.size() != mean_.size()) {
        throw std::invalid_argument("StandardScaler::inverse_transform: dimension mismatch");
    }
    linalg::Vector x(z.size());
    for (std::size_t c = 0; c < z.size(); ++c) x[c] = z[c] * scale_[c] + mean_[c];
    return x;
}

linalg::Matrix StandardScaler::inverse_transform(const linalg::Matrix& data) const {
    require_fitted();
    if (data.cols() != mean_.size()) {
        throw std::invalid_argument("StandardScaler::inverse_transform: dimension mismatch");
    }
    linalg::Matrix out = data;
    for (std::size_t r = 0; r < out.rows(); ++r) {
        auto row = out.row_span(r);
        for (std::size_t c = 0; c < out.cols(); ++c) row[c] = row[c] * scale_[c] + mean_[c];
    }
    return out;
}

}  // namespace htd::ml
