#include "ml/kmm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/annotations.hpp"
#include "core/stable_sum.hpp"
#include "obs/span.hpp"
#include "stats/descriptive.hpp"

namespace htd::ml {

double effective_sample_size(const linalg::Vector& weights) noexcept {
    double sum = 0.0;
    double sum_sq = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        sum += weights[i];
        sum_sq += weights[i] * weights[i];
    }
    return sum_sq > 0.0 ? sum * sum / sum_sq : 0.0;
}

linalg::Matrix weighted_resample(const linalg::Matrix& data,
                                 const linalg::Vector& weights, std::size_t n,
                                 rng::Rng& rng) {
    if (weights.size() != data.rows()) {
        throw std::invalid_argument("weighted_resample: size mismatch");
    }
    if (n == 0) throw std::invalid_argument("weighted_resample: n == 0");
    linalg::Matrix out(n, data.cols());
    const std::span<const double> w(weights.data(), weights.size());
    for (std::size_t i = 0; i < n; ++i) {
        out.set_row(i, data.row(rng.weighted_index(w)));
    }
    return out;
}

KernelMeanMatching::KernelMeanMatching(Options opts) : opts_(opts) {
    if (opts.weight_bound <= 0.0) {
        throw std::invalid_argument("KernelMeanMatching: weight_bound <= 0");
    }
    if (opts.max_iterations == 0) {
        throw std::invalid_argument("KernelMeanMatching: max_iterations == 0");
    }
}

linalg::Vector project_box_sum(const linalg::Vector& v, double hi, double lo_sum,
                               double hi_sum) {
    if (hi <= 0.0) throw std::invalid_argument("project_box_sum: hi <= 0");
    if (lo_sum > hi_sum) throw std::invalid_argument("project_box_sum: lo_sum > hi_sum");
    const double n_hi = hi * static_cast<double>(v.size());
    if (lo_sum > n_hi || hi_sum < 0.0) {
        throw std::invalid_argument("project_box_sum: empty feasible set");
    }

    auto clipped_sum = [&](double lambda) {
        double s = 0.0;
        for (std::size_t i = 0; i < v.size(); ++i) {
            s += std::clamp(v[i] + lambda, 0.0, hi);
        }
        return s;
    };

    linalg::Vector out(v.size());
    const double s0 = clipped_sum(0.0);
    double lambda = 0.0;
    if (s0 < lo_sum || s0 > hi_sum) {
        // Bisection for the shift that lands the clipped sum on the nearest
        // band edge; the clipped sum is monotone nondecreasing in lambda.
        const double target = s0 < lo_sum ? lo_sum : hi_sum;
        double lo = -hi - v.max();
        double hi_l = hi - v.min();
        // Widen until bracketing (robust against extreme inputs).
        for (int k = 0; k < 64 && clipped_sum(lo) > target; ++k) lo *= 2.0;
        for (int k = 0; k < 64 && clipped_sum(hi_l) < target; ++k) hi_l *= 2.0;
        for (int it = 0; it < 200; ++it) {
            lambda = 0.5 * (lo + hi_l);
            if (clipped_sum(lambda) < target) {
                lo = lambda;
            } else {
                hi_l = lambda;
            }
        }
        lambda = 0.5 * (lo + hi_l);
    }
    for (std::size_t i = 0; i < v.size(); ++i) {
        out[i] = std::clamp(v[i] + lambda, 0.0, hi);
    }
    return out;
}

double KernelMeanMatching::objective(const linalg::Matrix& k, const linalg::Vector& kappa,
                                     const linalg::Vector& beta) {
    const linalg::Vector kb = k.matvec(beta);
    return 0.5 * linalg::dot(beta, kb) - linalg::dot(kappa, beta);
}

linalg::Vector KernelMeanMatching::solve(const linalg::Matrix& train,
                                         const linalg::Matrix& test) const {
    if (train.rows() == 0 || test.rows() == 0) {
        throw std::invalid_argument("KernelMeanMatching::solve: empty input");
    }
    if (train.cols() != test.cols()) {
        throw std::invalid_argument("KernelMeanMatching::solve: column mismatch");
    }

    const std::size_t ntr = train.rows();
    const std::size_t nte = test.rows();
    obs::ScopedSpan span("kmm.solve");
    span.attr("train_samples", static_cast<double>(ntr));
    span.attr("test_samples", static_cast<double>(nte));

    double gamma = opts_.gamma;
    if (gamma <= 0.0) {
        // Median heuristic on the pooled samples so one width covers both clouds.
        linalg::Matrix pooled = train;
        for (std::size_t r = 0; r < nte; ++r) pooled.append_row(test.row(r));
        gamma = median_heuristic_gamma(pooled);
    }
    const KernelFn kernel = rbf_kernel(gamma);

    const linalg::Matrix k = gram_matrix(kernel, train);
    // Gram build is ntr² kernel evaluations, kappa another ntr×nte.
    obs::Registry::global().work_add(
        "work.kmm.gram_cells",
        static_cast<double>(ntr) * static_cast<double>(ntr) +
            static_cast<double>(ntr) * static_cast<double>(nte));
    linalg::Vector kappa(ntr);
    // Each kappa[i] is an independent nte-term kernel sum — the natural
    // per-thread work unit once the pool lands; the compensated
    // accumulator pins the reduction order per row.
    HTD_PARALLEL_READY;
    for (std::size_t i = 0; i < ntr; ++i) {
        core::StableAccumulator acc;
        for (std::size_t j = 0; j < nte; ++j) {
            acc.add(kernel(train.row_span(i), test.row_span(j)));
        }
        kappa[i] = acc.value() * static_cast<double>(ntr) / static_cast<double>(nte);
    }

    double eps = opts_.epsilon;
    if (eps <= 0.0) {
        const double root = std::sqrt(static_cast<double>(ntr));
        eps = (root - 1.0) / root;
    }
    const double lo_sum = static_cast<double>(ntr) * (1.0 - eps);
    const double hi_sum = static_cast<double>(ntr) * (1.0 + eps);

    // Lipschitz constant of the gradient via the Gershgorin row-sum bound.
    double lipschitz = 0.0;
    for (std::size_t i = 0; i < ntr; ++i) {
        double row = 0.0;
        for (std::size_t j = 0; j < ntr; ++j) row += std::abs(k(i, j));
        lipschitz = std::max(lipschitz, row);
    }
    const double step = 1.0 / std::max(lipschitz, 1e-12);

    linalg::Vector beta(ntr, 1.0);
    beta = project_box_sum(beta, opts_.weight_bound, lo_sum, hi_sum);
    std::size_t pgd_iterations = 0;
    for (std::size_t it = 0; it < opts_.max_iterations; ++it) {
        ++pgd_iterations;
        const linalg::Vector grad = k.matvec(beta) - kappa;
        linalg::Vector next(ntr);
        for (std::size_t i = 0; i < ntr; ++i) next[i] = beta[i] - step * grad[i];
        next = project_box_sum(next, opts_.weight_bound, lo_sum, hi_sum);
        double delta = 0.0;
        for (std::size_t i = 0; i < ntr; ++i) {
            delta = std::max(delta, std::abs(next[i] - beta[i]));
        }
        beta = std::move(next);
        if (delta < opts_.tolerance) break;
    }
    span.attr("pgd_iterations", static_cast<double>(pgd_iterations));
    // Each PGD step is dominated by the ntr² Gram matvec.
    obs::Registry::global().work_add("work.kmm.pgd_matvec_cells",
                                     static_cast<double>(pgd_iterations) *
                                         static_cast<double>(ntr) *
                                         static_cast<double>(ntr));
    return beta;
}

// --- KernelMeanShiftCalibrator ------------------------------------------------

KernelMeanShiftCalibrator::Result KernelMeanShiftCalibrator::calibrate(
    const linalg::Matrix& train, const linalg::Matrix& test) const {
    if (train.rows() == 0 || test.rows() == 0) {
        throw std::invalid_argument("KernelMeanShiftCalibrator: empty input");
    }
    if (train.cols() != test.cols()) {
        throw std::invalid_argument("KernelMeanShiftCalibrator: column mismatch");
    }
    obs::ScopedSpan span("kmm.calibrate");
    span.attr("train_samples", static_cast<double>(train.rows()));
    span.attr("test_samples", static_cast<double>(test.rows()));

    const std::size_t d = train.cols();
    const linalg::Vector test_mean = stats::column_means(test);

    // Convergence scale: RMS column spread of the test population (falls back
    // to the train spread, then to 1, for degenerate populations).
    double scale = 0.0;
    if (test.rows() >= 2) {
        const linalg::Vector s = stats::column_stddevs(test);
        for (std::size_t c = 0; c < d; ++c) scale += s[c] * s[c];
        scale = std::sqrt(scale / static_cast<double>(d));
    }
    if (scale <= 0.0 && train.rows() >= 2) {
        const linalg::Vector s = stats::column_stddevs(train);
        for (std::size_t c = 0; c < d; ++c) scale += s[c] * s[c];
        scale = std::sqrt(scale / static_cast<double>(d));
    }
    if (scale <= 0.0) scale = 1.0;

    Result result;
    result.calibrated = train;

    // Step 1: close the bulk of the gap with the plain mean difference.
    result.total_shift = test_mean - stats::column_means(train);

    // Step 2: kernel mean shift. The RKHS distance between the translated
    // training cloud and the test cloud depends on the translation t only
    // through the cross term sum_ij k(x_i + t, y_j) (the train-train Gram is
    // translation invariant), so minimizing the MMD over translations is a
    // soft-assignment fixed point: t <- weighted mean of (y_j - x_i) with
    // RBF correspondence weights evaluated at the current t.
    const std::size_t ntr = train.rows();
    const std::size_t nte = test.rows();
    double gamma = opts_.kmm.gamma;
    if (gamma <= 0.0) {
        linalg::Matrix pooled = test;  // width set by the target cloud's scale
        gamma = pooled.rows() >= 2 ? median_heuristic_gamma(pooled)
                                   : 1.0 / (scale * scale);
    }

    for (result.iterations = 0; result.iterations < opts_.max_shift_iterations;
         ++result.iterations) {
        linalg::Vector delta(d);
        double wsum = 0.0;
        for (std::size_t i = 0; i < ntr; ++i) {
            const auto x = train.row_span(i);
            for (std::size_t j = 0; j < nte; ++j) {
                const auto y = test.row_span(j);
                double d2 = 0.0;
                for (std::size_t c = 0; c < d; ++c) {
                    const double diff = x[c] + result.total_shift[c] - y[c];
                    d2 += diff * diff;
                }
                const double w = std::exp(-gamma * d2);
                wsum += w;
                for (std::size_t c = 0; c < d; ++c) {
                    delta[c] += w * (y[c] - x[c] - result.total_shift[c]);
                }
            }
        }
        if (wsum <= 1e-300) break;  // no effective overlap; keep the mean shift
        delta /= wsum;
        result.total_shift += delta;
        if (delta.norm() < opts_.shift_tolerance * scale) {
            ++result.iterations;
            break;
        }
    }

    for (std::size_t r = 0; r < ntr; ++r) {
        auto row = result.calibrated.row_span(r);
        for (std::size_t c = 0; c < d; ++c) row[c] += result.total_shift[c];
    }

    // Final KMM weights on the calibrated cloud (Section 2.4's beta), kept
    // for diagnostics and downstream weighting.
    const KernelMeanMatching kmm(opts_.kmm);
    result.weights = kmm.solve(result.calibrated, test);

    const double ess = effective_sample_size(result.weights);
    span.attr("shift_iterations", static_cast<double>(result.iterations));
    span.attr("total_shift_norm", result.total_shift.norm());
    span.attr("effective_sample_size", ess);
    obs::Registry& registry = obs::Registry::global();
    // The fixed-point loop touches every (train, test) pair once per
    // iteration — the kmm.calibrate hot loop.
    registry.work_add("work.kmm.shift_pair_evals",
                      static_cast<double>(result.iterations) *
                          static_cast<double>(ntr) * static_cast<double>(nte));
    registry.counter_add("kmm.calibrations");
    registry.gauge_set("kmm.effective_sample_size", ess);
    registry.gauge_set("kmm.shift_iterations", static_cast<double>(result.iterations));
    return result;
}

}  // namespace htd::ml
