#pragma once
/// \file scaler.hpp
/// Column-wise standardization (zero mean / unit variance). Used in front of
/// every kernel method so that a single kernel width is meaningful across
/// fingerprints with different physical units (dB, seconds, ...).

#include "linalg/matrix.hpp"

namespace htd::ml {

/// Fits per-column mean/std on a training set and applies the affine map
/// z = (x - mean) / std (and its inverse). Constant columns get unit scale
/// so they pass through unchanged.
class StandardScaler {
public:
    /// Persistable fit state (means + scales); re-importing reproduces
    /// transform/inverse_transform bitwise.
    struct State {
        bool fitted = false;
        linalg::Vector mean;
        linalg::Vector scale;
    };

    StandardScaler() = default;

    /// Snapshot of the fit state (valid on an unfitted scaler).
    [[nodiscard]] State export_state() const;

    /// Rebuild from exported state; throws std::invalid_argument on a
    /// mean/scale size mismatch or a non-positive / non-finite scale.
    [[nodiscard]] static StandardScaler from_state(State state);

    /// Learn means and scales from the rows of `data`; throws
    /// std::invalid_argument on an empty dataset.
    void fit(const linalg::Matrix& data);

    /// True once fit() has been called.
    [[nodiscard]] bool fitted() const noexcept { return fitted_; }

    /// Standardize one sample; throws std::logic_error if not fitted and
    /// std::invalid_argument on dimension mismatch.
    [[nodiscard]] linalg::Vector transform(const linalg::Vector& x) const;

    /// Standardize a dataset row-by-row.
    [[nodiscard]] linalg::Matrix transform(const linalg::Matrix& data) const;

    /// Map a standardized sample back to the original units.
    [[nodiscard]] linalg::Vector inverse_transform(const linalg::Vector& z) const;

    /// Map a standardized dataset back to the original units.
    [[nodiscard]] linalg::Matrix inverse_transform(const linalg::Matrix& data) const;

    [[nodiscard]] const linalg::Vector& means() const noexcept { return mean_; }
    [[nodiscard]] const linalg::Vector& scales() const noexcept { return scale_; }

private:
    void require_fitted() const;

    bool fitted_ = false;
    linalg::Vector mean_;
    linalg::Vector scale_;
};

}  // namespace htd::ml
