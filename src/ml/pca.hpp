#pragma once
/// \file pca.hpp
/// Principal Component Analysis — used to produce the Fig. 4 visualizations:
/// the 6-D fingerprint populations are projected onto the top three
/// principal components of the measured device set.

#include "linalg/decompositions.hpp"
#include "linalg/matrix.hpp"

namespace htd::ml {

/// PCA fit on dataset rows: centers the data, eigendecomposes the sample
/// covariance, and projects onto the leading components.
class Pca {
public:
    Pca() = default;

    /// Fit on the rows of `data`, keeping `n_components` (0 = all). Throws
    /// std::invalid_argument with fewer than 2 rows or when n_components
    /// exceeds the input dimension.
    void fit(const linalg::Matrix& data, std::size_t n_components = 0);

    [[nodiscard]] bool fitted() const noexcept { return fitted_; }

    /// Project one sample onto the kept components.
    [[nodiscard]] linalg::Vector transform(const linalg::Vector& x) const;

    /// Project every row of `data`.
    [[nodiscard]] linalg::Matrix transform(const linalg::Matrix& data) const;

    /// Reconstruct an original-space point from component scores.
    [[nodiscard]] linalg::Vector inverse_transform(const linalg::Vector& scores) const;

    /// Eigenvalues of the kept components, descending.
    [[nodiscard]] const linalg::Vector& explained_variance() const noexcept {
        return eigenvalues_;
    }

    /// Fraction of total variance captured by each kept component.
    [[nodiscard]] linalg::Vector explained_variance_ratio() const;

    /// Component loadings as columns (input_dim x n_components).
    [[nodiscard]] const linalg::Matrix& components() const noexcept { return components_; }

    [[nodiscard]] std::size_t n_components() const noexcept { return components_.cols(); }
    [[nodiscard]] std::size_t input_dim() const noexcept { return mean_.size(); }

private:
    bool fitted_ = false;
    linalg::Vector mean_;
    linalg::Vector eigenvalues_;
    double total_variance_ = 0.0;
    linalg::Matrix components_;  // columns are principal directions
};

}  // namespace htd::ml
