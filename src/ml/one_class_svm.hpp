#pragma once
/// \file one_class_svm.hpp
/// One-class support vector machine (Schölkopf et al., 2001) — the paper's
/// trusted-region learner. Each classification boundary B1..B5 is a 1-class
/// SVM trained on one of the golden fingerprint populations S1..S5; a device
/// whose fingerprint scores >= 0 is inside the trusted region (Trojan-free).
///
/// The dual
///     min_alpha  1/2 alpha^T Q alpha
///     s.t.       0 <= alpha_i <= 1/(nu l),   sum_i alpha_i = 1,
/// with Q_ij = k(x_i, x_j), is solved by SMO with maximal-violating-pair
/// working-set selection and a dense kernel cache. Training sets beyond
/// `Options::max_training_samples` are uniformly subsampled first — the
/// tail-enhanced populations (10^5 KDE draws) are i.i.d., so a uniform
/// subsample is an unbiased surrogate at a fraction of the O(n^2) memory.

#include <cstdint>
#include <optional>

#include "linalg/matrix.hpp"
#include "ml/kernel_functions.hpp"
#include "rng/rng.hpp"

namespace htd::ml {

/// One-class SVM with an RBF kernel on internally standardized inputs.
class OneClassSvm {
public:
    struct Options {
        /// Fraction of training points allowed outside the boundary
        /// (equivalently, lower bound on the support-vector fraction).
        /// Must lie in (0, 1).
        double nu = 0.05;

        /// RBF width; <= 0 selects the median heuristic on the (subsampled,
        /// standardized) training set.
        double gamma = 0.0;

        /// Multiplier applied to the resolved gamma (only when the median
        /// heuristic is used). > 1 tightens the boundary around the training
        /// cloud; < 1 relaxes it.
        double gamma_scale = 1.0;

        /// KKT violation tolerance for SMO convergence.
        double tolerance = 1e-4;

        /// Hard cap on SMO iterations (safety net; reached only on
        /// pathological inputs).
        std::size_t max_iterations = 2'000'000;

        /// Subsample cap: training sets larger than this are uniformly
        /// subsampled to keep the dense Gram matrix tractable.
        std::size_t max_training_samples = 2000;

        /// Seed for the subsampling permutation.
        std::uint64_t subsample_seed = 0x5eed'0c5fULL;

        /// Preprocess inputs by full PCA whitening instead of per-column
        /// standardization. Whitening equalizes the strongly correlated
        /// "common gain" direction with the small orthogonal directions of
        /// side-channel clouds, which is essential when the training data
        /// has real spread in every direction (e.g. measured golden chips);
        /// it must stay off for the regression-predicted tubes S3/S4 whose
        /// orthogonal variance is numerically zero.
        bool whiten = false;

        /// Eigenvalue floor for whitening, relative to the largest
        /// eigenvalue (guards against blowing up null directions).
        double whiten_floor = 1e-4;
    };

    /// The complete trained state: everything decision_value consumes, in
    /// the exact representation it consumes it. Exporting and re-importing
    /// a State reproduces decision values *bitwise* — the contract behind
    /// the htd.boundary.v1 calibrate/score split.
    struct State {
        Options opts{};
        bool fitted = false;
        linalg::Vector input_mean;
        linalg::Matrix input_transform;  ///< z = W (x - mean)
        linalg::Matrix support_vectors;  ///< preprocessed rows
        std::vector<double> alpha;       ///< one coefficient per support vector
        double rho = 0.0;
        double gamma = 0.0;
        std::size_t iterations = 0;
    };

    OneClassSvm() = default;

    /// Construct with explicit options; throws std::invalid_argument for
    /// nu outside (0, 1) or a zero sample cap.
    explicit OneClassSvm(Options opts);

    /// Snapshot of the trained state (valid to export an unfitted model).
    [[nodiscard]] State export_state() const;

    /// Rebuild a model from exported state. Throws std::invalid_argument
    /// on internally inconsistent state (mismatched support-vector /
    /// alpha / transform shapes, non-finite rho or gamma on a fitted
    /// model) so a corrupted artifact cannot produce a silently wrong
    /// scorer.
    [[nodiscard]] static OneClassSvm from_state(State state);

    /// Train on the rows of `data`. Throws std::invalid_argument on an empty
    /// dataset or when nu * n < 1 (no feasible alpha).
    void fit(const linalg::Matrix& data);

    /// True once fit() succeeded.
    [[nodiscard]] bool fitted() const noexcept { return fitted_; }

    /// Decision value f(x) = sum_i alpha_i k(x_i, x) - rho. Positive means
    /// inside the trusted region. Throws std::logic_error if not fitted.
    [[nodiscard]] double decision_value(const linalg::Vector& x) const;

    /// Convenience: decision_value(x) >= 0.
    [[nodiscard]] bool contains(const linalg::Vector& x) const;

    /// Decision values for every row of `data`.
    [[nodiscard]] linalg::Vector decision_values(const linalg::Matrix& data) const;

    /// Number of support vectors (alpha_i > 0) after training.
    [[nodiscard]] std::size_t support_vector_count() const noexcept {
        return support_vectors_.rows();
    }

    /// Offset rho of the decision function.
    [[nodiscard]] double rho() const noexcept { return rho_; }

    /// The RBF gamma in effect after fitting (resolved median heuristic).
    [[nodiscard]] double effective_gamma() const noexcept { return gamma_; }

    /// SMO iterations consumed by the last fit.
    [[nodiscard]] std::size_t iterations_used() const noexcept { return iterations_; }

    [[nodiscard]] const Options& options() const noexcept { return opts_; }

private:
    [[nodiscard]] linalg::Vector preprocess(const linalg::Vector& x) const;

    Options opts_{};
    bool fitted_ = false;
    linalg::Vector input_mean_;
    linalg::Matrix input_transform_;  // z = W (x - mean)
    linalg::Matrix support_vectors_;  // preprocessed
    std::vector<double> alpha_;       // matching support-vector coefficients
    double rho_ = 0.0;
    double gamma_ = 0.0;
    std::size_t iterations_ = 0;
};

}  // namespace htd::ml
