#include "ml/pca.hpp"

#include <stdexcept>

#include "stats/descriptive.hpp"

namespace htd::ml {

void Pca::fit(const linalg::Matrix& data, std::size_t n_components) {
    if (data.rows() < 2) throw std::invalid_argument("Pca::fit: need >= 2 rows");
    const std::size_t d = data.cols();
    if (n_components == 0) n_components = d;
    if (n_components > d) {
        throw std::invalid_argument("Pca::fit: n_components exceeds input dimension");
    }

    mean_ = stats::column_means(data);
    const linalg::Matrix cov = stats::covariance_matrix(data);
    const linalg::EigenResult eig = linalg::symmetric_eigen(cov);

    total_variance_ = 0.0;
    for (std::size_t i = 0; i < d; ++i) total_variance_ += eig.values[i];

    eigenvalues_ = linalg::Vector(n_components);
    components_ = linalg::Matrix(d, n_components);
    for (std::size_t k = 0; k < n_components; ++k) {
        eigenvalues_[k] = eig.values[k];
        for (std::size_t r = 0; r < d; ++r) components_(r, k) = eig.vectors(r, k);
    }
    fitted_ = true;
}

linalg::Vector Pca::transform(const linalg::Vector& x) const {
    if (!fitted_) throw std::logic_error("Pca: not fitted");
    if (x.size() != mean_.size()) throw std::invalid_argument("Pca::transform: dim mismatch");
    const linalg::Vector centered = x - mean_;
    linalg::Vector scores(components_.cols());
    for (std::size_t k = 0; k < components_.cols(); ++k) {
        double acc = 0.0;
        for (std::size_t r = 0; r < centered.size(); ++r) {
            acc += components_(r, k) * centered[r];
        }
        scores[k] = acc;
    }
    return scores;
}

linalg::Matrix Pca::transform(const linalg::Matrix& data) const {
    linalg::Matrix out(data.rows(), components_.cols());
    for (std::size_t r = 0; r < data.rows(); ++r) out.set_row(r, transform(data.row(r)));
    return out;
}

linalg::Vector Pca::inverse_transform(const linalg::Vector& scores) const {
    if (!fitted_) throw std::logic_error("Pca: not fitted");
    if (scores.size() != components_.cols()) {
        throw std::invalid_argument("Pca::inverse_transform: dim mismatch");
    }
    linalg::Vector x = mean_;
    for (std::size_t r = 0; r < mean_.size(); ++r) {
        for (std::size_t k = 0; k < components_.cols(); ++k) {
            x[r] += components_(r, k) * scores[k];
        }
    }
    return x;
}

linalg::Vector Pca::explained_variance_ratio() const {
    if (!fitted_) throw std::logic_error("Pca: not fitted");
    linalg::Vector ratio = eigenvalues_;
    if (total_variance_ > 0.0) ratio /= total_variance_;
    return ratio;
}

}  // namespace htd::ml
