#include "linalg/decompositions.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace htd::linalg {

// --- Cholesky ----------------------------------------------------------------

Cholesky::Cholesky(const Matrix& a) {
    if (a.rows() != a.cols()) {
        throw std::invalid_argument("Cholesky: matrix must be square");
    }
    if (!a.is_symmetric(1e-9 * (1.0 + a.max_abs()))) {
        throw std::invalid_argument("Cholesky: matrix must be symmetric");
    }
    const std::size_t n = a.rows();
    l_ = Matrix(n, n);
    for (std::size_t j = 0; j < n; ++j) {
        double diag = a(j, j);
        for (std::size_t k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
        if (diag <= 0.0 || !std::isfinite(diag)) {
            throw std::domain_error("Cholesky: matrix is not positive definite");
        }
        l_(j, j) = std::sqrt(diag);
        for (std::size_t i = j + 1; i < n; ++i) {
            double v = a(i, j);
            for (std::size_t k = 0; k < j; ++k) v -= l_(i, k) * l_(j, k);
            l_(i, j) = v / l_(j, j);
        }
    }
}

Vector Cholesky::solve_lower(const Vector& b) const {
    const std::size_t n = l_.rows();
    if (b.size() != n) throw std::invalid_argument("Cholesky::solve_lower: size mismatch");
    Vector y(n);
    for (std::size_t i = 0; i < n; ++i) {
        double v = b[i];
        for (std::size_t k = 0; k < i; ++k) v -= l_(i, k) * y[k];
        y[i] = v / l_(i, i);
    }
    return y;
}

Vector Cholesky::solve(const Vector& b) const {
    const std::size_t n = l_.rows();
    Vector y = solve_lower(b);
    // back substitution with L^T
    Vector x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double v = y[ii];
        for (std::size_t k = ii + 1; k < n; ++k) v -= l_(k, ii) * x[k];
        x[ii] = v / l_(ii, ii);
    }
    return x;
}

double Cholesky::log_determinant() const noexcept {
    double acc = 0.0;
    for (std::size_t i = 0; i < l_.rows(); ++i) acc += std::log(l_(i, i));
    return 2.0 * acc;
}

// --- LU ------------------------------------------------------------------------

Lu::Lu(const Matrix& a) : lu_(a), piv_(a.rows()) {
    if (a.rows() != a.cols()) throw std::invalid_argument("Lu: matrix must be square");
    const std::size_t n = a.rows();
    std::iota(piv_.begin(), piv_.end(), std::size_t{0});
    for (std::size_t k = 0; k < n; ++k) {
        // partial pivot
        std::size_t p = k;
        double best = std::abs(lu_(k, k));
        for (std::size_t i = k + 1; i < n; ++i) {
            const double v = std::abs(lu_(i, k));
            if (v > best) {
                best = v;
                p = i;
            }
        }
        if (best < 1e-300) throw std::domain_error("Lu: matrix is singular");
        if (p != k) {
            for (std::size_t c = 0; c < n; ++c) std::swap(lu_(p, c), lu_(k, c));
            std::swap(piv_[p], piv_[k]);
            pivot_sign_ = -pivot_sign_;
        }
        for (std::size_t i = k + 1; i < n; ++i) {
            lu_(i, k) /= lu_(k, k);
            const double m = lu_(i, k);
            for (std::size_t c = k + 1; c < n; ++c) lu_(i, c) -= m * lu_(k, c);
        }
    }
}

Vector Lu::solve(const Vector& b) const {
    const std::size_t n = lu_.rows();
    if (b.size() != n) throw std::invalid_argument("Lu::solve: size mismatch");
    Vector x(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = b[piv_[i]];
    // forward: L y = P b (unit diagonal)
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t k = 0; k < i; ++k) x[i] -= lu_(i, k) * x[k];
    // backward: U x = y
    for (std::size_t ii = n; ii-- > 0;) {
        for (std::size_t k = ii + 1; k < n; ++k) x[ii] -= lu_(ii, k) * x[k];
        x[ii] /= lu_(ii, ii);
    }
    return x;
}

Matrix Lu::solve(const Matrix& b) const {
    if (b.rows() != lu_.rows()) throw std::invalid_argument("Lu::solve: shape mismatch");
    Matrix x(b.rows(), b.cols());
    for (std::size_t c = 0; c < b.cols(); ++c) x.set_col(c, solve(b.col(c)));
    return x;
}

double Lu::determinant() const noexcept {
    double det = static_cast<double>(pivot_sign_);
    for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
    return det;
}

Matrix Lu::inverse() const { return solve(Matrix::identity(lu_.rows())); }

// --- QR --------------------------------------------------------------------------

Qr::Qr(const Matrix& a) : qr_(a), rdiag_(a.cols()) {
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    if (m < n) throw std::invalid_argument("Qr: requires rows >= cols");
    for (std::size_t k = 0; k < n; ++k) {
        double nrm = 0.0;
        for (std::size_t i = k; i < m; ++i) nrm = std::hypot(nrm, qr_(i, k));
        if (nrm != 0.0) {
            if (qr_(k, k) < 0.0) nrm = -nrm;
            for (std::size_t i = k; i < m; ++i) qr_(i, k) /= nrm;
            qr_(k, k) += 1.0;
            for (std::size_t j = k + 1; j < n; ++j) {
                double s = 0.0;
                for (std::size_t i = k; i < m; ++i) s += qr_(i, k) * qr_(i, j);
                s = -s / qr_(k, k);
                for (std::size_t i = k; i < m; ++i) qr_(i, j) += s * qr_(i, k);
            }
        }
        rdiag_[k] = -nrm;
    }
}

bool Qr::full_rank(double tol) const noexcept {
    for (std::size_t k = 0; k < rdiag_.size(); ++k)
        if (std::abs(rdiag_[k]) <= tol) return false;
    return true;
}

Vector Qr::solve(const Vector& b) const {
    const std::size_t m = qr_.rows();
    const std::size_t n = qr_.cols();
    if (b.size() != m) throw std::invalid_argument("Qr::solve: size mismatch");
    if (!full_rank()) throw std::domain_error("Qr::solve: rank-deficient matrix");
    Vector y = b;
    // apply Householder reflections: y := Q^T b
    for (std::size_t k = 0; k < n; ++k) {
        double s = 0.0;
        for (std::size_t i = k; i < m; ++i) s += qr_(i, k) * y[i];
        s = -s / qr_(k, k);
        for (std::size_t i = k; i < m; ++i) y[i] += s * qr_(i, k);
    }
    // back-substitute R x = y
    Vector x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double v = y[ii];
        for (std::size_t k = ii + 1; k < n; ++k) v -= qr_(ii, k) * x[k];
        x[ii] = v / rdiag_[ii];
    }
    return x;
}

Matrix Qr::r() const {
    const std::size_t n = qr_.cols();
    Matrix r(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        r(i, i) = rdiag_[i];
        for (std::size_t j = i + 1; j < n; ++j) r(i, j) = qr_(i, j);
    }
    return r;
}

// --- Jacobi eigen -----------------------------------------------------------------

EigenResult symmetric_eigen(const Matrix& a, std::size_t max_sweeps, double tol) {
    if (a.rows() != a.cols()) {
        throw std::invalid_argument("symmetric_eigen: matrix must be square");
    }
    if (!a.is_symmetric(1e-9 * (1.0 + a.max_abs()))) {
        throw std::invalid_argument("symmetric_eigen: matrix must be symmetric");
    }
    const std::size_t n = a.rows();
    Matrix d = a;
    Matrix v = Matrix::identity(n);

    for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
        double off = 0.0;
        for (std::size_t p = 0; p < n; ++p)
            for (std::size_t q = p + 1; q < n; ++q) off += d(p, q) * d(p, q);
        if (std::sqrt(off) <= tol * (1.0 + d.max_abs())) break;

        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                const double apq = d(p, q);
                if (std::abs(apq) <= 1e-300) continue;
                const double app = d(p, p);
                const double aqq = d(q, q);
                const double theta = (aqq - app) / (2.0 * apq);
                const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                                 (std::abs(theta) + std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;

                for (std::size_t k = 0; k < n; ++k) {
                    const double dkp = d(k, p);
                    const double dkq = d(k, q);
                    d(k, p) = c * dkp - s * dkq;
                    d(k, q) = s * dkp + c * dkq;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double dpk = d(p, k);
                    const double dqk = d(q, k);
                    d(p, k) = c * dpk - s * dqk;
                    d(q, k) = s * dpk + c * dqk;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double vkp = v(k, p);
                    const double vkq = v(k, q);
                    v(k, p) = c * vkp - s * vkq;
                    v(k, q) = s * vkp + c * vkq;
                }
            }
        }
    }

    // sort by descending eigenvalue
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t i, std::size_t j) { return d(i, i) > d(j, j); });

    EigenResult out;
    out.values = Vector(n);
    out.vectors = Matrix(n, n);
    for (std::size_t k = 0; k < n; ++k) {
        out.values[k] = d(order[k], order[k]);
        for (std::size_t r = 0; r < n; ++r) out.vectors(r, k) = v(r, order[k]);
    }
    return out;
}

SvdResult singular_values(const Matrix& a, std::size_t max_sweeps, double tol) {
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    if (m < n) throw std::invalid_argument("singular_values: requires rows >= cols");

    Matrix u = a;                       // becomes U * diag(s)
    Matrix v = Matrix::identity(n);

    // One-sided Jacobi: orthogonalize column pairs of U by right rotations.
    for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
        double off = 0.0;
        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                double alpha = 0.0, beta = 0.0, gamma = 0.0;
                for (std::size_t i = 0; i < m; ++i) {
                    alpha += u(i, p) * u(i, p);
                    beta += u(i, q) * u(i, q);
                    gamma += u(i, p) * u(i, q);
                }
                off = std::max(off, std::abs(gamma) / std::sqrt(alpha * beta + 1e-300));
                if (std::abs(gamma) <= tol * std::sqrt(alpha * beta)) continue;

                const double zeta = (beta - alpha) / (2.0 * gamma);
                const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                                 (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
                const double c = 1.0 / std::sqrt(1.0 + t * t);
                const double s = c * t;
                for (std::size_t i = 0; i < m; ++i) {
                    const double up = u(i, p);
                    const double uq = u(i, q);
                    u(i, p) = c * up - s * uq;
                    u(i, q) = s * up + c * uq;
                }
                for (std::size_t i = 0; i < n; ++i) {
                    const double vp = v(i, p);
                    const double vq = v(i, q);
                    v(i, p) = c * vp - s * vq;
                    v(i, q) = s * vp + c * vq;
                }
            }
        }
        if (off <= tol) break;
    }

    // Extract singular values as column norms of U, then normalize.
    Vector s(n);
    for (std::size_t j = 0; j < n; ++j) {
        double nrm = 0.0;
        for (std::size_t i = 0; i < m; ++i) nrm += u(i, j) * u(i, j);
        s[j] = std::sqrt(nrm);
    }

    // Sort descending and permute U's and V's columns to match.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t i, std::size_t j) { return s[i] > s[j]; });

    SvdResult out;
    out.values = Vector(n);
    out.u = Matrix(m, n);
    out.v = Matrix(n, n);
    for (std::size_t k = 0; k < n; ++k) {
        const std::size_t j = order[k];
        out.values[k] = s[j];
        const double inv = s[j] > 1e-300 ? 1.0 / s[j] : 0.0;
        for (std::size_t i = 0; i < m; ++i) out.u(i, k) = u(i, j) * inv;
        for (std::size_t i = 0; i < n; ++i) out.v(i, k) = v(i, j);
    }
    return out;
}

Matrix nearest_correlation_matrix(const Matrix& corr, double min_eigenvalue) {
    if (min_eigenvalue <= 0.0) {
        throw std::invalid_argument("nearest_correlation_matrix: non-positive floor");
    }
    const EigenResult eig = symmetric_eigen(corr);  // validates square/symmetric
    const std::size_t n = corr.rows();

    Matrix repaired(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
            double acc = 0.0;
            for (std::size_t k = 0; k < n; ++k) {
                acc += eig.vectors(i, k) * std::max(eig.values[k], min_eigenvalue) *
                       eig.vectors(j, k);
            }
            repaired(i, j) = acc;
            repaired(j, i) = acc;
        }
    }
    // Renormalize so the diagonal is exactly 1 again.
    Vector d(n);
    for (std::size_t i = 0; i < n; ++i) d[i] = 1.0 / std::sqrt(repaired(i, i));
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            repaired(i, j) *= d[i] * d[j];
        }
    }
    return repaired;
}

Vector solve_spd_ridge(const Matrix& a, const Vector& b, double ridge) {
    // Try a plain Cholesky solve first; escalate the ridge geometrically.
    double lambda = 0.0;
    for (int attempt = 0; attempt < 12; ++attempt) {
        Matrix m = a;
        if (lambda > 0.0) {
            for (std::size_t i = 0; i < m.rows(); ++i) m(i, i) += lambda;
        }
        try {
            return Cholesky(m).solve(b);
        } catch (const std::domain_error&) {
            lambda = (lambda == 0.0) ? ridge * (1.0 + a.max_abs()) : lambda * 10.0;
        }
    }
    throw std::domain_error("solve_spd_ridge: matrix could not be regularized");
}

}  // namespace htd::linalg
